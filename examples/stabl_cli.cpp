// stabl_cli — run a single STABL experiment pair from the command line and
// emit human-readable or machine-readable results. The driver a downstream
// user would wire into a CI pipeline.
//
// Usage:
//   stabl_cli [--chain NAME] [--fault NAME] [--duration S] [--seed N]
//             [--seeds N] [--jobs N]
//             [--fanout K] [--matching K] [--workload SHAPE]
//             [--traffic-preset NAME]
//             [--vcpus N] [--format text|csv|json]
//             [--fault-targets IDS]
//             [--extra-fault NAME]... [--loss-prob P] [--gray-delay S]
//             [--throttle-bps BYTES] [--resilient] [--commit-timeout S]
//             [--chain-param KEY=VALUE]...
//             [--no-throttling] [--no-warmup-epochs] [--max-idle S]
//             [--chaos N] [--shrink]
//             [--hedge] [--hedge-percentile P] [--hedge-min S]
//             [--hedge-max S] [--endpoint-scoring]
//             [--trace FILE] [--metrics FILE]
//   stabl_cli --scenario FILE [--format FMT] [--dump-scenario]
//   stabl_cli [flags...] --dump-scenario
//   stabl_cli --mitigation-study [--chain NAME] [--fault NAME] [--chaos N]
//             [--seeds N] [--jobs N] [--format FMT]
//   stabl_cli --attribution [--chain NAME] [--fault NAME] [--jobs N]
//             [--heartbeat] [--trace FILE] [--format FMT]
//   stabl_cli --list-faults | --list-chains | --list-workloads
//
// Every flag combination is internally a core::ScenarioSpec — a
// declarative JSON description of the run. --dump-scenario prints that
// spec instead of running it; --scenario FILE loads a spec (e.g. one of
// examples/scenarios/*.json) and runs it, reproducing the byte-identical
// report of the equivalent flag invocation. --chain-param overrides a
// registered per-chain tunable by name (see `--help` or the chain's
// ChainTraits::default_params).
//
// --seeds N sweeps N consecutive seeds starting at --seed and reports the
// per-seed scores plus mean/min/max/stddev aggregates; --jobs N fans the
// (seed) grid across N threads (output is identical for any jobs value).
//
// --chaos N runs N randomized multi-plan fault schedules against --chain
// and audits each run with the invariant oracles; --shrink delta-debugs
// every violating schedule to a minimal JSON repro. Deterministic in
// (--chain, --seed) for any --jobs value.
//
// --mitigation-study runs every (chain, fault, seed) cell TWICE — once
// as-configured and once with the mitigation stack (nversion_<chain>
// meta-chain + hedged submissions + endpoint scoring) — over the same
// seeds and fault schedules, and reports the paired sensitivity deltas.
// --chain/--fault narrow the grid; --chaos N adds N adversarial chaos
// schedule pairs per chain. Byte-identical output for any --jobs value.
//
// --attribution runs every (chain, fault) cell as a paired twin with a
// transaction-lifecycle recorder attached to both runs and reports WHERE
// the latency degradation comes from: per-stage (submit, admission,
// queueing, consensus, notify) latency deltas that sum to the cell's
// measured commit-latency delta, the loss breakdown by deepest stage
// reached, and the dominant stage. --chain/--fault narrow the grid;
// --trace FILE additionally re-runs the first cell's faulted twin with a
// TraceSink and writes its timeline (the report itself is byte-identical
// with or without it). --heartbeat prints wall-clock progress to stderr.
//
// --trace FILE records the faulted run's sim-time timeline as Chrome /
// Perfetto trace_event JSON (open at ui.perfetto.dev). In chaos mode the
// file name is a base: each violating trial's minimized repro timeline is
// written to FILE.chaos_<chain>_trialK_seedS_planH.trace.json — the
// experiment seed and a hash of the minimized schedule keep sidecars from
// different campaigns distinct. --metrics FILE samples the runtime
// metrics registry each sim-second into CSV (when FILE ends in .csv) or
// JSON. Tracing is observe-only: reports are byte-identical with it on or
// off.
//
// Examples:
//   stabl_cli --chain solana --fault transient
//   stabl_cli --scenario examples/scenarios/fig3a_redbelly.json
//   stabl_cli --chain redbelly --fault partition --max-idle 30 --format json
//   stabl_cli --chain avalanche --chain-param cpu_target=0.8 --fault churn
//   stabl_cli --chain aptos --chaos 10 --shrink --duration 120 --jobs 4
//   # Fault engine v2: packet loss composed on top of the partition, with
//   # resilient (timeout + failover + backoff) clients:
//   stabl_cli --chain redbelly --fault partition --extra-fault loss
//             --loss-prob 0.3 --resilient          (one line in the shell)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "cli_common.hpp"
#include "core/attribution.hpp"
#include "core/campaign.hpp"
#include "core/chaos.hpp"
#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "core/serialize.hpp"
#include "core/trace.hpp"
#include "core/traffic.hpp"
#include "sim/trace.hpp"

namespace {

using namespace stabl;

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(
      out,
      "usage: %s [options]\n"
      "       %s --scenario FILE [--format FMT] [--dump-scenario]\n"
      "       %s --mitigation-study [--chain NAME] [--fault NAME]\n"
      "                             [--chaos N] [--seeds N] [--jobs N]\n"
      "       %s --attribution [--chain NAME] [--fault NAME] [--jobs N]\n"
      "                        [--heartbeat] [--trace FILE]\n"
      "       %s --list-faults | --list-chains | --list-workloads\n"
      "\n"
      "Run one STABL experiment pair (baseline vs faulted) and report the\n"
      "sensitivity score; sweep seeds; or run a randomized chaos campaign.\n"
      "\n"
      "scenarios:\n"
      "  --scenario FILE     load a declarative scenario (JSON; see\n"
      "                      examples/scenarios/) instead of experiment\n"
      "                      flags; reproduces the byte-identical report\n"
      "                      of the equivalent flag invocation\n"
      "  --dump-scenario     print the scenario JSON this invocation\n"
      "                      resolves to and exit (check it in, replay it\n"
      "                      with --scenario)\n"
      "\n"
      "experiment selection:\n"
      "  --chain NAME        registered chain, case-insensitive\n"
      "                      (%s; default redbelly)\n"
      "  --fault NAME        none|crash|transient|partition|secure-client|\n"
      "                      delay|churn|loss|throttle|gray|equivocate|\n"
      "                      withhold|eclipse (default none; see\n"
      "                      --list-faults for one-line descriptions)\n"
      "  --duration S        simulated seconds, >= 30 (default 400)\n"
      "  --seed N            root RNG seed (default 42)\n"
      "  --fault-targets IDS comma-separated node ids to fault, e.g. 0,1\n"
      "  --extra-fault NAME  compose another fault plan on the primary\n"
      "                      window (repeatable)\n"
      "\n"
      "sweeps and parallelism:\n"
      "  --seeds N           sweep N consecutive seeds starting at --seed\n"
      "                      and report per-seed scores plus aggregates\n"
      "  --jobs N            worker threads for the seed grid or chaos\n"
      "                      trials; output is identical for any value\n"
      "\n"
      "chaos mode:\n"
      "  --chaos N           run N randomized multi-plan fault schedules\n"
      "                      against --chain, audited by the invariant\n"
      "                      oracles; exit 1 when any oracle fires\n"
      "  --shrink            delta-debug every violating schedule to a\n"
      "                      minimal replayable JSON repro\n"
      "  --chaos-adversarial sample the adversarial plan space too\n"
      "                      (equivocate, withhold, eclipse schedules)\n"
      "\n"
      "mitigation study:\n"
      "  --mitigation-study  run every (chain, fault, seed) cell paired —\n"
      "                      unmitigated vs the mitigation stack (nversion\n"
      "                      meta-chain + hedging + endpoint scoring) over\n"
      "                      the same seeds and schedules — and report the\n"
      "                      sensitivity deltas; --chain/--fault narrow the\n"
      "                      grid, --chaos N adds N adversarial schedule\n"
      "                      pairs per chain\n"
      "\n"
      "sensitivity attribution:\n"
      "  --attribution       run every (chain, fault) cell paired with a\n"
      "                      transaction-lifecycle recorder on both twins\n"
      "                      and report per-stage latency deltas (submit,\n"
      "                      admission, queueing, consensus, notify), loss\n"
      "                      by deepest stage reached, and the dominant\n"
      "                      stage; --chain/--fault narrow the grid\n"
      "  --heartbeat         wall-clock campaign progress (done/total,\n"
      "                      cells/s, ETA) on stderr; never part of the\n"
      "                      deterministic report output\n"
      "\n"
      "observability:\n"
      "  --trace FILE        write the faulted run's sim-time timeline as\n"
      "                      Perfetto trace_event JSON (ui.perfetto.dev);\n"
      "                      in chaos mode, write each violating trial's\n"
      "                      minimized repro timeline to\n"
      "                      FILE.chaos_<chain>_trialK_seedS_planH.trace\n"
      "                      .json (seed + plan hash keep repros distinct)\n"
      "  --metrics FILE      sample runtime metrics (mempool depth,\n"
      "                      in-flight msgs, breaker state, ...) each sim\n"
      "                      second; CSV when FILE ends in .csv, else JSON\n"
      "\n"
      "workload and client knobs:\n"
      "  --fanout K          endpoints each transaction is sent to\n"
      "  --matching K        client request-matching degree\n"
      "  --workload SHAPE    arrival shape (default constant; see\n"
      "                      --list-workloads for the full set)\n"
      "  --traffic-preset N  named production traffic model — population,\n"
      "                      contention, regions and shape in one knob\n"
      "                      (exchange_burst|nft_mint|dex_sustained; see\n"
      "                      --list-workloads); equivalent to a scenario\n"
      "                      file with {\"traffic\": {\"preset\": N}}\n"
      "  --vcpus N           per-node vCPUs (default 4)\n"
      "  --resilient         timeout + failover + backoff clients\n"
      "  --commit-timeout S  resilient-client commit timeout, seconds\n"
      "  --hedge             hedged submissions: arm a second endpoint\n"
      "                      after the observed latency percentile instead\n"
      "                      of waiting out the commit timeout (needs\n"
      "                      --resilient)\n"
      "  --hedge-percentile P  hedge-delay latency percentile, (0, 1]\n"
      "                      (default 0.95)\n"
      "  --hedge-min S       hedge-delay clamp floor, seconds (default .25)\n"
      "  --hedge-max S       hedge-delay clamp ceiling, seconds (default 8)\n"
      "  --endpoint-scoring  EWMA latency/failure scoring steers failover\n"
      "                      and hedge endpoint choice (needs --resilient)\n"
      "\n"
      "fault knobs:\n"
      "  --loss-prob P       packet-loss probability for loss plans\n"
      "  --gray-delay S      gray-failure added latency, seconds\n"
      "  --throttle-bps B    throttle bandwidth, bytes per second\n"
      "  --eclipse-victim N  node whose view eclipse attackers intercept\n"
      "  --eclipse-delay S   eclipse interception delay, seconds\n"
      "  --eclipse-filter P  eclipse per-packet drop probability, [0, 1)\n"
      "\n"
      "chain tuning:\n"
      "  --chain-param K=V   override a registered chain parameter by\n"
      "                      name (repeatable; unknown keys are errors)\n"
      "  --no-throttling     disable Avalanche message throttling\n"
      "  --no-warmup-epochs  disable Solana warmup epochs\n"
      "  --max-idle S        Redbelly max idle seconds\n"
      "\n"
      "output:\n"
      "  --format FMT        text|csv|json (default text)\n"
      "  --list-faults       list every fault type with a one-line\n"
      "                      description and exit 0\n"
      "  --list-chains       list every registered chain with its tier,\n"
      "                      description and (for meta-chains) the base\n"
      "                      chain it wraps, and exit 0\n"
      "  --list-workloads    list every arrival shape and traffic preset\n"
      "                      with a one-line description and exit 0\n"
      "  --help              print this help and exit 0\n",
      argv0, argv0, argv0, argv0, argv0,
      core::chain_registry().names_csv().c_str());
}

// --list-faults: every FaultType in enum order with its one-line
// description. Registry-free, so listing works even for a misconfigured
// build.
void print_fault_list() {
  for (const core::FaultType type : core::kAllFaultTypes) {
    std::printf("%-14s %s\n", core::to_string(type).c_str(),
                core::fault_description(type).c_str());
  }
}

// --list-chains: every registered chain in registry (tier, name) order.
// Linked extension plugins (refbft, the nversion_* meta-chains) show up
// here automatically; meta-chains carry a "[wraps <base>]" marker.
void print_chain_list() {
  const chain::Registry& registry = core::chain_registry();
  for (const chain::ChainId id : registry.ids()) {
    const chain::ChainTraits& traits = core::chain_traits(core::chain_kind(id));
    const std::string wraps =
        traits.meta_of.empty() ? "" : "  [wraps " + traits.meta_of + "]";
    std::printf("%-18s tier %d  %s%s\n", traits.name.c_str(), traits.tier,
                traits.description.c_str(), wraps.c_str());
  }
}

// --list-workloads: every arrival shape, then every named traffic preset,
// each with a one-line description. Same registry the scenario parser and
// --workload/--traffic-preset validation cite in their error listings.
void print_workload_list() {
  std::printf("arrival shapes (--workload, traffic.shape):\n");
  for (const std::string& name : core::workload_shape_names()) {
    std::printf("  %-14s %s\n", name.c_str(),
                core::workload_shape_description(name).c_str());
  }
  std::printf("traffic presets (--traffic-preset, traffic.preset):\n");
  for (const std::string& name : core::traffic_preset_names()) {
    std::printf("  %-14s %s\n", name.c_str(),
                core::traffic_preset_description(name).c_str());
  }
}

[[noreturn]] void fail_usage(const char* argv0, const std::string& message) {
  cli::fail(argv0, message, cli::help_hint(argv0));
}

}  // namespace

int main(int argc, char** argv) {
  core::ScenarioSpec spec;
  std::string format = "text";
  std::string scenario_path;
  bool dump_scenario = false;
  bool mitigation_study = false;
  bool attribution = false;
  bool heartbeat = false;
  // --mitigation-study defaults to the full (5 chains x 2 faults) grid;
  // explicit --chain/--fault narrow it to the named cell row/column.
  bool chain_set = false;
  bool fault_set = false;
  // Whether any flag configured the experiment itself (everything except
  // --format / --dump-scenario / --help); such flags cannot be combined
  // with --scenario, which is the complete description of a run.
  bool experiment_flags = false;
  // Legacy tuning flags. They are mapped onto registry parameter keys
  // once the chain is known, and silently skipped when the chain does not
  // declare the key — exactly the old ChainTuning semantics (a Solana
  // knob on a Redbelly run was always ignored).
  std::optional<bool> flag_no_throttling;
  std::optional<bool> flag_no_warmup_epochs;
  std::optional<double> flag_max_idle_s;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) fail_usage(argv[0], arg + " needs a value");
      return argv[++i];
    };
    auto experiment_flag = [&experiment_flags] { experiment_flags = true; };
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout, argv[0]);
      return 0;
    } else if (arg == "--list-faults") {
      print_fault_list();
      return 0;
    } else if (arg == "--list-chains") {
      print_chain_list();
      return 0;
    } else if (arg == "--list-workloads") {
      print_workload_list();
      return 0;
    } else if (arg == "--scenario") {
      scenario_path = value();
      if (scenario_path.empty()) {
        fail_usage(argv[0], "--scenario needs a file name");
      }
    } else if (arg == "--dump-scenario") {
      dump_scenario = true;
    } else if (arg == "--chain") {
      experiment_flag();
      chain_set = true;
      spec.chain = core::to_string(
          cli::parse_chain_or_exit(value(), argv[0], cli::help_hint(argv[0])));
    } else if (arg == "--fault") {
      experiment_flag();
      fault_set = true;
      spec.fault = core::to_string(
          cli::parse_fault_or_exit(value(), argv[0], cli::help_hint(argv[0])));
    } else if (arg == "--duration") {
      experiment_flag();
      spec.duration_s = std::atol(value().c_str());
      if (spec.duration_s < 30) {
        fail_usage(argv[0], "--duration must be >= 30");
      }
    } else if (arg == "--seed") {
      experiment_flag();
      spec.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--seeds") {
      experiment_flag();
      spec.num_seeds = std::atol(value().c_str());
      if (spec.num_seeds < 1) fail_usage(argv[0], "--seeds must be >= 1");
    } else if (arg == "--jobs") {
      experiment_flag();
      spec.jobs = std::atol(value().c_str());
      if (spec.jobs < 1) fail_usage(argv[0], "--jobs must be >= 1");
    } else if (arg == "--fanout") {
      experiment_flag();
      spec.fanout = std::atoi(value().c_str());
    } else if (arg == "--matching") {
      experiment_flag();
      spec.matching = std::atoi(value().c_str());
    } else if (arg == "--vcpus") {
      experiment_flag();
      spec.vcpus = std::atof(value().c_str());
    } else if (arg == "--workload") {
      experiment_flag();
      spec.workload = value();
      try {
        (void)core::parse_workload_shape(spec.workload);
      } catch (const std::invalid_argument& error) {
        fail_usage(argv[0], error.what());  // lists the valid shapes
      }
    } else if (arg == "--traffic-preset") {
      experiment_flag();
      spec.has_traffic = true;
      spec.traffic.preset = value();
      try {
        (void)core::traffic_preset(spec.traffic.preset);
      } catch (const std::invalid_argument& error) {
        fail_usage(argv[0], error.what());  // lists the valid presets
      }
    } else if (arg == "--format") {
      format = value();
      if (format != "text" && format != "csv" && format != "json") {
        fail_usage(argv[0], "unknown format '" + format + "'");
      }
    } else if (arg == "--fault-targets") {
      experiment_flag();
      spec.fault_targets = cli::parse_node_ids_or_exit(
          value(), argv[0], "--fault-targets", cli::help_hint(argv[0]));
    } else if (arg == "--extra-fault") {
      experiment_flag();
      spec.extra_faults.push_back(core::to_string(
          cli::parse_fault_or_exit(value(), argv[0], cli::help_hint(argv[0]))));
    } else if (arg == "--loss-prob") {
      experiment_flag();
      spec.loss_probability = std::atof(value().c_str());
    } else if (arg == "--gray-delay") {
      experiment_flag();
      spec.gray_delay_s = std::atof(value().c_str());
    } else if (arg == "--throttle-bps") {
      experiment_flag();
      spec.throttle_bytes_per_s = std::atof(value().c_str());
    } else if (arg == "--eclipse-victim") {
      experiment_flag();
      spec.eclipse_victim = std::atol(value().c_str());
    } else if (arg == "--eclipse-delay") {
      experiment_flag();
      spec.eclipse_delay_s = std::atof(value().c_str());
    } else if (arg == "--eclipse-filter") {
      experiment_flag();
      spec.eclipse_filter = std::atof(value().c_str());
    } else if (arg == "--resilient") {
      experiment_flag();
      spec.resilient = true;
    } else if (arg == "--commit-timeout") {
      experiment_flag();
      spec.commit_timeout_s = std::atof(value().c_str());
    } else if (arg == "--hedge") {
      experiment_flag();
      spec.hedge = true;
    } else if (arg == "--hedge-percentile") {
      experiment_flag();
      spec.hedge_percentile = std::atof(value().c_str());
    } else if (arg == "--hedge-min") {
      experiment_flag();
      spec.hedge_min_delay_s = std::atof(value().c_str());
    } else if (arg == "--hedge-max") {
      experiment_flag();
      spec.hedge_max_delay_s = std::atof(value().c_str());
    } else if (arg == "--endpoint-scoring") {
      experiment_flag();
      spec.endpoint_scoring = true;
    } else if (arg == "--mitigation-study") {
      experiment_flag();
      mitigation_study = true;
    } else if (arg == "--attribution") {
      experiment_flag();
      attribution = true;
    } else if (arg == "--heartbeat") {
      heartbeat = true;
    } else if (arg == "--chain-param") {
      experiment_flag();
      const std::string assignment = value();
      const std::size_t eq = assignment.find('=');
      if (eq == std::string::npos || eq == 0) {
        fail_usage(argv[0], "--chain-param expects KEY=VALUE");
      }
      spec.chain_params[assignment.substr(0, eq)] =
          std::atof(assignment.c_str() + eq + 1);
    } else if (arg == "--no-throttling") {
      experiment_flag();
      flag_no_throttling = true;
    } else if (arg == "--no-warmup-epochs") {
      experiment_flag();
      flag_no_warmup_epochs = true;
    } else if (arg == "--max-idle") {
      experiment_flag();
      flag_max_idle_s = std::atof(value().c_str());
    } else if (arg == "--chaos") {
      experiment_flag();
      spec.chaos_trials = std::atol(value().c_str());
      if (spec.chaos_trials < 1) {
        fail_usage(argv[0], "--chaos must be >= 1");
      }
    } else if (arg == "--shrink") {
      experiment_flag();
      spec.shrink = true;
    } else if (arg == "--chaos-adversarial") {
      experiment_flag();
      spec.chaos_adversarial = true;
    } else if (arg == "--trace") {
      experiment_flag();
      spec.trace = value();
      if (spec.trace.empty()) {
        fail_usage(argv[0], "--trace needs a file name");
      }
    } else if (arg == "--metrics") {
      experiment_flag();
      spec.metrics = value();
      if (spec.metrics.empty()) {
        fail_usage(argv[0], "--metrics needs a file name");
      }
    } else {
      fail_usage(argv[0], "unknown flag '" + arg + "'");
    }
  }

  if (!scenario_path.empty()) {
    if (experiment_flags) {
      fail_usage(argv[0],
                 "--scenario is a complete run description; combine it "
                 "only with --format and --dump-scenario");
    }
    std::ifstream file(scenario_path);
    if (!file) {
      std::fprintf(stderr, "%s: cannot read %s\n", argv[0],
                   scenario_path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    try {
      spec = core::scenario_from_json(buffer.str());
    } catch (const std::invalid_argument& error) {
      fail_usage(argv[0], scenario_path + ": " + error.what());
    }
  } else {
    // Map the legacy tuning flags onto the chain's registered parameters.
    const chain::ChainTraits* traits =
        core::chain_registry().find(spec.chain);
    const auto set_param = [&](const char* key, double param_value) {
      if (traits != nullptr &&
          traits->default_params.find(key) != traits->default_params.end()) {
        spec.chain_params[key] = param_value;
      }
    };
    if (flag_no_throttling.has_value()) set_param("throttling", 0.0);
    if (flag_no_warmup_epochs.has_value()) set_param("warmup_epochs", 0.0);
    if (flag_max_idle_s.has_value()) set_param("max_idle_s", *flag_max_idle_s);
  }

  if (dump_scenario) {
    std::printf("%s\n", core::scenario_to_json(spec).c_str());
    return 0;
  }

  core::ResolvedScenario resolved;
  try {
    resolved = core::resolve_scenario(spec);
  } catch (const std::invalid_argument& error) {
    fail_usage(argv[0], error.what());
  }
  core::ExperimentConfig config = resolved.config;
  const long duration_s = static_cast<long>(spec.duration_s);
  const std::string& trace_path = resolved.trace_path;
  const std::string& metrics_path = resolved.metrics_path;

  if (attribution) {
    if (mitigation_study) {
      fail_usage(argv[0],
                 "--attribution and --mitigation-study are separate "
                 "campaigns; pick one");
    }
    if (resolved.num_seeds > 1 || resolved.chaos_trials > 0) {
      fail_usage(argv[0],
                 "--attribution runs one seed per cell; it does not "
                 "combine with --seeds or --chaos");
    }
    if (!metrics_path.empty()) {
      fail_usage(argv[0],
                 "--metrics applies to single runs, not --attribution "
                 "campaigns");
    }
    // Paired attribution campaign: every (chain, fault) cell twice over
    // the same seed with a lifecycle recorder on both twins. --trace is
    // honored below by re-running the first cell's faulted twin with a
    // sink attached — the report itself never depends on it.
    core::AttributionConfig study;
    if (chain_set) study.chains = {config.chain};
    if (fault_set) study.faults = {config.fault};
    study.base = config;
    study.base.fault = core::FaultType::kNone;
    study.jobs = resolved.jobs;
    study.heartbeat = heartbeat;
    core::AttributionReport report;
    try {
      report = core::run_attribution(study);
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "%s: invalid fault plan: %s\n", argv[0],
                   error.what());
      return 2;
    }
    if (!trace_path.empty() && !report.cells.empty()) {
      core::ExperimentConfig traced = study.base;
      traced.chain = report.cells.front().chain;
      traced.fault = report.cells.front().fault;
      if (traced.fault == core::FaultType::kSecureClient) {
        traced.client_fanout = 4;
        traced.vcpus = 8.0;
      }
      sim::TraceSink sink;
      traced.trace = &sink;
      core::run_experiment(traced);
      cli::write_file_or_die(argv[0], trace_path,
                             core::trace_to_json(sink));
    }
    if (format == "json") {
      std::printf("%s\n", report.to_json().c_str());
    } else if (format == "csv") {
      std::printf("%s", report.to_csv().c_str());
    } else {
      std::printf("sensitivity attribution: per-stage latency deltas, "
                  "faulted vs fault-free twin\n");
      std::printf("%s", report.to_table().c_str());
      // The radar view: each cell's headline delta and dominant stage.
      core::RadarSummary radar;
      const auto& names = sim::stage_segment_names();
      for (const core::AttributionCell& cell : report.cells) {
        core::RadarAttributionCell summary;
        summary.latency_delta_s = cell.measured_latency_delta_s;
        summary.dominant_stage = names[cell.dominant_segment()];
        summary.dominant_share = cell.dominant_share();
        radar.record_attribution(cell.chain, cell.fault, summary);
      }
      std::printf("\ndominant-stage radar:\n%s",
                  radar.attribution_table().c_str());
      if (!trace_path.empty() && !report.cells.empty()) {
        std::printf("trace: %s (first cell's faulted twin; open at "
                    "ui.perfetto.dev)\n",
                    trace_path.c_str());
      }
    }
    return 0;
  }

  if (mitigation_study) {
    if (!trace_path.empty() || !metrics_path.empty()) {
      fail_usage(argv[0],
                 "--trace/--metrics apply to single runs, not "
                 "--mitigation-study campaigns");
    }
    // Paired mitigation campaign: every cell twice over the same seed and
    // schedule — as-configured vs the full mitigation stack. --chaos N is
    // reinterpreted as N adversarial chaos schedule pairs per chain.
    core::MitigationConfig study;
    if (chain_set) study.chains = {config.chain};
    if (fault_set) study.faults = {config.fault};
    study.base = config;
    study.base.fault = core::FaultType::kNone;
    study.num_seeds = resolved.num_seeds;
    study.jobs = resolved.jobs;
    study.chaos_pairs = resolved.chaos_trials;
    study.heartbeat = heartbeat;
    core::MitigationResult result;
    try {
      result = core::run_mitigation_campaign(study);
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "%s: invalid fault plan: %s\n", argv[0],
                   error.what());
      return 2;
    }
    if (format == "json") {
      std::printf("%s\n", result.to_json().c_str());
    } else if (format == "csv") {
      std::printf("%s", result.delta_csv().c_str());
    } else {
      std::printf("mitigation study: nversion + hedging + endpoint scoring "
                  "vs unmitigated\n");
      std::printf("%s", result.delta_table().c_str());
      std::printf("%zu/%zu pairs improved, %zu regressed\n",
                  result.improvements(), result.pairs.size(),
                  result.regressions());
    }
    return 0;
  }

  if (resolved.chaos_trials > 0) {
    if (!metrics_path.empty()) {
      fail_usage(argv[0],
                 "--metrics applies to single runs, not --chaos campaigns");
    }
    // Chaos path: randomized schedules + oracle audit on one chain. Every
    // violating trial carries a Perfetto timeline of its minimized repro;
    // --trace names the base file the timelines are written to.
    core::ChaosCampaignConfig chaos;
    chaos.chains = {config.chain};
    chaos.trials_per_chain = resolved.chaos_trials;
    chaos.seed = config.seed;
    chaos.base = config;
    chaos.base.fault = core::FaultType::kNone;
    if (resolved.chaos_adversarial) {
      chaos.gen = core::adversarial_gen_for(chaos.base.duration);
    }
    chaos.shrink = resolved.shrink;
    chaos.trace_repros = !trace_path.empty();
    chaos.jobs = resolved.jobs;
    chaos.heartbeat = heartbeat;
    const core::ChaosCampaignResult result = core::run_chaos_campaign(chaos);
    for (const core::ChaosTrial& trial : result.trials) {
      if (trial.repro_trace.empty()) continue;
      // Seed + plan-hash suffix: several violations of the same chain (or
      // reruns with other seeds) never overwrite each other's sidecars.
      const core::FaultSchedule& repro = trial.shrunk.has_value()
                                             ? trial.shrunk->schedule
                                             : trial.schedule;
      const std::string sidecar =
          trace_path + "." +
          cli::chaos_repro_stem(core::to_string(trial.chain), trial.trial,
                                trial.experiment_seed,
                                core::schedule_to_json(repro)) +
          ".trace.json";
      cli::write_file_or_die(argv[0], sidecar, trial.repro_trace);
      std::fprintf(stderr, "trace: %s\n", sidecar.c_str());
    }
    if (format == "json") {
      std::printf("%s\n", result.to_json().c_str());
    } else {
      std::printf("%s", result.summary_table().c_str());
      std::printf("%zu/%zu violations, %zu expected losses\n",
                  result.violations(), result.trials.size(),
                  result.expected_losses());
      for (const core::ChaosTrial& trial : result.trials) {
        if (trial.report.verdict == core::OracleVerdict::kPass) continue;
        std::printf("%s trial %zu: %s\n",
                    core::to_string(trial.chain).c_str(), trial.trial,
                    trial.report.summary().c_str());
        if (trial.shrunk.has_value()) {
          std::printf("  repro: %s\n",
                      core::schedule_to_json(trial.shrunk->schedule).c_str());
        }
      }
      std::printf("\nwall-clock profile:\n%s",
                  result.timing_table().c_str());
    }
    return result.violations() > 0 ? 1 : 0;
  }

  if (resolved.num_seeds > 1 || resolved.jobs > 1) {
    if (!trace_path.empty() || !metrics_path.empty()) {
      fail_usage(argv[0],
                 "--trace/--metrics apply to single runs; rerun the seed of "
                 "interest without --seeds/--jobs");
    }
    // Seed sweep / parallel path: run the single (chain, fault) cell as a
    // one-cell campaign so the sweep aggregation and the thread pool are
    // the same code CI uses. Output is identical for any --jobs value.
    core::CampaignConfig campaign;
    campaign.chains = {config.chain};
    campaign.faults = {config.fault};
    campaign.base = config;
    campaign.num_seeds = resolved.num_seeds;
    campaign.jobs = resolved.jobs;
    campaign.heartbeat = heartbeat;
    core::CampaignResult result;
    try {
      result = core::run_campaign(campaign);
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "%s: invalid fault plan: %s\n", argv[0],
                   error.what());
      return 2;
    }
    if (format == "json") {
      std::printf("%s\n", result.to_json().c_str());
      return 0;
    }
    if (format == "csv") {
      std::printf("%s", result.to_csv().c_str());
      return 0;
    }
    std::printf("%s under %s, %zu seeds starting at %llu\n",
                core::to_string(config.chain).c_str(),
                core::to_string(config.fault).c_str(), resolved.num_seeds,
                static_cast<unsigned long long>(config.seed));
    const auto& seed_runs =
        result.seed_runs.at({config.chain, config.fault});
    core::Table table({"seed", "score", "committed", "live", "recovery"});
    for (std::size_t i = 0; i < seed_runs.size(); ++i) {
      const core::SensitivityRun& run = seed_runs[i];
      table.add_row({std::to_string(result.seeds[i]),
                     core::format_score(run.score),
                     std::to_string(run.altered.committed),
                     run.altered.live_at_end ? "yes" : "NO",
                     core::Table::num(run.altered.recovery_seconds, 1)});
    }
    std::printf("%s", table.to_string().c_str());
    const core::SeedSweepStats* stats =
        result.sweep(config.chain, config.fault);
    std::printf(
        "sweep: mean %.2f  stddev %.2f  min %.2f  max %.2f  "
        "liveness losses %zu/%zu\n",
        stats->mean, stats->stddev, stats->min, stats->max,
        stats->liveness_losses, stats->seeds);
    std::printf("\nwall-clock profile:\n%s", result.timing_table().c_str());
    return 0;
  }

  sim::TraceSink trace_sink;
  core::MetricsRegistry metrics;
  if (!trace_path.empty()) config.trace = &trace_sink;
  if (!metrics_path.empty()) config.metrics = &metrics;

  core::SensitivityRun run;
  try {
    run = core::run_sensitivity(config);
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "%s: invalid fault plan: %s\n", argv[0],
                 error.what());
    return 2;
  }

  if (!trace_path.empty()) {
    cli::write_file_or_die(argv[0], trace_path,
                           core::trace_to_json(trace_sink));
  }
  if (!metrics_path.empty()) {
    cli::write_file_or_die(argv[0], metrics_path,
                           cli::ends_with(metrics_path, ".csv")
                               ? metrics.to_csv()
                               : metrics.to_json());
  }

  if (format == "json") {
    std::printf("%s\n", core::to_json(config.chain, config.fault, run).c_str());
    return 0;
  }
  if (format == "csv") {
    std::printf("%s\n%s\n", core::summary_csv_header().c_str(),
                core::summary_csv_row(config.chain, config.fault, run).c_str());
    return 0;
  }

  std::printf("%s under %s\n", core::to_string(config.chain).c_str(),
              core::to_string(config.fault).c_str());
  core::Table table({"metric", "baseline", "altered"});
  table.add_row({"committed", std::to_string(run.baseline.committed),
                 std::to_string(run.altered.committed)});
  table.add_row({"mean latency",
                 core::Table::num(run.baseline.mean_latency_s, 3) + "s",
                 core::Table::num(run.altered.mean_latency_s, 3) + "s"});
  table.add_row({"p99 latency",
                 core::Table::num(run.baseline.p99_latency_s, 3) + "s",
                 core::Table::num(run.altered.p99_latency_s, 3) + "s"});
  table.add_row({"live at end", run.baseline.live_at_end ? "yes" : "NO",
                 run.altered.live_at_end ? "yes" : "NO"});
  std::printf("%s", table.to_string().c_str());
  std::printf("sensitivity score: %s\n",
              core::format_score(run.score).c_str());
  if (config.resilience.enabled) {
    const core::ResilienceStats& rs = run.altered.resilience;
    std::printf(
        "resilient client: %ju resubmissions, %ju failovers, %ju recovered, "
        "%ju lost, %ju duplicate commits\n",
        static_cast<std::uintmax_t>(rs.resubmissions),
        static_cast<std::uintmax_t>(rs.failovers),
        static_cast<std::uintmax_t>(rs.recovered),
        static_cast<std::uintmax_t>(run.altered.submitted -
                                    run.altered.committed),
        static_cast<std::uintmax_t>(rs.duplicate_commits));
    if (config.resilience.hedge.enabled) {
      std::printf("hedging: %ju armed, %ju won, %ju cancelled\n",
                  static_cast<std::uintmax_t>(rs.hedges_armed),
                  static_cast<std::uintmax_t>(rs.hedges_won),
                  static_cast<std::uintmax_t>(rs.hedges_cancelled));
    }
  }
  if (run.altered.recovery_seconds >= 0) {
    std::printf("recovery: %.1fs after the fault cleared\n",
                run.altered.recovery_seconds);
  }
  if (!trace_path.empty()) {
    std::printf("trace: %s (%zu events; open at ui.perfetto.dev)\n",
                trace_path.c_str(), trace_sink.size());
  }
  if (!metrics_path.empty()) {
    std::printf("metrics: %s (%zu samples)\n", metrics_path.c_str(),
                metrics.sample_times().size());
  }
  std::printf("\naltered throughput:\n%s",
              core::render_timeseries(run.altered.throughput,
                                      static_cast<double>(duration_s / 40))
                  .c_str());
  return 0;
}
