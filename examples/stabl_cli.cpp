// stabl_cli — run a single STABL experiment pair from the command line and
// emit human-readable or machine-readable results. The driver a downstream
// user would wire into a CI pipeline.
//
// Usage:
//   stabl_cli [--chain NAME] [--fault NAME] [--duration S] [--seed N]
//             [--seeds N] [--jobs N]
//             [--fanout K] [--matching K] [--workload constant|bursty|ramp]
//             [--vcpus N] [--format text|csv|json]
//             [--fault-targets IDS]
//             [--extra-fault NAME]... [--loss-prob P] [--gray-delay S]
//             [--throttle-bps BYTES] [--resilient] [--commit-timeout S]
//             [--no-throttling] [--no-warmup-epochs] [--max-idle S]
//             [--chaos N] [--shrink]
//             [--trace FILE] [--metrics FILE]
//
// --seeds N sweeps N consecutive seeds starting at --seed and reports the
// per-seed scores plus mean/min/max/stddev aggregates; --jobs N fans the
// (seed) grid across N threads (output is identical for any jobs value).
//
// --chaos N runs N randomized multi-plan fault schedules against --chain
// and audits each run with the invariant oracles; --shrink delta-debugs
// every violating schedule to a minimal JSON repro. Deterministic in
// (--chain, --seed) for any --jobs value.
//
// --trace FILE records the faulted run's sim-time timeline as Chrome /
// Perfetto trace_event JSON (open at ui.perfetto.dev). In chaos mode the
// file name is a base: each violating trial's minimized repro timeline is
// written to FILE.<chain>.trialK.json. --metrics FILE samples the runtime
// metrics registry each sim-second into CSV (when FILE ends in .csv) or
// JSON. Tracing is observe-only: reports are byte-identical with it on or
// off.
//
// Examples:
//   stabl_cli --chain solana --fault transient
//   stabl_cli --chain redbelly --fault partition --max-idle 30 --format json
//   stabl_cli --chain aptos --chaos 10 --shrink --duration 120 --jobs 4
//   stabl_cli --chain avalanche --fault churn --trace churn.trace.json
//   # Fault engine v2: packet loss composed on top of the partition, with
//   # resilient (timeout + failover + backoff) clients:
//   stabl_cli --chain redbelly --fault partition --extra-fault loss
//             --loss-prob 0.3 --resilient          (one line in the shell)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "core/campaign.hpp"
#include "core/chaos.hpp"
#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "core/report.hpp"
#include "core/serialize.hpp"
#include "core/trace.hpp"
#include "sim/trace.hpp"

namespace {

using namespace stabl;

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(
      out,
      "usage: %s [options]\n"
      "\n"
      "Run one STABL experiment pair (baseline vs faulted) and report the\n"
      "sensitivity score; sweep seeds; or run a randomized chaos campaign.\n"
      "\n"
      "experiment selection:\n"
      "  --chain NAME        algorand|aptos|avalanche|redbelly|solana\n"
      "                      (default redbelly)\n"
      "  --fault NAME        none|crash|transient|partition|secure-client|\n"
      "                      delay|churn|loss|throttle|gray (default none)\n"
      "  --duration S        simulated seconds, >= 30 (default 400)\n"
      "  --seed N            root RNG seed (default 42)\n"
      "  --fault-targets IDS comma-separated node ids to fault, e.g. 0,1\n"
      "  --extra-fault NAME  compose another fault plan on the primary\n"
      "                      window (repeatable)\n"
      "\n"
      "sweeps and parallelism:\n"
      "  --seeds N           sweep N consecutive seeds starting at --seed\n"
      "                      and report per-seed scores plus aggregates\n"
      "  --jobs N            worker threads for the seed grid or chaos\n"
      "                      trials; output is identical for any value\n"
      "\n"
      "chaos mode:\n"
      "  --chaos N           run N randomized multi-plan fault schedules\n"
      "                      against --chain, audited by the invariant\n"
      "                      oracles; exit 1 when any oracle fires\n"
      "  --shrink            delta-debug every violating schedule to a\n"
      "                      minimal replayable JSON repro\n"
      "\n"
      "observability:\n"
      "  --trace FILE        write the faulted run's sim-time timeline as\n"
      "                      Perfetto trace_event JSON (ui.perfetto.dev);\n"
      "                      in chaos mode, write each violating trial's\n"
      "                      minimized repro timeline to\n"
      "                      FILE.<chain>.trialK.json\n"
      "  --metrics FILE      sample runtime metrics (mempool depth,\n"
      "                      in-flight msgs, breaker state, ...) each sim\n"
      "                      second; CSV when FILE ends in .csv, else JSON\n"
      "\n"
      "workload and client knobs:\n"
      "  --fanout K          endpoints each transaction is sent to\n"
      "  --matching K        client request-matching degree\n"
      "  --workload SHAPE    constant|bursty|ramp (default constant)\n"
      "  --vcpus N           per-node vCPUs (default 4)\n"
      "  --resilient         timeout + failover + backoff clients\n"
      "  --commit-timeout S  resilient-client commit timeout, seconds\n"
      "\n"
      "fault knobs:\n"
      "  --loss-prob P       packet-loss probability for loss plans\n"
      "  --gray-delay S      gray-failure added latency, seconds\n"
      "  --throttle-bps B    throttle bandwidth, bytes per second\n"
      "\n"
      "chain tuning:\n"
      "  --no-throttling     disable Avalanche message throttling\n"
      "  --no-warmup-epochs  disable Solana warmup epochs\n"
      "  --max-idle S        Redbelly max idle seconds\n"
      "\n"
      "output:\n"
      "  --format FMT        text|csv|json (default text)\n"
      "  --help              print this help and exit 0\n",
      argv0);
}

[[noreturn]] void fail_usage(const char* argv0, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", argv0, message.c_str());
  std::fprintf(stderr, "run '%s --help' for the full flag list\n", argv0);
  std::exit(2);
}

core::ChainKind parse_chain(const std::string& name, const char* argv0) {
  for (const core::ChainKind chain : core::kAllChains) {
    if (core::to_string(chain) == name) return chain;
  }
  fail_usage(argv0, "unknown chain '" + name + "'");
}

core::FaultType parse_fault(const std::string& name, const char* argv0) {
  for (const core::FaultType fault :
       {core::FaultType::kNone, core::FaultType::kCrash,
        core::FaultType::kTransient, core::FaultType::kPartition,
        core::FaultType::kSecureClient, core::FaultType::kDelay,
        core::FaultType::kChurn, core::FaultType::kLoss,
        core::FaultType::kThrottle, core::FaultType::kGray}) {
    if (core::to_string(fault) == name) return fault;
  }
  fail_usage(argv0, "unknown fault '" + name + "'");
}

/// Writes `body` to `path`, exiting 1 on I/O failure. The harness's output
/// files are small (traces a few MB at most), so one buffered fwrite is
/// fine.
void write_file_or_die(const char* argv0, const std::string& path,
                       const std::string& body) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "%s: cannot open %s for writing\n", argv0,
                 path.c_str());
    std::exit(1);
  }
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), out);
  if (std::fclose(out) != 0 || written != body.size()) {
    std::fprintf(stderr, "%s: short write to %s\n", argv0, path.c_str());
    std::exit(1);
  }
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentConfig config;
  std::string format = "text";
  std::string trace_path;
  std::string metrics_path;
  long duration_s = 400;
  long num_seeds = 1;
  long jobs = 1;
  long chaos_trials = 0;
  bool chaos_shrink = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) fail_usage(argv[0], arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout, argv[0]);
      return 0;
    } else if (arg == "--chain") {
      config.chain = parse_chain(value(), argv[0]);
    } else if (arg == "--fault") {
      config.fault = parse_fault(value(), argv[0]);
    } else if (arg == "--duration") {
      duration_s = std::atol(value().c_str());
      if (duration_s < 30) fail_usage(argv[0], "--duration must be >= 30");
    } else if (arg == "--seed") {
      config.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--seeds") {
      num_seeds = std::atol(value().c_str());
      if (num_seeds < 1) fail_usage(argv[0], "--seeds must be >= 1");
    } else if (arg == "--jobs") {
      jobs = std::atol(value().c_str());
      if (jobs < 1) fail_usage(argv[0], "--jobs must be >= 1");
    } else if (arg == "--fanout") {
      config.client_fanout = std::atoi(value().c_str());
    } else if (arg == "--matching") {
      config.client_matching =
          static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (arg == "--vcpus") {
      config.vcpus = std::atof(value().c_str());
    } else if (arg == "--workload") {
      const std::string shape = value();
      if (shape == "bursty") {
        config.workload.shape = core::WorkloadShape::kBursty;
      } else if (shape == "ramp") {
        config.workload.shape = core::WorkloadShape::kRamp;
      } else if (shape != "constant") {
        fail_usage(argv[0], "unknown workload '" + shape + "'");
      }
    } else if (arg == "--format") {
      format = value();
      if (format != "text" && format != "csv" && format != "json") {
        fail_usage(argv[0], "unknown format '" + format + "'");
      }
    } else if (arg == "--fault-targets") {
      // Comma-separated node ids, e.g. "0,1" to fault entry nodes.
      const std::string list = value();
      config.fault_targets.clear();
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        const std::string token =
            list.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        if (token.empty()) {
          fail_usage(argv[0], "--fault-targets has an empty id");
        }
        config.fault_targets.push_back(
            static_cast<net::NodeId>(std::strtoul(token.c_str(), nullptr, 10)));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (config.fault_targets.empty()) {
        fail_usage(argv[0], "--fault-targets needs at least one id");
      }
    } else if (arg == "--extra-fault") {
      core::FaultPlan plan;
      plan.type = parse_fault(value(), argv[0]);
      config.extra_faults.add(plan);  // window/targets default in the runner
    } else if (arg == "--loss-prob") {
      config.loss_probability = std::atof(value().c_str());
    } else if (arg == "--gray-delay") {
      config.gray_latency = sim::seconds(std::atof(value().c_str()));
    } else if (arg == "--throttle-bps") {
      config.throttle_bytes_per_s = std::atof(value().c_str());
    } else if (arg == "--resilient") {
      config.resilience.enabled = true;
    } else if (arg == "--commit-timeout") {
      config.resilience.retry.commit_timeout =
          sim::seconds(std::atof(value().c_str()));
    } else if (arg == "--no-throttling") {
      config.tuning.avalanche_throttling = false;
    } else if (arg == "--no-warmup-epochs") {
      config.tuning.solana_warmup_epochs = false;
    } else if (arg == "--max-idle") {
      config.tuning.redbelly_max_idle_s = std::atof(value().c_str());
    } else if (arg == "--chaos") {
      chaos_trials = std::atol(value().c_str());
      if (chaos_trials < 1) fail_usage(argv[0], "--chaos must be >= 1");
    } else if (arg == "--shrink") {
      chaos_shrink = true;
    } else if (arg == "--trace") {
      trace_path = value();
      if (trace_path.empty()) fail_usage(argv[0], "--trace needs a file name");
    } else if (arg == "--metrics") {
      metrics_path = value();
      if (metrics_path.empty()) {
        fail_usage(argv[0], "--metrics needs a file name");
      }
    } else {
      fail_usage(argv[0], "unknown flag '" + arg + "'");
    }
  }

  config.duration = sim::sec(duration_s);
  config.inject_at = sim::sec(duration_s / 3);
  config.recover_at = sim::sec(2 * duration_s / 3);
  // Composed plans share the primary fault window and knob values; the
  // runner fills in their default targets.
  for (core::FaultPlan& plan : config.extra_faults.plans) {
    plan.inject_at = config.inject_at;
    plan.recover_at = config.recover_at;
    plan.loss_probability = config.loss_probability;
    plan.throttle_bytes_per_s = config.throttle_bytes_per_s;
    plan.gray_latency = config.gray_latency;
  }
  if (config.fault == core::FaultType::kSecureClient &&
      config.client_fanout == 1) {
    config.client_fanout = 4;
    config.vcpus = 8.0;
  }

  if (chaos_trials > 0) {
    if (!metrics_path.empty()) {
      fail_usage(argv[0],
                 "--metrics applies to single runs, not --chaos campaigns");
    }
    // Chaos path: randomized schedules + oracle audit on one chain. Every
    // violating trial carries a Perfetto timeline of its minimized repro;
    // --trace names the base file the timelines are written to.
    core::ChaosCampaignConfig chaos;
    chaos.chains = {config.chain};
    chaos.trials_per_chain = static_cast<std::size_t>(chaos_trials);
    chaos.seed = config.seed;
    chaos.base = config;
    chaos.base.fault = core::FaultType::kNone;
    chaos.shrink = chaos_shrink;
    chaos.trace_repros = !trace_path.empty();
    chaos.jobs = static_cast<unsigned>(jobs);
    const core::ChaosCampaignResult result = core::run_chaos_campaign(chaos);
    for (const core::ChaosTrial& trial : result.trials) {
      if (trial.repro_trace.empty()) continue;
      write_file_or_die(argv[0], trace_path + "." +
                                     core::to_string(trial.chain) + ".trial" +
                                     std::to_string(trial.trial) + ".json",
                        trial.repro_trace);
    }
    if (format == "json") {
      std::printf("%s\n", result.to_json().c_str());
    } else {
      std::printf("%s", result.summary_table().c_str());
      std::printf("%zu/%zu violations, %zu expected losses\n",
                  result.violations(), result.trials.size(),
                  result.expected_losses());
      for (const core::ChaosTrial& trial : result.trials) {
        if (trial.report.verdict == core::OracleVerdict::kPass) continue;
        std::printf("%s trial %zu: %s\n",
                    core::to_string(trial.chain).c_str(), trial.trial,
                    trial.report.summary().c_str());
        if (trial.shrunk.has_value()) {
          std::printf("  repro: %s\n",
                      core::schedule_to_json(trial.shrunk->schedule).c_str());
        }
      }
      std::printf("\nwall-clock profile:\n%s",
                  result.timing_table().c_str());
    }
    return result.violations() > 0 ? 1 : 0;
  }

  if (num_seeds > 1 || jobs > 1) {
    if (!trace_path.empty() || !metrics_path.empty()) {
      fail_usage(argv[0],
                 "--trace/--metrics apply to single runs; rerun the seed of "
                 "interest without --seeds/--jobs");
    }
    // Seed sweep / parallel path: run the single (chain, fault) cell as a
    // one-cell campaign so the sweep aggregation and the thread pool are
    // the same code CI uses. Output is identical for any --jobs value.
    core::CampaignConfig campaign;
    campaign.chains = {config.chain};
    campaign.faults = {config.fault};
    campaign.base = config;
    campaign.num_seeds = static_cast<std::size_t>(num_seeds);
    campaign.jobs = static_cast<unsigned>(jobs);
    core::CampaignResult result;
    try {
      result = core::run_campaign(campaign);
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "%s: invalid fault plan: %s\n", argv[0],
                   error.what());
      return 2;
    }
    if (format == "json") {
      std::printf("%s\n", result.to_json().c_str());
      return 0;
    }
    if (format == "csv") {
      std::printf("%s", result.to_csv().c_str());
      return 0;
    }
    std::printf("%s under %s, %ld seeds starting at %llu\n",
                core::to_string(config.chain).c_str(),
                core::to_string(config.fault).c_str(), num_seeds,
                static_cast<unsigned long long>(config.seed));
    const auto& seed_runs =
        result.seed_runs.at({config.chain, config.fault});
    core::Table table({"seed", "score", "committed", "live", "recovery"});
    for (std::size_t i = 0; i < seed_runs.size(); ++i) {
      const core::SensitivityRun& run = seed_runs[i];
      table.add_row({std::to_string(result.seeds[i]),
                     core::format_score(run.score),
                     std::to_string(run.altered.committed),
                     run.altered.live_at_end ? "yes" : "NO",
                     core::Table::num(run.altered.recovery_seconds, 1)});
    }
    std::printf("%s", table.to_string().c_str());
    const core::SeedSweepStats* stats =
        result.sweep(config.chain, config.fault);
    std::printf(
        "sweep: mean %.2f  stddev %.2f  min %.2f  max %.2f  "
        "liveness losses %zu/%zu\n",
        stats->mean, stats->stddev, stats->min, stats->max,
        stats->liveness_losses, stats->seeds);
    std::printf("\nwall-clock profile:\n%s", result.timing_table().c_str());
    return 0;
  }

  sim::TraceSink trace_sink;
  core::MetricsRegistry metrics;
  if (!trace_path.empty()) config.trace = &trace_sink;
  if (!metrics_path.empty()) config.metrics = &metrics;

  core::SensitivityRun run;
  try {
    run = core::run_sensitivity(config);
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "%s: invalid fault plan: %s\n", argv[0],
                 error.what());
    return 2;
  }

  if (!trace_path.empty()) {
    write_file_or_die(argv[0], trace_path, core::trace_to_json(trace_sink));
  }
  if (!metrics_path.empty()) {
    write_file_or_die(argv[0], metrics_path,
                      ends_with(metrics_path, ".csv") ? metrics.to_csv()
                                                      : metrics.to_json());
  }

  if (format == "json") {
    std::printf("%s\n", core::to_json(config.chain, config.fault, run).c_str());
    return 0;
  }
  if (format == "csv") {
    std::printf("%s\n%s\n", core::summary_csv_header().c_str(),
                core::summary_csv_row(config.chain, config.fault, run).c_str());
    return 0;
  }

  std::printf("%s under %s\n", core::to_string(config.chain).c_str(),
              core::to_string(config.fault).c_str());
  core::Table table({"metric", "baseline", "altered"});
  table.add_row({"committed", std::to_string(run.baseline.committed),
                 std::to_string(run.altered.committed)});
  table.add_row({"mean latency",
                 core::Table::num(run.baseline.mean_latency_s, 3) + "s",
                 core::Table::num(run.altered.mean_latency_s, 3) + "s"});
  table.add_row({"p99 latency",
                 core::Table::num(run.baseline.p99_latency_s, 3) + "s",
                 core::Table::num(run.altered.p99_latency_s, 3) + "s"});
  table.add_row({"live at end", run.baseline.live_at_end ? "yes" : "NO",
                 run.altered.live_at_end ? "yes" : "NO"});
  std::printf("%s", table.to_string().c_str());
  std::printf("sensitivity score: %s\n",
              core::format_score(run.score).c_str());
  if (config.resilience.enabled) {
    const core::ResilienceStats& rs = run.altered.resilience;
    std::printf(
        "resilient client: %ju resubmissions, %ju failovers, %ju recovered, "
        "%ju lost, %ju duplicate commits\n",
        static_cast<std::uintmax_t>(rs.resubmissions),
        static_cast<std::uintmax_t>(rs.failovers),
        static_cast<std::uintmax_t>(rs.recovered),
        static_cast<std::uintmax_t>(run.altered.submitted -
                                    run.altered.committed),
        static_cast<std::uintmax_t>(rs.duplicate_commits));
  }
  if (run.altered.recovery_seconds >= 0) {
    std::printf("recovery: %.1fs after the fault cleared\n",
                run.altered.recovery_seconds);
  }
  if (!trace_path.empty()) {
    std::printf("trace: %s (%zu events; open at ui.perfetto.dev)\n",
                trace_path.c_str(), trace_sink.size());
  }
  if (!metrics_path.empty()) {
    std::printf("metrics: %s (%zu samples)\n", metrics_path.c_str(),
                metrics.sample_times().size());
  }
  std::printf("\naltered throughput:\n%s",
              core::render_timeseries(run.altered.throughput,
                                      static_cast<double>(duration_s / 40))
                  .c_str());
  return 0;
}
