// stabl_cli — run a single STABL experiment pair from the command line and
// emit human-readable or machine-readable results. The driver a downstream
// user would wire into a CI pipeline.
//
// Usage:
//   stabl_cli [--chain NAME] [--fault NAME] [--duration S] [--seed N]
//             [--fanout K] [--matching K] [--workload constant|bursty|ramp]
//             [--vcpus N] [--format text|csv|json]
//             [--no-throttling] [--no-warmup-epochs] [--max-idle S]
//
// Examples:
//   stabl_cli --chain solana --fault transient
//   stabl_cli --chain redbelly --fault partition --max-idle 30 --format json
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/serialize.hpp"

namespace {

using namespace stabl;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--chain algorand|aptos|avalanche|redbelly|solana]\n"
      "          [--fault none|crash|transient|partition|secure-client|"
      "delay|churn]\n"
      "          [--duration seconds] [--seed n] [--fanout k]\n"
      "          [--matching k] [--workload constant|bursty|ramp]\n"
      "          [--vcpus n] [--format text|csv|json]\n"
      "          [--no-throttling] [--no-warmup-epochs] [--max-idle s]\n",
      argv0);
  std::exit(2);
}

core::ChainKind parse_chain(const std::string& name, const char* argv0) {
  for (const core::ChainKind chain : core::kAllChains) {
    if (core::to_string(chain) == name) return chain;
  }
  usage(argv0);
}

core::FaultType parse_fault(const std::string& name, const char* argv0) {
  for (const core::FaultType fault :
       {core::FaultType::kNone, core::FaultType::kCrash,
        core::FaultType::kTransient, core::FaultType::kPartition,
        core::FaultType::kSecureClient, core::FaultType::kDelay,
        core::FaultType::kChurn}) {
    if (core::to_string(fault) == name) return fault;
  }
  usage(argv0);
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentConfig config;
  std::string format = "text";
  long duration_s = 400;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--chain") {
      config.chain = parse_chain(value(), argv[0]);
    } else if (arg == "--fault") {
      config.fault = parse_fault(value(), argv[0]);
    } else if (arg == "--duration") {
      duration_s = std::atol(value().c_str());
      if (duration_s < 30) usage(argv[0]);
    } else if (arg == "--seed") {
      config.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--fanout") {
      config.client_fanout = std::atoi(value().c_str());
    } else if (arg == "--matching") {
      config.client_matching =
          static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (arg == "--vcpus") {
      config.vcpus = std::atof(value().c_str());
    } else if (arg == "--workload") {
      const std::string shape = value();
      if (shape == "bursty") {
        config.workload.shape = core::WorkloadShape::kBursty;
      } else if (shape == "ramp") {
        config.workload.shape = core::WorkloadShape::kRamp;
      } else if (shape != "constant") {
        usage(argv[0]);
      }
    } else if (arg == "--format") {
      format = value();
    } else if (arg == "--no-throttling") {
      config.tuning.avalanche_throttling = false;
    } else if (arg == "--no-warmup-epochs") {
      config.tuning.solana_warmup_epochs = false;
    } else if (arg == "--max-idle") {
      config.tuning.redbelly_max_idle_s = std::atof(value().c_str());
    } else {
      usage(argv[0]);
    }
  }

  config.duration = sim::sec(duration_s);
  config.inject_at = sim::sec(duration_s / 3);
  config.recover_at = sim::sec(2 * duration_s / 3);
  if (config.fault == core::FaultType::kSecureClient &&
      config.client_fanout == 1) {
    config.client_fanout = 4;
    config.vcpus = 8.0;
  }

  const core::SensitivityRun run = core::run_sensitivity(config);

  if (format == "json") {
    std::printf("%s\n", core::to_json(config.chain, config.fault, run).c_str());
    return 0;
  }
  if (format == "csv") {
    std::printf("%s\n%s\n", core::summary_csv_header().c_str(),
                core::summary_csv_row(config.chain, config.fault, run).c_str());
    return 0;
  }

  std::printf("%s under %s\n", core::to_string(config.chain).c_str(),
              core::to_string(config.fault).c_str());
  core::Table table({"metric", "baseline", "altered"});
  table.add_row({"committed", std::to_string(run.baseline.committed),
                 std::to_string(run.altered.committed)});
  table.add_row({"mean latency",
                 core::Table::num(run.baseline.mean_latency_s, 3) + "s",
                 core::Table::num(run.altered.mean_latency_s, 3) + "s"});
  table.add_row({"p99 latency",
                 core::Table::num(run.baseline.p99_latency_s, 3) + "s",
                 core::Table::num(run.altered.p99_latency_s, 3) + "s"});
  table.add_row({"live at end", run.baseline.live_at_end ? "yes" : "NO",
                 run.altered.live_at_end ? "yes" : "NO"});
  std::printf("%s", table.to_string().c_str());
  std::printf("sensitivity score: %s\n",
              core::format_score(run.score).c_str());
  if (run.altered.recovery_seconds >= 0) {
    std::printf("recovery: %.1fs after the fault cleared\n",
                run.altered.recovery_seconds);
  }
  std::printf("\naltered throughput:\n%s",
              core::render_timeseries(run.altered.throughput,
                                      static_cast<double>(duration_s / 40))
                  .c_str());
  return 0;
}
