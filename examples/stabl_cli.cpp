// stabl_cli — run a single STABL experiment pair from the command line and
// emit human-readable or machine-readable results. The driver a downstream
// user would wire into a CI pipeline.
//
// Usage:
//   stabl_cli [--chain NAME] [--fault NAME] [--duration S] [--seed N]
//             [--seeds N] [--jobs N]
//             [--fanout K] [--matching K] [--workload constant|bursty|ramp]
//             [--vcpus N] [--format text|csv|json]
//             [--fault-targets IDS]
//             [--extra-fault NAME]... [--loss-prob P] [--gray-delay S]
//             [--throttle-bps BYTES] [--resilient] [--commit-timeout S]
//             [--no-throttling] [--no-warmup-epochs] [--max-idle S]
//             [--chaos N] [--shrink]
//
// --seeds N sweeps N consecutive seeds starting at --seed and reports the
// per-seed scores plus mean/min/max/stddev aggregates; --jobs N fans the
// (seed) grid across N threads (output is identical for any jobs value).
//
// --chaos N runs N randomized multi-plan fault schedules against --chain
// and audits each run with the invariant oracles; --shrink delta-debugs
// every violating schedule to a minimal JSON repro. Deterministic in
// (--chain, --seed) for any --jobs value.
//
// Examples:
//   stabl_cli --chain solana --fault transient
//   stabl_cli --chain redbelly --fault partition --max-idle 30 --format json
//   stabl_cli --chain aptos --chaos 10 --shrink --duration 120 --jobs 4
//   # Fault engine v2: packet loss composed on top of the partition, with
//   # resilient (timeout + failover + backoff) clients:
//   stabl_cli --chain redbelly --fault partition --extra-fault loss
//             --loss-prob 0.3 --resilient          (one line in the shell)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "core/campaign.hpp"
#include "core/chaos.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/serialize.hpp"

namespace {

using namespace stabl;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--chain algorand|aptos|avalanche|redbelly|solana]\n"
      "          [--fault none|crash|transient|partition|secure-client|"
      "delay|churn|loss|throttle|gray]\n"
      "          [--duration seconds] [--seed n] [--seeds n] [--jobs n]\n"
      "          [--fanout k]\n"
      "          [--matching k] [--workload constant|bursty|ramp]\n"
      "          [--vcpus n] [--format text|csv|json]\n"
      "          [--fault-targets ids] [--extra-fault name]...\n"
      "          [--loss-prob p] [--gray-delay s]\n"
      "          [--throttle-bps bytes] [--resilient] [--commit-timeout s]\n"
      "          [--no-throttling] [--no-warmup-epochs] [--max-idle s]\n"
      "          [--chaos n] [--shrink]\n",
      argv0);
  std::exit(2);
}

core::ChainKind parse_chain(const std::string& name, const char* argv0) {
  for (const core::ChainKind chain : core::kAllChains) {
    if (core::to_string(chain) == name) return chain;
  }
  usage(argv0);
}

core::FaultType parse_fault(const std::string& name, const char* argv0) {
  for (const core::FaultType fault :
       {core::FaultType::kNone, core::FaultType::kCrash,
        core::FaultType::kTransient, core::FaultType::kPartition,
        core::FaultType::kSecureClient, core::FaultType::kDelay,
        core::FaultType::kChurn, core::FaultType::kLoss,
        core::FaultType::kThrottle, core::FaultType::kGray}) {
    if (core::to_string(fault) == name) return fault;
  }
  usage(argv0);
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentConfig config;
  std::string format = "text";
  long duration_s = 400;
  long num_seeds = 1;
  long jobs = 1;
  long chaos_trials = 0;
  bool chaos_shrink = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--chain") {
      config.chain = parse_chain(value(), argv[0]);
    } else if (arg == "--fault") {
      config.fault = parse_fault(value(), argv[0]);
    } else if (arg == "--duration") {
      duration_s = std::atol(value().c_str());
      if (duration_s < 30) usage(argv[0]);
    } else if (arg == "--seed") {
      config.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--seeds") {
      num_seeds = std::atol(value().c_str());
      if (num_seeds < 1) usage(argv[0]);
    } else if (arg == "--jobs") {
      jobs = std::atol(value().c_str());
      if (jobs < 1) usage(argv[0]);
    } else if (arg == "--fanout") {
      config.client_fanout = std::atoi(value().c_str());
    } else if (arg == "--matching") {
      config.client_matching =
          static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (arg == "--vcpus") {
      config.vcpus = std::atof(value().c_str());
    } else if (arg == "--workload") {
      const std::string shape = value();
      if (shape == "bursty") {
        config.workload.shape = core::WorkloadShape::kBursty;
      } else if (shape == "ramp") {
        config.workload.shape = core::WorkloadShape::kRamp;
      } else if (shape != "constant") {
        usage(argv[0]);
      }
    } else if (arg == "--format") {
      format = value();
    } else if (arg == "--fault-targets") {
      // Comma-separated node ids, e.g. "0,1" to fault entry nodes.
      const std::string list = value();
      config.fault_targets.clear();
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        const std::string token =
            list.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        if (token.empty()) usage(argv[0]);
        config.fault_targets.push_back(
            static_cast<net::NodeId>(std::strtoul(token.c_str(), nullptr, 10)));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (config.fault_targets.empty()) usage(argv[0]);
    } else if (arg == "--extra-fault") {
      core::FaultPlan plan;
      plan.type = parse_fault(value(), argv[0]);
      config.extra_faults.add(plan);  // window/targets default in the runner
    } else if (arg == "--loss-prob") {
      config.loss_probability = std::atof(value().c_str());
    } else if (arg == "--gray-delay") {
      config.gray_latency = sim::seconds(std::atof(value().c_str()));
    } else if (arg == "--throttle-bps") {
      config.throttle_bytes_per_s = std::atof(value().c_str());
    } else if (arg == "--resilient") {
      config.resilience.enabled = true;
    } else if (arg == "--commit-timeout") {
      config.resilience.retry.commit_timeout =
          sim::seconds(std::atof(value().c_str()));
    } else if (arg == "--no-throttling") {
      config.tuning.avalanche_throttling = false;
    } else if (arg == "--no-warmup-epochs") {
      config.tuning.solana_warmup_epochs = false;
    } else if (arg == "--max-idle") {
      config.tuning.redbelly_max_idle_s = std::atof(value().c_str());
    } else if (arg == "--chaos") {
      chaos_trials = std::atol(value().c_str());
      if (chaos_trials < 1) usage(argv[0]);
    } else if (arg == "--shrink") {
      chaos_shrink = true;
    } else {
      usage(argv[0]);
    }
  }

  config.duration = sim::sec(duration_s);
  config.inject_at = sim::sec(duration_s / 3);
  config.recover_at = sim::sec(2 * duration_s / 3);
  // Composed plans share the primary fault window and knob values; the
  // runner fills in their default targets.
  for (core::FaultPlan& plan : config.extra_faults.plans) {
    plan.inject_at = config.inject_at;
    plan.recover_at = config.recover_at;
    plan.loss_probability = config.loss_probability;
    plan.throttle_bytes_per_s = config.throttle_bytes_per_s;
    plan.gray_latency = config.gray_latency;
  }
  if (config.fault == core::FaultType::kSecureClient &&
      config.client_fanout == 1) {
    config.client_fanout = 4;
    config.vcpus = 8.0;
  }

  if (chaos_trials > 0) {
    // Chaos path: randomized schedules + oracle audit on one chain.
    core::ChaosCampaignConfig chaos;
    chaos.chains = {config.chain};
    chaos.trials_per_chain = static_cast<std::size_t>(chaos_trials);
    chaos.seed = config.seed;
    chaos.base = config;
    chaos.base.fault = core::FaultType::kNone;
    chaos.shrink = chaos_shrink;
    chaos.jobs = static_cast<unsigned>(jobs);
    const core::ChaosCampaignResult result = core::run_chaos_campaign(chaos);
    if (format == "json") {
      std::printf("%s\n", result.to_json().c_str());
    } else {
      std::printf("%s", result.summary_table().c_str());
      std::printf("%zu/%zu violations, %zu expected losses\n",
                  result.violations(), result.trials.size(),
                  result.expected_losses());
      for (const core::ChaosTrial& trial : result.trials) {
        if (trial.report.verdict == core::OracleVerdict::kPass) continue;
        std::printf("%s trial %zu: %s\n",
                    core::to_string(trial.chain).c_str(), trial.trial,
                    trial.report.summary().c_str());
        if (trial.shrunk.has_value()) {
          std::printf("  repro: %s\n",
                      core::schedule_to_json(trial.shrunk->schedule).c_str());
        }
      }
    }
    return result.violations() > 0 ? 1 : 0;
  }

  if (num_seeds > 1 || jobs > 1) {
    // Seed sweep / parallel path: run the single (chain, fault) cell as a
    // one-cell campaign so the sweep aggregation and the thread pool are
    // the same code CI uses. Output is identical for any --jobs value.
    core::CampaignConfig campaign;
    campaign.chains = {config.chain};
    campaign.faults = {config.fault};
    campaign.base = config;
    campaign.num_seeds = static_cast<std::size_t>(num_seeds);
    campaign.jobs = static_cast<unsigned>(jobs);
    core::CampaignResult result;
    try {
      result = core::run_campaign(campaign);
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "%s: invalid fault plan: %s\n", argv[0],
                   error.what());
      return 2;
    }
    if (format == "json") {
      std::printf("%s\n", result.to_json().c_str());
      return 0;
    }
    if (format == "csv") {
      std::printf("%s", result.to_csv().c_str());
      return 0;
    }
    std::printf("%s under %s, %ld seeds starting at %llu\n",
                core::to_string(config.chain).c_str(),
                core::to_string(config.fault).c_str(), num_seeds,
                static_cast<unsigned long long>(config.seed));
    const auto& seed_runs =
        result.seed_runs.at({config.chain, config.fault});
    core::Table table({"seed", "score", "committed", "live", "recovery"});
    for (std::size_t i = 0; i < seed_runs.size(); ++i) {
      const core::SensitivityRun& run = seed_runs[i];
      table.add_row({std::to_string(result.seeds[i]),
                     core::format_score(run.score),
                     std::to_string(run.altered.committed),
                     run.altered.live_at_end ? "yes" : "NO",
                     core::Table::num(run.altered.recovery_seconds, 1)});
    }
    std::printf("%s", table.to_string().c_str());
    const core::SeedSweepStats* stats =
        result.sweep(config.chain, config.fault);
    std::printf(
        "sweep: mean %.2f  stddev %.2f  min %.2f  max %.2f  "
        "liveness losses %zu/%zu\n",
        stats->mean, stats->stddev, stats->min, stats->max,
        stats->liveness_losses, stats->seeds);
    return 0;
  }

  core::SensitivityRun run;
  try {
    run = core::run_sensitivity(config);
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "%s: invalid fault plan: %s\n", argv[0],
                 error.what());
    return 2;
  }

  if (format == "json") {
    std::printf("%s\n", core::to_json(config.chain, config.fault, run).c_str());
    return 0;
  }
  if (format == "csv") {
    std::printf("%s\n%s\n", core::summary_csv_header().c_str(),
                core::summary_csv_row(config.chain, config.fault, run).c_str());
    return 0;
  }

  std::printf("%s under %s\n", core::to_string(config.chain).c_str(),
              core::to_string(config.fault).c_str());
  core::Table table({"metric", "baseline", "altered"});
  table.add_row({"committed", std::to_string(run.baseline.committed),
                 std::to_string(run.altered.committed)});
  table.add_row({"mean latency",
                 core::Table::num(run.baseline.mean_latency_s, 3) + "s",
                 core::Table::num(run.altered.mean_latency_s, 3) + "s"});
  table.add_row({"p99 latency",
                 core::Table::num(run.baseline.p99_latency_s, 3) + "s",
                 core::Table::num(run.altered.p99_latency_s, 3) + "s"});
  table.add_row({"live at end", run.baseline.live_at_end ? "yes" : "NO",
                 run.altered.live_at_end ? "yes" : "NO"});
  std::printf("%s", table.to_string().c_str());
  std::printf("sensitivity score: %s\n",
              core::format_score(run.score).c_str());
  if (config.resilience.enabled) {
    const core::ResilienceStats& rs = run.altered.resilience;
    std::printf(
        "resilient client: %ju resubmissions, %ju failovers, %ju recovered, "
        "%ju lost, %ju duplicate commits\n",
        static_cast<std::uintmax_t>(rs.resubmissions),
        static_cast<std::uintmax_t>(rs.failovers),
        static_cast<std::uintmax_t>(rs.recovered),
        static_cast<std::uintmax_t>(run.altered.submitted -
                                    run.altered.committed),
        static_cast<std::uintmax_t>(rs.duplicate_commits));
  }
  if (run.altered.recovery_seconds >= 0) {
    std::printf("recovery: %.1fs after the fault cleared\n",
                run.altered.recovery_seconds);
  }
  std::printf("\naltered throughput:\n%s",
              core::render_timeseries(run.altered.throughput,
                                      static_cast<double>(duration_s / 40))
                  .c_str());
  return 0;
}
