// chaos_hunt — the nightly chaos job: randomized multi-plan fault
// schedules against every chain, invariant-oracle audit of every run, and
// automatic shrinking of any violating schedule into a replayable JSON
// repro file.
//
// Usage:
//   chaos_hunt [--chains a,b,...] [--trials N] [--seed N] [--duration S]
//              [--jobs N] [--shrink] [--out DIR] [--adversarial] [--defend]
//
// --adversarial widens the sampled plan space with the Byzantine family
// (equivocate, withhold, eclipse). --defend turns every chain's
// misbehavior scorer on (misbehavior_defense=1), so an adversarial hunt
// only reports what the defenses fail to contain. The defense's contract
// is "at-worst a liveness cost" (DESIGN.md §13), so under --defend only
// a *safety* finding (honest-replica fork, duplicate-height commit) is a
// regression and fails the run; liveness violations still write repros
// but exit 0. Without --defend every violation gates, as before.
//
// Exit status: 0 when no gating oracle violated (expected losses are
// fine), 1 otherwise. Violating (minimized, when --shrink) schedules are
// written to DIR/chaos_<chain>_trial<k>_seed<s>_plan<h>.json for replay
// and for CI artifact upload — the experiment seed and a hash of the
// schedule keep repros from different campaigns (or reruns into the same
// DIR) from overwriting each other — each next to a Perfetto timeline of
// the minimized repro run at the same stem with .trace.json
// (ui.perfetto.dev).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "cli_common.hpp"
#include "core/chaos.hpp"

namespace {

using namespace stabl;

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(
      out,
      "usage: %s [options]\n"
      "\n"
      "Nightly chaos job: randomized multi-plan fault schedules against\n"
      "every chain, invariant-oracle audit of every run, and automatic\n"
      "shrinking of violating schedules into replayable JSON repros.\n"
      "Exit 0 when no gating oracle fired, 1 otherwise, 2 on usage errors.\n"
      "\n"
      "options:\n"
      "  --chains NAMES      comma-separated chains to hunt (default: all\n"
      "                      five paper chains)\n"
      "  --trials N          schedules per chain, >= 1 (default 5)\n"
      "  --seed N            root RNG seed; trial k of chain c draws from\n"
      "                      a stream derived from (c, k) (default 42)\n"
      "  --duration S        simulated seconds per run, >= 30 (default\n"
      "                      120)\n"
      "  --jobs N            worker threads, >= 1; results are identical\n"
      "                      for any value (default 1)\n"
      "  --shrink            delta-debug every violating schedule to a\n"
      "                      minimal repro before writing it\n"
      "  --out DIR           directory for repro JSON + trace sidecars\n"
      "                      (default: current directory)\n"
      "  --adversarial       widen the plan space with the Byzantine\n"
      "                      family (equivocate, withhold, eclipse)\n"
      "  --defend            turn every chain's misbehavior scorer on;\n"
      "                      only safety findings gate (liveness findings\n"
      "                      still write repros but exit 0)\n"
      "  --heartbeat         wall-clock progress (done/total, trials/s,\n"
      "                      ETA) on stderr\n"
      "  --help              print this help and exit 0\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  core::ChaosCampaignConfig config;
  config.trials_per_chain = 5;
  config.base.duration = sim::sec(120);
  std::string out_dir = ".";
  bool adversarial = false;
  bool defend = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        cli::fail(argv[0], arg + " needs a value", cli::help_hint(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout, argv[0]);
      return 0;
    } else if (arg == "--chains") {
      config.chains = cli::parse_chain_list_or_exit(value(), argv[0],
                                                    cli::help_hint(argv[0]));
    } else if (arg == "--trials") {
      const long trials = std::atol(value().c_str());
      if (trials < 1) {
        cli::fail(argv[0], "--trials must be >= 1", cli::help_hint(argv[0]));
      }
      config.trials_per_chain = static_cast<std::size_t>(trials);
    } else if (arg == "--seed") {
      config.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--duration") {
      const long duration_s = std::atol(value().c_str());
      if (duration_s < 30) {
        cli::fail(argv[0], "--duration must be >= 30",
                  cli::help_hint(argv[0]));
      }
      config.base.duration = sim::sec(duration_s);
    } else if (arg == "--jobs") {
      const long jobs = std::atol(value().c_str());
      if (jobs < 1) {
        cli::fail(argv[0], "--jobs must be >= 1", cli::help_hint(argv[0]));
      }
      config.jobs = static_cast<unsigned>(jobs);
    } else if (arg == "--shrink") {
      config.shrink = true;
    } else if (arg == "--adversarial") {
      adversarial = true;
    } else if (arg == "--defend") {
      defend = true;
    } else if (arg == "--heartbeat") {
      config.heartbeat = true;
    } else if (arg == "--out") {
      out_dir = value();
    } else {
      cli::fail_unknown_flag(argv[0], arg);
    }
  }

  if (adversarial) {
    config.gen = core::adversarial_gen_for(config.base.duration);
  }
  if (defend) config.base.chain_params["misbehavior_defense"] = 1.0;

  std::printf("chaos hunt: %zu chains x %zu trials, seed %llu, %g s runs, "
              "%u jobs%s%s%s\n",
              config.chains.size(), config.trials_per_chain,
              static_cast<unsigned long long>(config.seed),
              sim::to_seconds(config.base.duration), config.jobs,
              config.shrink ? ", shrinking" : "",
              adversarial ? ", adversarial plan space" : "",
              defend ? ", defenses on" : "");

  const core::ChaosCampaignResult result = core::run_chaos_campaign(config);
  std::printf("%s", result.summary_table().c_str());

  std::size_t written = 0;
  for (const core::ChaosTrial& trial : result.trials) {
    if (trial.report.verdict == core::OracleVerdict::kPass) continue;
    std::printf("\n%s trial %zu (seed %llu):\n  %s\n",
                core::to_string(trial.chain).c_str(), trial.trial,
                static_cast<unsigned long long>(trial.experiment_seed),
                trial.report.summary().c_str());
    if (!trial.report.violated()) continue;
    // Persist the repro: the minimized schedule when shrinking succeeded,
    // the full sampled schedule otherwise.
    const core::FaultSchedule& repro = trial.shrunk.has_value()
                                           ? trial.shrunk->schedule
                                           : trial.schedule;
    const std::string repro_json = core::schedule_to_json(repro);
    const std::string stem =
        out_dir + "/" +
        cli::chaos_repro_stem(core::to_string(trial.chain), trial.trial,
                              trial.experiment_seed, repro_json);
    const std::string path = stem + ".json";
    std::ofstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 2;
    }
    file << repro_json << "\n";
    if (!trial.repro_trace.empty()) {
      const std::string trace_path = stem + ".trace.json";
      std::ofstream trace_file(trace_path);
      if (!trace_file) {
        std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
        return 2;
      }
      trace_file << trial.repro_trace << "\n";
      std::printf("  trace written to %s\n", trace_path.c_str());
    }
    std::printf("  repro written to %s", path.c_str());
    if (trial.shrunk.has_value()) {
      std::printf(" (shrunk %zu -> %zu plans in %zu runs)",
                  trial.shrunk->initial_plans,
                  trial.shrunk->schedule.plans.size(), trial.shrunk->runs);
    }
    std::printf("\n");
    ++written;
  }

  std::size_t safety = 0;
  for (const core::ChaosTrial& trial : result.trials) {
    if (trial.report.safety_violation() != nullptr) ++safety;
  }
  std::printf("\n%zu/%zu violations (%zu safety, %zu repro files), %zu "
              "expected losses\n",
              result.violations(), result.trials.size(), safety, written,
              result.expected_losses());
  std::printf("\nwall-clock profile:\n%s", result.timing_table().c_str());
  // With the defenses on, liveness-only violations are within the
  // containment contract; a safety finding is a genuine regression.
  if (defend) return safety > 0 ? 1 : 0;
  return result.violations() > 0 ? 1 : 0;
}
