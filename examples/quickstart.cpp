// Quickstart: run a short baseline experiment on every chain model and
// print throughput/latency, then inject one crash fault on Redbelly and
// show its sensitivity score.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/experiment.hpp"
#include "core/report.hpp"

int main() {
  using namespace stabl;

  std::printf("== STABL quickstart: 60s baseline on each chain ==\n\n");
  core::Table table({"chain", "committed", "blocks", "avg tps", "mean lat",
                     "p99 lat", "live"});
  for (const core::ChainKind chain : core::kAllChains) {
    core::ExperimentConfig config;
    config.chain = chain;
    config.duration = sim::sec(60);
    config.seed = 7;
    const core::ExperimentResult result = core::run_experiment(config);
    double sum = 0.0;
    for (const double tps : result.throughput) sum += tps;
    table.add_row({core::to_string(chain),
                   std::to_string(result.committed),
                   std::to_string(result.blocks),
                   core::Table::num(sum / 60.0, 1),
                   core::Table::num(result.mean_latency_s, 2) + "s",
                   core::Table::num(result.p99_latency_s, 2) + "s",
                   result.live_at_end ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("== Sensitivity of Redbelly to f=t crashes (short run) ==\n");
  core::ExperimentConfig altered;
  altered.chain = core::ChainKind::kRedbelly;
  altered.duration = sim::sec(120);
  altered.inject_at = sim::sec(40);
  altered.fault = core::FaultType::kCrash;
  const core::SensitivityRun run = core::run_sensitivity(altered);
  std::printf("baseline mean latency: %.2fs, altered: %.2fs\n",
              run.baseline.mean_latency_s, run.altered.mean_latency_s);
  std::printf("sensitivity score: %s\n",
              core::format_score(run.score).c_str());
  return 0;
}
