// Full STABL sensitivity campaign: for each of the five chains, run the
// four altered environments of the paper (f=t crashes, f=t+1 transient
// failures, f=t+1 partition, secure client) against a fault-free baseline
// and print the sensitivity scores plus the Fig. 7 radar table.
//
// Usage: sensitivity_report [duration_seconds] [seed]
//   duration_seconds: total experiment length (default 400, the paper's).
//     The fault is injected at 1/3 and cleared at 2/3 of the run.
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "core/radar.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace stabl;
  const long duration_s = argc > 1 ? std::atol(argv[1]) : 400;
  const unsigned long seed = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 42;

  core::RadarSummary radar;
  const core::FaultType faults[] = {
      core::FaultType::kCrash, core::FaultType::kTransient,
      core::FaultType::kPartition, core::FaultType::kSecureClient};

  for (const core::ChainKind chain : core::kAllChains) {
    std::printf("=== %s (t=%zu) ===\n", core::to_string(chain).c_str(),
                core::fault_tolerance(chain, 10));
    for (const core::FaultType fault : faults) {
      core::ExperimentConfig config;
      config.chain = chain;
      config.seed = seed;
      config.duration = sim::sec(duration_s);
      config.inject_at = sim::sec(duration_s / 3);
      config.recover_at = sim::sec(2 * duration_s / 3);
      config.fault = fault;
      if (fault == core::FaultType::kSecureClient) {
        config.client_fanout = 4;
        config.vcpus = 8.0;  // paper §7: bigger VMs for the secure client
      }
      const core::SensitivityRun run = core::run_sensitivity(config);
      radar.record(chain, fault, run.score);
      std::printf(
          "  %-13s score=%8s  committed %6llu/%6llu  mean %6.2fs -> %6.2fs"
          "  recovery %5.1fs  live=%s\n",
          core::to_string(fault).c_str(),
          core::format_score(run.score).c_str(),
          static_cast<unsigned long long>(run.altered.committed),
          static_cast<unsigned long long>(run.altered.submitted),
          run.baseline.mean_latency_s, run.altered.mean_latency_s,
          run.altered.recovery_seconds,
          run.altered.live_at_end ? "yes" : "NO");
    }
  }

  std::printf("\n=== Fig. 7 radar: sensitivity of the tested blockchains ===\n");
  std::printf("%s", radar.to_table().c_str());
  std::printf("(*) = the altered environment improved latency (striped bar)\n");
  return 0;
}
