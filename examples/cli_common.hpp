// cli_common — flag-parsing helpers shared by the example drivers
// (stabl_cli, regression_gate, partition_study, chaos_hunt).
//
// Chain and fault names resolve through the registry
// (core::parse_chain_name / core::fault_from_name), so every driver gets
// case-insensitive matching and error messages that list the valid names,
// and a newly linked chain plugin is accepted everywhere at once.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/fault.hpp"

namespace stabl::cli {

/// The examples' shared usage-error exit: message (and an optional hint
/// line) to stderr, exit code 2.
[[noreturn]] inline void fail(const char* argv0, const std::string& message,
                              const std::string& hint = {}) {
  std::fprintf(stderr, "%s: %s\n", argv0, message.c_str());
  if (!hint.empty()) std::fprintf(stderr, "%s\n", hint.c_str());
  std::exit(2);
}

/// The examples' shared "where to find the docs" hint line.
inline std::string help_hint(const char* argv0) {
  return "run '" + std::string(argv0) + " --help' for the full flag list";
}

/// The examples' shared unknown-flag exit: every driver reports an unknown
/// flag the same way — the flag by name, the --help hint, exit code 2.
[[noreturn]] inline void fail_unknown_flag(const char* argv0,
                                           const std::string& flag) {
  fail(argv0, "unknown flag '" + flag + "'", help_hint(argv0));
}

/// Registry-backed chain lookup, case-insensitive; exits 2 listing the
/// valid names when unknown.
inline core::ChainKind parse_chain_or_exit(const std::string& name,
                                           const char* argv0,
                                           const std::string& hint = {}) {
  try {
    return core::parse_chain_name(name);
  } catch (const std::invalid_argument& error) {
    fail(argv0, error.what(), hint);
  }
}

/// Fault-type lookup, case-insensitive; exits 2 listing the valid names
/// when unknown.
inline core::FaultType parse_fault_or_exit(const std::string& name,
                                           const char* argv0,
                                           const std::string& hint = {}) {
  try {
    return core::fault_from_name(name);
  } catch (const std::invalid_argument& error) {
    fail(argv0, error.what(), hint);
  }
}

/// Comma-separated chain names ("redbelly,solana"); exits 2 on an unknown
/// name or an empty list.
inline std::vector<core::ChainKind> parse_chain_list_or_exit(
    const std::string& list, const char* argv0,
    const std::string& hint = {}) {
  std::vector<core::ChainKind> chains;
  for (std::size_t pos = 0; pos < list.size();) {
    const std::size_t comma = list.find(',', pos);
    const std::string name =
        list.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    chains.push_back(parse_chain_or_exit(name, argv0, hint));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (chains.empty()) {
    fail(argv0, "expected a comma-separated chain list", hint);
  }
  return chains;
}

/// Comma-separated node ids ("0,1"); exits 2 on an empty list or an empty
/// token. `flag` names the flag in the error message.
inline std::vector<net::NodeId> parse_node_ids_or_exit(
    const std::string& list, const char* argv0, const std::string& flag,
    const std::string& hint = {}) {
  std::vector<net::NodeId> ids;
  for (std::size_t pos = 0; pos < list.size();) {
    const std::size_t comma = list.find(',', pos);
    const std::string token =
        list.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    if (token.empty()) fail(argv0, flag + " has an empty id", hint);
    ids.push_back(
        static_cast<net::NodeId>(std::strtoul(token.c_str(), nullptr, 10)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (ids.empty()) fail(argv0, flag + " needs at least one id", hint);
  return ids;
}

/// The paper's run geometry for a given duration: faults hit at the first
/// integer third and clear at the second (400 s keeps 133 s / 266 s).
inline void apply_run_window(core::ExperimentConfig& config,
                             long duration_s) {
  config.duration = sim::sec(duration_s);
  config.inject_at = sim::sec(duration_s / 3);
  config.recover_at = sim::sec(2 * duration_s / 3);
}

/// Writes `body` to `path`, exiting 1 on I/O failure. The harness's output
/// files are small (traces a few MB at most), so one buffered fwrite is
/// fine.
inline void write_file_or_die(const char* argv0, const std::string& path,
                              const std::string& body) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "%s: cannot open %s for writing\n", argv0,
                 path.c_str());
    std::exit(1);
  }
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), out);
  if (std::fclose(out) != 0 || written != body.size()) {
    std::fprintf(stderr, "%s: short write to %s\n", argv0, path.c_str());
    std::exit(1);
  }
}

inline bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

/// Stable 64-bit FNV-1a — repro sidecar file naming only (not a crypto
/// hash).
inline std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Sidecar file stem for a chaos trial's repro artifacts:
/// "chaos_<chain>_trial<K>_seed<S>_plan<H>" where H is the first 8 hex
/// digits of fnv1a over the (minimized) schedule JSON. One campaign can
/// produce several violations for the same chain, and reruns with
/// different root seeds land different schedules on the same trial index —
/// the seed and plan-hash suffixes keep every repro file distinct.
inline std::string chaos_repro_stem(const std::string& chain,
                                    std::size_t trial, std::uint64_t seed,
                                    const std::string& schedule_json) {
  char hash_hex[9];
  std::snprintf(hash_hex, sizeof(hash_hex), "%08x",
                static_cast<unsigned>(fnv1a(schedule_json) >> 32));
  return "chaos_" + chain + "_trial" + std::to_string(trial) + "_seed" +
         std::to_string(seed) + "_plan" + hash_hex;
}

}  // namespace stabl::cli
