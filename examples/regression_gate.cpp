// regression_gate — the CI use case the paper pitches STABL for: run the
// fault-tolerance matrix on every build and fail the pipeline when a
// chain's sensitivity regresses past the gate, or when a chain that used
// to survive a condition stops doing so. Multi-seed sweeps gate on the
// WORST seed, and the matrix fans out across worker threads.
//
// Usage: regression_gate [duration_seconds] [seed] [num_seeds] [jobs]
// Exit code 0 = gate passed, 1 = violations found, 2 = usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "cli_common.hpp"
#include "core/campaign.hpp"
#include "core/parallel.hpp"
#include "core/report.hpp"

namespace {

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(
      out,
      "usage: %s [duration_seconds] [seed] [num_seeds] [jobs] [--help]\n"
      "\n"
      "CI regression gate: run the STABL fault-tolerance matrix (every\n"
      "paper chain x crash/transient/partition/secure-client) and fail\n"
      "the pipeline when a chain's sensitivity regresses past the\n"
      "paper-shaped bounds, or when a chain that used to survive a\n"
      "condition stops doing so. Multi-seed sweeps gate on the WORST\n"
      "seed. Exit 0 = gate passed, 1 = violations, 2 = usage error.\n"
      "\n"
      "arguments:\n"
      "  duration_seconds  simulated seconds per run, >= 30 (default 400;\n"
      "                    shorter runs apply coarse sanity bounds only)\n"
      "  seed              first RNG seed of the sweep (default 42)\n"
      "  num_seeds         consecutive seeds per cell, >= 1 (default 1)\n"
      "  jobs              worker threads, >= 1 (default: hardware\n"
      "                    concurrency); results are identical for any\n"
      "                    value\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stabl;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      print_usage(stdout, argv[0]);
      return 0;
    }
    if (argv[i][0] == '-' && std::atol(argv[i]) == 0) {
      cli::fail_unknown_flag(argv[0], argv[i]);
    }
  }
  if (argc > 5) {
    cli::fail(argv[0],
              "expected at most [duration_seconds] [seed] [num_seeds] [jobs]",
              cli::help_hint(argv[0]));
  }
  const long duration_s = argc > 1 ? std::atol(argv[1]) : 400;
  const unsigned long seed =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 42;
  const long num_seeds = argc > 3 ? std::atol(argv[3]) : 1;
  const long jobs =
      argc > 4 ? std::atol(argv[4]) : static_cast<long>(core::default_jobs());
  if (duration_s < 30) {
    cli::fail(argv[0], "duration_seconds must be >= 30",
              cli::help_hint(argv[0]));
  }
  if (num_seeds < 1) {
    cli::fail(argv[0], "num_seeds must be >= 1", cli::help_hint(argv[0]));
  }
  if (jobs < 1) {
    cli::fail(argv[0], "jobs must be >= 1", cli::help_hint(argv[0]));
  }

  core::CampaignConfig config;
  config.base.seed = seed;
  cli::apply_run_window(config.base, duration_s);
  config.num_seeds = static_cast<std::size_t>(num_seeds);
  config.jobs = static_cast<unsigned>(jobs);
  config.on_cell_done = [](core::ChainKind chain, core::FaultType fault,
                           std::uint64_t cell_seed,
                           const core::SensitivityRun& run) {
    std::printf("  %-9s %-13s seed %-6llu -> %s\n",
                core::to_string(chain).c_str(),
                core::to_string(fault).c_str(),
                static_cast<unsigned long long>(cell_seed),
                core::format_score(run.score).c_str());
  };

  std::printf(
      "running the STABL matrix (%lds per run, seeds %lu..%lu, %ld jobs)"
      "...\n",
      duration_s, seed, seed + static_cast<unsigned long>(num_seeds) - 1,
      jobs);
  const core::CampaignResult result = core::run_campaign(config);

  // The gate encodes the paper's measured shape with headroom. The shape
  // expectations (which chains lose liveness, the timeout arithmetic) are
  // tied to the paper's 400 s / 133 s / 266 s geometry — e.g. Solana's EAH
  // panic requires the fault to land inside a warm-up epoch. For shorter
  // smoke runs the gate only checks coarse sanity.
  core::CampaignGate gate;
  if (duration_s >= 400) {
    gate.max_score = {
        {core::FaultType::kCrash, 40.0},
        {core::FaultType::kTransient, 400.0},
        {core::FaultType::kPartition, 600.0},
        {core::FaultType::kSecureClient, 15.0},
    };
    gate.expected_infinite = {
        {core::ChainKind::kAvalanche, core::FaultType::kTransient},
        {core::ChainKind::kAvalanche, core::FaultType::kPartition},
        {core::ChainKind::kSolana, core::FaultType::kTransient},
        {core::ChainKind::kSolana, core::FaultType::kPartition},
    };
  } else {
    std::printf("(short run: paper-shape expectations need >=400s;"
                " applying coarse sanity bounds only)\n");
    const double scale = static_cast<double>(duration_s) / 400.0;
    gate.max_score = {
        {core::FaultType::kCrash, 100.0 * scale},
        {core::FaultType::kSecureClient, 60.0 * scale},
    };
    gate.flag_unexpected_liveness_loss = false;
  }

  const auto violations = core::check_gate(result, gate);
  std::printf("\n%s\n", result.radar.to_table().c_str());
  if (num_seeds > 1) {
    std::printf("seed sweep (mean+-stddev [min..max], inf = liveness "
                "losses):\n%s\n",
                result.radar.sweep_table().c_str());
  }
  if (violations.empty()) {
    std::printf("gate PASSED: all %zu cells within bounds (worst of %ld "
                "seed%s per cell)\n",
                result.runs.size(), num_seeds, num_seeds == 1 ? "" : "s");
    return 0;
  }
  std::printf("gate FAILED (%zu violations):\n", violations.size());
  for (const auto& violation : violations) {
    std::printf("  - %s\n", violation.c_str());
  }
  return 1;
}
