// regression_gate — the CI use case the paper pitches STABL for: run the
// fault-tolerance matrix on every build and fail the pipeline when a
// chain's sensitivity regresses past the gate, or when a chain that used
// to survive a condition stops doing so.
//
// Usage: regression_gate [duration_seconds] [seed]
// Exit code 0 = gate passed, 1 = violations found.
#include <cstdio>
#include <cstdlib>

#include "core/campaign.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace stabl;
  const long duration_s = argc > 1 ? std::atol(argv[1]) : 400;
  const unsigned long seed =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 42;

  core::CampaignConfig config;
  config.base.seed = seed;
  config.base.duration = sim::sec(duration_s);
  config.base.inject_at = sim::sec(duration_s / 3);
  config.base.recover_at = sim::sec(2 * duration_s / 3);
  config.on_cell_done = [](core::ChainKind chain, core::FaultType fault,
                           const core::SensitivityRun& run) {
    std::printf("  %-9s %-13s -> %s\n", core::to_string(chain).c_str(),
                core::to_string(fault).c_str(),
                core::format_score(run.score).c_str());
  };

  std::printf("running the STABL matrix (%lds per run, seed %lu)...\n",
              duration_s, seed);
  const core::CampaignResult result = core::run_campaign(config);

  // The gate encodes the paper's measured shape with headroom. The shape
  // expectations (which chains lose liveness, the timeout arithmetic) are
  // tied to the paper's 400 s / 133 s / 266 s geometry — e.g. Solana's EAH
  // panic requires the fault to land inside a warm-up epoch. For shorter
  // smoke runs the gate only checks coarse sanity.
  core::CampaignGate gate;
  if (duration_s >= 400) {
    gate.max_score = {
        {core::FaultType::kCrash, 40.0},
        {core::FaultType::kTransient, 400.0},
        {core::FaultType::kPartition, 600.0},
        {core::FaultType::kSecureClient, 15.0},
    };
    gate.expected_infinite = {
        {core::ChainKind::kAvalanche, core::FaultType::kTransient},
        {core::ChainKind::kAvalanche, core::FaultType::kPartition},
        {core::ChainKind::kSolana, core::FaultType::kTransient},
        {core::ChainKind::kSolana, core::FaultType::kPartition},
    };
  } else {
    std::printf("(short run: paper-shape expectations need >=400s;"
                " applying coarse sanity bounds only)\n");
    const double scale = static_cast<double>(duration_s) / 400.0;
    gate.max_score = {
        {core::FaultType::kCrash, 100.0 * scale},
        {core::FaultType::kSecureClient, 60.0 * scale},
    };
    gate.flag_unexpected_liveness_loss = false;
  }

  const auto violations = core::check_gate(result, gate);
  std::printf("\n%s\n", result.radar.to_table().c_str());
  if (violations.empty()) {
    std::printf("gate PASSED: all %zu cells within bounds\n",
                result.runs.size());
    return 0;
  }
  std::printf("gate FAILED (%zu violations):\n", violations.size());
  for (const auto& violation : violations) {
    std::printf("  - %s\n", violation.c_str());
  }
  return 1;
}
