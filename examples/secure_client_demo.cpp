// Secure client demo (§7, Byzantine node tolerance): compare a client that
// trusts one blockchain node against the secure client that submits to
// t+1 = 4 nodes and only reports success when all of them confirm.
//
// Usage: secure_client_demo [duration_seconds]
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace stabl;
  const long duration = argc > 1 ? std::atol(argv[1]) : 400;

  std::printf("=== Secure client (fanout 4, 8 vCPU) vs single-node client"
              " ===\n\n");
  core::Table table({"chain", "1-node mean", "secure mean", "delta",
                     "sensitivity", "verdict"});
  for (const core::ChainKind chain : core::kAllChains) {
    core::ExperimentConfig config;
    config.chain = chain;
    config.duration = sim::sec(duration);
    config.fault = core::FaultType::kSecureClient;
    config.client_fanout = 4;
    config.vcpus = 8.0;
    const core::SensitivityRun run = core::run_sensitivity(config);
    const double delta =
        run.altered.mean_latency_s - run.baseline.mean_latency_s;
    const char* verdict = "unchanged";
    if (run.score.benefits) {
      verdict = "BENEFITS from redundancy";
    } else if (delta > 0.1) {
      verdict = "degraded (redundant execution)";
    }
    table.add_row({core::to_string(chain),
                   core::Table::num(run.baseline.mean_latency_s, 3) + "s",
                   core::Table::num(run.altered.mean_latency_s, 3) + "s",
                   core::Table::num(delta, 3) + "s",
                   core::format_score(run.score), verdict});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nTrusting a single node tolerates zero Byzantine nodes; submitting"
      " to t+1 nodes restores tolerance at the latency cost/benefit shown"
      " above (paper §7: Aptos pays for Block-STM re-execution, Redbelly"
      " and Avalanche actually gain).\n");
  return 0;
}
