// Partition study: walk one chain through the paper's three-phase
// partition experiment (§6) and watch detection, stall and recovery in the
// throughput series — including the timeout-driven difference between
// *passive* partition recovery and *active* crash-restart recovery.
//
// Usage: partition_study [chain] [duration_seconds]
//   chain: algorand | aptos | avalanche | redbelly | solana  (default
//          redbelly)
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <stdexcept>

#include "cli_common.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"

namespace {

// The study is exploratory, so an unknown chain warns (listing the valid
// names) and falls back to the paper's Redbelly instead of aborting.
stabl::core::ChainKind parse_chain(const char* name) {
  try {
    return stabl::core::parse_chain_name(name);
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "%s, using redbelly\n", error.what());
    return stabl::core::ChainKind::kRedbelly;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stabl;
  const core::ChainKind chain =
      argc > 1 ? parse_chain(argv[1]) : core::ChainKind::kRedbelly;
  const long duration = argc > 2 ? std::atol(argv[2]) : 400;

  core::ExperimentConfig config;
  config.chain = chain;
  cli::apply_run_window(config, duration);

  std::printf("=== %s: partition of f=t+1 nodes, %lds run ===\n",
              core::to_string(chain).c_str(), duration);

  config.fault = core::FaultType::kPartition;
  const core::ExperimentResult partition = core::run_experiment(config);
  std::printf("\nthroughput (partition %ld-%lds):\n%s\n", duration / 3,
              2 * duration / 3,
              core::render_timeseries(partition.throughput,
                                      static_cast<double>(duration / 40))
                  .c_str());

  config.fault = core::FaultType::kTransient;
  const core::ExperimentResult transient = core::run_experiment(config);

  core::Table table({"condition", "recovery(s)", "committed", "live"});
  table.add_row({"partition (passive recovery)",
                 partition.recovery_seconds >= 0
                     ? core::Table::num(partition.recovery_seconds, 1)
                     : "never",
                 std::to_string(partition.committed) + "/" +
                     std::to_string(partition.submitted),
                 partition.live_at_end ? "yes" : "NO"});
  table.add_row({"transient crash+restart (active)",
                 transient.recovery_seconds >= 0
                     ? core::Table::num(transient.recovery_seconds, 1)
                     : "never",
                 std::to_string(transient.committed) + "/" +
                     std::to_string(transient.submitted),
                 transient.live_at_end ? "yes" : "NO"});
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nPassive recovery waits for reconnection timeouts (paper §6:"
      " Algorand 9s->99s, Redbelly 7s->81s); active recovery re-dials"
      " immediately after restart.\n");
  return 0;
}
