// Partition study: walk one chain through the paper's three-phase
// partition experiment (§6) and watch detection, stall and recovery in the
// throughput series — including the timeout-driven difference between
// *passive* partition recovery and *active* crash-restart recovery.
//
// Usage: partition_study [chain] [duration_seconds]
//   chain: algorand | aptos | avalanche | redbelly | solana  (default
//          redbelly)
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "cli_common.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"

namespace {

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(
      out,
      "usage: %s [chain] [duration_seconds] [--help]\n"
      "\n"
      "Walk one chain through the paper's three-phase partition\n"
      "experiment (Section 6) and compare passive partition recovery\n"
      "(reconnection timeouts) against active crash-restart recovery.\n"
      "\n"
      "arguments:\n"
      "  chain             registered chain, case-insensitive (%s;\n"
      "                    default redbelly)\n"
      "  duration_seconds  simulated seconds per run, >= 30 (default 400;\n"
      "                    the paper's timeout arithmetic needs 400)\n",
      argv0, stabl::core::chain_registry().names_csv().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stabl;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      print_usage(stdout, argv[0]);
      return 0;
    }
    if (argv[i][0] == '-' && std::atol(argv[i]) == 0) {
      cli::fail_unknown_flag(argv[0], argv[i]);
    }
  }
  if (argc > 3) {
    cli::fail(argv[0], "expected at most [chain] [duration_seconds]",
              cli::help_hint(argv[0]));
  }
  const core::ChainKind chain =
      argc > 1
          ? cli::parse_chain_or_exit(argv[1], argv[0], cli::help_hint(argv[0]))
          : core::ChainKind::kRedbelly;
  const long duration = argc > 2 ? std::atol(argv[2]) : 400;
  if (duration < 30) {
    cli::fail(argv[0], "duration_seconds must be >= 30",
              cli::help_hint(argv[0]));
  }

  core::ExperimentConfig config;
  config.chain = chain;
  cli::apply_run_window(config, duration);

  std::printf("=== %s: partition of f=t+1 nodes, %lds run ===\n",
              core::to_string(chain).c_str(), duration);

  config.fault = core::FaultType::kPartition;
  const core::ExperimentResult partition = core::run_experiment(config);
  std::printf("\nthroughput (partition %ld-%lds):\n%s\n", duration / 3,
              2 * duration / 3,
              core::render_timeseries(partition.throughput,
                                      static_cast<double>(duration / 40))
                  .c_str());

  config.fault = core::FaultType::kTransient;
  const core::ExperimentResult transient = core::run_experiment(config);

  core::Table table({"condition", "recovery(s)", "committed", "live"});
  table.add_row({"partition (passive recovery)",
                 partition.recovery_seconds >= 0
                     ? core::Table::num(partition.recovery_seconds, 1)
                     : "never",
                 std::to_string(partition.committed) + "/" +
                     std::to_string(partition.submitted),
                 partition.live_at_end ? "yes" : "NO"});
  table.add_row({"transient crash+restart (active)",
                 transient.recovery_seconds >= 0
                     ? core::Table::num(transient.recovery_seconds, 1)
                     : "never",
                 std::to_string(transient.committed) + "/" +
                     std::to_string(transient.submitted),
                 transient.live_at_end ? "yes" : "NO"});
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nPassive recovery waits for reconnection timeouts (paper §6:"
      " Algorand 9s->99s, Redbelly 7s->81s); active recovery re-dials"
      " immediately after restart.\n");
  return 0;
}
