// Fig. 1: "The sensitivity of Aptos to failures as the difference in
// latency distributions between a baseline environment without failure and
// the altered environment with failures."
//
// Reproduces the paper's opening figure: the two eCDFs of Aptos latencies
// (baseline vs f = t crashes) and the between-areas sensitivity score.
#include "bench_common.hpp"

#include <cstdio>

namespace {

using namespace stabl;

[[maybe_unused]] const bool registered = [] {
  bench::register_pair_benchmark("fig1", core::ChainKind::kAptos,
                                 core::FaultType::kCrash);
  return true;
}();

void print_figure() {
  const core::SensitivityRun& run = bench::cached_run(
      core::ChainKind::kAptos, core::FaultType::kCrash);
  std::printf("\n=== Fig. 1: sensitivity of Aptos to f=t crashes ===\n");
  const core::Ecdf baseline(run.baseline.latencies);
  const core::Ecdf altered(run.altered.latencies);
  std::printf("%s\n",
              core::render_ecdf_pair(baseline, altered).c_str());
  std::printf("baseline: n=%zu mean=%.2fs p99=%.2fs (area S1=%.2f)\n",
              baseline.count(), baseline.mean(),
              run.baseline.p99_latency_s, run.score.baseline_area);
  std::printf("altered : n=%zu mean=%.2fs p99=%.2fs (area S2=%.2f)\n",
              altered.count(), altered.mean(), run.altered.p99_latency_s,
              run.score.altered_area);
  std::printf("sensitivity |S1-S2| = %s\n",
              core::format_score(run.score).c_str());
}

}  // namespace

STABL_BENCH_MAIN(print_figure)
