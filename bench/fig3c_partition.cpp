// Fig. 3c — sensitivity to a transient partition of f=t+1 nodes (§6)
// One benchmark per chain; the panel's bar values print afterwards.
#include "fig3_sensitivity_bars.hpp"

namespace {

using namespace stabl;
constexpr core::FaultType kFault = core::FaultType::kPartition;

[[maybe_unused]] const bool registered =
    bench::register_chain_benchmarks(kFault);

void print_figure() {
  bench::print_fig3_panel(kFault, "Fig. 3c — sensitivity to a transient partition of f=t+1 nodes (§6)");
}

}  // namespace

STABL_BENCH_MAIN(print_figure)
