// Event-core scaling gate: events/s and tx/s vs node count (4 -> 1000).
//
// Two layers:
//
//  1. Queue churn — the pooled indexed EventQueue head-to-head against a
//     faithful reimplementation of the legacy design it replaced
//     (std::priority_queue + unordered_map<TimerId, std::function> with
//     lazy cancellation). Keeping the legacy queue *inside this binary*
//     makes the old-vs-new ratio reproducible on any machine forever,
//     rather than depending on a number measured once before the swap.
//     The churn pattern mirrors a faulted cell at scale: most timers are
//     commit/round timeouts that are cancelled long before they fire, the
//     exact pattern whose garbage the lazy design accumulated.
//
//  2. Cell sweep — full redbelly simulations at increasing node counts,
//     reporting events/s, committed tx/s and peak RSS. Durations shrink
//     with n so the 1000-node cell stays a bench, not a soak.
//
// Environment:
//   STABL_SCALE_MAX_N     cap the sweep (CI smoke uses 64; default 1000)
//   STABL_SCALE_SKIP_CELLS=1  run only the queue layer (fast gate)
//   STABL_SCALE_JSON      write results as JSON to this path
//   STABL_SCALE_BASELINE  compare against a checked-in JSON baseline and
//                         exit 1 if pooled-queue events/s regresses >10%
//                         (or the legacy-vs-pooled speedup >30%) at any
//                         node count both files cover
#include <sys/resource.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <queue>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/experiment.hpp"
#include "core/json.hpp"
#include "core/metrics.hpp"
#include "core/report.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace {

using namespace stabl;

// ---------------------------------------------------------------------------
// The pre-swap queue, reproduced with its exact semantics: heap of (at, id),
// actions in a hash map, lazy cancellation through a cancelled-id set that
// keeps heap entries until their fire time comes up.
class LegacyQueue {
 public:
  using Action = std::function<void()>;

  std::uint64_t schedule(sim::Time at, Action action) {
    const std::uint64_t id = next_id_++;
    heap_.push(Entry{at, id});
    actions_.emplace(id, std::move(action));
    ++live_count_;
    return id;
  }

  void cancel(std::uint64_t id) {
    const auto it = actions_.find(id);
    if (it == actions_.end()) return;
    actions_.erase(it);
    cancelled_.insert(id);
    --live_count_;
  }

  [[nodiscard]] bool empty() {
    drop_cancelled_head();
    return heap_.empty();
  }

  Action pop(sim::Time& fired_at) {
    drop_cancelled_head();
    const Entry entry = heap_.top();
    heap_.pop();
    fired_at = entry.at;
    const auto it = actions_.find(entry.id);
    Action action = std::move(it->second);
    actions_.erase(it);
    --live_count_;
    return action;
  }

  [[nodiscard]] std::size_t size() const { return live_count_; }

 private:
  struct Entry {
    sim::Time at;
    std::uint64_t id;
    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return id > other.id;
    }
  };

  void drop_cancelled_head() {
    while (!heap_.empty()) {
      const auto it = cancelled_.find(heap_.top().id);
      if (it == cancelled_.end()) break;
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<std::uint64_t, Action> actions_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_id_ = 1;
  std::size_t live_count_ = 0;
};

// ---------------------------------------------------------------------------
// Churn workload, identical for both queues. Sized like an n-node cell:
// ~16 delivery timers in flight per node, spread over network latencies
// (0.1–20 ms), so sim time advances ~20ms/in_flight per event — the same
// event density a real cell has. Every event also arms a 5 s commit
// timeout; a commit "arrives" ~64 events later (well under a millisecond
// of sim time) and beats the timeout 99% of the time. The lazy design
// then keeps the beaten timeout's heap entry plus a cancelled-set entry
// for the *remaining ~5 s of sim time* — at n=1000 density that is
// millions of events, i.e. effectively until sim end. That garbage is
// what pushes the legacy heap out of cache; eager cancellation never
// accumulates it. All randomness is pre-drawn outside the timed loop so
// both queues execute the identical schedule/cancel/pop sequence and the
// timer measures queue work, not rng work.
//
// The callable carries five words of capture — what a Process::set_timer
// wrapper actually costs (this + the user lambda's own this + ids) —
// which overflows std::function's 16-byte inline buffer but fits
// InlineAction's 64-byte one, exactly the asymmetry the production
// timers hit.
struct ChurnResult {
  double events_per_s = 0.0;
  std::uint64_t pops = 0;
};

volatile std::uint64_t g_sink = 0;

template <typename Queue>
ChurnResult run_churn(std::size_t n, std::uint64_t ops) {
  Queue queue;
  sim::Rng rng(0x5CA1Eull + n);
  sim::Time now{0};
  const std::size_t in_flight = 16 * n + 64;
  constexpr std::int64_t kTimeoutUs = 5'000'000;  // 5 s commit timeout
  constexpr std::size_t kCommitLag = 64;          // events until commit
  const auto payload = [](std::uint64_t a, std::uint64_t b) {
    const std::uint64_t c = a + b, d = a ^ b, e = a * 31 + b;
    return [a, b, c, d, e] { g_sink = a ^ b ^ c ^ d ^ e; };
  };
  // Pre-draw the delivery latencies and commit/timeout coin flips.
  std::vector<std::int64_t> delay(ops);
  std::vector<std::uint8_t> commit_beats(ops);
  for (std::uint64_t op = 0; op < ops; ++op) {
    delay[op] = 100 + static_cast<std::int64_t>(rng.uniform() * 2e4);
    commit_beats[op] = rng.uniform() < 0.99 ? 1 : 0;
  }
  std::vector<std::uint64_t> pending;  // armed commit timeouts, FIFO
  pending.reserve(ops + 1);
  std::size_t pending_head = 0;
  for (std::size_t i = 0; i < in_flight; ++i) {
    queue.schedule(now + sim::Duration{delay[i % ops]}, payload(i, i + 1));
  }
  core::WallTimer timer;
  std::uint64_t pops = 0;
  for (std::uint64_t op = 0; op < ops; ++op) {
    sim::Time fired{0};
    auto action = queue.pop(fired);
    now = fired;
    action();
    ++pops;
    // Replacement delivery keeps the live population stable.
    queue.schedule(now + sim::Duration{delay[op]}, payload(op, pops));
    // Arm this transaction's commit timeout.
    pending.push_back(
        queue.schedule(now + sim::Duration{kTimeoutUs}, payload(op, 0xDEAD)));
    // The commit for the transaction from kCommitLag events ago arrives:
    // usually it beats its timeout and cancels it; the rest fire on their
    // own when sim time reaches them (popped like any other event above).
    if (pending.size() - pending_head > kCommitLag) {
      const std::uint64_t beaten = pending[pending_head++];
      if (commit_beats[op]) queue.cancel(beaten);
    }
  }
  ChurnResult result;
  result.pops = pops;
  result.events_per_s =
      static_cast<double>(pops) / (timer.elapsed_ms() / 1e3);
  return result;
}

// ---------------------------------------------------------------------------
// Full-simulation cells.
struct CellResult {
  std::size_t n = 0;
  long sim_s = 0;
  std::uint64_t events = 0;
  double events_per_s = 0.0;
  double tx_per_s = 0.0;
  std::uint64_t committed = 0;
  double peak_rss_mb = 0.0;
};

double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

CellResult run_cell(std::size_t n, long sim_s) {
  core::ExperimentConfig config;
  config.chain = core::ChainKind::kRedbelly;
  config.fault = core::FaultType::kNone;
  config.n = n;
  config.clients = 4;
  config.seed = 42;
  config.duration = sim::sec(sim_s);
  core::WallTimer timer;
  const core::ExperimentResult result = core::run_experiment(config);
  const double wall_s = timer.elapsed_ms() / 1e3;
  CellResult cell;
  cell.n = n;
  cell.sim_s = sim_s;
  cell.events = result.events;
  cell.events_per_s = static_cast<double>(result.events) / wall_s;
  cell.tx_per_s = static_cast<double>(result.committed) / wall_s;
  cell.committed = result.committed;
  cell.peak_rss_mb = peak_rss_mb();
  return cell;
}

// ---------------------------------------------------------------------------
struct QueueRow {
  std::size_t n = 0;
  double legacy_events_per_s = 0.0;
  double pooled_events_per_s = 0.0;
};

std::string to_json(const std::vector<QueueRow>& queue_rows,
                    const std::vector<CellResult>& cells) {
  std::ostringstream out;
  out << "{\"queue\":[";
  for (std::size_t i = 0; i < queue_rows.size(); ++i) {
    const QueueRow& row = queue_rows[i];
    if (i > 0) out << ',';
    out << "{\"n\":" << row.n << ",\"legacy_events_per_s\":"
        << core::Table::num(row.legacy_events_per_s, 0)
        << ",\"pooled_events_per_s\":"
        << core::Table::num(row.pooled_events_per_s, 0) << ",\"speedup\":"
        << core::Table::num(
               row.pooled_events_per_s / row.legacy_events_per_s, 2)
        << '}';
  }
  out << "],\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    if (i > 0) out << ',';
    out << "{\"n\":" << cell.n << ",\"sim_s\":" << cell.sim_s
        << ",\"events\":" << cell.events << ",\"events_per_s\":"
        << core::Table::num(cell.events_per_s, 0) << ",\"tx_per_s\":"
        << core::Table::num(cell.tx_per_s, 1)
        << ",\"committed\":" << cell.committed << ",\"peak_rss_mb\":"
        << core::Table::num(cell.peak_rss_mb, 1) << '}';
  }
  out << "]}";
  return out.str();
}

/// Gate: every node count present in both the baseline and this run must
/// keep pooled-queue events/s within 10% of the recorded value, and keep
/// the legacy-vs-pooled speedup within 30% of the recorded ratio. The
/// first catches absolute regressions on a comparable machine; the second
/// is machine-independent (both queues run in the same process), so it
/// still bites when CI hardware changes under the checked-in baseline.
/// The checked-in baseline is a *low-water mark* across repeated clean
/// runs, not a single run's numbers: even best-of-3 absolute throughput
/// swings ~15% run to run, and a gate hung off one (possibly lucky) run
/// would flake. A real regression — the pooled queue falling back to
/// legacy behaviour — lands 4-6x below the floor, far outside either
/// tolerance.
bool check_baseline(const std::string& path,
                    const std::vector<QueueRow>& rows) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "micro_scale: cannot read baseline %s\n",
                 path.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  core::JsonCursor cursor(text);
  cursor.expect('{');
  if (cursor.parse_string() != "queue") cursor.fail("expected \"queue\"");
  cursor.expect(':');
  cursor.expect('[');
  bool ok = true;
  if (!cursor.consume(']')) {
    do {
      cursor.expect('{');
      std::size_t n = 0;
      double pooled = 0.0;
      double speedup = 0.0;
      do {
        const std::string key = cursor.parse_string();
        cursor.expect(':');
        const double value = cursor.parse_number();
        if (key == "n") n = static_cast<std::size_t>(value);
        if (key == "pooled_events_per_s") pooled = value;
        if (key == "speedup") speedup = value;
      } while (cursor.consume(','));
      cursor.expect('}');
      for (const QueueRow& row : rows) {
        if (row.n != n) continue;
        if (row.pooled_events_per_s < 0.9 * pooled) {
          std::fprintf(stderr,
                       "micro_scale: REGRESSION at n=%zu: %.0f events/s "
                       "< 90%% of baseline %.0f\n",
                       n, row.pooled_events_per_s, pooled);
          ok = false;
        }
        // The ratio swings ~20% run to run (it divides two noisy
        // measurements), so gate it at 70%: loose enough for load noise,
        // tight enough to catch the pooled queue losing its advantage.
        const double ratio =
            row.pooled_events_per_s / row.legacy_events_per_s;
        if (speedup > 0.0 && ratio < 0.7 * speedup) {
          std::fprintf(stderr,
                       "micro_scale: REGRESSION at n=%zu: speedup %.2fx "
                       "< 70%% of baseline %.2fx\n",
                       n, ratio, speedup);
          ok = false;
        }
      }
    } while (cursor.consume(','));
    cursor.expect(']');
  }
  // The trailing "cells" section is informational; no need to walk it.
  return ok;
}

}  // namespace

int main() {
  std::size_t max_n = 1000;
  if (const char* env = std::getenv("STABL_SCALE_MAX_N")) {
    const long v = std::atol(env);
    if (v >= 4) max_n = static_cast<std::size_t>(v);
  }
  const std::size_t kNodeCounts[] = {4, 16, 64, 250, 1000};

  std::printf("=== queue churn: legacy vs pooled (events/s) ===\n");
  core::Table queue_table(
      {"n", "legacy ev/s", "pooled ev/s", "speedup"});
  std::vector<QueueRow> queue_rows;
  for (const std::size_t n : kNodeCounts) {
    if (n > max_n) break;
    // Run past the lazy design's steady state: cancelled-timeout garbage
    // persists for the 5 s timeout horizon, which at this cell's event
    // density (~20 ms of latency spread across 16n in-flight deliveries)
    // is ~in_flight * 500 pops. Shorter runs understate the old cost.
    const std::size_t in_flight = 16 * n + 64;
    const std::uint64_t horizon_pops = in_flight * 500;
    const std::uint64_t ops =
        std::max<std::uint64_t>(3'000'000, horizon_pops + horizon_pops / 2);
    QueueRow row;
    row.n = n;
    // Best-of-3 per queue: the trace is identical every repetition, so
    // the max filters scheduler/allocator noise out of the CI gate the
    // same way micro_trace_overhead's best-of-5 does.
    for (int rep = 0; rep < 3; ++rep) {
      row.legacy_events_per_s =
          std::max(row.legacy_events_per_s,
                   run_churn<LegacyQueue>(n, ops).events_per_s);
      row.pooled_events_per_s =
          std::max(row.pooled_events_per_s,
                   run_churn<sim::EventQueue>(n, ops).events_per_s);
    }
    queue_rows.push_back(row);
    queue_table.add_row(
        {std::to_string(n), core::Table::num(row.legacy_events_per_s, 0),
         core::Table::num(row.pooled_events_per_s, 0),
         core::Table::num(row.pooled_events_per_s / row.legacy_events_per_s,
                          2) +
             "x"});
  }
  std::printf("%s", queue_table.to_string().c_str());

  const char* skip_cells = std::getenv("STABL_SCALE_SKIP_CELLS");
  std::printf("\n=== full cells: redbelly, 4 clients (per node count) ===\n");
  core::Table cell_table({"n", "sim_s", "events", "events/s", "tx/s",
                          "committed", "peak_rss_mb"});
  std::vector<CellResult> cells;
  for (const std::size_t n : kNodeCounts) {
    if (n > max_n) break;
    if (skip_cells != nullptr && skip_cells[0] == '1') break;
    const long sim_s = n <= 64 ? 30 : (n <= 250 ? 10 : 5);
    const CellResult cell = run_cell(n, sim_s);
    cells.push_back(cell);
    cell_table.add_row({std::to_string(n), std::to_string(sim_s),
                        std::to_string(cell.events),
                        core::Table::num(cell.events_per_s, 0),
                        core::Table::num(cell.tx_per_s, 1),
                        std::to_string(cell.committed),
                        core::Table::num(cell.peak_rss_mb, 1)});
  }
  std::printf("%s", cell_table.to_string().c_str());

  const std::string json = to_json(queue_rows, cells);
  if (const char* path = std::getenv("STABL_SCALE_JSON")) {
    std::ofstream out(path);
    out << json << '\n';
    std::printf("\nwrote %s\n", path);
  }
  if (const char* baseline = std::getenv("STABL_SCALE_BASELINE")) {
    if (!check_baseline(baseline, queue_rows)) return 1;
    std::printf("baseline check passed (%s)\n", baseline);
  }
  return 0;
}
