// Shared implementation for the four Fig. 3 panels: the sensitivity bars
// of the 5 chains under one fault type.
#pragma once

#include <cstdio>
#include <string>

#include "bench_common.hpp"

namespace stabl::bench {

inline void print_fig3_panel(core::FaultType fault, const char* title) {
  std::printf("\n=== %s ===\n", title);
  core::Table table({"chain", "f", "t", "sensitivity", "benefits",
                     "recovery(s)", "committed", "live"});
  for (const core::ChainKind chain : core::kAllChains) {
    const core::SensitivityRun& run = cached_run(chain, fault);
    const std::size_t t = core::fault_tolerance(chain, 10);
    std::size_t f = 0;
    if (fault == core::FaultType::kCrash) f = t;
    if (fault == core::FaultType::kTransient ||
        fault == core::FaultType::kPartition ||
        fault == core::FaultType::kDelay) {
      f = t + 1;
    }
    table.add_row(
        {core::to_string(chain), std::to_string(f), std::to_string(t),
         core::format_score(run.score),
         run.score.benefits ? "yes (striped)" : "-",
         run.altered.recovery_seconds >= 0.0
             ? core::Table::num(run.altered.recovery_seconds, 1)
             : "-",
         std::to_string(run.altered.committed) + "/" +
             std::to_string(run.altered.submitted),
         run.altered.live_at_end ? "yes" : "NO (inf)"});
  }
  std::printf("%s", table.to_string().c_str());
}

}  // namespace stabl::bench
