// Shared implementation for Figs. 4-6: throughput-over-time of the five
// chains in the baseline and altered conditions, with the fault markers.
#pragma once

#include <cstdio>

#include "bench_common.hpp"

namespace stabl::bench {

inline void print_throughput_figure(core::FaultType fault,
                                    const char* title) {
  const long duration = bench_duration_s();
  std::printf("\n=== %s ===\n", title);
  std::printf("fault injected at %lds", duration / 3);
  if (fault != core::FaultType::kCrash) {
    std::printf(", cleared at %lds", 2 * duration / 3);
  }
  std::printf(" (marked by the bucket boundaries below)\n");
  for (const core::ChainKind chain : core::kAllChains) {
    const core::SensitivityRun& run = cached_run(chain, fault);
    std::printf("\n--- %s (altered: %s) ---\n",
                core::to_string(chain).c_str(),
                core::to_string(fault).c_str());
    std::printf("%s", core::render_timeseries(run.altered.throughput,
                                              static_cast<double>(
                                                  duration / 40),
                                              /*max_scale=*/0.0)
                          .c_str());
    std::printf("baseline average: %.1f tps; altered committed %llu/%llu"
                "%s\n",
                core::Ecdf(run.baseline.throughput).mean(),
                static_cast<unsigned long long>(run.altered.committed),
                static_cast<unsigned long long>(run.altered.submitted),
                run.altered.live_at_end ? "" : "  [LIVENESS LOST]");
    // CSV series for plotting.
    std::printf("csv,%s,altered_tps", core::to_string(chain).c_str());
    for (const double tps : run.altered.throughput) {
      std::printf(",%.0f", tps);
    }
    std::printf("\n");
  }
}

}  // namespace stabl::bench
