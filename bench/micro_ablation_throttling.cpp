// Ablation: Avalanche's InboundMsgThrottler on vs off under the paper's
// transient-failure experiment. The paper attributes Avalanche's permanent
// liveness loss to the throttler ("the throttling prevented them from
// being processed in a timely manner, resulting in no new blocks being
// agreed upon"); disabling it restores recovery.
#include "bench_common.hpp"

#include <cstdio>

namespace {

using namespace stabl;

core::ExperimentResult& result(bool throttling) {
  static std::map<bool, core::ExperimentResult> cache;
  auto it = cache.find(throttling);
  if (it == cache.end()) {
    core::ExperimentConfig config = bench::paper_config(
        core::ChainKind::kAvalanche, core::FaultType::kTransient);
    config.tuning.avalanche_throttling = throttling;
    it = cache.emplace(throttling, core::run_experiment(config)).first;
  }
  return it->second;
}

void throttling_on(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(result(true).committed);
  }
}
void throttling_off(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(result(false).committed);
  }
}
BENCHMARK(throttling_on)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(throttling_off)->Iterations(1)->Unit(benchmark::kSecond);

void print_figure() {
  std::printf("\n=== Ablation: Avalanche transient failure, throttler on/off"
              " ===\n");
  core::Table table(
      {"throttler", "committed", "live at end", "recovery(s)"});
  for (const bool on : {true, false}) {
    const core::ExperimentResult& r = result(on);
    table.add_row({on ? "enabled (default)" : "disabled (ablation)",
                   std::to_string(r.committed) + "/" +
                       std::to_string(r.submitted),
                   r.live_at_end ? "yes" : "NO",
                   r.recovery_seconds >= 0
                       ? core::Table::num(r.recovery_seconds, 1)
                       : "never"});
  }
  std::printf("%s", table.to_string().c_str());
}

}  // namespace

STABL_BENCH_MAIN(print_figure)
