// Extension bench: what the secure client is actually *for*. One
// blockchain node's RPC endpoint turns Byzantine (it instantly confirms
// transactions it silently drops). A client trusting that single node is
// fully deceived; the paper's wait-for-all secure client and the
// credence.js-style matching client both survive — at different latency
// costs.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>

#include "chain/hash.hpp"
#include "chains/redbelly/redbelly.hpp"
#include "core/client.hpp"
#include "core/report.hpp"
#include "core/sensitivity.hpp"

namespace {

using namespace stabl;

struct Outcome {
  std::uint64_t accepted = 0;
  std::uint64_t deceived = 0;
  double mean_latency = 0.0;
};

long duration_s() {
  if (const char* env = std::getenv("STABL_BENCH_DURATION")) {
    const long v = std::atol(env);
    if (v >= 30) return v;
  }
  return 400;
}

/// mode: 0 = naive single-node client on the liar; 1 = wait-for-all on 4
/// nodes incl. the liar; 2 = 3-matching verified client on the same 4.
Outcome& run(int mode) {
  static std::map<int, Outcome> cache;
  const auto it = cache.find(mode);
  if (it != cache.end()) return it->second;

  sim::Simulation simulation(42);
  net::Network network(simulation, net::LatencyConfig{});
  chain::NodeConfig node_config;
  node_config.n = 10;
  node_config.network_seed = chain::mix64(42);
  auto nodes = redbelly::make_cluster(simulation, network, node_config);
  nodes[0]->set_rpc_byzantine(true);
  for (auto& node : nodes) node->start();

  core::ClientConfig config;
  config.id = 10;
  config.account = 0;
  config.recipient = 999;
  config.tps = 40.0;
  config.stop_at = sim::sec(duration_s());
  config.tx_seed = chain::mix64(42 ^ 0xC11E57ull);
  switch (mode) {
    case 0:
      config.endpoints = {0};
      break;
    case 1:
      config.endpoints = {0, 1, 2, 3};
      break;
    default:
      config.endpoints = {0, 1, 2, 3};
      config.required_matching = 3;
      break;
  }
  core::ClientMachine client(simulation, network, config);
  client.start();
  simulation.run_until(sim::sec(duration_s()));

  Outcome outcome;
  outcome.accepted = client.committed();
  for (const auto& [id, hash] : client.accepted_hashes()) {
    if (!nodes[1]->ledger().is_committed(id)) ++outcome.deceived;
  }
  outcome.mean_latency = core::Ecdf(client.latencies()).mean();
  return cache.emplace(mode, outcome).first->second;
}

void naive_client(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run(0).accepted);
}
void wait_for_all_client(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run(1).accepted);
}
void matching_client(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run(2).accepted);
}
BENCHMARK(naive_client)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(wait_for_all_client)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(matching_client)->Iterations(1)->Unit(benchmark::kSecond);

void print_figure() {
  std::printf("\n=== Extension: client strategies against a Byzantine RPC"
              " node (Redbelly substrate) ===\n");
  core::Table table({"client", "accepted", "deceived", "mean latency"});
  const char* names[] = {"naive (1 node, the liar)",
                         "secure wait-for-all (4 nodes)",
                         "verified 3-matching (4 nodes)"};
  for (int mode = 0; mode < 3; ++mode) {
    const Outcome& outcome = run(mode);
    table.add_row({names[mode], std::to_string(outcome.accepted),
                   std::to_string(outcome.deceived),
                   core::Table::num(outcome.mean_latency, 3) + "s"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("(the naive client accepts fabricated confirmations; both"
              " redundant clients accept only real commits — §7's threat"
              " model made concrete)\n");
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  print_figure();
  ::benchmark::Shutdown();
  return 0;
}
