// Fig. 5 — throughput over time, f=t+1 transient node failures (§5)
#include "fig_throughput_common.hpp"

namespace {

using namespace stabl;
constexpr core::FaultType kFault = core::FaultType::kTransient;

[[maybe_unused]] const bool registered =
    bench::register_chain_benchmarks(kFault);

void print_figure() {
  bench::print_throughput_figure(kFault, "Fig. 5 — throughput over time, f=t+1 transient node failures (§5)");
}

}  // namespace

STABL_BENCH_MAIN(print_figure)
