// micro_adversarial_overhead — gates that the adversarial fault family is
// free when unused. Two properties, checked on a benign (no-fault) run:
//
//  1. Byte-identity: the report of a benign run is byte-identical whether
//     the misbehavior defense parameters are defaulted, explicitly off, or
//     even enabled (an armed scorer that never sees an offense must not
//     perturb a single RNG draw or metric). Any diff is a hard failure.
//  2. Wall-clock: enabling the defense on a benign run must cost < 2%
//     (median of repeated timed runs).
#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/serialize.hpp"

namespace {

using namespace stabl;

core::ExperimentConfig benign_config(double defense) {
  core::ExperimentConfig config =
      bench::paper_config(core::ChainKind::kRedbelly, core::FaultType::kNone);
  if (defense >= 0.0) config.chain_params["misbehavior_defense"] = defense;
  return config;
}

core::ExperimentConfig timing_config(double defense) {
  // The wall-clock gate ignores STABL_BENCH_DURATION: a 2% comparison
  // needs samples long enough to sit above scheduler noise, so the timed
  // runs always simulate a fixed 300 s.
  core::ExperimentConfig config = benign_config(defense);
  config.duration = sim::seconds(300);
  return config;
}

std::string benign_report(double defense) {
  const core::SensitivityRun run = core::run_sensitivity(benign_config(defense));
  return core::to_json(core::ChainKind::kRedbelly, core::FaultType::kNone,
                       run);
}

double timed_run_seconds(double defense) {
  const auto start = std::chrono::steady_clock::now();
  core::run_experiment(timing_config(defense));
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

void bench_benign(benchmark::State& state, double defense) {
  for (auto _ : state) {
    const core::ExperimentResult result =
        core::run_experiment(benign_config(defense));
    benchmark::DoNotOptimize(result.committed);
  }
}

BENCHMARK_CAPTURE(bench_benign, params_absent, -1.0)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(bench_benign, defense_off, 0.0)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);
BENCHMARK_CAPTURE(bench_benign, defense_on, 1.0)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

void print_figure() {
  const std::string absent = benign_report(-1.0);
  const std::string off = benign_report(0.0);
  const std::string on = benign_report(1.0);
  bool ok = true;
  if (off != absent) {
    std::printf("FAIL: explicit misbehavior_defense=0 changed the benign "
                "report\n");
    ok = false;
  }
  if (on != absent) {
    std::printf("FAIL: misbehavior_defense=1 changed the benign report "
                "(an idle scorer must be unobservable)\n");
    ok = false;
  }
  if (absent.find("misbehavior") != std::string::npos) {
    std::printf("FAIL: benign report leaks adversarial metrics\n");
    ok = false;
  }
  if (ok) {
    std::printf("benign reports byte-identical across defense params "
                "(%zu bytes)\n", absent.size());
  }

  // Interleave the two variants and take the minimum of each: min-of-N is
  // the noise-robust estimator for CPU-bound work, and interleaving keeps
  // frequency/cache drift from biasing one side.
  const int reps = 7;
  double base_s = 1e300;
  double defended_s = 1e300;
  timed_run_seconds(-1.0);  // warm caches outside the measurement
  timed_run_seconds(1.0);
  for (int i = 0; i < reps; ++i) {
    base_s = std::min(base_s, timed_run_seconds(-1.0));
    defended_s = std::min(defended_s, timed_run_seconds(1.0));
  }
  const double delta = (defended_s - base_s) / base_s;
  std::printf("benign wall-clock: base %.3f s, defense on %.3f s, "
              "delta %+.2f%% (gate: < 2%%)\n",
              base_s, defended_s, delta * 100.0);
  if (delta >= 0.02) {
    std::printf("FAIL: defense overhead above the 2%% gate\n");
    ok = false;
  }
  if (!ok) std::exit(1);
  std::printf("adversarial overhead gate passed\n");
}

}  // namespace

STABL_BENCH_MAIN(print_figure)
