// Micro-benchmarks of the simulation substrate: event queue, PRNG, timer
// churn, network delivery and mempool operations. These bound how much
// simulated traffic a STABL campaign can afford.
#include <benchmark/benchmark.h>

#include "chain/mempool.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace stabl;

void event_queue_schedule_pop(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::size_t i = 0; i < count; ++i) {
      queue.schedule(sim::us(static_cast<std::int64_t>((i * 7919) % 100000)),
                     [] {});
    }
    sim::Time at{};
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop(at));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(count) *
                          state.iterations());
}
BENCHMARK(event_queue_schedule_pop)->Range(1 << 10, 1 << 16);

void rng_u64(benchmark::State& state) {
  sim::Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(rng_u64);

void rng_sample_without_replacement(benchmark::State& state) {
  sim::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.sample_without_replacement(10, 6));
  }
}
BENCHMARK(rng_sample_without_replacement);

void simulation_timer_churn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation simulation(1);
    int fired = 0;
    for (int i = 0; i < 10000; ++i) {
      simulation.schedule_after(sim::us(i % 997), [&] { ++fired; });
    }
    simulation.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(10000 * state.iterations());
}
BENCHMARK(simulation_timer_churn);

struct NullEndpoint final : net::Endpoint {
  void deliver(const net::Envelope&) override {}
  [[nodiscard]] bool endpoint_alive() const override { return true; }
};

void network_delivery(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation simulation(1);
    net::Network network(simulation, net::LatencyConfig{});
    NullEndpoint sinks[10];
    for (net::NodeId id = 0; id < 10; ++id) network.attach(id, &sinks[id]);
    auto payload = std::make_shared<const net::ControlPayload>(
        net::ControlPayload::Kind::kPing);
    for (int i = 0; i < 10000; ++i) {
      network.send(static_cast<net::NodeId>(i % 10),
                   static_cast<net::NodeId>((i + 1) % 10), payload);
    }
    simulation.run();
    benchmark::DoNotOptimize(network.stats().delivered);
  }
  state.SetItemsProcessed(10000 * state.iterations());
}
BENCHMARK(network_delivery);

void mempool_add_collect_remove(benchmark::State& state) {
  const auto count = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    chain::Mempool pool;
    for (std::uint64_t i = 0; i < count; ++i) {
      chain::Transaction tx;
      tx.id = i + 1;
      tx.from = static_cast<chain::AccountId>(i % 5);
      tx.nonce = i / 5;
      pool.add(tx);
    }
    const auto batch = pool.collect_ready(
        count, [](chain::AccountId) { return std::uint64_t{0}; });
    pool.remove(batch);
    benchmark::DoNotOptimize(pool.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(count) *
                          state.iterations());
}
BENCHMARK(mempool_add_collect_remove)->Range(1 << 8, 1 << 14);

}  // namespace

BENCHMARK_MAIN();
