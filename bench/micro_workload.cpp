// Workload-pipeline scaling gate: arrival generation at a 1M-client
// population (plain binary, no google-benchmark loop — it times whole
// passes itself and enforces a CI floor).
//
// Two layers:
//
//  1. Population assignment — make_client_plan for every client of a 1M
//     population (Zipf CDF, account ranges, per-client RNG seeds). This
//     is the per-run setup cost of the traffic model; it must stay linear
//     and allocation-light.
//
//  2. Arrival generation — 1M clients enrolled into the batched
//     ArrivalScheduler under a mixed-region, mixed-shape profile set
//     (the population identity splits of core/arrivals.hpp), driven for a
//     slice of sim time. The quantity gated is generated arrivals per
//     wall second: the cohort fan-out loop is the hot path of every
//     large-scale cell, and a per-client-timer regression (one event per
//     client per arrival) lands orders of magnitude below the floor.
//
// Environment:
//   STABL_WORKLOAD_CLIENTS     population size (default 1,000,000)
//   STABL_WORKLOAD_JSON        write results as JSON to this path
//   STABL_WORKLOAD_MIN_PLANS_PER_S     gate floor, layer 1 (default 1e6)
//   STABL_WORKLOAD_MIN_ARRIVALS_PER_S  gate floor, layer 2 (default 2e6)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/arrivals.hpp"
#include "core/metrics.hpp"
#include "core/report.hpp"
#include "core/traffic.hpp"
#include "core/workload.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace stabl;

struct CountingSink final : core::ArrivalSink {
  void generate_arrival() override { ++emitted; }
  [[nodiscard]] bool arrivals_active() const override { return true; }
  std::uint64_t emitted = 0;
};

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

}  // namespace

int main() {
  std::size_t clients = 1'000'000;
  if (const char* env = std::getenv("STABL_WORKLOAD_CLIENTS")) {
    const long v = std::atol(env);
    if (v >= 1000) clients = static_cast<std::size_t>(v);
  }

  core::TrafficConfig traffic;
  traffic.accounts_per_client = 8;
  traffic.zipf_exponent = 1.1;
  traffic.hot_fraction = 0.1;
  traffic.regions = 4;

  // Layer 1: population assignment for every client, best-of-3.
  core::TrafficModel model(traffic);
  double plans_per_s = 0.0;
  std::uint64_t account_checksum = 0;
  for (int rep = 0; rep < 3; ++rep) {
    core::WallTimer timer;
    std::uint64_t checksum = 0;
    for (std::size_t i = 0; i < clients; ++i) {
      const core::ClientTrafficPlan plan =
          core::make_client_plan(traffic, model, i, /*tx_seed=*/42);
      checksum ^= plan.rng_seed + plan.accounts.front();
    }
    account_checksum = checksum;
    plans_per_s = std::max(
        plans_per_s, static_cast<double>(clients) / (timer.elapsed_ms() / 1e3));
  }

  // Layer 2: the enrolled population generating arrivals. Mixed shapes
  // and regions exercise the cohort regrouping: 2 shapes x 4 regions = 8
  // aggregate processes carrying 125k members each.
  sim::Simulation simulation(1);
  core::ArrivalScheduler scheduler(simulation);
  std::vector<std::unique_ptr<CountingSink>> sinks;
  sinks.reserve(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    core::ArrivalProfile profile;
    profile.workload.tps = 10.0;  // per client; ticks every 100 ms
    if (i % 2 == 1) {
      profile.workload.shape = core::WorkloadShape::kBursty;
      profile.workload.burst_period = sim::sec(5);
    }
    profile.stop_at = sim::sec(1);
    profile.region = static_cast<std::uint32_t>((i / 2) % traffic.regions);
    profile.population =
        static_cast<std::uint32_t>(traffic.accounts_per_client);
    sinks.push_back(std::make_unique<CountingSink>());
    scheduler.enroll(profile, sinks.back().get());
  }
  core::WallTimer timer;
  simulation.run_until(sim::ms(300));
  const double wall_s = timer.elapsed_ms() / 1e3;
  const double arrivals_per_s =
      static_cast<double>(scheduler.generated()) / wall_s;

  core::Table table({"layer", "clients", "cohorts", "throughput"});
  table.add_row({"population plans", std::to_string(clients), "-",
                 core::Table::num(plans_per_s, 0) + " plans/s"});
  table.add_row({"arrival generation", std::to_string(clients),
                 std::to_string(scheduler.cohorts()),
                 core::Table::num(arrivals_per_s, 0) + " arrivals/s"});
  std::printf("=== workload pipeline at %zu clients ===\n%s", clients,
              table.to_string().c_str());
  std::printf("generated %llu arrivals in %.2f s (checksum %llx)\n",
              static_cast<unsigned long long>(scheduler.generated()), wall_s,
              static_cast<unsigned long long>(account_checksum));

  if (const char* path = std::getenv("STABL_WORKLOAD_JSON")) {
    std::ostringstream json;
    json << "{\"clients\":" << clients
         << ",\"cohorts\":" << scheduler.cohorts()
         << ",\"plans_per_s\":" << core::Table::num(plans_per_s, 0)
         << ",\"arrivals_per_s\":" << core::Table::num(arrivals_per_s, 0)
         << "}";
    std::ofstream out(path);
    out << json.str() << '\n';
    std::printf("wrote %s\n", path);
  }

  // CI floors: conservative low-water marks (the measured numbers sit
  // several-fold above on a developer machine); a regression to
  // per-client timers or quadratic population setup lands far below.
  const double min_plans = env_double("STABL_WORKLOAD_MIN_PLANS_PER_S", 1e6);
  const double min_arrivals =
      env_double("STABL_WORKLOAD_MIN_ARRIVALS_PER_S", 2e6);
  bool ok = true;
  if (plans_per_s < min_plans) {
    std::fprintf(stderr,
                 "micro_workload: REGRESSION: %.0f plans/s < floor %.0f\n",
                 plans_per_s, min_plans);
    ok = false;
  }
  if (arrivals_per_s < min_arrivals) {
    std::fprintf(
        stderr,
        "micro_workload: REGRESSION: %.0f arrivals/s < floor %.0f\n",
        arrivals_per_s, min_arrivals);
    ok = false;
  }
  if (ok) std::printf("workload gate passed\n");
  return ok ? 0 : 1;
}
