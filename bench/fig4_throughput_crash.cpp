// Fig. 4 — throughput over time, f=t simultaneous crashes (§4)
#include "fig_throughput_common.hpp"

namespace {

using namespace stabl;
constexpr core::FaultType kFault = core::FaultType::kCrash;

[[maybe_unused]] const bool registered =
    bench::register_chain_benchmarks(kFault);

void print_figure() {
  bench::print_throughput_figure(kFault, "Fig. 4 — throughput over time, f=t simultaneous crashes (§4)");
}

}  // namespace

STABL_BENCH_MAIN(print_figure)
