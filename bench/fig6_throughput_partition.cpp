// Fig. 6 — throughput over time, transient partition of f=t+1 nodes (§6)
#include "fig_throughput_common.hpp"

namespace {

using namespace stabl;
constexpr core::FaultType kFault = core::FaultType::kPartition;

[[maybe_unused]] const bool registered =
    bench::register_chain_benchmarks(kFault);

void print_figure() {
  bench::print_throughput_figure(kFault, "Fig. 6 — throughput over time, transient partition of f=t+1 nodes (§6)");
}

}  // namespace

STABL_BENCH_MAIN(print_figure)
