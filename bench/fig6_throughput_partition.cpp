// Fig. 6 — throughput over time, transient partition of f=t+1 nodes (§6)
#include "fig_throughput_common.hpp"

namespace {

using namespace stabl;
constexpr core::FaultType kFault = core::FaultType::kPartition;

void algorand(benchmark::State& s) {
  bench::run_pair_benchmark(s, core::ChainKind::kAlgorand, kFault);
}
void aptos(benchmark::State& s) {
  bench::run_pair_benchmark(s, core::ChainKind::kAptos, kFault);
}
void avalanche(benchmark::State& s) {
  bench::run_pair_benchmark(s, core::ChainKind::kAvalanche, kFault);
}
void redbelly(benchmark::State& s) {
  bench::run_pair_benchmark(s, core::ChainKind::kRedbelly, kFault);
}
void solana(benchmark::State& s) {
  bench::run_pair_benchmark(s, core::ChainKind::kSolana, kFault);
}
BENCHMARK(algorand)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(aptos)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(avalanche)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(redbelly)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(solana)->Iterations(1)->Unit(benchmark::kSecond);

void print_figure() {
  bench::print_throughput_figure(kFault, "Fig. 6 — throughput over time, transient partition of f=t+1 nodes (§6)");
}

}  // namespace

STABL_BENCH_MAIN(print_figure)
