// Fig. 3d — sensitivity to redundant requests / secure client (§7)
// One benchmark per chain; the panel's bar values print afterwards.
#include "fig3_sensitivity_bars.hpp"

namespace {

using namespace stabl;
constexpr core::FaultType kFault = core::FaultType::kSecureClient;

void algorand(benchmark::State& s) {
  bench::run_pair_benchmark(s, core::ChainKind::kAlgorand, kFault);
}
void aptos(benchmark::State& s) {
  bench::run_pair_benchmark(s, core::ChainKind::kAptos, kFault);
}
void avalanche(benchmark::State& s) {
  bench::run_pair_benchmark(s, core::ChainKind::kAvalanche, kFault);
}
void redbelly(benchmark::State& s) {
  bench::run_pair_benchmark(s, core::ChainKind::kRedbelly, kFault);
}
void solana(benchmark::State& s) {
  bench::run_pair_benchmark(s, core::ChainKind::kSolana, kFault);
}
BENCHMARK(algorand)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(aptos)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(avalanche)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(redbelly)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(solana)->Iterations(1)->Unit(benchmark::kSecond);

void print_figure() {
  bench::print_fig3_panel(kFault, "Fig. 3d — sensitivity to redundant requests / secure client (§7)");
}

}  // namespace

STABL_BENCH_MAIN(print_figure)
