// Fig. 3d — sensitivity to redundant requests / secure client (§7)
// One benchmark per chain; the panel's bar values print afterwards.
#include "fig3_sensitivity_bars.hpp"

namespace {

using namespace stabl;
constexpr core::FaultType kFault = core::FaultType::kSecureClient;

[[maybe_unused]] const bool registered =
    bench::register_chain_benchmarks(kFault);

void print_figure() {
  bench::print_fig3_panel(kFault, "Fig. 3d — sensitivity to redundant requests / secure client (§7)");
}

}  // namespace

STABL_BENCH_MAIN(print_figure)
