// Extension (paper future work): "measure the sensitivity of blockchains
// in larger networks, especially for probabilistic consensus protocols
// that rely on the law of large numbers". Sweep the network size and
// report crash sensitivity per chain.
#include "bench_common.hpp"

#include <cstdio>

namespace {

using namespace stabl;

constexpr std::size_t kSizes[] = {7, 10, 16};

core::SensitivityRun& result(core::ChainKind chain, std::size_t n) {
  static std::map<std::pair<core::ChainKind, std::size_t>,
                  core::SensitivityRun>
      cache;
  const auto key = std::make_pair(chain, n);
  auto it = cache.find(key);
  if (it == cache.end()) {
    core::ExperimentConfig config =
        bench::paper_config(chain, core::FaultType::kCrash);
    config.n = n;
    it = cache.emplace(key, core::run_sensitivity(config)).first;
  }
  return it->second;
}

void sweep(benchmark::State& state) {
  const auto chain = static_cast<core::ChainKind>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(result(chain, n).score.value);
  }
}
BENCHMARK(sweep)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {7, 10, 16}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

void print_figure() {
  std::printf("\n=== Extension: crash sensitivity vs network size ===\n");
  core::Table table({"chain", "n=7 (t, score)", "n=10 (t, score)",
                     "n=16 (t, score)"});
  for (const core::ChainKind chain : core::kAllChains) {
    std::vector<std::string> row{core::to_string(chain)};
    for (const std::size_t n : kSizes) {
      const core::SensitivityRun& run = result(chain, n);
      row.push_back("t=" +
                    std::to_string(core::fault_tolerance(chain, n)) + ", " +
                    core::format_score(run.score) +
                    (run.altered.live_at_end ? "" : " DEAD"));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());
}

}  // namespace

STABL_BENCH_MAIN(print_figure)
