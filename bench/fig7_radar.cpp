// Fig. 7: "The sensitivity of the tested blockchains to partition, crash,
// transient failures and to the mechanism that copes with Byzantine
// nodes" — the radar chart over all four dimensions for all five chains.
#include "bench_common.hpp"

#include <cstdio>

#include "core/radar.hpp"

namespace {

using namespace stabl;

constexpr core::FaultType kDims[] = {
    core::FaultType::kCrash, core::FaultType::kTransient,
    core::FaultType::kPartition, core::FaultType::kSecureClient};

void radar_pair(benchmark::State& state, core::ChainKind chain,
                core::FaultType fault) {
  bench::run_pair_benchmark(state, chain, fault);
}

// Register all 20 chain x dimension pairs.
#define RADAR_BENCH(chain_name, chain_enum)                                \
  void chain_name##_crash(benchmark::State& s) {                          \
    radar_pair(s, core::ChainKind::chain_enum, core::FaultType::kCrash);  \
  }                                                                        \
  void chain_name##_transient(benchmark::State& s) {                      \
    radar_pair(s, core::ChainKind::chain_enum,                            \
               core::FaultType::kTransient);                              \
  }                                                                        \
  void chain_name##_partition(benchmark::State& s) {                      \
    radar_pair(s, core::ChainKind::chain_enum,                            \
               core::FaultType::kPartition);                              \
  }                                                                        \
  void chain_name##_byzantine(benchmark::State& s) {                      \
    radar_pair(s, core::ChainKind::chain_enum,                            \
               core::FaultType::kSecureClient);                           \
  }                                                                        \
  BENCHMARK(chain_name##_crash)->Iterations(1)->Unit(benchmark::kSecond); \
  BENCHMARK(chain_name##_transient)                                       \
      ->Iterations(1)                                                      \
      ->Unit(benchmark::kSecond);                                         \
  BENCHMARK(chain_name##_partition)                                       \
      ->Iterations(1)                                                      \
      ->Unit(benchmark::kSecond);                                         \
  BENCHMARK(chain_name##_byzantine)                                       \
      ->Iterations(1)                                                      \
      ->Unit(benchmark::kSecond)

RADAR_BENCH(algorand, kAlgorand);
RADAR_BENCH(aptos, kAptos);
RADAR_BENCH(avalanche, kAvalanche);
RADAR_BENCH(redbelly, kRedbelly);
RADAR_BENCH(solana, kSolana);

void print_figure() {
  core::RadarSummary radar;
  for (const core::ChainKind chain : core::kAllChains) {
    for (const core::FaultType fault : kDims) {
      radar.record(chain, fault, bench::cached_run(chain, fault).score);
    }
  }
  std::printf("\n=== Fig. 7: sensitivity radar of the tested blockchains"
              " ===\n%s",
              radar.to_table().c_str());
  std::printf("inf = liveness lost; trailing '*' = the altered environment"
              " improved latency\n");
}

}  // namespace

STABL_BENCH_MAIN(print_figure)
