// Fig. 7: "The sensitivity of the tested blockchains to partition, crash,
// transient failures and to the mechanism that copes with Byzantine
// nodes" — the radar chart over all four dimensions for all five chains.
#include "bench_common.hpp"

#include <cstdio>

#include "core/radar.hpp"

namespace {

using namespace stabl;

constexpr core::FaultType kDims[] = {
    core::FaultType::kCrash, core::FaultType::kTransient,
    core::FaultType::kPartition, core::FaultType::kSecureClient};

// Register all 20 chain x dimension pairs.
[[maybe_unused]] const bool registered = bench::register_chain_benchmarks(
    {core::FaultType::kCrash, core::FaultType::kTransient,
     core::FaultType::kPartition, core::FaultType::kSecureClient});

void print_figure() {
  core::RadarSummary radar;
  for (const core::ChainKind chain : core::kAllChains) {
    for (const core::FaultType fault : kDims) {
      radar.record(chain, fault, bench::cached_run(chain, fault).score);
    }
  }
  std::printf("\n=== Fig. 7: sensitivity radar of the tested blockchains"
              " ===\n%s",
              radar.to_table().c_str());
  std::printf("inf = liveness lost; trailing '*' = the altered environment"
              " improved latency\n");
}

}  // namespace

STABL_BENCH_MAIN(print_figure)
