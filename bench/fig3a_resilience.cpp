// Fig. 3a — sensitivity to f=t crashes (Resilience, §4)
// One benchmark per chain; the panel's bar values print afterwards.
#include "fig3_sensitivity_bars.hpp"

namespace {

using namespace stabl;
constexpr core::FaultType kFault = core::FaultType::kCrash;

[[maybe_unused]] const bool registered =
    bench::register_chain_benchmarks(kFault);

void print_figure() {
  bench::print_fig3_panel(kFault, "Fig. 3a — sensitivity to f=t crashes (Resilience, §4)");
}

}  // namespace

STABL_BENCH_MAIN(print_figure)
