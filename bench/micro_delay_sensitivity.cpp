// Extension: sensitivity to transient communication *delays* (tc-netem
// delay rather than loss). The paper observed that delays alone crash all
// of Solana's validators and that Avalanche "stops working when some
// messages arrive 2 minutes late"; this bench scores all five chains under
// a 120 s delay injected on f = t+1 nodes for the middle third of the run.
#include "fig3_sensitivity_bars.hpp"

#include <cstdio>

namespace {

using namespace stabl;

void algorand(benchmark::State& s) {
  bench::run_pair_benchmark(s, core::ChainKind::kAlgorand,
                            core::FaultType::kDelay);
}
void aptos(benchmark::State& s) {
  bench::run_pair_benchmark(s, core::ChainKind::kAptos,
                            core::FaultType::kDelay);
}
void avalanche(benchmark::State& s) {
  bench::run_pair_benchmark(s, core::ChainKind::kAvalanche,
                            core::FaultType::kDelay);
}
void redbelly(benchmark::State& s) {
  bench::run_pair_benchmark(s, core::ChainKind::kRedbelly,
                            core::FaultType::kDelay);
}
void solana(benchmark::State& s) {
  bench::run_pair_benchmark(s, core::ChainKind::kSolana,
                            core::FaultType::kDelay);
}
BENCHMARK(algorand)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(aptos)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(avalanche)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(redbelly)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(solana)->Iterations(1)->Unit(benchmark::kSecond);

void print_figure() {
  bench::print_fig3_panel(
      core::FaultType::kDelay,
      "Extension: sensitivity to 120s communication delays on f=t+1 nodes");
}

}  // namespace

STABL_BENCH_MAIN(print_figure)
