// Mitigation radar: how much sensitivity each mitigation layer removes,
// per chain, under the crash fault the nversion design targets.
//
// For every paper chain the bench runs the matched pair grid of
// core/campaign.hpp's mitigation study by hand — one unmitigated
// sensitivity pair plus three mitigated variants over the same seed and
// fault schedule:
//
//   nversion  the nversion_<chain> meta-chain alone (node-level failover)
//   client    hedged submissions + EWMA endpoint scoring alone (resilient
//             client, base chain unchanged)
//   full      both layers together (the --mitigation-study default stack)
//
// and prints the paired scores and deltas as a table plus machine-readable
// CSV — the per-layer "radar" of where the mitigation budget goes.
//
// Environment:
//   STABL_BENCH_DURATION   simulated seconds per run (default 120)
//   STABL_MITIGATION_CSV   also write the CSV rows to this path
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"

namespace {

using namespace stabl;

std::string score_text(const core::SensitivityScore& score) {
  if (score.invalid_baseline) return "invalid";
  if (score.infinite) return "inf";
  return core::Table::num(score.value, 4);
}

std::string delta_text(const core::SensitivityScore& unmitigated,
                       const core::SensitivityScore& mitigated) {
  if (unmitigated.invalid_baseline || mitigated.invalid_baseline) return "-";
  if (unmitigated.infinite && mitigated.infinite) return "0";
  if (unmitigated.infinite) return "inf";
  if (mitigated.infinite) return "-inf";
  return core::Table::num(unmitigated.value - mitigated.value, 4);
}

}  // namespace

int main() {
  long duration_s = 120;
  if (const char* env = std::getenv("STABL_BENCH_DURATION")) {
    duration_s = std::atol(env);
    if (duration_s < 30) duration_s = 30;
  }

  struct Variant {
    const char* name;
    core::MitigationLayers layers;
  };
  const std::vector<Variant> variants = {
      {"nversion", {true, false, false}},
      {"client", {false, true, true}},
      {"full", {true, true, true}},
  };

  core::Table table({"chain", "unmitigated", "nversion", "client", "full",
                     "best_delta"});
  std::string csv = "chain,variant,score,delta\n";
  for (const core::ChainKind chain : core::kAllChains) {
    core::ExperimentConfig base;
    base.chain = chain;
    base.fault = core::FaultType::kCrash;
    base.duration = sim::sec(duration_s);
    // Fault window at the duration's integer thirds, exactly the
    // stabl_cli/scenario resolution, so short bench runs still inject.
    base.inject_at = sim::sec(duration_s / 3);
    base.recover_at = sim::sec(2 * duration_s / 3);
    const core::SensitivityRun unmitigated = core::run_sensitivity(base);
    csv += core::csv_join({core::to_string(chain), "unmitigated",
                           score_text(unmitigated.score), "0"}) +
           "\n";

    std::vector<std::string> row = {core::to_string(chain),
                                    score_text(unmitigated.score)};
    std::string best_delta = "0";
    double best = 0.0;
    for (const Variant& variant : variants) {
      const core::SensitivityRun mitigated = core::run_sensitivity(
          core::mitigated_config(base, variant.layers));
      row.push_back(score_text(mitigated.score));
      const std::string delta =
          delta_text(unmitigated.score, mitigated.score);
      csv += core::csv_join({core::to_string(chain), variant.name,
                             score_text(mitigated.score), delta}) +
             "\n";
      if (!unmitigated.score.infinite && !mitigated.score.infinite &&
          !unmitigated.score.invalid_baseline &&
          !mitigated.score.invalid_baseline) {
        const double d = unmitigated.score.value - mitigated.score.value;
        if (d > best) {
          best = d;
          best_delta = delta;
        }
      } else if (unmitigated.score.infinite && !mitigated.score.infinite) {
        best_delta = "inf";
      }
    }
    row.push_back(best_delta);
    table.add_row(row);
  }

  std::printf("mitigation radar: crash-fault sensitivity per mitigation "
              "layer (%lds runs)\n%s",
              duration_s, table.to_string().c_str());
  std::printf("\n%s", csv.c_str());
  if (const char* path = std::getenv("STABL_MITIGATION_CSV")) {
    std::ofstream file(path);
    file << csv;
    if (!file) {
      std::fprintf(stderr, "mitigation_radar: cannot write %s\n", path);
      return 2;
    }
    std::printf("\ncsv written to %s\n", path);
  }
  return 0;
}
