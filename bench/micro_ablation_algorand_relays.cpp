// Ablation: Algorand relay topology vs the paper's flat deployment.
//
// §7 explains why the secure client leaves Algorand unchanged: "since we
// used a fully-connected network, where each node acts both as relay and
// participant, we do not observe the expected reduction in transaction
// latency... the network lacks the hierarchical or segmented structure
// that typically benefits from such optimizations". This bench builds that
// hierarchical structure (3 dedicated relays) and measures the secure
// client's effect in both deployments.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>

#include "chain/hash.hpp"
#include "chains/algorand/algorand.hpp"
#include "core/client.hpp"
#include "core/report.hpp"
#include "core/sensitivity.hpp"

namespace {

using namespace stabl;

struct Outcome {
  double mean_latency = 0.0;
  std::uint64_t committed = 0;
};

long duration_s() {
  if (const char* env = std::getenv("STABL_BENCH_DURATION")) {
    const long v = std::atol(env);
    if (v >= 30) return v;
  }
  return 400;
}

Outcome& run(std::size_t relays, int fanout) {
  static std::map<std::pair<std::size_t, int>, Outcome> cache;
  const auto key = std::make_pair(relays, fanout);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  const long duration = duration_s();
  sim::Simulation simulation(42);
  net::Network network(simulation, net::LatencyConfig{});
  algorand::AlgorandConfig config;
  config.relay_count = relays;
  chain::NodeConfig node_config;
  node_config.n = 10;
  node_config.network_seed = chain::mix64(42);
  auto nodes = algorand::make_cluster(simulation, network, node_config,
                                      config);
  for (auto& node : nodes) node->start();
  std::vector<std::unique_ptr<core::ClientMachine>> clients;
  for (std::size_t i = 0; i < 5; ++i) {
    core::ClientConfig client_config;
    client_config.id = static_cast<net::NodeId>(10 + i);
    client_config.account = static_cast<chain::AccountId>(i);
    client_config.recipient = static_cast<chain::AccountId>(1000 + i);
    client_config.tps = 40.0;
    client_config.stop_at = sim::sec(duration);
    client_config.tx_seed = chain::mix64(42 ^ 0xC11E57ull);
    // Clients attach to participation nodes (5..9 are leaves when relays
    // are dedicated; in the flat deployment every node is equivalent).
    for (int k = 0; k < fanout; ++k) {
      client_config.endpoints.push_back(static_cast<net::NodeId>(
          5 + (i + static_cast<std::size_t>(k)) % 5));
    }
    clients.push_back(std::make_unique<core::ClientMachine>(
        simulation, network, client_config));
    clients.back()->start();
  }
  simulation.run_until(sim::sec(duration));
  Outcome outcome;
  std::vector<double> latencies;
  for (const auto& client : clients) {
    outcome.committed += client->committed();
    latencies.insert(latencies.end(), client->latencies().begin(),
                     client->latencies().end());
  }
  outcome.mean_latency = core::Ecdf(latencies).mean();
  return cache.emplace(key, outcome).first->second;
}

void flat_fanout1(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run(0, 1).committed);
}
void flat_fanout4(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run(0, 4).committed);
}
void relays3_fanout1(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run(3, 1).committed);
}
void relays3_fanout4(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run(3, 4).committed);
}
BENCHMARK(flat_fanout1)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(flat_fanout4)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(relays3_fanout1)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(relays3_fanout4)->Iterations(1)->Unit(benchmark::kSecond);

void print_figure() {
  std::printf("\n=== Ablation: Algorand topology vs secure-client benefit"
              " ===\n");
  core::Table table({"topology", "fanout 1 mean", "fanout 4 mean",
                     "secure-client gain"});
  table.add_row(
      {"flat (paper deployment)",
       core::Table::num(run(0, 1).mean_latency, 3) + "s",
       core::Table::num(run(0, 4).mean_latency, 3) + "s",
       core::Table::num(run(0, 1).mean_latency - run(0, 4).mean_latency,
                        3) +
           "s"});
  table.add_row(
      {"3 dedicated relays",
       core::Table::num(run(3, 1).mean_latency, 3) + "s",
       core::Table::num(run(3, 4).mean_latency, 3) + "s",
       core::Table::num(run(3, 1).mean_latency - run(3, 4).mean_latency,
                        3) +
           "s"});
  std::printf("%s", table.to_string().c_str());
  std::printf("(the hierarchical topology is where redundant submission"
              " pays off — §7's explanation, demonstrated)\n");
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  print_figure();
  ::benchmark::Shutdown();
  return 0;
}
