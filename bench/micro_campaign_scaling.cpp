// micro_campaign_scaling — throughput of the parallel campaign engine.
//
// Runs the full 5-chain x 4-fault matrix (20 cells, one seed each) through
// run_campaign at 1, 2, 4 and 8 worker threads and reports cells/sec per
// jobs setting, the speedup over serial, and a determinism check: every
// parallel run's CSV must be byte-identical to the serial run's.
//
// STABL_BENCH_DURATION (seconds, >=30) shortens the per-cell simulation
// for smoke runs; the default is the paper's 400 s geometry.
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "core/report.hpp"

namespace {

using namespace stabl;

const std::vector<unsigned> kJobSettings = {1, 2, 4, 8};

core::CampaignConfig matrix_config(unsigned jobs) {
  const long duration = bench::bench_duration_s();
  core::CampaignConfig config;
  config.base.duration = sim::sec(duration);
  config.base.inject_at = sim::sec(duration / 3);
  config.base.recover_at = sim::sec(2 * duration / 3);
  config.jobs = jobs;
  return config;
}

struct ScalingSample {
  double seconds = 0.0;
  std::string csv;
};

/// Per-jobs cache: the benchmark pass times each setting once; the print
/// step reuses the wall times and CSVs.
std::map<unsigned, ScalingSample>& samples() {
  static std::map<unsigned, ScalingSample> cache;
  return cache;
}

const ScalingSample& run_at(unsigned jobs) {
  auto it = samples().find(jobs);
  if (it == samples().end()) {
    const auto start = std::chrono::steady_clock::now();
    const core::CampaignResult result = core::run_campaign(matrix_config(jobs));
    const auto stop = std::chrono::steady_clock::now();
    ScalingSample sample;
    sample.seconds = std::chrono::duration<double>(stop - start).count();
    sample.csv = result.to_csv();
    it = samples().emplace(jobs, std::move(sample)).first;
  }
  return it->second;
}

void campaign_matrix(benchmark::State& state) {
  const unsigned jobs = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    const ScalingSample& sample = run_at(jobs);
    benchmark::DoNotOptimize(sample.csv.data());
    state.counters["cells_per_s"] = 20.0 / sample.seconds;
  }
}
BENCHMARK(campaign_matrix)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void print_scaling() {
  for (const unsigned jobs : kJobSettings) run_at(jobs);
  const ScalingSample& serial = run_at(1);
  std::printf("\ncampaign scaling: 20-cell matrix, %lds per cell\n",
              bench::bench_duration_s());
  core::Table table({"jobs", "wall s", "cells/s", "speedup", "csv==serial"});
  for (const unsigned jobs : kJobSettings) {
    const ScalingSample& sample = run_at(jobs);
    table.add_row({std::to_string(jobs),
                   core::Table::num(sample.seconds, 2),
                   core::Table::num(20.0 / sample.seconds, 2),
                   core::Table::num(serial.seconds / sample.seconds, 2),
                   sample.csv == serial.csv ? "yes" : "NO"});
  }
  std::printf("%s", table.to_string().c_str());
  for (const unsigned jobs : kJobSettings) {
    if (run_at(jobs).csv != serial.csv) {
      std::printf("DETERMINISM VIOLATION: jobs=%u CSV differs from serial\n",
                  jobs);
    }
  }
}

}  // namespace

STABL_BENCH_MAIN(print_scaling)
