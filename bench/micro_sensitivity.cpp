// Micro-benchmarks of the sensitivity metric itself: eCDF construction,
// super-cumulative evaluation and full score computation at the sample
// sizes a 400 s / 200 TPS campaign produces (~80k latencies).
#include <benchmark/benchmark.h>

#include "core/sensitivity.hpp"
#include "sim/rng.hpp"

namespace {

using namespace stabl;

std::vector<double> synthetic_latencies(std::size_t n, double median,
                                        std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(rng.lognormal_median(median, 0.5));
  }
  return xs;
}

void ecdf_build(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto xs = synthetic_latencies(n, 2.0, 3);
  for (auto _ : state) {
    auto copy = xs;
    core::Ecdf ecdf(std::move(copy));
    benchmark::DoNotOptimize(ecdf.mean());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(ecdf_build)->Range(1 << 10, 1 << 17);

void super_cumulative_eval(benchmark::State& state) {
  const core::Ecdf ecdf(synthetic_latencies(80000, 2.0, 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::super_cumulative(ecdf, ecdf.max(), 0.25));
  }
}
BENCHMARK(super_cumulative_eval);

void sensitivity_score_full(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto baseline = synthetic_latencies(n, 2.0, 3);
  const auto altered = synthetic_latencies(n, 5.0, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sensitivity(baseline, altered));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(sensitivity_score_full)->Range(1 << 12, 1 << 17);

void ecdf_integral_eval(benchmark::State& state) {
  const core::Ecdf ecdf(synthetic_latencies(80000, 2.0, 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ecdf_integral(ecdf, ecdf.max()));
  }
}
BENCHMARK(ecdf_integral_eval);

}  // namespace

BENCHMARK_MAIN();
