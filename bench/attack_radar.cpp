// Sensitivity-to-attack radar: the adversarial companion of Fig. 7. The
// paper's radar asks how sensitive each chain is to *failures*; this one
// asks how sensitive each chain is to a Byzantine coalition of t nodes —
// equivocation, withholding, eclipse — and whether the peer-misbehavior
// defense changes the answer. Every run is audited by the invariant
// oracles, so each cell carries a verdict: SAFETY means a safety oracle
// fired (ledger fork or duplicate-height commit between honest replicas),
// liveness/loss mean the attack only cost progress, ok means it was
// absorbed.
#include "bench_common.hpp"

#include <cstdio>
#include <map>

#include "core/oracle.hpp"
#include "core/radar.hpp"

namespace {

using namespace stabl;

constexpr core::FaultType kAttackDims[] = {core::FaultType::kEquivocate,
                                           core::FaultType::kWithhold,
                                           core::FaultType::kEclipse};

struct AttackRun {
  core::SensitivityRun run;
  core::OracleReport report;
};

core::ExperimentConfig attack_config(core::ChainKind chain,
                                     core::FaultType fault, bool defend) {
  core::ExperimentConfig config = bench::paper_config(chain, fault);
  config.capture_replicas = true;  // the safety oracles need the ledgers
  if (defend) config.chain_params["misbehavior_defense"] = 1.0;
  return config;
}

AttackRun& cached_attack(core::ChainKind chain, core::FaultType fault,
                         bool defend) {
  static std::map<std::tuple<core::ChainKind, core::FaultType, bool>,
                  AttackRun>
      cache;
  const auto key = std::make_tuple(chain, fault, defend);
  auto it = cache.find(key);
  if (it == cache.end()) {
    const core::ExperimentConfig config =
        attack_config(chain, fault, defend);
    AttackRun attack;
    attack.run = core::run_sensitivity(config);
    attack.report = core::check_invariants(
        core::make_oracle_context(config), attack.run.altered);
    it = cache.emplace(key, std::move(attack)).first;
  }
  return it->second;
}

std::string verdict_label(const core::OracleReport& report) {
  if (report.safety_violation() != nullptr) return "SAFETY";
  if (report.violated()) return "liveness";
  if (report.verdict == core::OracleVerdict::kExpectedLoss) return "loss";
  return "ok";
}

[[maybe_unused]] const bool registered = [] {
  // Anchor the built-in chains before naming benchmarks after them: this
  // lambda runs at static-init time, before the chain TUs' registration
  // objects are otherwise guaranteed to exist.
  core::chain_registry();
  for (const core::ChainKind chain : core::kAllChains) {
    for (const core::FaultType fault : kAttackDims) {
      for (const bool defend : {false, true}) {
        const std::string name = core::to_string(chain) + "/" +
                                 core::to_string(fault) +
                                 (defend ? "/defended" : "/undefended");
        ::benchmark::RegisterBenchmark(
            name.c_str(),
            [chain, fault, defend](::benchmark::State& state) {
              for (auto _ : state) {
                const AttackRun& attack =
                    cached_attack(chain, fault, defend);
                ::benchmark::DoNotOptimize(attack.run.score.value);
                state.counters["score"] = attack.run.score.infinite
                                              ? -1.0
                                              : attack.run.score.value;
                state.counters["safety_violated"] =
                    attack.report.safety_violation() != nullptr ? 1.0
                                                                : 0.0;
              }
            })
            ->Iterations(1)
            ->Unit(::benchmark::kSecond);
      }
    }
  }
  return true;
}();

void print_figure() {
  core::RadarSummary radar;
  for (const core::ChainKind chain : core::kAllChains) {
    for (const core::FaultType fault : kAttackDims) {
      const AttackRun& off = cached_attack(chain, fault, false);
      const AttackRun& on = cached_attack(chain, fault, true);
      core::RadarAttackCell cell;
      cell.undefended = off.run.score;
      cell.undefended_verdict = verdict_label(off.report);
      cell.defended = on.run.score;
      cell.defended_verdict = verdict_label(on.report);
      radar.record_attack(chain, fault, cell);
    }
  }
  std::printf("\n=== Sensitivity-to-attack radar (t-node coalition; "
              "defenses off | on) ===\n%s",
              radar.attack_table().c_str());
  std::printf(
      "SAFETY = honest-replica ledger fork or duplicate-height commit;\n"
      "liveness = an oracle violation without a safety breach; loss = a\n"
      "documented expected loss; ok = attack absorbed. inf = liveness "
      "lost.\n");
}

}  // namespace

STABL_BENCH_MAIN(print_figure)
