// Shared plumbing for the figure-reproduction benches.
//
// Every figure binary runs the paper's experiment pairs (baseline vs
// altered) under google-benchmark timing, caches the results, and prints
// the figure's rows/series after the benchmark pass. The experiment
// duration defaults to the paper's 400 s and can be overridden with the
// STABL_BENCH_DURATION environment variable (seconds) for quick runs.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <initializer_list>
#include <map>
#include <string>

#include "core/experiment.hpp"
#include "core/report.hpp"

namespace stabl::bench {

inline long bench_duration_s() {
  if (const char* env = std::getenv("STABL_BENCH_DURATION")) {
    const long v = std::atol(env);
    if (v >= 30) return v;
  }
  return 400;
}

inline core::ExperimentConfig paper_config(core::ChainKind chain,
                                           core::FaultType fault) {
  const long duration = bench_duration_s();
  core::ExperimentConfig config;
  config.chain = chain;
  config.fault = fault;
  config.seed = 42;
  config.duration = sim::sec(duration);
  config.inject_at = sim::sec(duration / 3);
  config.recover_at = sim::sec(2 * duration / 3);
  if (fault == core::FaultType::kSecureClient) {
    config.client_fanout = 4;
    config.vcpus = 8.0;
  }
  return config;
}

/// Per-binary cache so the printing step reuses the benchmarked runs.
inline core::SensitivityRun& cached_run(core::ChainKind chain,
                                        core::FaultType fault) {
  static std::map<std::pair<core::ChainKind, core::FaultType>,
                  core::SensitivityRun>
      cache;
  const auto key = std::make_pair(chain, fault);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key,
                      core::run_sensitivity(paper_config(chain, fault)))
             .first;
  }
  return it->second;
}

/// Benchmark body: run (and cache) one chain/fault pair.
inline void run_pair_benchmark(benchmark::State& state,
                               core::ChainKind chain,
                               core::FaultType fault) {
  for (auto _ : state) {
    const core::SensitivityRun& run = cached_run(chain, fault);
    benchmark::DoNotOptimize(run.score.value);
    state.counters["score"] = run.score.infinite ? -1.0 : run.score.value;
    state.counters["committed"] =
        static_cast<double>(run.altered.committed);
    state.counters["events"] = static_cast<double>(run.altered.events);
  }
}

/// Registers a 1-iteration benchmark named `name` for one experiment pair.
inline void register_pair_benchmark(const std::string& name,
                                    core::ChainKind chain,
                                    core::FaultType fault) {
  ::benchmark::RegisterBenchmark(name.c_str(),
                                 [chain, fault](::benchmark::State& state) {
                                   run_pair_benchmark(state, chain, fault);
                                 })
      ->Iterations(1)
      ->Unit(::benchmark::kSecond);
}

/// Registers one benchmark per (chain, fault) cell — the registration
/// block every figure binary used to repeat by hand. Benchmarks are named
/// "<chain>" when a single fault is given and "<chain>/<fault>" otherwise.
/// Returns true so figures can register from a namespace-scope
/// initializer, the same way the BENCHMARK macro does.
inline bool register_chain_benchmarks(
    std::initializer_list<core::FaultType> faults) {
  for (const core::ChainKind chain : core::kAllChains) {
    for (const core::FaultType fault : faults) {
      register_pair_benchmark(
          faults.size() == 1 ? core::to_string(chain)
                             : core::to_string(chain) + "/" +
                                   core::to_string(fault),
          chain, fault);
    }
  }
  return true;
}

inline bool register_chain_benchmarks(core::FaultType fault) {
  return register_chain_benchmarks({fault});
}

/// Standard main: run benchmarks, then print the figure via `print`.
#define STABL_BENCH_MAIN(print_figure)                       \
  int main(int argc, char** argv) {                          \
    ::benchmark::Initialize(&argc, argv);                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                              \
    ::benchmark::RunSpecifiedBenchmarks();                   \
    print_figure();                                          \
    ::benchmark::Shutdown();                                 \
    return 0;                                                \
  }

}  // namespace stabl::bench
