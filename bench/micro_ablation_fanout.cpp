// Ablation: secure-client fan-out sweep (1..4 endpoints) per chain — the
// latency cost/benefit of Byzantine node tolerance as redundancy grows.
// 4 = max(t_B)+1 is the paper's setting.
#include "bench_common.hpp"

#include <cstdio>

namespace {

using namespace stabl;

core::ExperimentResult& result(core::ChainKind chain, int fanout) {
  static std::map<std::pair<core::ChainKind, int>, core::ExperimentResult>
      cache;
  const auto key = std::make_pair(chain, fanout);
  auto it = cache.find(key);
  if (it == cache.end()) {
    core::ExperimentConfig config = bench::paper_config(
        chain, core::FaultType::kSecureClient);
    config.client_fanout = fanout;
    it = cache.emplace(key, core::run_experiment(config)).first;
  }
  return it->second;
}

void sweep(benchmark::State& state) {
  const auto chain = static_cast<core::ChainKind>(state.range(0));
  const int fanout = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(result(chain, fanout).mean_latency_s);
  }
}
BENCHMARK(sweep)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {1, 2, 3, 4}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

void print_figure() {
  std::printf("\n=== Ablation: mean latency (s) vs secure-client fan-out"
              " ===\n");
  core::Table table({"chain", "fanout 1", "fanout 2", "fanout 3",
                     "fanout 4"});
  for (const core::ChainKind chain : core::kAllChains) {
    std::vector<std::string> row{core::to_string(chain)};
    for (int fanout = 1; fanout <= 4; ++fanout) {
      row.push_back(
          core::Table::num(result(chain, fanout).mean_latency_s, 3));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());
}

}  // namespace

STABL_BENCH_MAIN(print_figure)
