// micro_trace_overhead — throughput of a TraceSink emission site in the
// three states the harness can be in: disabled (null sink — what every
// production run pays at every instrumented call site), enabled recording
// to memory, and enabled with the recording serialized to a file.
//
// After the benchmark pass the binary gates the overhead contract from
// sim/trace.hpp: the disabled path (one pointer load + predicted branch)
// must cost < 2% over the same loop with no instrumentation at all. Exit
// status 1 when the gate fails, so CI can run this binary directly.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "core/trace.hpp"
#include "sim/trace.hpp"

namespace {

using namespace stabl;

// A unit of simulated "real work" per event: a xorshift step, roughly the
// cost of the cheapest state updates between emission points in the DES.
inline std::uint64_t work_step(std::uint64_t x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

// The exact shape instrumented call sites compile to. noinline so the
// compiler cannot specialize the loop for a compile-time-null sink — that
// would benchmark dead code, not the production pattern.
__attribute__((noinline)) void emission_site(sim::TraceSink* sink,
                                             std::uint64_t i) {
  if (sink != nullptr) {
    sink->instant(static_cast<std::int32_t>(i & 7),
                  sim::Time(static_cast<std::int64_t>(i)), "tick", "bench");
  }
}

void uninstrumented(benchmark::State& state) {
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (auto _ : state) {
    x = work_step(x);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}

void disabled(benchmark::State& state) {
  sim::TraceSink* sink = nullptr;
  benchmark::DoNotOptimize(sink);
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  std::uint64_t i = 0;
  for (auto _ : state) {
    x = work_step(x);
    emission_site(sink, i++);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}

void enabled_memory(benchmark::State& state) {
  sim::TraceSink sink;
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  std::uint64_t i = 0;
  for (auto _ : state) {
    x = work_step(x);
    emission_site(&sink, i++);
    benchmark::DoNotOptimize(x);
    if (sink.size() >= 1u << 20) sink.clear();  // bound the arena
  }
  state.SetItemsProcessed(state.iterations());
}

void enabled_file(benchmark::State& state) {
  // Emission plus the end-of-run cost of rendering and writing the JSON,
  // amortized per event — what `stabl_cli --trace` actually pays.
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  std::uint64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::TraceSink sink;
    constexpr std::uint64_t kBatch = 100'000;
    state.ResumeTiming();
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      x = work_step(x);
      emission_site(&sink, i);
      benchmark::DoNotOptimize(x);
    }
    const std::string json = core::trace_to_json(sink);
    std::FILE* out = std::fopen("micro_trace_overhead.trace.json", "wb");
    if (out != nullptr) {
      std::fwrite(json.data(), 1, json.size(), out);
      std::fclose(out);
    }
    events += kBatch;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

BENCHMARK(uninstrumented);
BENCHMARK(disabled);
BENCHMARK(enabled_memory);
BENCHMARK(enabled_file);

/// Steady-clock measurement of the two hot loops, outside google-benchmark
/// so the gate compares medians of repeated identical batches.
double batch_seconds(sim::TraceSink* sink) {
  constexpr std::uint64_t kIters = 20'000'000;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t i = 0; i < kIters; ++i) {
    x = work_step(x);
    emission_site(sink, i);
    benchmark::DoNotOptimize(x);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double uninstrumented_batch_seconds() {
  constexpr std::uint64_t kIters = 20'000'000;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t i = 0; i < kIters; ++i) {
    x = work_step(x);
    benchmark::DoNotOptimize(x);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int gate_disabled_overhead() {
  // Best-of-5 on both sides damps scheduler noise; the gate allows < 2%.
  double base = 1e300;
  double off = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const double b = uninstrumented_batch_seconds();
    if (b < base) base = b;
    const double d = batch_seconds(nullptr);
    if (d < off) off = d;
  }
  const double overhead = (off - base) / base * 100.0;
  std::printf("\ntrace overhead gate: uninstrumented %.3fs, disabled-path "
              "%.3fs -> %+.2f%% (gate < 2%%)\n",
              base, off, overhead);
  if (overhead >= 2.0) {
    std::printf("GATE FAILED: disabled-path tracing overhead %.2f%% >= 2%%\n",
                overhead);
    return 1;
  }
  std::printf("gate passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  const int gate = gate_disabled_overhead();
  ::benchmark::Shutdown();
  return gate;
}
