// micro_trace_overhead — throughput of a TraceSink emission site in the
// three states the harness can be in: disabled (null sink — what every
// production run pays at every instrumented call site), enabled recording
// to memory, and enabled with the recording serialized to a file. The
// LifecycleRecorder's mark() site is measured the same way: disabled
// (null recorder) and enabled to memory.
//
// After the benchmark pass the binary gates the overhead contract shared
// by sim/trace.hpp and sim/lifecycle.hpp: each disabled path (one pointer
// load + predicted branch) must cost < 2% over the same loop with no
// instrumentation at all. Exit status 1 when either gate fails, so CI can
// run this binary directly.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "core/trace.hpp"
#include "sim/lifecycle.hpp"
#include "sim/trace.hpp"

namespace {

using namespace stabl;

// A unit of simulated "real work" per event: a xorshift step, roughly the
// cost of the cheapest state updates between emission points in the DES.
inline std::uint64_t work_step(std::uint64_t x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

// The exact shape instrumented call sites compile to. noinline so the
// compiler cannot specialize the loop for a compile-time-null sink — that
// would benchmark dead code, not the production pattern.
__attribute__((noinline)) void emission_site(sim::TraceSink* sink,
                                             std::uint64_t i) {
  if (sink != nullptr) {
    sink->instant(static_cast<std::int32_t>(i & 7),
                  sim::Time(static_cast<std::int64_t>(i)), "tick", "bench");
  }
}

// The shape every lifecycle mark site compiles to (client, node,
// consensus commit paths): null-guarded pointer, first-reach mark.
__attribute__((noinline)) void lifecycle_site(sim::LifecycleRecorder* rec,
                                              std::uint64_t i) {
  if (rec != nullptr) {
    rec->mark(i & 0xffff, sim::TxStage::kQueued,
              sim::Time(static_cast<std::int64_t>(i)));
  }
}

void uninstrumented(benchmark::State& state) {
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (auto _ : state) {
    x = work_step(x);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}

void disabled(benchmark::State& state) {
  sim::TraceSink* sink = nullptr;
  benchmark::DoNotOptimize(sink);
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  std::uint64_t i = 0;
  for (auto _ : state) {
    x = work_step(x);
    emission_site(sink, i++);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}

void enabled_memory(benchmark::State& state) {
  sim::TraceSink sink;
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  std::uint64_t i = 0;
  for (auto _ : state) {
    x = work_step(x);
    emission_site(&sink, i++);
    benchmark::DoNotOptimize(x);
    if (sink.size() >= 1u << 20) sink.clear();  // bound the arena
  }
  state.SetItemsProcessed(state.iterations());
}

void enabled_file(benchmark::State& state) {
  // Emission plus the end-of-run cost of rendering and writing the JSON,
  // amortized per event — what `stabl_cli --trace` actually pays.
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  std::uint64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::TraceSink sink;
    constexpr std::uint64_t kBatch = 100'000;
    state.ResumeTiming();
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      x = work_step(x);
      emission_site(&sink, i);
      benchmark::DoNotOptimize(x);
    }
    const std::string json = core::trace_to_json(sink);
    std::FILE* out = std::fopen("micro_trace_overhead.trace.json", "wb");
    if (out != nullptr) {
      std::fwrite(json.data(), 1, json.size(), out);
      std::fclose(out);
    }
    events += kBatch;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

void disabled_lifecycle(benchmark::State& state) {
  sim::LifecycleRecorder* rec = nullptr;
  benchmark::DoNotOptimize(rec);
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  std::uint64_t i = 0;
  for (auto _ : state) {
    x = work_step(x);
    lifecycle_site(rec, i++);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}

void enabled_lifecycle_memory(benchmark::State& state) {
  sim::LifecycleRecorder recorder;
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  std::uint64_t i = 0;
  for (auto _ : state) {
    x = work_step(x);
    lifecycle_site(&recorder, i++);
    benchmark::DoNotOptimize(x);
    if (recorder.size() >= 1u << 20) recorder.clear();  // bound the arena
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(uninstrumented);
BENCHMARK(disabled);
BENCHMARK(enabled_memory);
BENCHMARK(enabled_file);
BENCHMARK(disabled_lifecycle);
BENCHMARK(enabled_lifecycle_memory);

/// Steady-clock measurement of the two hot loops, outside google-benchmark
/// so the gate compares medians of repeated identical batches.
double batch_seconds(sim::TraceSink* sink) {
  constexpr std::uint64_t kIters = 100'000'000;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t i = 0; i < kIters; ++i) {
    x = work_step(x);
    emission_site(sink, i);
    benchmark::DoNotOptimize(x);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double uninstrumented_batch_seconds() {
  constexpr std::uint64_t kIters = 100'000'000;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t i = 0; i < kIters; ++i) {
    x = work_step(x);
    benchmark::DoNotOptimize(x);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double lifecycle_batch_seconds(sim::LifecycleRecorder* rec) {
  constexpr std::uint64_t kIters = 100'000'000;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t i = 0; i < kIters; ++i) {
    x = work_step(x);
    lifecycle_site(rec, i);
    benchmark::DoNotOptimize(x);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int gate_disabled_overhead() {
  // Best-of-5 on every side damps scheduler noise; each gate allows < 2%.
  double base = 1e300;
  double trace_off = 1e300;
  double lifecycle_off = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const double b = uninstrumented_batch_seconds();
    if (b < base) base = b;
    const double d = batch_seconds(nullptr);
    if (d < trace_off) trace_off = d;
    const double l = lifecycle_batch_seconds(nullptr);
    if (l < lifecycle_off) lifecycle_off = l;
  }
  int failed = 0;
  const struct {
    const char* name;
    double seconds;
  } gates[] = {{"trace", trace_off}, {"lifecycle", lifecycle_off}};
  std::printf("\n");
  for (const auto& gate : gates) {
    const double overhead = (gate.seconds - base) / base * 100.0;
    std::printf("%s overhead gate: uninstrumented %.3fs, disabled-path "
                "%.3fs -> %+.2f%% (gate < 2%%)\n",
                gate.name, base, gate.seconds, overhead);
    if (overhead >= 2.0) {
      std::printf("GATE FAILED: disabled-path %s overhead %.2f%% >= 2%%\n",
                  gate.name, overhead);
      failed = 1;
    }
  }
  if (failed == 0) std::printf("gates passed\n");
  return failed;
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  const int gate = gate_disabled_overhead();
  ::benchmark::Shutdown();
  return gate;
}
