// Micro-benchmark: naive vs. resilient clients when the faults hit the
// client-facing side of the cluster. The paper's harness only ever faults
// nodes that take no client traffic; this sweep targets the entry nodes,
// which is exactly where commit timeouts, failover and circuit breakers
// matter. Scenarios: a crash of one entry node, packet loss on two entry
// nodes, and the composed fault-engine-v2 case (crash with loss layered on
// top — two concurrently active plans in one FaultSchedule).
#include "bench_common.hpp"

#include <cstdio>
#include <vector>

namespace {

using namespace stabl;

struct Scenario {
  const char* name;
  core::ExperimentConfig config;
};

std::vector<Scenario> scenarios() {
  auto base = [](core::FaultType fault) {
    core::ExperimentConfig config =
        bench::paper_config(core::ChainKind::kRedbelly, fault);
    config.seed = 7;
    return config;
  };

  Scenario crash{"crash entry node", base(core::FaultType::kCrash)};
  crash.config.fault_targets = {0};

  Scenario loss{"40% loss, 2 entry nodes", base(core::FaultType::kLoss)};
  loss.config.fault_targets = {0, 1};
  loss.config.loss_probability = 0.4;

  // Composed: the crash plus packet loss on the next entry node over,
  // overlapping for the middle third of the run.
  Scenario composed{"crash + loss composed", base(core::FaultType::kCrash)};
  composed.config.fault_targets = {0};
  core::FaultPlan extra;
  extra.type = core::FaultType::kLoss;
  extra.targets = {1};
  extra.loss_probability = 0.4;
  extra.inject_at = composed.config.inject_at;
  extra.recover_at = composed.config.recover_at;
  composed.config.extra_faults.add(extra);

  return {crash, loss, composed};
}

core::ExperimentResult& result(std::size_t scenario, bool resilient) {
  static std::map<std::pair<std::size_t, bool>, core::ExperimentResult>
      cache;
  const auto key = std::make_pair(scenario, resilient);
  auto it = cache.find(key);
  if (it == cache.end()) {
    core::ExperimentConfig config = scenarios()[scenario].config;
    config.resilience.enabled = resilient;
    it = cache.emplace(key, core::run_experiment(config)).first;
  }
  return it->second;
}

void sweep(benchmark::State& state) {
  const auto scenario = static_cast<std::size_t>(state.range(0));
  const bool resilient = state.range(1) != 0;
  for (auto _ : state) {
    const core::ExperimentResult& r = result(scenario, resilient);
    benchmark::DoNotOptimize(r.committed);
    state.counters["committed"] = static_cast<double>(r.committed);
    state.counters["lost"] =
        static_cast<double>(r.submitted - r.committed);
    state.counters["resubmissions"] =
        static_cast<double>(r.resilience.resubmissions);
  }
}
BENCHMARK(sweep)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

void print_figure() {
  std::printf("\n=== Naive vs. resilient clients under entry-node faults"
              " ===\n");
  core::Table table({"scenario", "client", "committed", "lost",
                     "resubmit", "failover", "recovered", "mean lat"});
  const auto all = scenarios();
  for (std::size_t s = 0; s < all.size(); ++s) {
    for (const bool resilient : {false, true}) {
      const core::ExperimentResult& r = result(s, resilient);
      table.add_row({all[s].name, resilient ? "resilient" : "naive",
                     std::to_string(r.committed),
                     std::to_string(r.submitted - r.committed),
                     std::to_string(r.resilience.resubmissions),
                     std::to_string(r.resilience.failovers),
                     std::to_string(r.resilience.recovered),
                     core::Table::num(r.mean_latency_s, 3) + "s"});
    }
  }
  std::printf("%s", table.to_string().c_str());
}

}  // namespace

STABL_BENCH_MAIN(print_figure)
