// Ablation: Solana with warm-up epochs (the deployment-script default that
// triggers the EAH panic, agave issue #1491) vs the fix of running only
// full-length epochs (>= 360 slots).
#include "bench_common.hpp"

#include <cstdio>

namespace {

using namespace stabl;

core::ExperimentResult& result(bool warmup) {
  static std::map<bool, core::ExperimentResult> cache;
  auto it = cache.find(warmup);
  if (it == cache.end()) {
    core::ExperimentConfig config = bench::paper_config(
        core::ChainKind::kSolana, core::FaultType::kTransient);
    config.tuning.solana_warmup_epochs = warmup;
    it = cache.emplace(warmup, core::run_experiment(config)).first;
  }
  return it->second;
}

void warmup_epochs(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(result(true).committed);
}
void full_epochs(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(result(false).committed);
}
BENCHMARK(warmup_epochs)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(full_epochs)->Iterations(1)->Unit(benchmark::kSecond);

void print_figure() {
  std::printf("\n=== Ablation: Solana transient failure, warm-up vs full"
              " epochs ===\n");
  core::Table table({"epochs", "committed", "live at end", "note"});
  const auto& broken = result(true);
  const auto& fixed = result(false);
  table.add_row({"warm-up (32,64,..)",
                 std::to_string(broken.committed) + "/" +
                     std::to_string(broken.submitted),
                 broken.live_at_end ? "yes" : "NO",
                 "EAH panic kills all validators"});
  table.add_row({">=8192 slots",
                 std::to_string(fixed.committed) + "/" +
                     std::to_string(fixed.submitted),
                 fixed.live_at_end ? "yes" : "NO",
                 "no panic; recovers after restart"});
  std::printf("%s", table.to_string().c_str());
}

}  // namespace

STABL_BENCH_MAIN(print_figure)
