// Ablation: the two readings of the sensitivity formula — evaluating both
// super-cumulatives at the common endpoint max(b1,b2) (our default; the
// between-curves area of Fig. 1) vs at each distribution's own endpoint
// (the paper's literal |S1(b1) - S2(b2)|). The common-endpoint reading is
// the one under which the paper's outlier-resilience property holds; this
// bench quantifies the difference on synthetic and measured data.
#include "bench_common.hpp"

#include <cstdio>

#include "sim/rng.hpp"

namespace {

using namespace stabl;

core::SensitivityScore score_with(const std::vector<double>& baseline,
                                  const std::vector<double>& altered,
                                  core::ScoreEndpoint endpoint) {
  core::SensitivityOptions options;
  options.endpoint = endpoint;
  return core::sensitivity(baseline, altered, true, options);
}

void synthetic_outlier(benchmark::State& state) {
  sim::Rng rng(3);
  std::vector<double> baseline;
  for (int i = 0; i < 50000; ++i) {
    baseline.push_back(rng.lognormal_median(1.0, 0.3));
  }
  auto altered = baseline;
  altered[0] = 300.0;  // one straggler
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        score_with(baseline, altered, core::ScoreEndpoint::kCommon));
    benchmark::DoNotOptimize(score_with(
        baseline, altered, core::ScoreEndpoint::kPerDistribution));
  }
}
BENCHMARK(synthetic_outlier)->Iterations(1)->Unit(benchmark::kSecond);

void measured_pair(benchmark::State& state) {
  bench::run_pair_benchmark(state, core::ChainKind::kRedbelly,
                            core::FaultType::kCrash);
}
BENCHMARK(measured_pair)->Iterations(1)->Unit(benchmark::kSecond);

void print_figure() {
  std::printf("\n=== Ablation: sensitivity-score endpoint definitions"
              " ===\n");
  core::Table table({"input", "common endpoint", "per-distribution"});

  sim::Rng rng(3);
  std::vector<double> baseline;
  for (int i = 0; i < 50000; ++i) {
    baseline.push_back(rng.lognormal_median(1.0, 0.3));
  }
  auto outlier = baseline;
  outlier[0] = 300.0;
  table.add_row(
      {"50k samples + 1 outlier (300s)",
       core::format_score(
           score_with(baseline, outlier, core::ScoreEndpoint::kCommon)),
       core::format_score(score_with(
           baseline, outlier, core::ScoreEndpoint::kPerDistribution))});

  auto shifted = baseline;
  for (double& x : shifted) x += 5.0;
  table.add_row(
      {"uniform +5s shift",
       core::format_score(
           score_with(baseline, shifted, core::ScoreEndpoint::kCommon)),
       core::format_score(score_with(
           baseline, shifted, core::ScoreEndpoint::kPerDistribution))});

  const core::SensitivityRun& run = bench::cached_run(
      core::ChainKind::kRedbelly, core::FaultType::kCrash);
  table.add_row(
      {"measured: redbelly f=t crash",
       core::format_score(score_with(run.baseline.latencies,
                                     run.altered.latencies,
                                     core::ScoreEndpoint::kCommon)),
       core::format_score(score_with(run.baseline.latencies,
                                     run.altered.latencies,
                                     core::ScoreEndpoint::kPerDistribution))});
  std::printf("%s", table.to_string().c_str());
  std::printf("(one outlier swings the per-distribution score by O(outlier)"
              " but the common-endpoint score by O(1/m))\n");
}

}  // namespace

STABL_BENCH_MAIN(print_figure)
