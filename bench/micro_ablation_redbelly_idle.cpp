// Ablation: Redbelly's MaxIdleTime under the partition experiment. The
// Redbelly developers confirmed to the authors that lowering the existing
// 30-second MaxIdleTime timeout would speed up partition recovery; this
// bench sweeps the knob and reports the measured recovery time.
#include "bench_common.hpp"

#include <cstdio>

namespace {

using namespace stabl;

core::ExperimentResult& result(double idle_s) {
  static std::map<double, core::ExperimentResult> cache;
  auto it = cache.find(idle_s);
  if (it == cache.end()) {
    core::ExperimentConfig config = bench::paper_config(
        core::ChainKind::kRedbelly, core::FaultType::kPartition);
    config.tuning.redbelly_max_idle_s = idle_s;
    it = cache.emplace(idle_s, core::run_experiment(config)).first;
  }
  return it->second;
}

void idle_60s(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(result(60.0).committed);
}
void idle_30s(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(result(30.0).committed);
}
void idle_15s(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(result(15.0).committed);
}
BENCHMARK(idle_60s)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(idle_30s)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(idle_15s)->Iterations(1)->Unit(benchmark::kSecond);

void print_figure() {
  std::printf("\n=== Ablation: Redbelly partition recovery vs MaxIdleTime"
              " ===\n");
  core::Table table({"MaxIdleTime", "recovery(s)", "committed"});
  for (const double idle : {60.0, 30.0, 15.0}) {
    const core::ExperimentResult& r = result(idle);
    table.add_row({core::Table::num(idle, 0) + "s",
                   r.recovery_seconds >= 0
                       ? core::Table::num(r.recovery_seconds, 1)
                       : "never",
                   std::to_string(r.committed) + "/" +
                       std::to_string(r.submitted)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("(shorter idle timeout => earlier break detection => earlier"
              " redial => faster recovery)\n");
}

}  // namespace

STABL_BENCH_MAIN(print_figure)
