// micro_chaos_throughput — throughput of the chaos campaign engine.
//
// Runs a fixed chaos campaign (all 5 chains x 4 randomized trials, one
// schedule per trial) through run_chaos_campaign at 1, 2 and 4 worker
// threads and reports schedules/sec per jobs setting, the speedup over
// serial, and a determinism check: every parallel run's JSON must be
// byte-identical to the serial run's.
//
// STABL_BENCH_DURATION (seconds, >=30) shortens the per-trial simulation
// for smoke runs; the default is the paper's 400 s geometry.
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/chaos.hpp"
#include "core/report.hpp"

namespace {

using namespace stabl;

const std::vector<unsigned> kJobSettings = {1, 2, 4};
constexpr std::size_t kTrialsPerChain = 4;

core::ChaosCampaignConfig chaos_config(unsigned jobs) {
  const long duration = bench::bench_duration_s();
  core::ChaosCampaignConfig config;
  config.trials_per_chain = kTrialsPerChain;
  config.seed = 42;
  config.base.duration = sim::sec(duration);
  config.jobs = jobs;
  return config;
}

struct ChaosSample {
  double seconds = 0.0;
  std::string json;
};

/// Per-jobs cache: the benchmark pass times each setting once; the print
/// step reuses the wall times and JSON documents.
std::map<unsigned, ChaosSample>& samples() {
  static std::map<unsigned, ChaosSample> cache;
  return cache;
}

const ChaosSample& run_at(unsigned jobs) {
  auto it = samples().find(jobs);
  if (it == samples().end()) {
    const auto start = std::chrono::steady_clock::now();
    const core::ChaosCampaignResult result =
        core::run_chaos_campaign(chaos_config(jobs));
    const auto stop = std::chrono::steady_clock::now();
    ChaosSample sample;
    sample.seconds = std::chrono::duration<double>(stop - start).count();
    sample.json = result.to_json();
    it = samples().emplace(jobs, std::move(sample)).first;
  }
  return it->second;
}

double schedules(unsigned) { return 5.0 * kTrialsPerChain; }

void chaos_matrix(benchmark::State& state) {
  const unsigned jobs = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    const ChaosSample& sample = run_at(jobs);
    benchmark::DoNotOptimize(sample.json.data());
    state.counters["schedules_per_s"] = schedules(jobs) / sample.seconds;
  }
}
BENCHMARK(chaos_matrix)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void print_chaos_scaling() {
  for (const unsigned jobs : kJobSettings) run_at(jobs);
  const ChaosSample& serial = run_at(1);
  std::printf("\nchaos throughput: 5 chains x %zu schedules, %lds per trial\n",
              kTrialsPerChain, bench::bench_duration_s());
  core::Table table(
      {"jobs", "wall s", "schedules/s", "speedup", "json==serial"});
  for (const unsigned jobs : kJobSettings) {
    const ChaosSample& sample = run_at(jobs);
    table.add_row({std::to_string(jobs),
                   core::Table::num(sample.seconds, 2),
                   core::Table::num(schedules(jobs) / sample.seconds, 2),
                   core::Table::num(serial.seconds / sample.seconds, 2),
                   sample.json == serial.json ? "yes" : "NO"});
  }
  std::printf("%s", table.to_string().c_str());
  for (const unsigned jobs : kJobSettings) {
    if (run_at(jobs).json != serial.json) {
      std::printf("DETERMINISM VIOLATION: jobs=%u JSON differs from serial\n",
                  jobs);
    }
  }
}

}  // namespace

STABL_BENCH_MAIN(print_chaos_scaling)
