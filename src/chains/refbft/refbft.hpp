// RefBFT — a deliberately minimal round-robin BFT reference chain.
//
// Not one of the paper's five systems: RefBFT exists to prove the chain
// plugin seam. It registers itself through chain::Registry exactly like
// the paper chains do, but lives in its own library that only the tests
// link, so production binaries keep the paper's five-chain matrix. The
// protocol is the textbook skeleton the real chains elaborate: rotating
// leader proposes a mempool batch, replicas vote, a BFT quorum
// (n - floor((n-1)/3)) commits, and a flat round timeout with a timeout
// quorum advances past dead leaders. No reputation, no lockout, no
// execution model — the smallest thing that stays live under f = t
// crashes and recovers from partitions via state sync.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "chain/node.hpp"

namespace stabl::refbft {

struct RefBftConfig {
  /// Leader pacing: delay between entering a round and proposing.
  sim::Duration block_interval = sim::ms(250);
  /// Flat round timeout; a quorum of timeouts advances the round.
  sim::Duration round_timeout = sim::ms(800);
  std::size_t max_block_txs = 200;
};

class RefBftNode final : public chain::BlockchainNode {
 public:
  RefBftNode(sim::Simulation& simulation, net::Network& network,
             chain::NodeConfig node_config, RefBftConfig config);

  [[nodiscard]] std::uint64_t current_round() const { return round_; }

  [[nodiscard]] std::map<std::string, double> metrics() const override {
    return {{"round", static_cast<double>(round_)},
            {"timed_out_rounds", static_cast<double>(timed_out_rounds_)}};
  }

 protected:
  void start_protocol() override;
  void stop_protocol() override;
  void on_app_message(const net::Envelope& envelope) override;
  void on_transaction(const chain::Transaction& tx) override;
  void on_peer_up(net::NodeId peer) override;
  void on_synced() override;
  [[nodiscard]] net::PayloadPtr equivocate_payload(
      const net::PayloadPtr& payload) override;
  [[nodiscard]] bool withholdable(const net::Payload& payload) const override;

 private:
  void enter_round(std::uint64_t round);
  void propose();
  void on_round_timeout();
  void maybe_vote();
  void try_commit();
  void jump_to_round(std::uint64_t round, net::NodeId peer_hint);
  [[nodiscard]] std::int64_t tip_round() const;
  [[nodiscard]] std::size_t quorum() const {
    return cluster_size() - (cluster_size() - 1) / 3;
  }

  RefBftConfig config_;

  // Volatile per-round state; cleared on restart.
  std::uint64_t round_ = 0;
  bool voted_ = false;
  bool have_proposal_ = false;
  net::NodeId proposal_leader_ = 0;
  std::int64_t proposal_parent_ = -1;
  std::vector<chain::Transaction> proposal_txs_;
  std::uint64_t proposal_digest_ = 0;
  // voter -> content digest the voter claims for this round's proposal.
  // Plain quorum counting ignores the digest (votes are content-blind,
  // which is what an equivocating leader exploits); with the misbehavior
  // defense on, only votes matching our own digest count towards commit.
  std::map<net::NodeId, std::uint64_t> votes_;
  std::set<net::NodeId> timeouts_;
  sim::TimerId round_timer_ = sim::kInvalidTimer;
  sim::TimerId propose_timer_ = sim::kInvalidTimer;
  std::uint64_t timed_out_rounds_ = 0;
};

std::vector<std::unique_ptr<chain::BlockchainNode>> make_cluster(
    sim::Simulation& simulation, net::Network& network,
    chain::NodeConfig node_config_template, RefBftConfig config = {});

/// No-op that anchors this chain's ChainRegistrar: a binary that wants
/// RefBFT in its registry calls this (or anything else in this library)
/// so the static-archive linker keeps the registration object's
/// translation unit. Production binaries never call it, so they never see
/// the chain.
void ensure_registered();

}  // namespace stabl::refbft
