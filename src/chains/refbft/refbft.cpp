#include "chains/refbft/refbft.hpp"

#include <algorithm>
#include <utility>

#include "chain/hash.hpp"
#include "chain/registry.hpp"

namespace stabl::refbft {
namespace {

struct ProposalPayload final : net::Payload {
  ProposalPayload(std::uint64_t r, net::NodeId l, std::int64_t parent,
                  std::vector<chain::Transaction> batch)
      : round(r), leader(l), parent_round(parent), txs(std::move(batch)) {}
  std::uint64_t round;
  net::NodeId leader;
  std::int64_t parent_round;
  std::vector<chain::Transaction> txs;
};

/// Content identity of a proposal batch — what a vote's digest binds to.
std::uint64_t batch_digest(const std::vector<chain::Transaction>& txs) {
  std::uint64_t digest = 0x5245'4642'4654ull;  // "REFBFT"
  for (const chain::Transaction& tx : txs) {
    digest = chain::hash_combine(digest, chain::mix64(tx.id));
  }
  return digest;
}

struct VotePayload final : net::Payload {
  VotePayload(std::uint64_t r, net::NodeId l, std::uint64_t d)
      : round(r), leader(l), digest(d) {}
  std::uint64_t round;
  net::NodeId leader;
  /// Digest of the proposal content the voter holds. Plain RefBFT commits
  /// on vote *count* alone; the digest rides along so the misbehavior
  /// defense can bind votes to content and spot equivocating leaders.
  std::uint64_t digest;
};

struct TimeoutPayload final : net::Payload {
  explicit TimeoutPayload(std::uint64_t r) : round(r) {}
  std::uint64_t round;
};

std::uint32_t batch_bytes(std::size_t tx_count) {
  return 128 + static_cast<std::uint32_t>(tx_count) * 128;
}

}  // namespace

RefBftNode::RefBftNode(sim::Simulation& simulation, net::Network& network,
                       chain::NodeConfig node_config, RefBftConfig config)
    : BlockchainNode(simulation, network, std::move(node_config)),
      config_(config) {}

void RefBftNode::start_protocol() {
  const auto& blocks = ledger().blocks();
  enter_round(blocks.empty() ? 0 : blocks.back().round + 1);
}

void RefBftNode::stop_protocol() {
  round_ = 0;
  voted_ = false;
  have_proposal_ = false;
  proposal_parent_ = -1;
  proposal_txs_.clear();
  proposal_digest_ = 0;
  votes_.clear();
  timeouts_.clear();
  round_timer_ = sim::kInvalidTimer;
  propose_timer_ = sim::kInvalidTimer;
}

std::int64_t RefBftNode::tip_round() const {
  return ledger().blocks().empty()
             ? -1
             : static_cast<std::int64_t>(ledger().blocks().back().round);
}

void RefBftNode::enter_round(std::uint64_t round) {
  round_ = round;
  voted_ = false;
  have_proposal_ = false;
  proposal_parent_ = -1;
  proposal_txs_.clear();
  proposal_digest_ = 0;
  votes_.clear();
  timeouts_.clear();
  reset_timer(round_timer_, config_.round_timeout,
              [this] { on_round_timeout(); });
  cancel_timer(propose_timer_);
  if (round_ % cluster_size() == node_id()) {
    propose_timer_ = set_timer(config_.block_interval, [this] { propose(); });
  }
}

void RefBftNode::propose() {
  const std::int64_t parent = tip_round();
  auto batch = mutable_mempool().collect_ready(
      config_.max_block_txs, [this](chain::AccountId account) {
        return accounts().next_nonce(account);
      });
  auto payload = std::make_shared<const ProposalPayload>(
      round_, node_id(), parent, std::move(batch));
  mark_proposed(payload->txs, round_);
  broadcast(payload, batch_bytes(payload->txs.size()));
  have_proposal_ = true;
  proposal_leader_ = node_id();
  proposal_parent_ = parent;
  proposal_txs_ = payload->txs;
  proposal_digest_ = batch_digest(proposal_txs_);
  voted_ = true;
  votes_[node_id()] = proposal_digest_;
  broadcast(std::make_shared<const VotePayload>(round_, node_id(),
                                                proposal_digest_),
            96);
  try_commit();
}

void RefBftNode::on_round_timeout() {
  // Retransmit our vote (lost packets must not split the round), shout
  // that the round is stuck, and re-arm so laggards keep hearing us.
  if (voted_) {
    broadcast(std::make_shared<const VotePayload>(round_, proposal_leader_,
                                                  proposal_digest_),
              96);
  }
  broadcast(std::make_shared<const TimeoutPayload>(round_), 96);
  timeouts_.insert(node_id());
  round_timer_ =
      set_timer(config_.round_timeout, [this] { on_round_timeout(); });
  if (timeouts_.size() >= quorum()) {
    ++timed_out_rounds_;
    enter_round(round_ + 1);
  }
}

void RefBftNode::maybe_vote() {
  if (!have_proposal_ || voted_) return;
  if (proposal_parent_ != tip_round()) return;  // cannot extend this chain
  voted_ = true;
  votes_[node_id()] = proposal_digest_;
  broadcast(std::make_shared<const VotePayload>(round_, proposal_leader_,
                                                proposal_digest_),
            96);
  try_commit();
}

void RefBftNode::try_commit() {
  if (!have_proposal_) return;
  std::size_t counted = votes_.size();
  if (misbehavior().enabled()) {
    // Defense on: votes are content-bound — only votes whose digest
    // matches the proposal we hold certify it. An equivocated round then
    // never reaches quorum on either variant and times out instead of
    // forking.
    counted = 0;
    for (const auto& [voter, digest] : votes_) {
      if (digest == proposal_digest_) ++counted;
    }
  }
  if (counted < quorum()) return;
  if (proposal_parent_ != tip_round()) {
    // A quorum certified a proposal extending blocks we are missing.
    if (proposal_parent_ > tip_round()) request_sync(proposal_leader_);
    return;
  }
  const std::uint64_t round = round_;
  commit_block(proposal_txs_, proposal_leader_, round);
  enter_round(round + 1);
}

void RefBftNode::jump_to_round(std::uint64_t round, net::NodeId peer_hint) {
  request_sync(peer_hint);
  enter_round(round);
}

void RefBftNode::on_app_message(const net::Envelope& envelope) {
  const net::Payload* payload = envelope.payload.get();
  if (const auto* batch =
          dynamic_cast<const chain::TxBatchPayload*>(payload)) {
    for (const chain::Transaction& tx : batch->txs) pool_transaction(tx);
    return;
  }
  if (const auto* proposal = dynamic_cast<const ProposalPayload*>(payload)) {
    if (proposal->round < round_) return;
    if (proposal->round > round_) jump_to_round(proposal->round, envelope.from);
    if (have_proposal_) {
      // First proposal for the round wins; a SECOND proposal for the same
      // round from the same leader with different content is equivocation
      // evidence against that leader.
      if (proposal->leader == proposal_leader_ &&
          batch_digest(proposal->txs) != proposal_digest_) {
        report_misbehavior(proposal->leader, core::Offense::kEquivocation);
      }
      return;
    }
    have_proposal_ = true;
    proposal_leader_ = proposal->leader;
    proposal_parent_ = proposal->parent_round;
    proposal_txs_ = proposal->txs;
    proposal_digest_ = batch_digest(proposal_txs_);
    if (proposal->parent_round > tip_round()) request_sync(envelope.from);
    maybe_vote();
    try_commit();
    return;
  }
  if (const auto* vote = dynamic_cast<const VotePayload*>(payload)) {
    if (vote->round < round_) return;
    if (vote->round > round_) {
      jump_to_round(vote->round, envelope.from);
      return;
    }
    // A vote binding the SAME round and leader to DIFFERENT content than
    // the proposal we hold means the leader fed the cluster two variants.
    if (have_proposal_ && vote->leader == proposal_leader_ &&
        vote->digest != proposal_digest_) {
      report_misbehavior(vote->leader, core::Offense::kEquivocation);
    }
    votes_.emplace(envelope.from, vote->digest);
    try_commit();
    return;
  }
  if (const auto* timeout = dynamic_cast<const TimeoutPayload*>(payload)) {
    if (timeout->round < round_) return;
    if (timeout->round > round_) {
      jump_to_round(timeout->round, envelope.from);
      return;
    }
    timeouts_.insert(envelope.from);
    if (timeouts_.size() >= quorum()) {
      ++timed_out_rounds_;
      enter_round(round_ + 1);
    }
    return;
  }
}

void RefBftNode::on_transaction(const chain::Transaction& tx) {
  // Shared mempool: gossip so the current leader can propose it.
  broadcast(std::make_shared<const chain::TxBatchPayload>(
                std::vector<chain::Transaction>{tx}),
            160);
}

void RefBftNode::on_peer_up(net::NodeId peer) {
  // Nudge a (re)connecting validator with our round so it catches up.
  send_to(peer, std::make_shared<const TimeoutPayload>(round_), 96);
}

void RefBftNode::on_synced() {
  maybe_vote();
  try_commit();
}

net::PayloadPtr RefBftNode::equivocate_payload(const net::PayloadPtr& payload) {
  if (const auto* proposal =
          dynamic_cast<const ProposalPayload*>(payload.get())) {
    if (proposal->txs.size() < 2) return nullptr;  // nothing to conflict on
    // Conflicting variant: same round/leader/parent, different committed
    // sequence (batch reversed minus its last transaction).
    std::vector<chain::Transaction> txs(proposal->txs.begin(),
                                        proposal->txs.end() - 1);
    std::reverse(txs.begin(), txs.end());
    return std::make_shared<const ProposalPayload>(
        proposal->round, proposal->leader, proposal->parent_round,
        std::move(txs));
  }
  if (const auto* vote = dynamic_cast<const VotePayload*>(payload.get())) {
    // Double-vote: same round and leader, conflicting content claim.
    return std::make_shared<const VotePayload>(
        vote->round, vote->leader, vote->digest ^ 0x0BAD'BEEFull);
  }
  return nullptr;
}

bool RefBftNode::withholdable(const net::Payload& payload) const {
  return dynamic_cast<const ProposalPayload*>(&payload) != nullptr ||
         dynamic_cast<const VotePayload*>(&payload) != nullptr;
}

std::vector<std::unique_ptr<chain::BlockchainNode>> make_cluster(
    sim::Simulation& simulation, net::Network& network,
    chain::NodeConfig node_config_template, RefBftConfig config) {
  std::vector<std::unique_ptr<chain::BlockchainNode>> nodes;
  nodes.reserve(node_config_template.n);
  for (net::NodeId id = 0; id < node_config_template.n; ++id) {
    chain::NodeConfig node_config = node_config_template;
    node_config.id = id;
    nodes.push_back(std::make_unique<RefBftNode>(simulation, network,
                                                 node_config, config));
  }
  return nodes;
}

namespace {

const chain::ChainRegistrar kRegistrar{[] {
  chain::ChainTraits traits;
  traits.name = "refbft";
  traits.description =
      "minimal round-robin BFT reference chain proving the plugin seam";
  // tier 1 (the default): extension chains sort after the paper's five,
  // so the historical ChainKind ids 0..4 never move.
  traits.fault_tolerance = chain::tolerance_third;
  const RefBftConfig defaults;
  traits.default_params = {
      {"max_block_txs", static_cast<double>(defaults.max_block_txs)}};
  traits.default_params.merge(chain::misbehavior_default_params());
  traits.make_cluster = [](sim::Simulation& simulation, net::Network& network,
                           const chain::NodeConfig& node_config,
                           const chain::ChainParams& params) {
    RefBftConfig config;
    config.max_block_txs =
        static_cast<std::size_t>(params.at("max_block_txs"));
    chain::NodeConfig node_template = node_config;
    chain::apply_misbehavior_params(node_template, params);
    return make_cluster(simulation, network, node_template, config);
  };
  return traits;
}()};

}  // namespace

void ensure_registered() {}

}  // namespace stabl::refbft
