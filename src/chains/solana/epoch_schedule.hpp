// Solana epoch geometry (paper §2, §5).
//
// The deployment scripts in the Solana repository generate the genesis with
// `enable-warmup-epochs`: epoch 0 has 32 slots and each warm-up epoch
// doubles, returning to the normal 8192 slots afterwards. The paper's
// transient fault at t = 133 s therefore lands inside a 256-slot warm-up
// epoch — shorter than the ~360 slots Solana needs to root a bank and
// compute the Epoch Accounts Hash before the ¾-epoch integration point,
// which is the precondition whose violation panics every validator
// (agave issue #1491).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace stabl::solana {

struct EpochInfo {
  std::uint64_t epoch = 0;
  std::uint64_t first_slot = 0;
  std::uint64_t slots = 0;

  [[nodiscard]] std::uint64_t last_slot() const {
    return first_slot + slots - 1;
  }
  /// Slot from which the EAH calculation window opens (¼ into the epoch).
  [[nodiscard]] std::uint64_t eah_start_slot() const {
    return first_slot + slots / 4;
  }
  /// Slot where the EAH must be integrated into the bank hash (¾ in).
  [[nodiscard]] std::uint64_t eah_stop_slot() const {
    return first_slot + (slots * 3) / 4;
  }
};

class EpochSchedule {
 public:
  /// `warmup` mirrors enable-warmup-epochs: epochs of 32, 64, ... slots
  /// until `normal_slots` is reached. Without warm-up every epoch has
  /// `normal_slots` slots (the agave fix for the restart panic).
  EpochSchedule(bool warmup, std::uint64_t normal_slots = 8192,
                std::uint64_t first_warmup_slots = 32);

  [[nodiscard]] EpochInfo epoch_of_slot(std::uint64_t slot) const;

  [[nodiscard]] bool warmup() const { return warmup_; }
  [[nodiscard]] std::uint64_t normal_slots() const { return normal_slots_; }

 private:
  bool warmup_;
  std::uint64_t normal_slots_;
  std::uint64_t first_warmup_slots_;
};

}  // namespace stabl::solana
