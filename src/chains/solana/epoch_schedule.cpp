#include "chains/solana/epoch_schedule.hpp"

#include <cassert>

namespace stabl::solana {

EpochSchedule::EpochSchedule(bool warmup, std::uint64_t normal_slots,
                             std::uint64_t first_warmup_slots)
    : warmup_(warmup),
      normal_slots_(normal_slots),
      first_warmup_slots_(first_warmup_slots) {
  assert(normal_slots_ > 0 && first_warmup_slots_ > 0);
  assert(first_warmup_slots_ <= normal_slots_);
}

EpochInfo EpochSchedule::epoch_of_slot(std::uint64_t slot) const {
  if (!warmup_) {
    return EpochInfo{slot / normal_slots_,
                     (slot / normal_slots_) * normal_slots_, normal_slots_};
  }
  std::uint64_t epoch = 0;
  std::uint64_t first = 0;
  std::uint64_t size = first_warmup_slots_;
  while (slot >= first + size) {
    first += size;
    ++epoch;
    if (size < normal_slots_) size *= 2;
    if (size > normal_slots_) size = normal_slots_;
  }
  return EpochInfo{epoch, first, size};
}

}  // namespace stabl::solana
