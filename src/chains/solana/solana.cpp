#include "chains/solana/solana.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "chain/hash.hpp"
#include "chain/registry.hpp"
#include "sim/lifecycle.hpp"

namespace stabl::solana {
namespace {

struct ForwardPayload final : net::Payload {
  explicit ForwardPayload(std::vector<chain::Transaction> batch)
      : txs(std::move(batch)) {}
  std::vector<chain::Transaction> txs;
};

struct BankBlockPayload final : net::Payload {
  BankBlockPayload(std::uint64_t s, net::NodeId l, std::int64_t parent,
                   std::vector<chain::Transaction> batch)
      : slot(s), leader(l), parent_slot(parent), txs(std::move(batch)) {}
  std::uint64_t slot;
  net::NodeId leader;
  /// Ledger tip the leader built on (-1 = genesis): banks replay on their
  /// parents, so a validator that is missing the parent must repair its
  /// ledger before it can vote for or finalize this bank.
  std::int64_t parent_slot;
  std::vector<chain::Transaction> txs;
};

struct VotePayload final : net::Payload {
  VotePayload(std::uint64_t s, net::NodeId v, std::uint64_t digest)
      : slot(s), voter(v), bank_digest(digest) {}
  std::uint64_t slot;
  net::NodeId voter;
  /// Digest of the bank the vote endorses (real tower votes carry the
  /// bank hash). Content-blind counting ignores it; the misbehavior
  /// defense uses it to refuse quorum across an equivocation split.
  std::uint64_t bank_digest;
};

std::uint32_t batch_bytes(std::size_t tx_count) {
  return 128 + static_cast<std::uint32_t>(tx_count) * 128;
}

/// Content digest of a bank's batch (stands in for the shred merkle root);
/// used only to compare two banks claiming the same slot.
std::uint64_t batch_digest(const std::vector<chain::Transaction>& txs) {
  std::uint64_t digest = 0x534F'4C41'4E41ull;
  for (const chain::Transaction& tx : txs) {
    digest = chain::hash_combine(digest, chain::mix64(tx.id));
  }
  return digest;
}

}  // namespace

SolanaNode::SolanaNode(sim::Simulation& simulation, net::Network& network,
                       chain::NodeConfig node_config, SolanaConfig config)
    : BlockchainNode(simulation, network,
                     [&] {
                       node_config.restart_boot_delay =
                           config.restart_boot_delay;
                       return node_config;
                     }()),
      config_(config),
      schedule_(config.warmup_epochs, config.normal_epoch_slots) {}

net::NodeId SolanaNode::leader_of_slot(std::uint64_t slot) const {
  // The real schedule is computed per-epoch from a PRF of state two epochs
  // prior; a seeded hash of (epoch, leader group) preserves the properties
  // that matter — deterministic, stake-uniform, crash-oblivious, and
  // assigning NUM_CONSECUTIVE_LEADER_SLOTS slots per pick.
  const EpochInfo epoch = schedule_.epoch_of_slot(slot);
  const std::uint64_t h = chain::hash_combine(
      chain::hash_combine(network_seed(), epoch.epoch),
      slot / config_.leader_group_slots);
  return static_cast<net::NodeId>(h % cluster_size());
}

std::uint64_t SolanaNode::slot_at(sim::Time t) const {
  return static_cast<std::uint64_t>(t / config_.slot_duration);
}

std::size_t SolanaNode::vote_quorum() const {
  return static_cast<std::size_t>(std::ceil(
      config_.supermajority * static_cast<double>(cluster_size())));
}

void SolanaNode::start_protocol() {
  panicked_ = false;
  has_root_ = false;
  rooted_slot_ = 0;
  current_slot_ = slot_at(now());
  schedule_slot_tick();
}

void SolanaNode::schedule_slot_tick() {
  // Align to the global slot grid (PoH keeps real validators in lockstep).
  // One timer per node per slot; the timer rides the owning process, so a
  // crash retires it eagerly and a restart re-aligns from the grid.
  const sim::Time next_boundary =
      sim::Time{(static_cast<std::int64_t>(current_slot_) + 1) *
                config_.slot_duration.count()};
  set_timer(next_boundary - now(), [this] { on_slot_tick(); });
}

void SolanaNode::stop_protocol() {
  pending_forward_.clear();
  leader_buffer_.clear();
  slots_.clear();
  current_slot_ = 0;
  rooted_slot_ = 0;
  has_root_ = false;
  last_voted_slot_ = -1;
  next_repair_ = sim::Time{0};
}

std::int64_t SolanaNode::tip_slot() const {
  return ledger().blocks().empty()
             ? -1
             : static_cast<std::int64_t>(ledger().blocks().back().round);
}

void SolanaNode::on_slot_tick() {
  current_slot_ = slot_at(now());
  check_epoch_accounts_hash(current_slot_);
  if (panicked_) return;
  if (leader_of_slot(current_slot_) == node_id()) {
    // First slot of our group after a skipped group: wait the grace ticks
    // for the (missing) previous fork before building.
    const bool group_head =
        current_slot_ % config_.leader_group_slots == 0 ||
        leader_of_slot(current_slot_ - 1) != node_id();
    const bool predecessor_skipped =
        current_slot_ > 0 &&
        !ledger().blocks().empty() &&
        ledger().blocks().back().round + 1 < current_slot_;
    if (group_head && predecessor_skipped) {
      const std::uint64_t slot = current_slot_;
      set_timer(config_.skip_grace, [this, slot] {
        if (current_slot_ == slot) produce_block(slot);
      });
    } else {
      produce_block(current_slot_);
    }
  }
  forward_pending(current_slot_);
  // Trim consensus bookkeeping that can no longer finalize.
  while (!slots_.empty() &&
         slots_.begin()->first + 64 < current_slot_) {
    slots_.erase(slots_.begin());
  }
  // Tower votes live in gossip and are retransmitted continuously, so one
  // dropped vote packet cannot wedge finality. Re-broadcast votes for
  // banks that should have finalized by now; on a healthy cluster quorum
  // lands within the slot and this never fires.
  for (const auto& [slot, state] : slots_) {
    if (state.voted && !state.finalized && state.have_block &&
        slot + 2 <= current_slot_) {
      broadcast(std::make_shared<const VotePayload>(slot, node_id(),
                                                    batch_digest(state.txs)),
                96);
    }
  }
  schedule_slot_tick();
}

void SolanaNode::produce_block(std::uint64_t slot) {
  if (auto* trace = simulation().trace()) {
    trace->instant(static_cast<std::int32_t>(node_id()), now(), "slot",
                   "consensus", "\"slot\":" + std::to_string(slot));
  }
  std::vector<chain::Transaction> batch;
  batch.reserve(std::min(config_.max_slot_txs, leader_buffer_.size()));
  // The buffer is ordered by (sender, nonce): each sender's transactions
  // are packed in issuance order, so the bank applies them as a prefix.
  for (auto it = leader_buffer_.begin();
       it != leader_buffer_.end() && batch.size() < config_.max_slot_txs;) {
    const chain::Transaction& tx = it->second;
    if (ledger().is_committed(tx.id) ||
        accounts().next_nonce(tx.from) > tx.nonce) {
      it = leader_buffer_.erase(it);  // stale
      continue;
    }
    batch.push_back(tx);
    ++it;
  }
  const std::int64_t parent = tip_slot();
  mark_proposed(batch, slot);
  auto payload = std::make_shared<const BankBlockPayload>(slot, node_id(),
                                                          parent, batch);
  broadcast(payload, batch_bytes(batch.size()));
  SlotState& state = slots_[slot];
  state.have_block = true;
  state.leader = node_id();
  state.parent_slot = parent;
  state.txs = std::move(batch);
  maybe_vote(slot, state);  // the leader endorses its own bank
  try_finalize(slot);
}

void SolanaNode::forward_pending(std::uint64_t slot) {
  if (pending_forward_.empty()) return;
  // Drop what has committed since the last tick; collect what is due for
  // (re-)forwarding under the RPC retry pacing.
  std::vector<chain::Transaction> batch;
  for (auto it = pending_forward_.begin(); it != pending_forward_.end();) {
    if (ledger().is_committed(it->first)) {
      it = pending_forward_.erase(it);
      continue;
    }
    if (now() >= it->second.next_send) {
      batch.push_back(it->second.tx);
      it->second.next_send = now() + config_.forward_retry;
    }
    ++it;
  }
  if (batch.empty()) return;
  auto payload = std::make_shared<const ForwardPayload>(std::move(batch));
  std::set<net::NodeId> targets;
  for (int i = 0; i < config_.forward_horizon; ++i) {
    targets.insert(leader_of_slot(
        slot + static_cast<std::uint64_t>(i) * config_.leader_group_slots));
  }
  for (const net::NodeId target : targets) {
    if (target == node_id()) {
      for (const auto& tx : payload->txs) {
        leader_buffer_.emplace(std::make_pair(tx.from, tx.nonce), tx);
      }
    } else {
      send_to(target, payload, batch_bytes(payload->txs.size()));
    }
  }
}

void SolanaNode::maybe_vote(std::uint64_t slot, SlotState& state) {
  if (!state.have_block || state.voted || state.finalized) return;
  if (state.parent_slot != tip_slot()) return;  // cannot replay this bank
  // Lockout (lowest tower rung): the anchor is our *first* vote among the
  // live siblings of the current tip. While that bank is still a live
  // candidate — unfinalized, its parent still our tip — refuse to endorse
  // a sibling inside the lockout window: that is the race in which two
  // replicas could finalize competing siblings. Beyond the window the
  // chain is stalling, and every replica must be free to vote each fresh
  // bank or disjoint vote lattices would starve quorum forever. Once the
  // anchor finalizes or dies the lockout is moot.
  const auto anchor = last_voted_slot_ >= 0
                          ? slots_.find(static_cast<std::uint64_t>(
                                last_voted_slot_))
                          : slots_.end();
  const bool anchor_live = anchor != slots_.end() &&
                           anchor->second.have_block &&
                           !anchor->second.finalized &&
                           anchor->second.parent_slot == tip_slot();
  if (anchor_live && slot != static_cast<std::uint64_t>(last_voted_slot_) &&
      slot <= static_cast<std::uint64_t>(last_voted_slot_) +
                  config_.vote_lockout_slots) {
    return;
  }
  state.voted = true;
  // Voting a later sibling of a live anchor does not re-arm the lockout;
  // the anchor only moves when the old one is gone (finalized, dead, or
  // trimmed), which in normal operation is every slot.
  if (!anchor_live) last_voted_slot_ = static_cast<std::int64_t>(slot);
  state.votes.insert(node_id());
  const std::uint64_t digest = batch_digest(state.txs);
  state.vote_digests[node_id()] = digest;
  broadcast(std::make_shared<const VotePayload>(slot, node_id(), digest),
            96);
}

bool SolanaNode::finalize_one(std::uint64_t slot, SlotState& state) {
  if (state.finalized || !state.have_block) return false;
  // Content-blind counting by default (the property an equivocating leader
  // exploits). With the defense on, only votes whose bank digest matches
  // the locally replayed bank support it — an equivocation split then
  // starves BOTH variants of quorum instead of finalizing each half.
  std::size_t supporting = state.votes.size();
  if (misbehavior().enabled()) {
    const std::uint64_t digest = batch_digest(state.txs);
    supporting = 0;
    for (const net::NodeId voter : state.votes) {
      const auto known = state.vote_digests.find(voter);
      if (known == state.vote_digests.end() || known->second == digest) {
        ++supporting;
      }
    }
  }
  if (supporting < vote_quorum()) return false;
  if (state.parent_slot != tip_slot()) {
    // Quorum on a bank we cannot replay. If its chain is ahead of ours we
    // are missing committed blocks — repair the ledger from the leader;
    // if it is behind, the cluster finalized past our tip's sibling and
    // this bank can never land here.
    if (state.parent_slot > tip_slot()) request_repair(state.leader);
    return false;
  }
  state.finalized = true;
  commit_block(state.txs, state.leader, slot);
  // Rooting lags finality by the freeze-to-root confirmation depth.
  if (slot >= config_.root_lag_slots) {
    const std::uint64_t root = slot - config_.root_lag_slots;
    if (!has_root_ || root > rooted_slot_) {
      rooted_slot_ = root;
      has_root_ = true;
    }
  }
  return true;
}

void SolanaNode::sweep_finalize() {
  // The tip advanced: buffered successors may have become replayable (and
  // votable). Walk in slot order until a sweep makes no progress.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto& [slot, state] : slots_) {
      maybe_vote(slot, state);
      if (finalize_one(slot, state)) {
        progressed = true;
        break;  // the tip moved; restart the walk from the oldest slot
      }
    }
  }
}

void SolanaNode::try_finalize(std::uint64_t slot) {
  const auto it = slots_.find(slot);
  if (it == slots_.end()) return;
  if (finalize_one(slot, it->second)) sweep_finalize();
}

void SolanaNode::request_repair(net::NodeId peer) {
  if (now() < next_repair_) return;
  next_repair_ = now() + config_.slot_duration;
  request_sync(peer);
}

void SolanaNode::on_synced() {
  // Ledger repair moved the tip: buffered banks may now be replayable.
  sweep_finalize();
}

void SolanaNode::check_epoch_accounts_hash(std::uint64_t slot) {
  const EpochInfo epoch = schedule_.epoch_of_slot(slot);
  if (epoch.slots < config_.eah_min_epoch_slots) return;
  if (slot != epoch.eah_stop_slot()) return;
  // wait_get_epoch_accounts_hash: the EAH must have been calculated from a
  // bank rooted after the window opened; if no such bank exists the
  // integration cannot proceed and the validator aborts (agave #1491).
  const bool eah_available = has_root_ && rooted_slot_ >= epoch.eah_start_slot();
  if (!eah_available) panic();
}

void SolanaNode::panic() {
  panicked_ = true;
  // The process aborts; the harness does not restart panicked validators.
  kill();
}

void SolanaNode::on_app_message(const net::Envelope& envelope) {
  const net::Payload* payload = envelope.payload.get();
  if (const auto* forward = dynamic_cast<const ForwardPayload*>(payload)) {
    for (const chain::Transaction& tx : forward->txs) {
      if (ledger().is_committed(tx.id)) continue;
      leader_buffer_.emplace(std::make_pair(tx.from, tx.nonce), tx);
    }
    return;
  }
  if (const auto* block = dynamic_cast<const BankBlockPayload*>(payload)) {
    SlotState& state = slots_[block->slot];
    if (!state.have_block) {
      state.have_block = true;
      state.leader = block->leader;
      state.parent_slot = block->parent_slot;
      state.txs = block->txs;
    } else if (block->leader == state.leader &&
               (block->parent_slot != state.parent_slot ||
                batch_digest(block->txs) != batch_digest(state.txs))) {
      // Two conflicting banks for one slot from the same leader — the
      // duplicate-shred evidence real clusters gossip proofs about. The
      // first bank wins locally (validators vote per slot, content-blind,
      // which is why an equivocating leader can split finality without the
      // defense); report the leader so the scorer can throttle/ban it.
      report_misbehavior(state.leader, core::Offense::kEquivocation);
    } else if (block->leader == state.leader &&
               block->slot + config_.leader_group_slots < current_slot_) {
      // An identical bank replayed well past its slot: withhold-replay.
      // Banks are never retransmitted in normal operation (votes are), so
      // a late duplicate is evidence, not gossip noise.
      report_misbehavior(state.leader, core::Offense::kStaleReplay);
    }
    if (block->parent_slot > tip_slot()) {
      // The leader built on blocks we never replayed: repair before voting.
      request_repair(envelope.from);
    }
    maybe_vote(block->slot, state);
    try_finalize(block->slot);
    return;
  }
  if (const auto* vote = dynamic_cast<const VotePayload*>(payload)) {
    SlotState& state = slots_[vote->slot];
    state.votes.insert(vote->voter);
    state.vote_digests[vote->voter] = vote->bank_digest;
    if (state.have_block && vote->bank_digest != batch_digest(state.txs)) {
      // A peer endorsed a different bank for this slot than the one its
      // leader sent us: duplicate-bank evidence against the leader.
      report_misbehavior(state.leader, core::Offense::kEquivocation);
    }
    try_finalize(vote->slot);
    return;
  }
}

net::PayloadPtr SolanaNode::equivocate_payload(const net::PayloadPtr& payload) {
  const auto* block = dynamic_cast<const BankBlockPayload*>(payload.get());
  if (block == nullptr || block->txs.size() < 2) return nullptr;
  // Conflicting bank for the same slot: same leader and parent, different
  // batch (reversed, minus the last transaction, so the digests differ).
  std::vector<chain::Transaction> twin(block->txs.rbegin(),
                                       block->txs.rend());
  twin.pop_back();
  return std::make_shared<const BankBlockPayload>(
      block->slot, block->leader, block->parent_slot, std::move(twin));
}

bool SolanaNode::withholdable(const net::Payload& payload) const {
  // Only banks: votes are retransmitted every slot tick anyway, so
  // withholding them would replay payloads the protocol already replays.
  return dynamic_cast<const BankBlockPayload*>(&payload) != nullptr;
}

void SolanaNode::accept_transaction(const chain::Transaction& tx) {
  // No mempool: remember the transaction and push it to the scheduled
  // leaders until it lands. The forward buffer is Solana's admission
  // queue, so entering it is the lifecycle kQueued stage.
  const bool inserted =
      pending_forward_.emplace(tx.id, PendingForward{tx, now()}).second;
  if (inserted) {
    if (auto* lifecycle = simulation().lifecycle()) {
      lifecycle->mark(tx.id, sim::TxStage::kQueued, now());
    }
  }
  forward_pending(current_slot_);
}

std::vector<std::unique_ptr<chain::BlockchainNode>> make_cluster(
    sim::Simulation& simulation, net::Network& network,
    chain::NodeConfig node_config_template, SolanaConfig config) {
  std::vector<std::unique_ptr<chain::BlockchainNode>> nodes;
  nodes.reserve(node_config_template.n);
  for (net::NodeId id = 0; id < node_config_template.n; ++id) {
    chain::NodeConfig node_config = node_config_template;
    node_config.id = id;
    nodes.push_back(std::make_unique<SolanaNode>(simulation, network,
                                                 node_config, config));
  }
  return nodes;
}

namespace {

chain::ChainTraits make_traits() {
  chain::ChainTraits traits;
  traits.name = "solana";
  traits.description =
      "PoH leader schedule, TowerBFT votes and the epoch-accounts-hash "
      "panic (paper Solana)";
  traits.tier = 0;
  traits.fault_tolerance = chain::tolerance_third;
  const SolanaConfig defaults;
  traits.default_params = {
      {"warmup_epochs", defaults.warmup_epochs ? 1.0 : 0.0}};
  traits.default_params.merge(chain::misbehavior_default_params());
  traits.make_cluster = [](sim::Simulation& simulation,
                           net::Network& network,
                           const chain::NodeConfig& node_config,
                           const chain::ChainParams& params) {
    SolanaConfig config;
    config.warmup_epochs = params.at("warmup_epochs") != 0.0;
    chain::NodeConfig node_template = node_config;
    chain::apply_misbehavior_params(node_template, params);
    return make_cluster(simulation, network, node_template, config);
  };
  // The paper's observed failure modes (DESIGN.md §10 table): validators
  // panic when transient outages, partitions or delays stall the epoch
  // accounts hash. Every exemption requires the "panicked" evidence to be
  // present in the run.
  using core::FaultType;
  traits.loss_exemptions = {
      {FaultType::kTransient, "panicked",
       "restarting validators panic on the snapshot/EAH race (paper §5)"},
      {FaultType::kPartition, "panicked",
       "partitioned validators panic once the epoch accounts hash stalls "
       "(paper §6)"},
      {FaultType::kDelay, "panicked",
       "delayed gossip stalls the epoch accounts hash and panics every "
       "validator (paper §6)"},
      {FaultType::kChurn, "panicked",
       "crash-recovery churn repeatedly triggers the restart panic"},
      {FaultType::kGray, "panicked",
       "flapping loss suppresses rooting across the epoch-accounts-hash "
       "window; the EAH check panics every validator (paper §5 mechanism)"},
  };
  return traits;
}

}  // namespace

void ensure_registered() {
  // Function-local static, not a namespace-scope registrar: the
  // registration must be safe to trigger from another TU's static
  // initializer (figure benches name benchmarks after registered
  // chains at namespace scope), where cross-TU init order is
  // unspecified.
  [[maybe_unused]] static const chain::ChainRegistrar kRegistrar{
      make_traits()};
}

}  // namespace stabl::solana
