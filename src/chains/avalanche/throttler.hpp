// Avalanche's inbound message throttler (paper §2, §4, §5).
//
// AvalancheGo gates inbound message processing behind an
// InboundMsgThrottler composed of (among others):
//  * cpuThrottler — systemThrottler.Acquire blocks a message until the
//    tracked CPU usage (cpuResourceTracker.Usage) is below the target set
//    by targeter.TargetUsage;
//  * bufferThrottler — inboundMsgBufferThrottler.Acquire rejects messages
//    outright once the unprocessed-message buffer saturates.
//
// The paper traces both Avalanche failure modes to this mechanism: under
// crashes the nodes hover around their CPU quota and throughput turns
// unstable; under transient failures / partitions the arrival rate of
// consensus + gossip work exceeds the throttled service rate, queues grow,
// chits go stale, every poll times out and re-issues — a self-sustaining
// (metastable) overload that persists even after all nodes are back:
// "the messages were successfully sent and received by the nodes ... but
// the throttling prevented them from being processed in a timely manner,
// resulting in no new blocks being agreed upon."
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "chain/cpu.hpp"
#include "net/message.hpp"
#include "sim/process.hpp"

namespace stabl::avalanche {

struct ThrottlerConfig {
  bool enabled = true;
  /// Target CPU usage (fraction of one message-pipeline core). Calibrated
  /// so the 200 TPS baseline stays well under quota while crash-induced
  /// retries push the nodes against it (throughput instability) and
  /// transient-failure storms exceed it outright (permanent collapse).
  double cpu_target = 0.50;
  /// bufferThrottler: maximum unprocessed messages held; beyond this,
  /// new arrivals are dropped.
  std::size_t max_unprocessed = 2048;
  /// bandwidthThrottler: sustained inbound bytes per second before message
  /// processing is deferred (AvalancheGo's bandwidth-based rate limiting;
  /// sized so state-sync and full gossip storms bind, normal traffic not).
  double bandwidth_target_bps = 4.0e6;
  /// Cadence of the drain loop.
  sim::Duration drain_interval = sim::ms(25);
  /// Time constant of the CPU usage tracker.
  sim::Duration usage_tau = sim::sec(2);
};

/// Gates message processing behind a CPU-usage quota.
class InboundThrottler {
 public:
  using Handler = std::function<void(const net::Envelope&)>;

  /// `cost_fn` prices a message in CPU time; `handler` processes it.
  InboundThrottler(sim::Process& host, ThrottlerConfig config,
                   std::function<sim::Duration(const net::Envelope&)> cost_fn,
                   Handler handler);

  /// Entry point for every inbound application message.
  void enqueue(const net::Envelope& envelope);

  /// Start the drain loop (call from the protocol start).
  void start();

  /// Drop all queued messages and usage history (process crash).
  void reset();

  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  [[nodiscard]] double utilization() const;
  [[nodiscard]] double bandwidth_bps() const;
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

 private:
  void drain();
  [[nodiscard]] bool quota_available() const;
  void account(const net::Envelope& envelope);

  sim::Process& host_;
  ThrottlerConfig config_;
  std::function<sim::Duration(const net::Envelope&)> cost_fn_;
  Handler handler_;
  chain::DecayingMeter usage_;
  chain::DecayingMeter bytes_;
  std::deque<net::Envelope> queue_;
  std::uint64_t dropped_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace stabl::avalanche
