#include "chains/avalanche/avalanche.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "chain/hash.hpp"
#include "chain/registry.hpp"

namespace stabl::avalanche {
namespace {

struct CandidatePayload final : net::Payload {
  CandidatePayload(std::uint64_t h, std::uint64_t i, net::NodeId p,
                   std::vector<chain::Transaction> batch)
      : height(h), id(i), proposer(p), txs(std::move(batch)) {}
  std::uint64_t height;
  std::uint64_t id;
  net::NodeId proposer;
  std::vector<chain::Transaction> txs;
};

struct QueryPayload final : net::Payload {
  QueryPayload(std::uint64_t h, std::uint64_t p, net::NodeId o,
               std::uint64_t pref)
      : height(h), poll_id(p), origin(o), preferred(pref) {}
  std::uint64_t height;
  std::uint64_t poll_id;
  net::NodeId origin;
  /// The poller's preferred block id (a PullQuery): a peer that does not
  /// know the block fetches it from the poller.
  std::uint64_t preferred;
};

struct ChitPayload final : net::Payload {
  ChitPayload(std::uint64_t h, std::uint64_t p, std::uint64_t pref)
      : height(h), poll_id(p), preferred(pref) {}
  std::uint64_t height;
  std::uint64_t poll_id;
  std::uint64_t preferred;  // 0 = no preference
};

struct DecidedPayload final : net::Payload {
  DecidedPayload(std::uint64_t h, std::uint64_t i) : height(h), id(i) {}
  std::uint64_t height;
  std::uint64_t id;
};

struct FetchRequestPayload final : net::Payload {
  FetchRequestPayload(std::uint64_t h, std::uint64_t i)
      : height(h), id(i) {}
  std::uint64_t height;
  std::uint64_t id;
};

std::uint32_t batch_bytes(std::size_t tx_count) {
  return 128 + static_cast<std::uint32_t>(tx_count) * 128;
}

}  // namespace

std::uint64_t AnchorLog::decide(std::uint64_t height, std::uint64_t block_id) {
  const auto [it, inserted] = ids_.emplace(height, block_id);
  return it->second;
}

const std::uint64_t* AnchorLog::get(std::uint64_t height) const {
  const auto it = ids_.find(height);
  return it == ids_.end() ? nullptr : &it->second;
}

AvalancheNode::AvalancheNode(sim::Simulation& simulation,
                             net::Network& network,
                             chain::NodeConfig node_config,
                             AvalancheConfig config,
                             std::shared_ptr<AnchorLog> anchors)
    : BlockchainNode(simulation, network,
                     [&] {
                       node_config.connection.dead_after = config.dead_after;
                       node_config.connection.retry_period =
                           config.dial_retry_period;
                       node_config.restart_boot_delay =
                           config.restart_boot_delay;
                       return node_config;
                     }()),
      config_(config),
      anchors_(std::move(anchors)),
      throttler_(
          *this, config.throttler,
          [this](const net::Envelope& e) { return message_cost(e); },
          [this](const net::Envelope& e) { handle_app(e); }) {}

sim::Duration AvalancheNode::message_cost(const net::Envelope& e) const {
  const net::Payload* payload = e.payload.get();
  if (dynamic_cast<const QueryPayload*>(payload) != nullptr) {
    return config_.cost_query;
  }
  if (dynamic_cast<const ChitPayload*>(payload) != nullptr) {
    return config_.cost_chit;
  }
  if (const auto* batch = dynamic_cast<const chain::TxBatchPayload*>(payload)) {
    return config_.cost_batch_overhead +
           sim::Duration{config_.cost_per_tx.count() *
                         static_cast<std::int64_t>(batch->txs.size())};
  }
  if (dynamic_cast<const CandidatePayload*>(payload) != nullptr) {
    return config_.cost_candidate;
  }
  return config_.cost_decided;
}

net::NodeId AvalancheNode::proposer_of(std::uint64_t height,
                                       int attempt) const {
  const std::uint64_t h = chain::hash_combine(
      chain::hash_combine(network_seed(), height),
      static_cast<std::uint64_t>(attempt));
  return static_cast<net::NodeId>(h % cluster_size());
}

void AvalancheNode::start_protocol() {
  height_ = ledger().height();
  begin_height();
  throttler_.start();
  set_timer(config_.poll_interval, [this] { poll_tick(); });
  set_timer(config_.gossip_interval, [this] { gossip_tick(); });
}

void AvalancheNode::stop_protocol() {
  throttler_.reset();
  candidates_.clear();
  polls_.clear();
  decided_ids_.clear();
  gossip_queue_.clear();
  gossip_sent_.clear();
  preference_ = 0;
  success_ = 0;
  decided_ = false;
  decided_id_ = 0;
  attempt_ = 0;
  height_ = 0;
}

void AvalancheNode::begin_height() {
  height_start_ = now();
  attempt_ = 0;
  candidates_.clear();
  polls_.clear();
  preference_ = 0;
  success_ = 0;
  decided_ = false;
  decided_id_ = 0;
  if (proposer_of(height_, 0) == node_id()) {
    const std::uint64_t h = height_;
    set_timer(config_.block_interval, [this, h] {
      if (height_ == h && !decided_ && candidates_.empty()) propose();
    });
  }
  arm_attempt_timer(config_.block_interval + config_.attempt_timeout);
}

void AvalancheNode::arm_attempt_timer(sim::Duration delay) {
  // The guard (not a cancel) retires the timer when the height moves on:
  // a decided height must fire the stale timer as a no-op so that the
  // pending-event profile stays identical whether heights decide fast or
  // slow — cancelling here would make event counts depend on luck.
  set_timer(delay, [this, h = height_] {
    if (height_ == h) on_attempt_timeout();
  });
}

void AvalancheNode::propose() {
  chain::Mempool::ReadyStats ready_stats;
  auto txs = mutable_mempool().collect_ready(
      config_.max_block_txs,
      [this](chain::AccountId account) {
        return accounts().next_nonce(account);
      },
      ready_stats);
  // Hot-wallet transactions this proposer holds but cannot order yet: a
  // lower nonce was issued through another client and its gossip has not
  // reached us. The paper's §7 Avalanche hazard, measured directly.
  hot_nonce_stalls_ += ready_stats.hot_gap_stalled_txs;
  const std::uint64_t id =
      chain::hash_combine(chain::hash_combine(network_seed(), height_),
                          chain::hash_combine(node_id(), 0x9E3779B9u));
  auto payload = std::make_shared<const CandidatePayload>(
      height_, id, node_id(), std::move(txs));
  mark_proposed(payload->txs, height_);
  Candidate candidate{id, node_id(), payload->txs};
  candidates_.emplace(id, std::move(candidate));
  if (preference_ == 0) {
    preference_ = id;
    success_ = 0;
  }
  broadcast(payload, batch_bytes(payload->txs.size()));
}

void AvalancheNode::on_attempt_timeout() {
  if (decided_) return;
  if (candidates_.empty()) {
    ++attempt_;
    if (proposer_of(height_, attempt_) == node_id()) propose();
  }
  arm_attempt_timer(config_.attempt_timeout);
}

void AvalancheNode::poll_tick() {
  // Expire overdue polls first (missing chits: dead or throttled peers).
  const sim::Time current = now();
  std::vector<std::uint64_t> overdue;
  for (const auto& [id, poll] : polls_) {
    if (poll.open && current >= poll.deadline) overdue.push_back(id);
  }
  for (const std::uint64_t id : overdue) evaluate_poll(id);
  if (!decided_ && preference_ != 0) issue_poll();
  // Trim closed polls bookkeeping.
  while (polls_.size() > 256) polls_.erase(polls_.begin());
  set_timer(config_.poll_interval, [this] { poll_tick(); });
}

void AvalancheNode::issue_poll() {
  const std::uint64_t poll_id = next_poll_id_++;
  if (auto* trace = simulation().trace()) {
    trace->instant(static_cast<std::int32_t>(node_id()), now(), "poll",
                   "consensus",
                   "\"poll\":" + std::to_string(poll_id) +
                       ",\"height\":" + std::to_string(height_));
  }
  Poll poll;
  poll.preferred = preference_;
  poll.deadline = now() + config_.query_timeout;
  auto query = std::make_shared<const QueryPayload>(height_, poll_id,
                                                    node_id(), preference_);
  const auto sample = rng().sample_without_replacement(
      cluster_size() - 1, static_cast<std::size_t>(config_.sample_k));
  for (const std::size_t raw : sample) {
    // Map the sample index onto peer ids (skip self).
    const net::NodeId peer =
        static_cast<net::NodeId>(raw < node_id() ? raw : raw + 1);
    // Sampling ignores liveness; the send silently fails when the
    // connection is down, exactly like a query that will never be answered.
    send_to(peer, query, 128);
    ++poll.sent;
  }
  polls_.emplace(poll_id, std::move(poll));
}

void AvalancheNode::evaluate_poll(std::uint64_t poll_id) {
  const auto it = polls_.find(poll_id);
  if (it == polls_.end() || !it->second.open) return;
  Poll& poll = it->second;
  poll.open = false;
  if (decided_) return;
  // Snowball step: α matching chits on some block is a signal; on our
  // preference it extends the streak, on another it flips us.
  std::uint64_t winner = 0;
  for (const auto& [block_id, count] : poll.counts) {
    if (block_id != 0 && count >= config_.alpha) winner = block_id;
  }
  if (winner == 0) {
    success_ = 0;
  } else if (winner == preference_) {
    ++success_;
  } else {
    preference_ = winner;
    success_ = 1;
  }
  if (success_ >= config_.beta) on_decision(preference_);
}

void AvalancheNode::on_decision(std::uint64_t id) {
  if (decided_) return;
  const std::uint64_t canonical = anchors_->decide(height_, id);
  decided_ = true;
  decided_id_ = canonical;
  const auto candidate_it = candidates_.find(canonical);
  if (candidate_it != candidates_.end()) {
    broadcast(std::make_shared<const DecidedPayload>(height_, canonical),
              96);
    commit_decided(candidate_it->second);
  } else {
    request_fetch();
  }
}

void AvalancheNode::commit_decided(const Candidate& candidate) {
  decided_ids_[height_] = candidate.id;
  if (decided_ids_.size() > 64) decided_ids_.erase(decided_ids_.begin());
  commit_block(candidate.txs, candidate.proposer, height_,
               /*allow_empty=*/true);
  ++height_;
  begin_height();
}

void AvalancheNode::request_fetch() {
  if (!decided_ || decided_id_ == 0) return;
  const auto peers = connections().connected_peers();
  if (!peers.empty()) {
    const auto index = static_cast<std::size_t>(rng().uniform_int(
        0, static_cast<std::int64_t>(peers.size()) - 1));
    send_to(peers[index],
            std::make_shared<const FetchRequestPayload>(height_, decided_id_),
            96);
  }
  set_timer(sim::sec(1), [this, h = height_] {
    if (height_ == h && decided_ && decided_id_ != 0) request_fetch();
  });
}

void AvalancheNode::on_app_message(const net::Envelope& envelope) {
  // Everything inbound goes through the InboundMsgThrottler.
  throttler_.enqueue(envelope);
}

void AvalancheNode::handle_app(const net::Envelope& envelope) {
  const net::Payload* payload = envelope.payload.get();
  if (const auto* batch = dynamic_cast<const chain::TxBatchPayload*>(payload)) {
    for (const chain::Transaction& tx : batch->txs) {
      if (pool_transaction(tx)) on_transaction(tx);
    }
    return;
  }
  if (const auto* query = dynamic_cast<const QueryPayload*>(payload)) {
    std::uint64_t pref = 0;
    if (query->height == height_) {
      pref = preference_;
      if (preference_ == 0 && query->preferred != 0) {
        // PullQuery repair: we are being polled about a block we never
        // received (e.g. we were down when it was issued) — fetch it.
        send_to(envelope.from,
                std::make_shared<const FetchRequestPayload>(
                    query->height, query->preferred),
                96);
      }
    } else if (query->height < height_) {
      const auto it = decided_ids_.find(query->height);
      if (it != decided_ids_.end()) pref = it->second;
    } else {
      // The poller is ahead of us: catch up.
      request_sync(envelope.from);
    }
    send_to(envelope.from,
            std::make_shared<const ChitPayload>(query->height, query->poll_id,
                                                pref),
            96);
    return;
  }
  if (const auto* chit = dynamic_cast<const ChitPayload*>(payload)) {
    const auto it = polls_.find(chit->poll_id);
    if (it == polls_.end() || !it->second.open) return;
    Poll& poll = it->second;
    ++poll.responses;
    if (chit->preferred != 0) ++poll.counts[chit->preferred];
    // A poll concludes when *all* queried peers answered; otherwise it
    // waits for its timeout — this is why samples containing crashed (or
    // throttled) nodes stretch every voting round (paper §4).
    if (poll.responses >= poll.sent) evaluate_poll(chit->poll_id);
    return;
  }
  if (const auto* candidate = dynamic_cast<const CandidatePayload*>(payload)) {
    if (candidate->height != height_) {
      if (candidate->height > height_) request_sync(envelope.from);
      return;
    }
    // Double-propose evidence: a second candidate for this height from a
    // proposer we already hold a *different* block from. Snowball still
    // converges on one id (and the anchor pins commits), so the damage is
    // liveness — but the conflicting pair is exactly what peer scoring
    // punishes.
    for (const auto& [known_id, known] : candidates_) {
      if (known.proposer == candidate->proposer &&
          known_id != candidate->id) {
        report_misbehavior(candidate->proposer,
                           core::Offense::kEquivocation);
        break;
      }
    }
    candidates_.emplace(candidate->id,
                        Candidate{candidate->id, candidate->proposer,
                                  candidate->txs});
    if (preference_ == 0) {
      preference_ = candidate->id;
      success_ = 0;
    }
    if (decided_ && decided_id_ == candidate->id) {
      commit_decided(candidates_.at(candidate->id));
    }
    return;
  }
  if (const auto* decided = dynamic_cast<const DecidedPayload*>(payload)) {
    if (decided->height != height_ || decided_) {
      if (decided->height > height_) request_sync(envelope.from);
      return;
    }
    decided_ = true;
    decided_id_ = decided->id;
    const auto it = candidates_.find(decided->id);
    if (it != candidates_.end()) {
      commit_decided(it->second);
    } else {
      request_fetch();
    }
    return;
  }
  if (const auto* fetch = dynamic_cast<const FetchRequestPayload*>(payload)) {
    if (fetch->height == height_) {
      const auto it = candidates_.find(fetch->id);
      if (it != candidates_.end()) {
        send_to(envelope.from,
                std::make_shared<const CandidatePayload>(
                    height_, it->second.id, it->second.proposer,
                    it->second.txs),
                batch_bytes(it->second.txs.size()));
      }
    } else if (fetch->height < ledger().height()) {
      // Already committed: serve from the ledger via state sync.
      send_to(envelope.from,
              std::make_shared<const chain::SyncResponsePayload>(
                  fetch->height,
                  std::vector<chain::Block>{
                      ledger().blocks()[fetch->height]}),
              512);
    }
    return;
  }
}

void AvalancheNode::on_transaction(const chain::Transaction& tx) {
  gossip_queue_.push_back(tx.id);
}

net::PayloadPtr AvalancheNode::equivocate_payload(
    const net::PayloadPtr& payload) {
  const auto* candidate = dynamic_cast<const CandidatePayload*>(payload.get());
  if (candidate == nullptr || candidate->txs.size() < 2) return nullptr;
  // Double-propose: a *competing* candidate (distinct block id) for the
  // same height. Half the cluster seeds its preference with each block, so
  // Snowball has to fight through a genuinely split initial vote.
  std::vector<chain::Transaction> twin(candidate->txs.rbegin(),
                                       candidate->txs.rend());
  twin.pop_back();
  return std::make_shared<const CandidatePayload>(
      candidate->height, chain::hash_combine(candidate->id, 0x7477'696Eull),
      candidate->proposer, std::move(twin));
}

bool AvalancheNode::withholdable(const net::Payload& payload) const {
  // Only candidates: withholding chits/queries would just look like the
  // packet loss the throttler already models.
  return dynamic_cast<const CandidatePayload*>(&payload) != nullptr;
}

void AvalancheNode::gossip_tick() {
  // Collect a batch in arbitrary (HashMap) order: random picks from the
  // not-yet-fully-gossiped queue — this is what breaks nonce ordering.
  std::vector<chain::Transaction> batch;
  batch.reserve(config_.gossip_batch);
  // Partial Fisher-Yates over the queue: each tick draws a random batch
  // without within-tick duplicates ("HashMap order", no nonce ordering).
  std::size_t unpicked = gossip_queue_.size();
  while (batch.size() < config_.gossip_batch && unpicked > 0) {
    const auto index = static_cast<std::size_t>(
        rng().uniform_int(0, static_cast<std::int64_t>(unpicked) - 1));
    std::swap(gossip_queue_[index], gossip_queue_[unpicked - 1]);
    --unpicked;
    const chain::TxId id = gossip_queue_[unpicked];
    const auto tx = mempool().get(id);
    const bool done = !tx.has_value() || ledger().is_committed(id) ||
                      (tx.has_value() && [&] {
                        batch.push_back(*tx);
                        return ++gossip_sent_[id] >= config_.gossip_max_sends;
                      }());
    if (done) {
      gossip_queue_[unpicked] = gossip_queue_.back();
      gossip_queue_.pop_back();
      gossip_sent_.erase(id);
    }
  }
  if (!batch.empty()) {
    auto payload =
        std::make_shared<const chain::TxBatchPayload>(std::move(batch));
    const auto peers = connections().connected_peers();
    if (!peers.empty()) {
      const auto sample = rng().sample_without_replacement(
          peers.size(),
          std::min<std::size_t>(peers.size(),
                                static_cast<std::size_t>(
                                    config_.gossip_fanout)));
      for (const std::size_t index : sample) {
        send_to(peers[index], payload, batch_bytes(payload->txs.size()));
      }
    }
  }
  set_timer(config_.gossip_interval, [this] { gossip_tick(); });
}

std::vector<std::unique_ptr<chain::BlockchainNode>> make_cluster(
    sim::Simulation& simulation, net::Network& network,
    chain::NodeConfig node_config_template, AvalancheConfig config) {
  auto anchors = std::make_shared<AnchorLog>();
  std::vector<std::unique_ptr<chain::BlockchainNode>> nodes;
  nodes.reserve(node_config_template.n);
  for (net::NodeId id = 0; id < node_config_template.n; ++id) {
    chain::NodeConfig node_config = node_config_template;
    node_config.id = id;
    nodes.push_back(std::make_unique<AvalancheNode>(
        simulation, network, node_config, config, anchors));
  }
  return nodes;
}

namespace {

chain::ChainTraits make_traits() {
  chain::ChainTraits traits;
  traits.name = "avalanche";
  traits.description =
      "Snowball sampling over an inbound CPU throttler, anchored one block "
      "per height (paper Avalanche C-Chain)";
  traits.tier = 0;
  traits.fault_tolerance = chain::tolerance_fifth;
  const AvalancheConfig defaults;
  traits.default_params = {
      {"throttling", defaults.throttler.enabled ? 1.0 : 0.0},
      {"cpu_target", defaults.throttler.cpu_target}};
  traits.default_params.merge(chain::misbehavior_default_params());
  traits.make_cluster = [](sim::Simulation& simulation,
                           net::Network& network,
                           const chain::NodeConfig& node_config,
                           const chain::ChainParams& params) {
    AvalancheConfig config;
    config.throttler.enabled = params.at("throttling") != 0.0;
    config.throttler.cpu_target = params.at("cpu_target");
    chain::NodeConfig node_template = node_config;
    chain::apply_misbehavior_params(node_template, params);
    return make_cluster(simulation, network, node_template, config);
  };
  // The paper's observed failure modes (DESIGN.md §10 table): the inbound
  // throttler starves the chain to death after restarts, partitions,
  // delays or bandwidth collapse. Every exemption requires the
  // "throttled_dropped" evidence to be present in the run.
  using core::FaultType;
  traits.loss_exemptions = {
      {FaultType::kTransient, "throttled_dropped",
       "the inbound throttler starves restarted nodes and the network "
       "never refills its frontier (paper §5)"},
      {FaultType::kPartition, "throttled_dropped",
       "post-partition catch-up traffic trips the inbound throttler "
       "(paper §6)"},
      {FaultType::kDelay, "throttled_dropped",
       "two-minute-late messages accumulate until the throttler drops "
       "them (paper §6)"},
      {FaultType::kThrottle, "throttled_dropped",
       "bandwidth collapse plus the CPU throttler is the death spiral the "
       "paper attributes Avalanche's outage to"},
      {FaultType::kChurn, "throttled_dropped",
       "every churn restart re-enters the throttler starvation"},
      {FaultType::kLoss, "throttled_dropped",
       "lost queries force repolls whose backlog trips the inbound "
       "throttler; the frontier never refills"},
      {FaultType::kGray, "throttled_dropped",
       "flapping links alternate between backlog build-up and repoll "
       "storms until the throttler starves consensus"},
  };
  return traits;
}

}  // namespace

void ensure_registered() {
  // Function-local static, not a namespace-scope registrar: the
  // registration must be safe to trigger from another TU's static
  // initializer (figure benches name benchmarks after registered
  // chains at namespace scope), where cross-TU init order is
  // unspecified.
  [[maybe_unused]] static const chain::ChainRegistrar kRegistrar{
      make_traits()};
}

}  // namespace stabl::avalanche
