#include "chains/avalanche/throttler.hpp"

#include <utility>

namespace stabl::avalanche {

InboundThrottler::InboundThrottler(
    sim::Process& host, ThrottlerConfig config,
    std::function<sim::Duration(const net::Envelope&)> cost_fn,
    Handler handler)
    : host_(host),
      config_(config),
      cost_fn_(std::move(cost_fn)),
      handler_(std::move(handler)),
      usage_(config.usage_tau),
      bytes_(config.usage_tau) {}

void InboundThrottler::account(const net::Envelope& envelope) {
  usage_.add(host_.now(), sim::to_seconds(cost_fn_(envelope)));
  bytes_.add(host_.now(), static_cast<double>(envelope.bytes));
  ++processed_;
}

bool InboundThrottler::quota_available() const {
  // systemThrottler.Acquire: CPU quota AND bandwidth quota must both have
  // headroom before a message is handed to the consensus module.
  return utilization() < config_.cpu_target &&
         bandwidth_bps() < config_.bandwidth_target_bps;
}

void InboundThrottler::enqueue(const net::Envelope& envelope) {
  if (!config_.enabled) {
    account(envelope);
    handler_(envelope);
    return;
  }
  if (queue_.empty() && quota_available()) {
    // Fast path: quota available, process immediately (in order).
    account(envelope);
    handler_(envelope);
    return;
  }
  if (queue_.size() >= config_.max_unprocessed) {
    ++dropped_;  // bufferThrottler rejects the message
    return;
  }
  queue_.push_back(envelope);
}

void InboundThrottler::start() {
  host_.set_timer(config_.drain_interval, [this] { drain(); });
}

void InboundThrottler::reset() {
  queue_.clear();
  usage_.reset();
  bytes_.reset();
}

double InboundThrottler::utilization() const {
  return usage_.rate(host_.now());  // one-core message pipeline
}

double InboundThrottler::bandwidth_bps() const {
  return bytes_.rate(host_.now());
}

void InboundThrottler::drain() {
  while (!queue_.empty() && quota_available()) {
    const net::Envelope envelope = queue_.front();
    queue_.pop_front();
    account(envelope);
    handler_(envelope);
  }
  host_.set_timer(config_.drain_interval, [this] { drain(); });
}

}  // namespace stabl::avalanche
