// Avalanche (C-Chain / Snowman) model (paper §2, §4-§7).
//
// Consensus is the Snow family: to decide the block at a height, every node
// repeatedly samples k peers *from the whole validator set* (sampling is
// stake-based and liveness-oblivious, so crashed nodes keep being sampled),
// queries their preference, and counts a success when at least α of the
// answers agree with its own preference, switching preference when α agree
// on something else; β consecutive successes decide. Blocks are issued
// every ~2 s and carry at most 714 transfers (15 M gas / 21 k gas per
// transfer — the ~357 TPS capacity the paper quotes).
//
// Transactions propagate through batched random gossip out of an unordered
// pool ("the gossip-based protocol collects transactions from a HashMap in
// a loop, but HashMap keys do not enforce order"), so a sender's
// lower-nonce transaction can reach the proposer *after* a higher-nonce
// one, delaying both. Sending to t+1 nodes (the secure client) seeds four
// pools at once, which is why redundancy *improves* Avalanche's latency in
// Fig. 3d (the largest striped bar).
//
// All inbound protocol traffic passes through the InboundThrottler (see
// throttler.hpp): under crashes the nodes hover at their CPU quota and
// throughput turns unstable (Fig. 4); under transient failures or
// partitions, full gossip batches plus always-on polling exceed the
// throttled service rate, chits go stale, polls re-issue, and the overload
// becomes self-sustaining — no block is ever agreed again, even after every
// node is back (Figs. 5, 6: infinite sensitivity). Disabling the throttler
// (ablation) restores recovery.
//
// Like the Redbelly model, concurrent deciders are anchored to one
// canonical block per height via a shared AnchorLog — agreement that real
// Snowball reaches probabilistically; latency and liveness still come from
// the simulated message exchange.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "chain/node.hpp"
#include "chains/avalanche/throttler.hpp"

namespace stabl::avalanche {

struct AvalancheConfig {
  // Snowball parameters (scaled to n = 10; k <= n-1 and α > k/2).
  int sample_k = 6;
  int alpha = 5;
  int beta = 8;
  sim::Duration poll_interval = sim::ms(50);
  sim::Duration query_timeout = sim::ms(1000);

  // Block production.
  sim::Duration block_interval = sim::sec(2);
  sim::Duration attempt_timeout = sim::sec(1);
  std::size_t max_block_txs = 714;

  // Transaction gossip.
  sim::Duration gossip_interval = sim::ms(250);
  int gossip_fanout = 2;
  std::size_t gossip_batch = 128;
  int gossip_max_sends = 2;  // batches each tx is put into, per node

  // Message processing costs charged to the throttler's CPU tracker.
  sim::Duration cost_query = sim::us(4000);
  sim::Duration cost_chit = sim::us(4000);
  sim::Duration cost_candidate = sim::ms(3);
  sim::Duration cost_decided = sim::ms(1);
  sim::Duration cost_batch_overhead = sim::us(1500);
  sim::Duration cost_per_tx = sim::us(150);

  ThrottlerConfig throttler{};

  sim::Duration dead_after = sim::sec(10);
  sim::Duration dial_retry_period = sim::sec(30);
  sim::Duration restart_boot_delay = sim::sec(3);
};

/// Canonical block-per-height anchor shared by the cluster.
class AnchorLog {
 public:
  /// Register `block_id` for `height`; returns the canonical id.
  std::uint64_t decide(std::uint64_t height, std::uint64_t block_id);
  [[nodiscard]] const std::uint64_t* get(std::uint64_t height) const;

 private:
  std::map<std::uint64_t, std::uint64_t> ids_;
};

class AvalancheNode final : public chain::BlockchainNode {
 public:
  AvalancheNode(sim::Simulation& simulation, net::Network& network,
                chain::NodeConfig node_config, AvalancheConfig config,
                std::shared_ptr<AnchorLog> anchors);

  [[nodiscard]] std::uint64_t current_height() const { return height_; }
  [[nodiscard]] const InboundThrottler& throttler() const {
    return throttler_;
  }

  /// Hot-wallet transactions found stranded behind a nonce gap at propose
  /// time, summed over proposals (zero under the default workload).
  [[nodiscard]] std::uint64_t hot_nonce_stalls() const {
    return hot_nonce_stalls_;
  }

  [[nodiscard]] std::map<std::string, double> metrics() const override {
    std::map<std::string, double> out{
        {"throttled_dropped", static_cast<double>(throttler_.dropped())},
        {"throttled_queued", static_cast<double>(throttler_.queued())},
        {"messages_processed",
         static_cast<double>(throttler_.processed())},
        {"height", static_cast<double>(height_)}};
    // Elide-when-zero keeps default-workload report bytes unchanged.
    if (hot_nonce_stalls_ > 0) {
      out.emplace("hot_nonce_stalls",
                  static_cast<double>(hot_nonce_stalls_));
    }
    return out;
  }

 protected:
  void start_protocol() override;
  void stop_protocol() override;
  void on_app_message(const net::Envelope& envelope) override;
  void on_transaction(const chain::Transaction& tx) override;
  [[nodiscard]] net::PayloadPtr equivocate_payload(
      const net::PayloadPtr& payload) override;
  [[nodiscard]] bool withholdable(const net::Payload& payload) const override;

 private:
  struct Candidate {
    std::uint64_t id = 0;
    net::NodeId proposer = 0;
    std::vector<chain::Transaction> txs;
  };
  struct Poll {
    std::uint64_t preferred = 0;
    std::map<std::uint64_t, int> counts;
    int responses = 0;
    int sent = 0;
    sim::Time deadline{0};
    bool open = true;
  };

  void begin_height();
  void handle_app(const net::Envelope& envelope);
  [[nodiscard]] net::NodeId proposer_of(std::uint64_t height,
                                        int attempt) const;
  void propose();
  void arm_attempt_timer(sim::Duration delay);
  void on_attempt_timeout();
  void poll_tick();
  void issue_poll();
  void evaluate_poll(std::uint64_t poll_id);
  void on_decision(std::uint64_t id);
  void commit_decided(const Candidate& candidate);
  void gossip_tick();
  void request_fetch();
  [[nodiscard]] sim::Duration message_cost(const net::Envelope& e) const;

  AvalancheConfig config_;
  std::shared_ptr<AnchorLog> anchors_;
  InboundThrottler throttler_;

  // Volatile consensus state for the height being decided.
  std::uint64_t height_ = 0;
  sim::Time height_start_{0};
  int attempt_ = 0;
  std::unordered_map<std::uint64_t, Candidate> candidates_;
  std::uint64_t preference_ = 0;  // 0 = none yet
  int success_ = 0;
  bool decided_ = false;
  std::uint64_t decided_id_ = 0;   // nonzero while waiting for content
  std::map<std::uint64_t, Poll> polls_;
  std::uint64_t next_poll_id_ = 1;
  // Recent decisions, to answer laggards' queries.
  std::map<std::uint64_t, std::uint64_t> decided_ids_;
  // Gossip bookkeeping: txs not yet placed into `gossip_max_sends` batches.
  std::vector<chain::TxId> gossip_queue_;
  std::unordered_map<chain::TxId, int> gossip_sent_;
  std::uint64_t hot_nonce_stalls_ = 0;
};

std::vector<std::unique_ptr<chain::BlockchainNode>> make_cluster(
    sim::Simulation& simulation, net::Network& network,
    chain::NodeConfig node_config_template, AvalancheConfig config = {});

/// No-op that anchors this chain's ChainRegistrar: a binary that calls it
/// (core::chain_registry() does) cannot have the registration object's
/// translation unit dropped by the static-archive linker.
void ensure_registered();

}  // namespace stabl::avalanche
