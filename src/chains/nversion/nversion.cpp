#include "chains/nversion/nversion.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "chain/registry.hpp"
#include "sim/simulation.hpp"

namespace stabl::nversion {
namespace {

/// The knobs every derived nversion chain registers on top of its base
/// chain's parameters (all numeric, scenario-overridable).
chain::ChainParams nversion_default_params() {
  return {{"nversion_versions", 3.0},
          {"nversion_check_ms", 500.0},
          {"nversion_missed_heartbeats", 4.0},
          {"nversion_stall_s", 30.0},
          {"nversion_failover_boot_ms", 250.0}};
}

chain::ChainTraits wrap_base(const chain::ChainTraits& base) {
  chain::ChainTraits traits;
  traits.name = "nversion_" + base.name;
  traits.description = "N-version " + base.name +
                       ": primary + warm-standby versions behind a "
                       "failover health monitor";
  traits.tier = 1;
  traits.meta_of = base.name;
  traits.fault_tolerance = base.fault_tolerance;
  traits.default_params = base.default_params;
  traits.default_params.merge(nversion_default_params());

  const auto base_factory = base.make_cluster;
  traits.make_cluster = [base_factory](sim::Simulation& simulation,
                                       net::Network& network,
                                       const chain::NodeConfig& node_config,
                                       const chain::ChainParams& params) {
    // Failover re-activates a resident warm standby, not a 3 s cold boot.
    // Base factories read only the keys they declared, so handing them the
    // superset parameter map is safe.
    chain::NodeConfig node_template = node_config;
    node_template.restart_boot_delay =
        sim::seconds(params.at("nversion_failover_boot_ms") / 1e3);
    return base_factory(simulation, network, node_template, params);
  };
  traits.make_services = [](sim::Simulation& simulation,
                            const std::vector<chain::BlockchainNode*>& nodes,
                            sim::ProcessId first_id,
                            const chain::ChainParams& params) {
    std::vector<std::unique_ptr<chain::ChainService>> services;
    services.push_back(std::make_unique<NVersionMonitor>(
        simulation, first_id, nodes, monitor_config_from_params(params)));
    return services;
  };

  // The failover window is documented expected loss: commits pause for
  // detection + standby boot, evidenced by the failover counter. Safety is
  // never exempted, and the base chain's own exemptions still apply.
  traits.loss_exemptions = base.loss_exemptions;
  for (const core::FaultType fault :
       {core::FaultType::kCrash, core::FaultType::kTransient,
        core::FaultType::kChurn}) {
    traits.loss_exemptions.push_back(
        {fault, "nversion_failovers",
         "health monitor failed the dead version over to a warm standby; "
         "commits pause only for the detection + boot window"});
  }
  return traits;
}

}  // namespace

MonitorConfig monitor_config_from_params(const chain::ChainParams& params) {
  MonitorConfig config;
  config.versions = static_cast<std::size_t>(
      std::max(1.0, params.at("nversion_versions")));
  config.check_period = sim::seconds(params.at("nversion_check_ms") / 1e3);
  config.missed_heartbeats = static_cast<std::size_t>(
      std::max(1.0, params.at("nversion_missed_heartbeats")));
  config.stall_after = sim::seconds(params.at("nversion_stall_s"));
  config.failover_boot =
      sim::seconds(params.at("nversion_failover_boot_ms") / 1e3);
  return config;
}

NVersionMonitor::NVersionMonitor(sim::Simulation& simulation,
                                 sim::ProcessId id,
                                 std::vector<chain::BlockchainNode*> nodes,
                                 MonitorConfig config)
    : ChainService(simulation, id),
      nodes_(std::move(nodes)),
      config_(config) {}

void NVersionMonitor::on_start() {
  state_.assign(nodes_.size(), VersionState{});
  for (VersionState& state : state_) {
    state.standbys_left = config_.versions == 0 ? 0 : config_.versions - 1;
    state.last_advance = now();
  }
  set_timer(config_.check_period, [this] { check(); });
}

void NVersionMonitor::check() {
  // The tallest ledger among live versions is the cluster's committed
  // frontier; a live version that trails it without progress is stalled,
  // whereas a cluster-wide quiet period is not.
  std::uint64_t frontier = 0;
  for (const chain::BlockchainNode* node : nodes_) {
    if (node->alive()) frontier = std::max(frontier, node->ledger().height());
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    chain::BlockchainNode* node = nodes_[i];
    VersionState& state = state_[i];
    if (!node->alive()) {
      state.misses += 1;
      heartbeat_misses_ += 1;
      if (state.misses >= config_.missed_heartbeats) fail_over(i, false);
      continue;
    }
    state.misses = 0;
    const std::uint64_t height = node->ledger().height();
    if (height > state.last_height) {
      state.last_height = height;
      state.last_advance = now();
      continue;
    }
    if (now() < state.grace_until) continue;
    if (height >= frontier) continue;
    if (now() - state.last_advance >= config_.stall_after) fail_over(i, true);
  }
  set_timer(config_.check_period, [this] { check(); });
}

void NVersionMonitor::fail_over(std::size_t index, bool stalled) {
  chain::BlockchainNode* node = nodes_[index];
  VersionState& state = state_[index];
  if (state.standbys_left == 0) {
    if (!state.exhausted_noted) {
      state.exhausted_noted = true;
      exhausted_ += 1;
    }
    return;
  }
  state.standbys_left -= 1;
  state.misses = 0;
  failovers_ += 1;
  if (stalled) stall_failovers_ += 1;
  // Mute both detectors until the standby had time to boot and commit.
  state.grace_until = now() + config_.failover_boot + config_.stall_after;
  state.last_advance = now();
  if (auto* trace = simulation().trace()) {
    trace->instant(static_cast<std::int32_t>(node->node_id()), now(),
                   stalled ? "failover_stall" : "failover", "nversion",
                   "\"standbys_left\":" + std::to_string(state.standbys_left));
  }
  if (stalled && node->alive()) node->kill();
  node->start();  // no-op if an observer restarted the version already
}

std::map<std::string, double> NVersionMonitor::metrics() const {
  // Zero values are elided at harvest time, so benign runs report nothing.
  return {{"nversion_failovers", static_cast<double>(failovers_)},
          {"nversion_stall_failovers", static_cast<double>(stall_failovers_)},
          {"nversion_heartbeat_misses",
           static_cast<double>(heartbeat_misses_)},
          {"nversion_exhausted", static_cast<double>(exhausted_)}};
}

void ensure_registered() {
  // Deferred derivations, not a direct registrar: the base chains'
  // registrars may run after this one in static-init order, so the base
  // traits are resolved when the registry finalizes. Function-local static
  // for the same cross-TU init-order reason as the five paper chains.
  [[maybe_unused]] static const bool registered = [] {
    for (const char* base :
         {"algorand", "aptos", "avalanche", "redbelly", "solana"}) {
      chain::Registry::global().derive(
          base,
          [](const chain::ChainTraits& traits) { return wrap_base(traits); });
    }
    return true;
  }();
}

}  // namespace stabl::nversion
