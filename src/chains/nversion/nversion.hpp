// N-version meta-chain plugin: highly available nodes by construction.
//
// "Highly Available Blockchain Nodes With N-Version Design" (PAPERS.md)
// shows that running N client implementations behind one node identity
// masks implementation-level crashes: when the active version dies or
// stalls, a supervisor fails over to a warm standby and the logical node
// keeps its identity, ledger and peers. This plugin reproduces that design
// on top of ANY registered base chain without editing it: for each of the
// five paper chains it derives a meta-chain `nversion_<chain>` through
// chain::Registry::derive(). The derived chain reuses the base cluster
// factory verbatim — the per-node proxy is modeled by the node's stable
// ProcessId/NodeId identity plus a persistent ledger, so "failover to a
// warm standby" is a supervised restart with a standby-activation delay
// (nversion_failover_boot_ms, default 250 ms) instead of the 3 s cold
// boot — and adds one NVersionMonitor service per cluster.
//
// Fault semantics. Fault plans keep targeting node ids; under an nversion
// chain a crash/hang plan hits the *active version* of that node, and the
// monitor masks it (missed-heartbeat detector for dead processes, stalled-
// commit detector for live-but-not-advancing ones) until the node's
// standby budget (nversion_versions − 1) is exhausted. Consensus-level
// faults — partitions, equivocation, withholding, eclipse — are not
// process failures, so they propagate to the protocol exactly as on the
// base chain. The derived traits append crash/transient/churn loss
// exemptions backed by the "nversion_failovers" evidence metric: the
// failover window is documented expected loss, not a liveness violation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chain/node.hpp"
#include "chain/registry.hpp"
#include "chain/service.hpp"
#include "sim/time.hpp"

namespace stabl::nversion {

/// Health-monitor thresholds, decoded from the registered nversion_*
/// chain parameters (see `nversion_default_params()` in nversion.cpp).
struct MonitorConfig {
  /// Versions per logical node: one primary + (versions − 1) warm standbys.
  std::size_t versions = 3;
  /// Heartbeat / health-check period.
  sim::Duration check_period = sim::ms(500);
  /// Consecutive missed heartbeats before the proxy declares the active
  /// version dead and fails over.
  std::size_t missed_heartbeats = 4;
  /// A live version whose ledger trails the tallest live peer and has not
  /// advanced for this long is declared stalled and failed over.
  sim::Duration stall_after = sim::sec(30);
  /// Warm-standby activation time (the standby binary is already
  /// resident; contrast the 3 s cold restart of a plain node).
  sim::Duration failover_boot = sim::ms(250);
};

/// The per-cluster supervisor: polls every node on the check period, runs
/// the missed-heartbeat and stalled-commit detectors, and performs
/// failovers while a node still has standby versions left. Uses no RNG
/// and sends no messages, so attaching it perturbs nothing but the event
/// count — reports of the wrapped chain stay deterministic.
class NVersionMonitor final : public chain::ChainService {
 public:
  NVersionMonitor(sim::Simulation& simulation, sim::ProcessId id,
                  std::vector<chain::BlockchainNode*> nodes,
                  MonitorConfig config);

  /// Harvested into chain_metrics (zero values elided): nversion_failovers,
  /// nversion_stall_failovers, nversion_heartbeat_misses,
  /// nversion_exhausted.
  [[nodiscard]] std::map<std::string, double> metrics() const override;

  [[nodiscard]] std::uint64_t failovers() const { return failovers_; }
  [[nodiscard]] std::uint64_t stall_failovers() const {
    return stall_failovers_;
  }
  [[nodiscard]] std::uint64_t exhausted() const { return exhausted_; }

 protected:
  void on_start() override;

 private:
  struct VersionState {
    std::size_t standbys_left = 0;  ///< failovers this node can still do
    std::size_t misses = 0;         ///< consecutive missed heartbeats
    std::uint64_t last_height = 0;
    sim::Time last_advance{0};
    sim::Time grace_until{0};  ///< stall detector muted until (post-failover)
    bool exhausted_noted = false;
  };

  void check();
  void fail_over(std::size_t index, bool stalled);

  std::vector<chain::BlockchainNode*> nodes_;
  MonitorConfig config_;
  std::vector<VersionState> state_;
  std::uint64_t failovers_ = 0;
  std::uint64_t stall_failovers_ = 0;
  std::uint64_t heartbeat_misses_ = 0;
  std::uint64_t exhausted_ = 0;
};

/// Decode a merged parameter map into monitor thresholds.
MonitorConfig monitor_config_from_params(const chain::ChainParams& params);

/// Queue the five `nversion_<chain>` derivations with the global registry.
/// Idempotent; core::chain_registry() anchors it like the base chains.
void ensure_registered();

}  // namespace stabl::nversion
