#include "chains/algorand/algorand.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "chain/registry.hpp"
#include "chain/vrf.hpp"

namespace stabl::algorand {
namespace {

struct ProposalPayload final : net::Payload {
  ProposalPayload(std::uint64_t r, net::NodeId p,
                  std::vector<chain::Transaction> batch)
      : round(r), proposer(p), txs(std::move(batch)) {}
  std::uint64_t round;
  net::NodeId proposer;
  std::vector<chain::Transaction> txs;
};

enum class VoteStep : std::uint8_t { kSoft, kCert };

struct VotePayload final : net::Payload {
  VotePayload(std::uint64_t r, VoteStep s, net::NodeId voter_id,
              net::NodeId v)
      : round(r), step(s), voter(voter_id), value(v) {}
  std::uint64_t round;
  VoteStep step;
  net::NodeId voter;  // originator (not the forwarding relay)
  net::NodeId value;  // proposer id, or kEmptyValue
};

std::uint32_t batch_bytes(std::size_t tx_count) {
  return 128 + static_cast<std::uint32_t>(tx_count) * 128;
}

}  // namespace

const CertAnchor::Decision& CertAnchor::decide(std::uint64_t round,
                                               Decision candidate) {
  const auto [it, inserted] = decisions_.emplace(round, std::move(candidate));
  return it->second;
}

const CertAnchor::Decision* CertAnchor::get(std::uint64_t round) const {
  const auto it = decisions_.find(round);
  return it == decisions_.end() ? nullptr : &it->second;
}

AlgorandNode::AlgorandNode(sim::Simulation& simulation, net::Network& network,
                           chain::NodeConfig node_config,
                           AlgorandConfig config,
                           std::shared_ptr<CertAnchor> anchor,
                           bool is_relay)
    : BlockchainNode(simulation, network,
                     [&] {
                       node_config.connection.dead_after = config.dead_after;
                       node_config.connection.retry_period =
                           config.dial_retry_period;
                       node_config.connection.retry_jitter_frac = 0.02;
                       node_config.restart_boot_delay =
                           config.restart_boot_delay;
                       return node_config;
                     }()),
      config_(config),
      anchor_(std::move(anchor)),
      is_relay_(is_relay) {}

std::size_t AlgorandNode::vote_quorum() const {
  // Strictly more than the threshold fraction of total stake must vote:
  // with the 80% online-stake requirement and n = 10 this is 9 nodes, so
  // f = t = 1 degrades while f = t+1 = 2 halts. The floor(..)+1 form keeps
  // the same semantics at other network sizes (the scale-sweep bench).
  const double stake = static_cast<double>(cluster_size());
  return static_cast<std::size_t>(stake *
                                  config_.vote_threshold_fraction) +
         1;
}

void AlgorandNode::start_protocol() {
  round_ = ledger().height();
  filter_wait_ = config_.default_filter_wait;
  begin_round();
  rebroadcast_timer_ = set_timer(config_.rebroadcast_interval,
                                 [this] { rebroadcast(); });
}

void AlgorandNode::stop_protocol() { reset_round_state(); }

void AlgorandNode::reset_round_state() {
  soft_voted_ = false;
  cert_voted_ = false;
  grace_used_ = false;
  proposal_value_ = kEmptyValue;
  proposal_txs_.clear();
  soft_votes_.clear();
  cert_votes_.clear();
  own_soft_vote_.reset();
  own_cert_vote_.reset();
  own_proposal_.reset();
  seen_proposal_.reset();
  future_proposals_.clear();
  forwarded_.clear();
  vote_timer_ = sim::kInvalidTimer;
  rebroadcast_timer_ = sim::kInvalidTimer;
}

void AlgorandNode::begin_round() {
  if (auto* trace = simulation().trace()) {
    trace->instant(static_cast<std::int32_t>(node_id()), now(), "round",
                   "consensus", "\"round\":" + std::to_string(round_));
  }
  soft_voted_ = false;
  cert_voted_ = false;
  grace_used_ = false;
  proposal_value_ = kEmptyValue;
  proposal_txs_.clear();
  soft_votes_.clear();
  cert_votes_.clear();
  own_soft_vote_.reset();
  own_cert_vote_.reset();
  own_proposal_.reset();
  seen_proposal_.reset();
  propose_if_selected();
  // A proposal that arrived while we were finishing the previous round.
  const auto buffered = future_proposals_.find(round_);
  if (buffered != future_proposals_.end()) {
    const auto& proposal =
        static_cast<const ProposalPayload&>(*buffered->second);
    if (proposal_value_ == kEmptyValue) {
      proposal_value_ = proposal.proposer;
      proposal_txs_ = proposal.txs;
      seen_proposal_ = buffered->second;
    }
  }
  future_proposals_.erase(future_proposals_.begin(),
                          future_proposals_.upper_bound(round_));
  // Filter step: collect proposals for the adaptive wait, then vote.
  // reset_timer retires any vote timer left over from the previous round
  // (the cancel is an eager O(log n) removal, not lazy-cancel garbage).
  reset_timer(vote_timer_, filter_wait_, [this] { cast_soft_vote(); });
}

void AlgorandNode::propose_if_selected() {
  const net::NodeId proposer = chain::sortition_leader(
      network_seed(), round_, /*step=*/0, cluster_size());
  if (proposer != node_id()) return;
  auto batch = mutable_mempool().collect_ready(
      config_.max_batch, [this](chain::AccountId account) {
        return accounts().next_nonce(account);
      });
  auto payload = std::make_shared<const ProposalPayload>(round_, node_id(),
                                                         std::move(batch));
  mark_proposed(payload->txs, round_);
  proposal_value_ = node_id();
  proposal_txs_ = payload->txs;
  own_proposal_ = payload;
  broadcast(own_proposal_, batch_bytes(payload->txs.size()));
}

void AlgorandNode::cast_soft_vote() {
  if (soft_voted_) return;
  // Crash recovery: never vote twice in a round; re-adopt the persisted
  // vote instead (Algorand writes votes to disk before sending).
  const auto persisted = persisted_votes_.find(round_);
  if (persisted != persisted_votes_.end() && persisted->second.has_soft) {
    soft_voted_ = true;
    const net::NodeId value = persisted->second.soft_value;
    own_soft_vote_ =
        std::make_shared<const VotePayload>(round_, VoteStep::kSoft,
                                            node_id(), value);
    soft_votes_[node_id()] = value;
    broadcast(own_soft_vote_, 96);
    tally_soft_votes();
    return;
  }
  if (proposal_value_ == kEmptyValue && !grace_used_) {
    // No proposal yet: grant the grace period once, then vote whatever
    // arrived in the meantime (or the empty value).
    grace_used_ = true;
    reset_timer(vote_timer_, config_.proposal_grace,
                [this] { cast_soft_vote(); });
    return;
  }
  soft_voted_ = true;
  auto& record = persisted_votes_[round_];
  record.has_soft = true;
  record.soft_value = proposal_value_;
  auto vote = std::make_shared<const VotePayload>(
      round_, VoteStep::kSoft, node_id(), proposal_value_);
  own_soft_vote_ = vote;
  soft_votes_[node_id()] = proposal_value_;
  broadcast(own_soft_vote_, 96);
  tally_soft_votes();
}

void AlgorandNode::tally_soft_votes() {
  if (cert_voted_) return;
  // Crash recovery: re-adopt a persisted cert vote rather than equivocate.
  const auto persisted = persisted_votes_.find(round_);
  if (persisted != persisted_votes_.end() && persisted->second.has_cert) {
    cert_voted_ = true;
    const net::NodeId value = persisted->second.cert_value;
    own_cert_vote_ =
        std::make_shared<const VotePayload>(round_, VoteStep::kCert,
                                            node_id(), value);
    cert_votes_[node_id()] = value;
    broadcast(own_cert_vote_, 96);
    tally_cert_votes();
    return;
  }
  std::map<net::NodeId, std::size_t> counts;
  for (const auto& [voter, value] : soft_votes_) ++counts[value];
  for (const auto& [value, count] : counts) {
    if (count < vote_quorum()) continue;
    cert_voted_ = true;
    auto& record = persisted_votes_[round_];
    record.has_cert = true;
    record.cert_value = value;
    auto vote =
        std::make_shared<const VotePayload>(round_, VoteStep::kCert,
                                            node_id(), value);
    own_cert_vote_ = vote;
    cert_votes_[node_id()] = value;
    broadcast(own_cert_vote_, 96);
    tally_cert_votes();
    return;
  }
}

void AlgorandNode::tally_cert_votes() {
  std::map<net::NodeId, std::size_t> counts;
  for (const auto& [voter, value] : cert_votes_) ++counts[value];
  for (const auto& [value, count] : counts) {
    if (count < vote_quorum()) continue;
    if (value != kEmptyValue && proposal_value_ != value &&
        anchor_->get(round_) == nullptr) {
      // Certified a proposal whose content we have not received yet; wait
      // for the proposer's (re-)broadcast. Votes keep accumulating.
      return;
    }
    commit_value(value);
    return;
  }
}

void AlgorandNode::commit_value(net::NodeId value) {
  // Pin the round's canonical value (see CertAnchor): the first certified
  // value wins; any later certification of the other value adopts it.
  CertAnchor::Decision candidate;
  candidate.value = value;
  if (value != kEmptyValue) candidate.txs = proposal_txs_;
  const CertAnchor::Decision& decision =
      anchor_->decide(round_, std::move(candidate));
  if (decision.value == kEmptyValue) {
    commit_block({}, node_id(), round_, /*allow_empty=*/true);
    // A timed-out round resets the dynamic round time to its defaults.
    filter_wait_ = config_.default_filter_wait;
  } else {
    commit_block(decision.txs, decision.value, round_, /*allow_empty=*/true);
    // Clean round: the adaptive timing parameters creep down.
    filter_wait_ = std::max(config_.min_filter_wait,
                            filter_wait_ - config_.filter_wait_step);
  }
  ++round_;
  persisted_votes_.erase(persisted_votes_.begin(),
                         persisted_votes_.lower_bound(
                             round_ > 8 ? round_ - 8 : 0));
  begin_round();
}

void AlgorandNode::on_app_message(const net::Envelope& envelope) {
  const net::Payload* payload = envelope.payload.get();
  if (const auto* batch = dynamic_cast<const chain::TxBatchPayload*>(payload)) {
    std::vector<chain::Transaction> fresh;
    for (const chain::Transaction& tx : batch->txs) {
      if (pool_transaction(tx)) fresh.push_back(tx);
    }
    if (is_relay_ && !fresh.empty()) {
      // Push gossip through the relay tier.
      auto forward = std::make_shared<const chain::TxBatchPayload>(fresh);
      for (const net::NodeId peer : connections().peers()) {
        if (peer != envelope.from) {
          connections().send(peer, forward, envelope.bytes);
        }
      }
    }
    return;
  }
  if (const auto* proposal = dynamic_cast<const ProposalPayload*>(payload)) {
    relay_forward(envelope,
                  chain::hash_combine(chain::hash_combine(proposal->round,
                                                          proposal->proposer),
                                      0xA1150Full));
    if (proposal->round > round_ &&
        proposal->round <= round_ + 4) {
      future_proposals_[proposal->round] = envelope.payload;
      return;
    }
    if (proposal->round != round_) return;
    if (proposal_value_ == proposal->proposer && !proposal_txs_.empty() &&
        proposal->txs.size() != proposal_txs_.size()) {
      // Two different batches under the same (round, proposer): a
      // double-propose. The first batch stays adopted (and the CertAnchor
      // pins whichever content certifies first, so agreement holds); the
      // conflicting pair is the evidence peer scoring acts on.
      report_misbehavior(proposal->proposer, core::Offense::kEquivocation);
      return;
    }
    if (proposal_value_ == kEmptyValue ||
        proposal_value_ == proposal->proposer) {
      proposal_value_ = proposal->proposer;
      proposal_txs_ = proposal->txs;
      seen_proposal_ = envelope.payload;
      // If certification already happened and only the content was
      // missing, complete the commit now.
      tally_cert_votes();
    }
    return;
  }
  if (const auto* vote = dynamic_cast<const VotePayload*>(payload)) {
    relay_forward(envelope,
                  chain::hash_combine(
                      chain::hash_combine(vote->round, vote->voter),
                      chain::hash_combine(
                          static_cast<std::uint64_t>(vote->step),
                          vote->value)));
    if (vote->round > round_) {
      request_sync(envelope.from);
      return;
    }
    if (vote->round != round_) return;
    if (vote->step == VoteStep::kSoft) {
      // Double-vote evidence: switching soft votes *from the empty value*
      // to a proposal is legitimate BA* recovery (see rebroadcast());
      // switching away from a non-empty value is not.
      const auto known = soft_votes_.find(vote->voter);
      if (known != soft_votes_.end() && known->second != kEmptyValue &&
          known->second != vote->value) {
        report_misbehavior(vote->voter, core::Offense::kEquivocation);
      }
      soft_votes_[vote->voter] = vote->value;
      tally_soft_votes();
    } else {
      // Cert votes are cast at most once per round (persisted to disk
      // before sending); any conflicting pair is equivocation.
      const auto known = cert_votes_.find(vote->voter);
      if (known != cert_votes_.end() && known->second != vote->value) {
        report_misbehavior(vote->voter, core::Offense::kEquivocation);
      }
      cert_votes_[vote->voter] = vote->value;
      tally_cert_votes();
    }
    return;
  }
}

void AlgorandNode::relay_forward(const net::Envelope& envelope,
                                 std::uint64_t key) {
  // Relay nodes re-propagate consensus traffic so participation nodes that
  // only peer with relays still see every proposal and vote exactly once.
  if (!is_relay_) return;
  if (!forwarded_.insert(key).second) return;
  if (forwarded_.size() > 100'000) forwarded_.clear();
  for (const net::NodeId peer : connections().peers()) {
    if (peer != envelope.from) {
      connections().send(peer, envelope.payload, envelope.bytes);
    }
  }
}

net::PayloadPtr AlgorandNode::equivocate_payload(
    const net::PayloadPtr& payload) {
  if (const auto* proposal =
          dynamic_cast<const ProposalPayload*>(payload.get())) {
    if (proposal->txs.size() < 2) return nullptr;
    // Double-propose: a conflicting batch under the same (round, proposer).
    std::vector<chain::Transaction> twin(proposal->txs.rbegin(),
                                         proposal->txs.rend());
    twin.pop_back();
    return std::make_shared<const ProposalPayload>(
        proposal->round, proposal->proposer, std::move(twin));
  }
  if (const auto* vote = dynamic_cast<const VotePayload*>(payload.get())) {
    if (vote->value == kEmptyValue) return nullptr;
    // Double-vote: endorse the proposal to one half of the cluster and the
    // empty value to the other, splitting the quorum count.
    return std::make_shared<const VotePayload>(vote->round, vote->step,
                                               vote->voter, kEmptyValue);
  }
  return nullptr;
}

bool AlgorandNode::withholdable(const net::Payload& payload) const {
  // Only proposals: votes are re-gossiped every rebroadcast tick anyway,
  // so withholding them replays payloads the protocol already replays.
  return dynamic_cast<const ProposalPayload*>(&payload) != nullptr;
}

void AlgorandNode::on_transaction(const chain::Transaction& tx) {
  // Push gossip: the entry node forwards to every peer; the network is
  // fully connected, so no multi-hop relay is needed.
  broadcast(std::make_shared<const chain::TxBatchPayload>(
                std::vector<chain::Transaction>{tx}),
            160);
}

void AlgorandNode::on_peer_up(net::NodeId peer) {
  // Pull gossip on (re)connection: offer our pooled transactions and the
  // current round state so a rejoining node converges.
  const auto pool = mutable_mempool().collect_ready(
      config_.max_batch * 6, [this](chain::AccountId account) {
        return accounts().next_nonce(account);
      });
  if (!pool.empty()) {
    send_to(peer, std::make_shared<const chain::TxBatchPayload>(pool),
            batch_bytes(pool.size()));
  }
  if (own_proposal_ != nullptr) send_to(peer, own_proposal_, 256);
  if (seen_proposal_ != nullptr) send_to(peer, seen_proposal_, 256);
  if (own_soft_vote_ != nullptr) send_to(peer, own_soft_vote_, 96);
  if (own_cert_vote_ != nullptr) send_to(peer, own_cert_vote_, 96);
}

void AlgorandNode::on_synced() {
  if (ledger().height() > round_) {
    round_ = ledger().height();
    filter_wait_ = config_.default_filter_wait;
    begin_round();
  }
}

void AlgorandNode::rebroadcast() {
  // BA* recovers stuck rounds through further voting steps: when a node
  // soft-voted the empty value but has since received the round's
  // proposal (e.g. after a partition healed), it re-votes for the
  // proposal so the round can still certify. Votes are last-write-wins
  // per voter, and cert votes are cast at most once per round, so two
  // conflicting certified values would need 2*quorum > n distinct nodes.
  if (soft_voted_ && proposal_value_ != kEmptyValue &&
      soft_votes_[node_id()] == kEmptyValue) {
    auto vote = std::make_shared<const VotePayload>(
        round_, VoteStep::kSoft, node_id(), proposal_value_);
    own_soft_vote_ = vote;
    soft_votes_[node_id()] = proposal_value_;
    auto& record = persisted_votes_[round_];
    record.has_soft = true;
    record.soft_value = proposal_value_;
    tally_soft_votes();
  }
  if (own_proposal_ != nullptr) broadcast(own_proposal_, 256);
  if (seen_proposal_ != nullptr) broadcast(seen_proposal_, 256);
  if (own_soft_vote_ != nullptr) broadcast(own_soft_vote_, 96);
  if (own_cert_vote_ != nullptr) broadcast(own_cert_vote_, 96);
  rebroadcast_timer_ = set_timer(config_.rebroadcast_interval,
                                 [this] { rebroadcast(); });
}

std::vector<std::unique_ptr<chain::BlockchainNode>> make_cluster(
    sim::Simulation& simulation, net::Network& network,
    chain::NodeConfig node_config_template, AlgorandConfig config) {
  auto anchor = std::make_shared<CertAnchor>();
  const std::size_t n = node_config_template.n;
  const std::size_t relays = std::min(config.relay_count, n);
  std::vector<std::unique_ptr<chain::BlockchainNode>> nodes;
  nodes.reserve(n);
  for (net::NodeId id = 0; id < n; ++id) {
    chain::NodeConfig node_config = node_config_template;
    node_config.id = id;
    const bool is_relay = relays == 0 || id < relays;
    if (relays > 0) {
      node_config.peers.clear();
      if (id < relays) {
        // Relays connect to everyone.
        for (net::NodeId peer = 0; peer < n; ++peer) {
          if (peer != id) node_config.peers.push_back(peer);
        }
      } else {
        // Participation nodes connect only to the relay tier.
        for (net::NodeId peer = 0; peer < relays; ++peer) {
          node_config.peers.push_back(peer);
        }
      }
    }
    nodes.push_back(std::make_unique<AlgorandNode>(
        simulation, network, node_config, config, anchor, is_relay));
  }
  return nodes;
}

namespace {

chain::ChainTraits make_traits() {
  chain::ChainTraits traits;
  traits.name = "algorand";
  traits.description =
      "BA* sortition rounds with dynamic round time and an 80% online-stake "
      "certification quorum (paper Algorand)";
  traits.tier = 0;
  traits.fault_tolerance = chain::tolerance_fifth;
  const AlgorandConfig defaults;
  traits.default_params = {
      {"relays", static_cast<double>(defaults.relay_count)}};
  traits.default_params.merge(chain::misbehavior_default_params());
  traits.make_cluster = [](sim::Simulation& simulation,
                           net::Network& network,
                           const chain::NodeConfig& node_config,
                           const chain::ChainParams& params) {
    AlgorandConfig config;
    config.relay_count = static_cast<std::size_t>(params.at("relays"));
    chain::NodeConfig node_template = node_config;
    chain::apply_misbehavior_params(node_template, params);
    return make_cluster(simulation, network, node_template, config);
  };
  return traits;
}

}  // namespace

void ensure_registered() {
  // Function-local static, not a namespace-scope registrar: the
  // registration must be safe to trigger from another TU's static
  // initializer (figure benches name benchmarks after registered
  // chains at namespace scope), where cross-TU init order is
  // unspecified.
  [[maybe_unused]] static const chain::ChainRegistrar kRegistrar{
      make_traits()};
}

}  // namespace stabl::algorand
