// Algorand model (paper §2, §4-§7).
//
// Algorand selects a proposer and vote committees per round through
// cryptographic sortition (VRF). Sortition is stake-based and oblivious to
// liveness, so crashed nodes keep being selected; a round whose proposer is
// dead only completes (empty) after a timeout, and Algorand's *dynamic
// round time* then resets its adaptive timing parameters to their defaults
// (paper §4: "there are periods when the decreased timing parameters are
// reset to their default values, which reduces the average throughput and
// increases transaction latency").
//
// Round model (a compressed BA★):
//   1. proposer = lowest sortition draw for the round; it broadcasts a
//      proposal with its ready mempool batch (transactions reach every
//      mempool through push gossip; a pull exchange runs on reconnection);
//   2. after the adaptive filter wait, every node soft-votes for the
//      proposal it saw (or the empty value if none arrived);
//   3. a quorum of matching soft-votes triggers a cert-vote; a quorum of
//      matching cert-votes commits the round (empty rounds commit an empty
//      block, keeping height == round).
//
// Liveness threshold: certification requires votes from strictly more
// than 80% of the stake (Algorand's online-stake requirement); with n = 10
// this means 9 nodes, so f = t = 1 crash degrades but does not halt, while
// f = t+1 = 2 halts until the nodes return — exactly the paper's Fig. 4/5
// behaviour. Partition recovery is passive and driven by the connection
// policy (detection after ~10 s of silence, periodic redial), producing the
// ~99 s recovery of Fig. 6.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "chain/node.hpp"

namespace stabl::algorand {

/// Canonical value committed per round, shared by the cluster.
///
/// Real BA* guarantees through its additional voting periods that at most
/// one value can be certified per round; the compressed two-step model
/// here re-votes when a proposal arrives late (partition recovery), which
/// can transiently certify both the proposal and the empty value. The
/// anchor pins the first certified value as canonical — agreement by
/// construction, with latency and liveness still coming entirely from the
/// simulated vote exchange (a node only commits after observing a
/// certification quorum).
class CertAnchor {
 public:
  struct Decision {
    net::NodeId value = 0;
    std::vector<chain::Transaction> txs;
  };

  const Decision& decide(std::uint64_t round, Decision candidate);
  [[nodiscard]] const Decision* get(std::uint64_t round) const;

 private:
  std::map<std::uint64_t, Decision> decisions_;
};

struct AlgorandConfig {
  /// Dynamic round time: default (reset) filter wait, its floor, and the
  /// per-clean-round reduction. The slow descent is why throughput keeps
  /// improving for the first couple of minutes of a run.
  sim::Duration default_filter_wait = sim::ms(2000);
  sim::Duration min_filter_wait = sim::ms(850);
  sim::Duration filter_wait_step = sim::ms(20);
  /// Extra grace after the filter wait before voting the empty value.
  sim::Duration proposal_grace = sim::ms(1200);
  /// Certification requires strictly more than this fraction of the total
  /// stake (Algorand's ~80% online-stake liveness requirement).
  double vote_threshold_fraction = 0.8;
  /// Proposal batch limit.
  std::size_t max_batch = 5'000;
  /// Re-gossip the current round's votes while the round is stuck.
  sim::Duration rebroadcast_interval = sim::sec(2);
  /// Relay topology: 0 = every node is both relay and participation node,
  /// fully connected (the paper's deployment, which is why the secure
  /// client changes nothing for Algorand in §7). r > 0 dedicates nodes
  /// 0..r-1 as relays; participation nodes connect only to relays and all
  /// traffic is relayed through them — the hierarchical structure "that
  /// typically benefits from such optimizations".
  std::size_t relay_count = 0;
  /// Connection policy: silence before tearing a connection down, and the
  /// periodic redial interval (drives the ~99 s partition recovery).
  sim::Duration dead_after = sim::sec(10);
  sim::Duration dial_retry_period = sim::sec(108);
  sim::Duration restart_boot_delay = sim::sec(7);
};

class AlgorandNode final : public chain::BlockchainNode {
 public:
  AlgorandNode(sim::Simulation& simulation, net::Network& network,
               chain::NodeConfig node_config, AlgorandConfig config,
               std::shared_ptr<CertAnchor> anchor, bool is_relay);

  [[nodiscard]] bool is_relay() const { return is_relay_; }

  [[nodiscard]] std::uint64_t current_round() const { return round_; }
  [[nodiscard]] sim::Duration filter_wait() const { return filter_wait_; }

  [[nodiscard]] std::map<std::string, double> metrics() const override {
    return {{"round", static_cast<double>(round_)},
            {"filter_wait_s", sim::to_seconds(filter_wait_)},
            {"duplicate_submissions",
             static_cast<double>(mempool().duplicate_submissions())}};
  }

 protected:
  void start_protocol() override;
  void stop_protocol() override;
  void on_app_message(const net::Envelope& envelope) override;
  void on_transaction(const chain::Transaction& tx) override;
  void on_peer_up(net::NodeId peer) override;
  void on_synced() override;
  [[nodiscard]] net::PayloadPtr equivocate_payload(
      const net::PayloadPtr& payload) override;
  [[nodiscard]] bool withholdable(const net::Payload& payload) const override;

 private:
  /// Sentinel vote value meaning "no proposal seen" (the empty block).
  static constexpr net::NodeId kEmptyValue = ~net::NodeId{0};

  void begin_round();
  void propose_if_selected();
  void cast_soft_vote();
  void tally_soft_votes();
  void tally_cert_votes();
  void commit_value(net::NodeId value);
  void relay_forward(const net::Envelope& envelope, std::uint64_t key);
  void reset_round_state();
  void rebroadcast();
  [[nodiscard]] std::size_t vote_quorum() const;

  AlgorandConfig config_;
  std::shared_ptr<CertAnchor> anchor_;
  bool is_relay_ = false;

  /// Relay forwarding dedup (consensus messages already forwarded).
  std::set<std::uint64_t> forwarded_;

  // Volatile protocol state.
  std::uint64_t round_ = 0;
  sim::Duration filter_wait_{0};
  bool soft_voted_ = false;
  bool cert_voted_ = false;
  bool grace_used_ = false;
  net::NodeId proposal_value_ = kEmptyValue;  // proposer we saw
  std::vector<chain::Transaction> proposal_txs_;
  std::map<net::NodeId, net::NodeId> soft_votes_;  // voter -> value
  std::map<net::NodeId, net::NodeId> cert_votes_;
  net::PayloadPtr own_soft_vote_;
  net::PayloadPtr own_cert_vote_;
  net::PayloadPtr own_proposal_;
  /// The round's proposal as received (relayed on reconnection so nodes
  /// that missed it — e.g. when its proposer died — can still vote).
  net::PayloadPtr seen_proposal_;
  /// Proposals received for rounds we have not entered yet (a node that
  /// finishes round r a moment after its peers would otherwise drop the
  /// proposal for r+1 and trail behind forever).
  std::map<std::uint64_t, net::PayloadPtr> future_proposals_;

  /// Votes already cast per round. Algorand persists this to disk before
  /// sending a vote, so a crash-recovered node cannot equivocate by voting
  /// twice in the same round — which would otherwise allow two certified
  /// values. Deliberately NOT cleared on crash.
  struct PersistedVote {
    bool has_soft = false;
    net::NodeId soft_value = 0;
    bool has_cert = false;
    net::NodeId cert_value = 0;
  };
  std::map<std::uint64_t, PersistedVote> persisted_votes_;
  sim::TimerId vote_timer_ = sim::kInvalidTimer;
  sim::TimerId rebroadcast_timer_ = sim::kInvalidTimer;
};

std::vector<std::unique_ptr<chain::BlockchainNode>> make_cluster(
    sim::Simulation& simulation, net::Network& network,
    chain::NodeConfig node_config_template, AlgorandConfig config = {});

/// No-op that anchors this chain's ChainRegistrar: a binary that calls it
/// (core::chain_registry() does) cannot have the registration object's
/// translation unit dropped by the static-archive linker.
void ensure_registered();

}  // namespace stabl::algorand
