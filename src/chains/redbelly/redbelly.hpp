// Redbelly blockchain model (paper §2, §4-§7).
//
// Redbelly builds on DBFT, a *leaderless*, deterministic Byzantine
// consensus for partially synchronous networks, and commits *superblocks*:
// the union of as many valid proposed blocks as possible, so throughput
// scales with the number of proposers and an accumulated backlog clears in
// one or two rounds (the sharp recovery peak of Fig. 5).
//
// Protocol model. Each round r:
//   1. every node broadcasts a Proposal carrying its ready mempool batch;
//   2. after a short collection window each node broadcasts an Echo listing
//      the proposers it has seen;
//   3. a node holding echoes from a quorum (n - t) computes the candidate
//      superblock — proposals echoed by at least t+1 nodes — and commits it,
//      broadcasting a Commit so that everyone else adopts the decision.
// Agreement across concurrent deciders is anchored by a DecisionLog shared
// by the cluster: the first candidate registered for a round becomes
// canonical. This is a standard simulation device — real DBFT reaches the
// same agreement through its binary consensus instances; the *latency* and
// *liveness* of a decision still come entirely from the simulated message
// exchange (a node can only decide or adopt after quorum communication),
// which is what the experiments measure.
//
// Fault behaviour reproduced:
//  * f = t crashes: any node reaching quorum decides; no leader, no
//    timeouts on the critical path — throughput stays flat (Fig. 4).
//  * f = t+1 transient: quorum lost, rounds stall; restarted nodes dial
//    back actively, state-sync, and the next superblock absorbs the whole
//    backlog (~7 s recovery, Fig. 5).
//  * partition: break detected only after MaxIdleTime of silence and
//    redials are periodic, so recovery is slow (~81 s, Fig. 6); the
//    MaxIdleTime ablation shows the developers' suggested speed-up.
//  * secure client: a transaction sent to t+1 nodes appears in several
//    proposals and is included at the *earliest* proposing node's pace —
//    a slight latency improvement (striped bar in Fig. 3d).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "chain/node.hpp"

namespace stabl::redbelly {

struct RedbellyConfig {
  /// Wait for other nodes' proposals before echoing.
  sim::Duration proposal_window = sim::ms(400);
  /// Pause between committing round r and proposing round r+1 (block
  /// pacing); a per-round jitter of up to `pacing_jitter` is added, which
  /// is what lets a secure client catch an earlier proposer.
  sim::Duration round_pacing = sim::ms(500);
  sim::Duration pacing_jitter = sim::ms(200);
  /// Re-broadcast the current round's proposal/echo while it is stuck
  /// (drives recovery after reconnection).
  sim::Duration rebroadcast_interval = sim::sec(2);
  /// Superblock capacity: effectively unbounded relative to the workload.
  std::size_t max_batch = 25'000;
  /// MaxIdleTime: inbound silence before a connection is declared broken
  /// (Redbelly developers confirmed 30 s would speed up recovery; the
  /// deployed default behaves like 60 s).
  sim::Duration max_idle_time = sim::sec(60);
  /// Periodic redial after a failed connection attempt.
  sim::Duration dial_retry_period = sim::sec(155);
  /// Process boot time after a restart.
  sim::Duration restart_boot_delay = sim::sec(5);
};

/// Shared agreement anchor (see file comment).
class DecisionLog {
 public:
  struct Decision {
    std::vector<net::NodeId> proposers;
    std::vector<chain::Transaction> txs;
  };

  /// Register `candidate` for `round`; returns the canonical decision
  /// (the first registered candidate wins).
  const Decision& decide(std::uint64_t round, Decision candidate);

  [[nodiscard]] const Decision* get(std::uint64_t round) const;

 private:
  std::map<std::uint64_t, Decision> decisions_;
};

class RedbellyNode final : public chain::BlockchainNode {
 public:
  RedbellyNode(sim::Simulation& simulation, net::Network& network,
               chain::NodeConfig node_config, RedbellyConfig config,
               std::shared_ptr<DecisionLog> decisions);

  [[nodiscard]] std::uint64_t current_round() const { return round_; }

  [[nodiscard]] std::map<std::string, double> metrics() const override {
    return {{"round", static_cast<double>(round_)},
            {"duplicate_submissions",
             static_cast<double>(mempool().duplicate_submissions())}};
  }

 protected:
  void start_protocol() override;
  void stop_protocol() override;
  void on_app_message(const net::Envelope& envelope) override;
  void on_peer_up(net::NodeId peer) override;
  void on_synced() override;
  [[nodiscard]] net::PayloadPtr equivocate_payload(
      const net::PayloadPtr& payload) override;
  [[nodiscard]] bool withholdable(const net::Payload& payload) const override;

 private:
  void schedule_round_start();
  void start_round();
  void send_echo();
  void maybe_decide();
  void adopt_decision(std::uint64_t round,
                      const std::vector<chain::Transaction>& txs,
                      net::NodeId decider);
  void commit_round(const std::vector<chain::Transaction>& txs,
                    net::NodeId decider);
  void reset_round_state();
  void rebroadcast();
  [[nodiscard]] std::size_t quorum() const;
  [[nodiscard]] std::size_t t() const;

  RedbellyConfig config_;
  std::shared_ptr<DecisionLog> decisions_;

  // Volatile per-round state (cleared on crash).
  std::uint64_t round_ = 0;
  bool round_open_ = false;
  bool echoed_ = false;
  std::map<net::NodeId, std::vector<chain::Transaction>> proposals_;
  std::map<net::NodeId, std::set<net::NodeId>> echoes_;
  sim::TimerId echo_timer_ = sim::kInvalidTimer;
  sim::TimerId rebroadcast_timer_ = sim::kInvalidTimer;
  net::PayloadPtr own_proposal_;
  net::PayloadPtr own_echo_;
};

/// Build a Redbelly cluster of `node_config_template.n` nodes (ids 0..n-1).
/// The template's `id` field is overwritten per node.
std::vector<std::unique_ptr<chain::BlockchainNode>> make_cluster(
    sim::Simulation& simulation, net::Network& network,
    chain::NodeConfig node_config_template, RedbellyConfig config = {});

/// No-op that anchors this chain's ChainRegistrar: a binary that calls it
/// (core::chain_registry() does) cannot have the registration object's
/// translation unit dropped by the static-archive linker.
void ensure_registered();

}  // namespace stabl::redbelly
