#include "chains/redbelly/redbelly.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>
#include <utility>

#include "chain/registry.hpp"

namespace stabl::redbelly {
namespace {

struct ProposalPayload final : net::Payload {
  ProposalPayload(std::uint64_t r, net::NodeId p,
                  std::vector<chain::Transaction> batch)
      : round(r), proposer(p), txs(std::move(batch)) {}
  std::uint64_t round;
  net::NodeId proposer;
  std::vector<chain::Transaction> txs;
};

struct EchoPayload final : net::Payload {
  EchoPayload(std::uint64_t r, std::vector<net::NodeId> s)
      : round(r), seen(std::move(s)) {}
  std::uint64_t round;
  std::vector<net::NodeId> seen;
};

struct CommitPayload final : net::Payload {
  CommitPayload(std::uint64_t r, net::NodeId d,
                std::vector<chain::Transaction> batch)
      : round(r), decider(d), txs(std::move(batch)) {}
  std::uint64_t round;
  net::NodeId decider;
  std::vector<chain::Transaction> txs;
};

/// Lightweight "where are you" exchanged when a peer comes (back) up.
struct StatusPayload final : net::Payload {
  explicit StatusPayload(std::uint64_t r) : round(r) {}
  std::uint64_t round;
};

std::uint32_t batch_bytes(std::size_t tx_count) {
  return 128 + static_cast<std::uint32_t>(tx_count) * 128;
}

}  // namespace

const DecisionLog::Decision& DecisionLog::decide(std::uint64_t round,
                                                 Decision candidate) {
  const auto [it, inserted] =
      decisions_.emplace(round, std::move(candidate));
  return it->second;
}

const DecisionLog::Decision* DecisionLog::get(std::uint64_t round) const {
  const auto it = decisions_.find(round);
  return it == decisions_.end() ? nullptr : &it->second;
}

RedbellyNode::RedbellyNode(sim::Simulation& simulation, net::Network& network,
                           chain::NodeConfig node_config,
                           RedbellyConfig config,
                           std::shared_ptr<DecisionLog> decisions)
    : BlockchainNode(simulation, network,
                     [&] {
                       node_config.connection.dead_after =
                           config.max_idle_time;
                       node_config.connection.retry_period =
                           config.dial_retry_period;
                       node_config.connection.retry_jitter_frac = 0.02;
                       node_config.restart_boot_delay =
                           config.restart_boot_delay;
                       return node_config;
                     }()),
      config_(config),
      decisions_(std::move(decisions)) {}

std::size_t RedbellyNode::t() const { return (cluster_size() - 1) / 3; }
std::size_t RedbellyNode::quorum() const { return cluster_size() - t(); }

void RedbellyNode::start_protocol() {
  round_ = ledger().height();
  schedule_round_start();
  reset_timer(rebroadcast_timer_, config_.rebroadcast_interval,
              [this] { rebroadcast(); });
}

void RedbellyNode::stop_protocol() {
  reset_round_state();
  round_ = 0;
}

void RedbellyNode::reset_round_state() {
  round_open_ = false;
  echoed_ = false;
  proposals_.clear();
  echoes_.clear();
  own_proposal_.reset();
  own_echo_.reset();
  echo_timer_ = sim::kInvalidTimer;
  rebroadcast_timer_ = sim::kInvalidTimer;
}

void RedbellyNode::schedule_round_start() {
  const auto jitter = sim::Duration{static_cast<std::int64_t>(
      rng().uniform() *
      static_cast<double>(config_.pacing_jitter.count()))};
  set_timer(config_.round_pacing + jitter, [this] { start_round(); });
}

void RedbellyNode::start_round() {
  if (round_open_) return;
  round_open_ = true;
  if (auto* trace = simulation().trace()) {
    trace->instant(static_cast<std::int32_t>(node_id()), now(), "round",
                   "consensus", "\"round\":" + std::to_string(round_));
  }
  echoed_ = false;
  auto batch = mutable_mempool().collect_ready(
      config_.max_batch,
      [this](chain::AccountId account) {
        return accounts().next_nonce(account);
      });
  auto proposal = std::make_shared<const ProposalPayload>(round_, node_id(),
                                                          std::move(batch));
  mark_proposed(proposal->txs, round_);
  proposals_[node_id()] = proposal->txs;
  own_proposal_ = proposal;
  broadcast(own_proposal_, batch_bytes(proposal->txs.size()));
  reset_timer(echo_timer_, config_.proposal_window, [this] { send_echo(); });
}

void RedbellyNode::send_echo() {
  if (!round_open_ || echoed_) return;
  echoed_ = true;
  std::vector<net::NodeId> seen;
  seen.reserve(proposals_.size());
  for (const auto& [proposer, txs] : proposals_) seen.push_back(proposer);
  auto echo = std::make_shared<const EchoPayload>(round_, seen);
  own_echo_ = echo;
  echoes_[node_id()] = std::set<net::NodeId>(seen.begin(), seen.end());
  broadcast(own_echo_, 64 + 4 * static_cast<std::uint32_t>(seen.size()));
  maybe_decide();
}

void RedbellyNode::maybe_decide() {
  if (!round_open_ || !echoed_) return;
  if (echoes_.size() < quorum()) return;
  // Candidate superblock: proposals echoed by at least t+1 nodes and whose
  // content we hold. Union in proposer-id order, deduplicated.
  std::map<net::NodeId, std::size_t> counts;
  for (const auto& [echoer, seen] : echoes_) {
    for (const net::NodeId proposer : seen) ++counts[proposer];
  }
  DecisionLog::Decision candidate;
  std::unordered_set<chain::TxId> included;
  for (const auto& [proposer, count] : counts) {
    if (count < t() + 1) continue;
    const auto proposal_it = proposals_.find(proposer);
    if (proposal_it == proposals_.end()) continue;  // content not held
    candidate.proposers.push_back(proposer);
    for (const chain::Transaction& tx : proposal_it->second) {
      if (included.insert(tx.id).second) candidate.txs.push_back(tx);
    }
  }
  const DecisionLog::Decision& decision =
      decisions_->decide(round_, std::move(candidate));
  auto commit = std::make_shared<const CommitPayload>(round_, node_id(),
                                                      decision.txs);
  broadcast(commit, batch_bytes(decision.txs.size()));
  commit_round(decision.txs, node_id());
}

void RedbellyNode::commit_round(const std::vector<chain::Transaction>& txs,
                                net::NodeId decider) {
  commit_block(txs, decider, round_, /*allow_empty=*/true);
  round_open_ = false;
  echoed_ = false;
  proposals_.clear();
  echoes_.clear();
  own_proposal_.reset();
  own_echo_.reset();
  cancel_timer(echo_timer_);
  ++round_;
  schedule_round_start();
}

void RedbellyNode::adopt_decision(
    std::uint64_t round, const std::vector<chain::Transaction>& txs,
    net::NodeId decider) {
  assert(round == round_);
  (void)round;
  if (!round_open_) {
    // We had not even proposed yet (e.g. fresh restart mid-pacing); commit
    // directly, the decision is canonical.
    round_open_ = true;
  }
  commit_round(txs, decider);
}

void RedbellyNode::on_app_message(const net::Envelope& envelope) {
  const net::Payload* payload = envelope.payload.get();
  if (const auto* proposal = dynamic_cast<const ProposalPayload*>(payload)) {
    if (proposal->round != round_) return;
    const auto known = proposals_.find(proposal->proposer);
    if (known != proposals_.end() &&
        known->second.size() != proposal->txs.size()) {
      // Two different batches under the same (round, proposer): a
      // double-propose. Keep the first (the DecisionLog pins one canonical
      // superblock regardless, so agreement holds); the conflicting pair
      // is the evidence peer scoring acts on.
      report_misbehavior(proposal->proposer, core::Offense::kEquivocation);
      return;
    }
    proposals_[proposal->proposer] = proposal->txs;
    return;
  }
  if (const auto* echo = dynamic_cast<const EchoPayload*>(payload)) {
    if (echo->round != round_) return;
    echoes_[envelope.from] =
        std::set<net::NodeId>(echo->seen.begin(), echo->seen.end());
    maybe_decide();
    return;
  }
  if (const auto* commit = dynamic_cast<const CommitPayload*>(payload)) {
    if (commit->round == round_) {
      adopt_decision(commit->round, commit->txs, commit->decider);
    } else if (commit->round > round_) {
      // We are behind (restart or long disconnection): catch up.
      request_sync(envelope.from);
    }
    return;
  }
  if (const auto* status = dynamic_cast<const StatusPayload*>(payload)) {
    if (status->round > round_) request_sync(envelope.from);
    return;
  }
}

void RedbellyNode::on_peer_up(net::NodeId peer) {
  send_to(peer, std::make_shared<const StatusPayload>(round_), 64);
  // Re-offer our current round state so a stalled round can complete.
  if (own_proposal_ != nullptr) send_to(peer, own_proposal_, 256);
  if (own_echo_ != nullptr) send_to(peer, own_echo_, 128);
}

void RedbellyNode::on_synced() {
  if (ledger().height() > round_) {
    // The sync moved us past the round we were in; abandon its state.
    round_ = ledger().height();
    round_open_ = false;
    echoed_ = false;
    proposals_.clear();
    echoes_.clear();
    own_proposal_.reset();
    own_echo_.reset();
    cancel_timer(echo_timer_);
    schedule_round_start();
  }
}

net::PayloadPtr RedbellyNode::equivocate_payload(
    const net::PayloadPtr& payload) {
  const auto* proposal = dynamic_cast<const ProposalPayload*>(payload.get());
  if (proposal == nullptr || proposal->txs.size() < 2) return nullptr;
  // Double-propose: a conflicting batch under the same (round, proposer),
  // so the two halves of the cluster hold different content for the same
  // superblock component.
  std::vector<chain::Transaction> twin(proposal->txs.rbegin(),
                                       proposal->txs.rend());
  twin.pop_back();
  return std::make_shared<const ProposalPayload>(
      proposal->round, proposal->proposer, std::move(twin));
}

bool RedbellyNode::withholdable(const net::Payload& payload) const {
  // Only proposals: a withheld proposal drops the node's batch out of the
  // superblock (delay), a replayed one targets the duplicate-detection
  // path. Echo/commit withholding would look like ordinary packet loss.
  return dynamic_cast<const ProposalPayload*>(&payload) != nullptr;
}

void RedbellyNode::rebroadcast() {
  if (round_open_) {
    if (own_proposal_ != nullptr) broadcast(own_proposal_, 256);
    if (own_echo_ != nullptr) broadcast(own_echo_, 128);
  }
  reset_timer(rebroadcast_timer_, config_.rebroadcast_interval,
              [this] { rebroadcast(); });
}

std::vector<std::unique_ptr<chain::BlockchainNode>> make_cluster(
    sim::Simulation& simulation, net::Network& network,
    chain::NodeConfig node_config_template, RedbellyConfig config) {
  auto decisions = std::make_shared<DecisionLog>();
  std::vector<std::unique_ptr<chain::BlockchainNode>> nodes;
  nodes.reserve(node_config_template.n);
  for (net::NodeId id = 0; id < node_config_template.n; ++id) {
    chain::NodeConfig node_config = node_config_template;
    node_config.id = id;
    nodes.push_back(std::make_unique<RedbellyNode>(
        simulation, network, node_config, config, decisions));
  }
  return nodes;
}

namespace {

chain::ChainTraits make_traits() {
  chain::ChainTraits traits;
  traits.name = "redbelly";
  traits.description =
      "leaderless DBFT superblocks: union of every proposal echoed by t+1 "
      "nodes (paper Redbelly)";
  traits.tier = 0;
  traits.fault_tolerance = chain::tolerance_third;
  const RedbellyConfig defaults;
  traits.default_params = {
      {"max_idle_s", sim::to_seconds(defaults.max_idle_time)}};
  traits.default_params.merge(chain::misbehavior_default_params());
  traits.make_cluster = [](sim::Simulation& simulation,
                           net::Network& network,
                           const chain::NodeConfig& node_config,
                           const chain::ChainParams& params) {
    RedbellyConfig config;
    config.max_idle_time = sim::seconds(params.at("max_idle_s"));
    chain::NodeConfig node_template = node_config;
    chain::apply_misbehavior_params(node_template, params);
    return make_cluster(simulation, network, node_template, config);
  };
  return traits;
}

}  // namespace

void ensure_registered() {
  // Function-local static, not a namespace-scope registrar: the
  // registration must be safe to trigger from another TU's static
  // initializer (figure benches name benchmarks after registered
  // chains at namespace scope), where cross-TU init order is
  // unspecified.
  [[maybe_unused]] static const chain::ChainRegistrar kRegistrar{
      make_traits()};
}

}  // namespace stabl::redbelly
