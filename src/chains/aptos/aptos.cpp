#include "chains/aptos/aptos.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "chain/hash.hpp"
#include "chain/registry.hpp"

namespace stabl::aptos {
namespace {

struct ProposalPayload final : net::Payload {
  ProposalPayload(std::uint64_t r, net::NodeId l, std::int64_t parent,
                  std::vector<chain::Transaction> batch)
      : round(r), leader(l), parent_round(parent), txs(std::move(batch)) {}
  std::uint64_t round;
  net::NodeId leader;
  /// Round of the committed block the leader extends (-1 = genesis).
  /// Carries the HotStuff parent-QC linkage: voters must have replayed
  /// exactly this chain, so committed prefixes stay identical.
  std::int64_t parent_round;
  std::vector<chain::Transaction> txs;
};

/// Content identity of a proposal batch — what a vote's digest binds to.
std::uint64_t batch_digest(const std::vector<chain::Transaction>& txs) {
  std::uint64_t digest = 0x4150'544F'53ull;  // "APTOS"
  for (const chain::Transaction& tx : txs) {
    digest = chain::hash_combine(digest, chain::mix64(tx.id));
  }
  return digest;
}

struct VotePayload final : net::Payload {
  VotePayload(std::uint64_t r, net::NodeId l, std::uint64_t d)
      : round(r), leader(l), digest(d) {}
  std::uint64_t round;
  net::NodeId leader;
  /// Digest of the proposal content the voter holds; the vote tally is
  /// content-blind unless the misbehavior defense binds votes to it.
  std::uint64_t digest;
};

struct TimeoutPayload final : net::Payload {
  explicit TimeoutPayload(std::uint64_t r) : round(r) {}
  std::uint64_t round;
};

/// Announcement that the sender committed `round`. Only sent when the
/// round was contested (some replica timed out of it): laggards that
/// timed out pull the committed block before a sibling round can form a
/// conflicting quorum. Quiet rounds never send one, so healthy runs are
/// unchanged.
struct CommitCertPayload final : net::Payload {
  explicit CommitCertPayload(std::uint64_t r) : round(r) {}
  std::uint64_t round;
};

std::uint32_t batch_bytes(std::size_t tx_count) {
  return 128 + static_cast<std::uint32_t>(tx_count) * 128;
}

}  // namespace

AptosNode::AptosNode(sim::Simulation& simulation, net::Network& network,
                     chain::NodeConfig node_config, AptosConfig config)
    : BlockchainNode(simulation, network,
                     [&] {
                       node_config.connection.dead_after = config.dead_after;
                       node_config.connection.retry_period =
                           config.dial_retry_period;
                       node_config.restart_boot_delay =
                           config.restart_boot_delay;
                       return node_config;
                     }()),
      config_(config) {}

void AptosNode::start_protocol() {
  // Resume from the round after the last committed block we know of.
  const auto& blocks = ledger().blocks();
  const std::uint64_t next_round =
      blocks.empty() ? 0 : blocks.back().round + 1;
  enter_round(next_round);
}

void AptosNode::stop_protocol() {
  round_ = 0;
  voted_ = false;
  committing_ = false;
  have_proposal_ = false;
  proposal_parent_ = -1;
  lock_parent_ = -1;
  lock_round_ = 0;
  proposal_txs_.clear();
  proposal_digest_ = 0;
  votes_.clear();
  timeouts_.clear();
  consecutive_fails_.clear();
  excluded_.clear();
  pending_spec_work_ = sim::Duration{0};
  round_timer_ = sim::kInvalidTimer;
  propose_timer_ = sim::kInvalidTimer;
}

std::int64_t AptosNode::tip_round() const {
  return ledger().blocks().empty()
             ? -1
             : static_cast<std::int64_t>(ledger().blocks().back().round);
}

net::NodeId AptosNode::leader_of(std::uint64_t round) const {
  // Round-robin over validators not excluded by leader reputation. The
  // exclusion set is derived from observed round outcomes, so replicas
  // converge on it; transient disagreement only costs an extra timeout.
  std::vector<net::NodeId> active;
  active.reserve(cluster_size());
  for (net::NodeId id = 0; id < cluster_size(); ++id) {
    if (!excluded_.contains(id)) active.push_back(id);
  }
  if (active.empty()) return static_cast<net::NodeId>(round % cluster_size());
  return active[round % active.size()];
}

void AptosNode::enter_round(std::uint64_t round) {
  if (auto* trace = simulation().trace()) {
    trace->instant(static_cast<std::int32_t>(node_id()), now(), "round",
                   "consensus", "\"round\":" + std::to_string(round));
  }
  round_ = round;
  voted_ = false;
  committing_ = false;
  have_proposal_ = false;
  proposal_txs_.clear();
  proposal_digest_ = 0;
  votes_.clear();
  timeouts_.clear();
  proposal_parent_ = -1;
  reset_timer(round_timer_, config_.round_timeout,
              [this] { on_round_timeout(); });
  cancel_timer(propose_timer_);
  if (leader_of(round_) == node_id()) {
    propose_timer_ = set_timer(config_.block_interval, [this] { propose(); });
  }
}

void AptosNode::propose() {
  const std::int64_t parent = tip_round();
  // A leader locked on a sibling of this parent must not propose against
  // its own vote; the round burns a timeout instead.
  if (lock_parent_ >= 0 && parent == lock_parent_ && round_ > lock_round_ &&
      round_ <= lock_round_ + static_cast<std::uint64_t>(
                                  config_.sibling_lockout_rounds)) {
    return;
  }
  auto batch = mutable_mempool().collect_ready(
      config_.max_block_txs, [this](chain::AccountId account) {
        return accounts().next_nonce(account);
      });
  auto payload = std::make_shared<const ProposalPayload>(
      round_, node_id(), parent, std::move(batch));
  mark_proposed(payload->txs, round_);
  broadcast(payload, batch_bytes(payload->txs.size()));
  // The leader processes its own proposal too.
  proposal_leader_ = node_id();
  have_proposal_ = true;
  proposal_parent_ = parent;
  proposal_txs_ = payload->txs;
  proposal_digest_ = batch_digest(proposal_txs_);
  voted_ = true;
  lock_parent_ = parent;
  lock_round_ = round_;
  votes_[node_id()] = {node_id(), proposal_digest_};
  broadcast(std::make_shared<const VotePayload>(round_, node_id(),
                                                proposal_digest_),
            96);
  try_commit();
}

void AptosNode::on_round_timeout() {
  if (auto* trace = simulation().trace()) {
    trace->instant(static_cast<std::int32_t>(node_id()), now(),
                   "round_timeout", "consensus",
                   "\"round\":" + std::to_string(round_));
  }
  // A stuck round retransmits our vote first (the real network layer
  // retries consensus messages): one lost vote packet must not split the
  // cluster between committing the round and timing it out.
  if (voted_) {
    broadcast(std::make_shared<const VotePayload>(round_, proposal_leader_,
                                                  proposal_digest_),
              96);
  }
  // Pacemaker: shout that the round is stuck; re-arm so the timeout keeps
  // being re-broadcast while we wait (this drives post-partition resync).
  broadcast(std::make_shared<const TimeoutPayload>(round_), 96);
  timeouts_.insert(node_id());
  round_timer_ = set_timer(config_.round_timeout, [this] {
    on_round_timeout();
  });
  if (timeouts_.size() >= cluster_size() - (cluster_size() - 1) / 3) {
    record_round_outcome(round_, /*success=*/false);
    enter_round(round_ + 1);
  }
}

void AptosNode::maybe_vote() {
  if (!have_proposal_ || voted_) return;
  if (proposal_parent_ != tip_round()) return;  // cannot extend this chain
  // Sibling lockout: having voted for a proposal extending parent p, do
  // not endorse another proposal extending the same p for a few rounds. A
  // round that committed anywhere had a quorum of voters, so a quorum is
  // locked and no sibling can be certified during the window — which is
  // the time the commit certificate needs to reach the laggards. The lock
  // expires (liveness: the voted round may genuinely have died), and is
  // irrelevant once the tip moves past p.
  if (lock_parent_ >= 0 && proposal_parent_ == lock_parent_ &&
      round_ > lock_round_ &&
      round_ <= lock_round_ + static_cast<std::uint64_t>(
                                  config_.sibling_lockout_rounds)) {
    return;
  }
  voted_ = true;
  lock_parent_ = proposal_parent_;
  lock_round_ = round_;
  votes_[node_id()] = {proposal_leader_, proposal_digest_};
  broadcast(std::make_shared<const VotePayload>(round_, proposal_leader_,
                                                proposal_digest_),
            96);
}

void AptosNode::try_commit() {
  if (committing_ || !have_proposal_) return;
  std::size_t count = 0;
  for (const auto& [voter, vote] : votes_) {
    if (vote.leader != proposal_leader_) continue;
    // Defense on: content-bound counting — only votes matching the
    // proposal we hold certify it, so an equivocated round times out on
    // both variants instead of forking.
    if (misbehavior().enabled() && vote.digest != proposal_digest_) continue;
    ++count;
  }
  const std::size_t quorum = cluster_size() - (cluster_size() - 1) / 3;
  if (count < quorum) return;
  if (proposal_parent_ != tip_round()) {
    // A quorum certified a proposal we cannot replay: the voters extend
    // blocks this replica is missing. Repair the ledger first; on_synced
    // retries the commit.
    if (proposal_parent_ > tip_round()) request_sync(proposal_leader_);
    return;
  }
  committing_ = true;
  // Ordering succeeded: the pacemaker must not time the round out while
  // Block-STM execution is still in flight (execution is pipelined after
  // consensus in DiemBFT).
  cancel_timer(round_timer_);
  round_timer_ = sim::kInvalidTimer;
  // Block-STM execution: the commit lands once the CPU finishes the batch,
  // including whatever speculative duplicate work piled up meanwhile.
  // Parallel execution scales with the vCPU count (4 vCPUs = the paper's
  // standard VM; 8 vCPUs for the §7 secure-client experiment).
  const auto spec = std::min(pending_spec_work_,
                             config_.max_spec_work_per_block);
  pending_spec_work_ = sim::Duration{0};
  // Hot-key contention: every hot-wallet transaction beyond the first in
  // this block is an unpredicted write-write conflict Block-STM discovers
  // at validation time and re-executes. Same-sender nonce chains are
  // statically known dependencies and add nothing — only the shared key
  // (chain::kHotKey) pays, so default workloads see a zero here.
  std::size_t hot_txs = 0;
  for (const chain::Transaction& tx : proposal_txs_) {
    if (tx.from == chain::kHotKey) ++hot_txs;
  }
  const std::size_t conflicts = hot_txs > 1 ? hot_txs - 1 : 0;
  stm_conflict_reexecs_ += conflicts;
  const auto serial = spec +
                      sim::Duration{config_.conflict_exec.count() *
                                    static_cast<std::int64_t>(conflicts)} +
                      sim::Duration{config_.per_tx_exec.count() *
                                    static_cast<std::int64_t>(
                                        std::max<std::size_t>(
                                            proposal_txs_.size(), 1))};
  const auto cost = sim::Duration{static_cast<std::int64_t>(
      static_cast<double>(serial.count()) * 4.0 / cpu().cores())};
  const std::uint64_t round = round_;
  auto txs = proposal_txs_;
  const net::NodeId leader = proposal_leader_;
  mutable_cpu().submit(cost, [this, round, txs = std::move(txs), leader] {
    if (round != round_ || !committing_) return;  // round moved on
    commit_block(txs, leader, round);
    record_round_outcome(round, /*success=*/true);
    // A contested commit (someone timed out of this round) must be
    // announced: the replicas that timed out will otherwise certify a
    // sibling of this block in a later round and fork the ledger.
    if (!timeouts_.empty()) {
      broadcast(std::make_shared<const CommitCertPayload>(round), 96);
    }
    enter_round(round + 1);
  });
}

void AptosNode::record_round_outcome(std::uint64_t round, bool success) {
  const net::NodeId leader = leader_of(round);
  if (success) {
    consecutive_fails_[leader] = 0;
    return;
  }
  if (++consecutive_fails_[leader] >= config_.leader_fail_threshold) {
    excluded_.insert(leader);
  }
}

void AptosNode::jump_to_round(std::uint64_t round, net::NodeId peer_hint) {
  // A peer is ahead of us: fetch the blocks we missed, then follow.
  request_sync(peer_hint);
  enter_round(round);
}

void AptosNode::on_app_message(const net::Envelope& envelope) {
  const net::Payload* payload = envelope.payload.get();
  if (const auto* batch =
          dynamic_cast<const chain::TxBatchPayload*>(payload)) {
    for (const chain::Transaction& tx : batch->txs) {
      if (!pool_transaction(tx)) {
        // Block-STM speculatively dispatches the duplicate and aborts with
        // SEQUENCE_NUMBER_TOO_OLD, burning CPU that the next block's
        // execution has to share.
        ++speculative_aborts_;
        pending_spec_work_ += config_.duplicate_exec;
      }
    }
    return;
  }
  if (const auto* proposal = dynamic_cast<const ProposalPayload*>(payload)) {
    if (proposal->round < round_) return;
    if (proposal->round > round_) {
      jump_to_round(proposal->round, envelope.from);
    }
    if (have_proposal_) {
      // A second, different proposal for the same round from the leader we
      // already adopted is equivocation evidence against that leader.
      if (proposal->leader == proposal_leader_ &&
          batch_digest(proposal->txs) != proposal_digest_) {
        report_misbehavior(proposal->leader, core::Offense::kEquivocation);
      }
      return;  // adopt the first proposal for the round
    }
    proposal_leader_ = proposal->leader;
    have_proposal_ = true;
    proposal_parent_ = proposal->parent_round;
    proposal_txs_ = proposal->txs;
    proposal_digest_ = batch_digest(proposal_txs_);
    if (proposal->parent_round > tip_round()) {
      // The leader extends blocks we never committed (we timed out of a
      // round the cluster decided, or rejoined late): repair before voting.
      request_sync(envelope.from);
    }
    maybe_vote();
    try_commit();
    return;
  }
  if (const auto* vote = dynamic_cast<const VotePayload*>(payload)) {
    if (vote->round < round_) return;
    if (vote->round > round_) {
      jump_to_round(vote->round, envelope.from);
      return;
    }
    // A vote binding the same round and leader to different content than
    // our proposal means that leader fed the cluster two variants.
    if (have_proposal_ && vote->leader == proposal_leader_ &&
        vote->digest != proposal_digest_) {
      report_misbehavior(vote->leader, core::Offense::kEquivocation);
    }
    votes_[envelope.from] = {vote->leader, vote->digest};
    try_commit();
    return;
  }
  if (const auto* cert = dynamic_cast<const CommitCertPayload*>(payload)) {
    // The sender committed this round; if our tip is behind it we missed
    // that block and must repair before voting on anything else.
    if (static_cast<std::int64_t>(cert->round) > tip_round()) {
      request_sync(envelope.from);
    }
    return;
  }
  if (const auto* timeout = dynamic_cast<const TimeoutPayload*>(payload)) {
    if (timeout->round < round_) return;
    if (timeout->round > round_) {
      jump_to_round(timeout->round, envelope.from);
      return;
    }
    timeouts_.insert(envelope.from);
    const std::size_t quorum = cluster_size() - (cluster_size() - 1) / 3;
    if (timeouts_.size() >= quorum) {
      record_round_outcome(round_, /*success=*/false);
      enter_round(round_ + 1);
    }
    return;
  }
}

void AptosNode::on_synced() {
  // Ledger repair moved the tip: the pending proposal may have become
  // votable (and a buffered quorum committable).
  maybe_vote();
  try_commit();
}

net::PayloadPtr AptosNode::equivocate_payload(const net::PayloadPtr& payload) {
  if (const auto* proposal =
          dynamic_cast<const ProposalPayload*>(payload.get())) {
    if (proposal->txs.size() < 2) return nullptr;  // nothing to conflict on
    // Conflicting variant: same round/leader/parent-QC linkage, different
    // committed sequence (batch reversed minus its last transaction).
    std::vector<chain::Transaction> txs(proposal->txs.begin(),
                                        proposal->txs.end() - 1);
    std::reverse(txs.begin(), txs.end());
    return std::make_shared<const ProposalPayload>(
        proposal->round, proposal->leader, proposal->parent_round,
        std::move(txs));
  }
  if (const auto* vote = dynamic_cast<const VotePayload*>(payload.get())) {
    // Double-vote: same round and leader, conflicting content claim.
    return std::make_shared<const VotePayload>(
        vote->round, vote->leader, vote->digest ^ 0x0BAD'BEEFull);
  }
  return nullptr;
}

bool AptosNode::withholdable(const net::Payload& payload) const {
  return dynamic_cast<const ProposalPayload*>(&payload) != nullptr ||
         dynamic_cast<const VotePayload*>(&payload) != nullptr;
}

void AptosNode::accept_transaction(const chain::Transaction& tx) {
  if (!pool_transaction(tx)) {
    ++speculative_aborts_;
    pending_spec_work_ += config_.duplicate_exec;
    return;
  }
  on_transaction(tx);
}

void AptosNode::on_transaction(const chain::Transaction& tx) {
  // Shared mempool: broadcast so the current leader can propose it.
  broadcast(std::make_shared<const chain::TxBatchPayload>(
                std::vector<chain::Transaction>{tx}),
            160);
}

void AptosNode::on_peer_up(net::NodeId peer) {
  // Offer our pooled transactions so a rejoining validator's mempool
  // converges, and nudge it with our round via a timeout re-broadcast.
  const auto pool = mutable_mempool().collect_ready(
      config_.max_block_txs * 100, [this](chain::AccountId account) {
        return accounts().next_nonce(account);
      });
  if (!pool.empty()) {
    send_to(peer, std::make_shared<const chain::TxBatchPayload>(pool),
            batch_bytes(pool.size()));
  }
  send_to(peer, std::make_shared<const TimeoutPayload>(round_), 96);
}

std::vector<std::unique_ptr<chain::BlockchainNode>> make_cluster(
    sim::Simulation& simulation, net::Network& network,
    chain::NodeConfig node_config_template, AptosConfig config) {
  std::vector<std::unique_ptr<chain::BlockchainNode>> nodes;
  nodes.reserve(node_config_template.n);
  for (net::NodeId id = 0; id < node_config_template.n; ++id) {
    chain::NodeConfig node_config = node_config_template;
    node_config.id = id;
    nodes.push_back(std::make_unique<AptosNode>(simulation, network,
                                                node_config, config));
  }
  return nodes;
}

namespace {

chain::ChainTraits make_traits() {
  chain::ChainTraits traits;
  traits.name = "aptos";
  traits.description =
      "DiemBFT/HotStuff rounds with Block-STM execution and leader "
      "reputation (paper Aptos)";
  traits.tier = 0;
  traits.fault_tolerance = chain::tolerance_third;
  traits.default_params = chain::misbehavior_default_params();
  traits.make_cluster = [](sim::Simulation& simulation,
                           net::Network& network,
                           const chain::NodeConfig& node_config,
                           const chain::ChainParams& params) {
    chain::NodeConfig node_template = node_config;
    chain::apply_misbehavior_params(node_template, params);
    return make_cluster(simulation, network, node_template);
  };
  return traits;
}

}  // namespace

void ensure_registered() {
  // Function-local static, not a namespace-scope registrar: the
  // registration must be safe to trigger from another TU's static
  // initializer (figure benches name benchmarks after registered
  // chains at namespace scope), where cross-TU init order is
  // unspecified.
  [[maybe_unused]] static const chain::ChainRegistrar kRegistrar{
      make_traits()};
}

}  // namespace stabl::aptos
