// Aptos model (paper §2, §4-§7).
//
// Aptos runs AptosBFT (DiemBFT, a HotStuff descendant): a *leader-based*
// protocol with rotating leaders, a pacemaker that advances rounds through
// timeout certificates when the leader fails, and a leader-reputation
// mechanism that eventually drops unresponsive validators from the
// rotation. Execution is Block-STM: speculative parallel execution whose
// wasted re-executions (SEQUENCE_NUMBER_TOO_OLD) are what the paper blames
// for the secure-client degradation in §7 — duplicated transactions add
// CPU load, forcing the authors onto 8-vCPU VMs.
//
// Behaviours reproduced:
//  * f = t crashes (Fig. 4): rounds led by dead validators burn a pacemaker
//    timeout each; throughput oscillates until leader reputation excludes
//    the dead validators (~80 s), then stabilizes — "the throughput
//    instability reduces in about 82 seconds".
//  * f = t+1 transient (Fig. 5): quorum lost, rounds stall; after restart
//    the chain resumes quickly, but block capacity is only modestly above
//    the offered load, so the accumulated backlog never drains before the
//    experiment ends — "Aptos fails to clear the backlog ... performance
//    remains degraded for the rest of the experiment".
//  * partition (Fig. 6): connectivity is probed every 5 s, so reconnection
//    after the partition heals is fast and the partition score matches the
//    transient score.
//  * secure client (Fig. 3d): duplicate arrivals trigger speculative
//    re-execution work on the CPU model; at 4 vCPUs the node saturates
//    (hence the paper's 8-vCPU deployment), at 8 vCPUs latency still
//    degrades measurably.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "chain/node.hpp"

namespace stabl::aptos {

struct AptosConfig {
  /// Leader pacing: delay between entering a round and proposing.
  sim::Duration block_interval = sim::ms(250);
  /// Pacemaker round timeout (flat; DiemBFT's exponential backoff is
  /// capped aggressively in production deployments).
  sim::Duration round_timeout = sim::ms(500);
  /// Proposal batch limit — bounds chain capacity to well under 2x the
  /// offered load, which is what makes the post-transient backlog stick
  /// around for the rest of the run.
  std::size_t max_block_txs = 120;
  /// Consecutive failed leader rounds before reputation excludes a node.
  int leader_fail_threshold = 10;
  /// Having voted for a proposal extending parent p, refuse to endorse a
  /// *sibling* (another proposal extending the same p) for this many
  /// rounds. A committed round implies a quorum of voters, so a quorum
  /// stays locked while the commit certificate propagates — the lossy-link
  /// race in which part of the cluster commits round R while the rest
  /// certifies a sibling at the same height cannot close within the
  /// window. Expires for liveness: the voted round may really be dead.
  int sibling_lockout_rounds = 3;
  /// CPU cost of executing one transaction (Block-STM, per-core).
  sim::Duration per_tx_exec = sim::ms(2);
  /// Block-STM work wasted per duplicate arrival (the speculative
  /// execution that aborts with SEQUENCE_NUMBER_TOO_OLD). It contends with
  /// block execution, which is what degrades commit latency under the
  /// secure client.
  sim::Duration duplicate_exec = sim::us(1200);
  /// Cap on accumulated speculative work charged to one block execution.
  sim::Duration max_spec_work_per_block = sim::sec(2);
  /// Block-STM work wasted per write-write conflict re-execution: every
  /// hot-wallet transaction in a block beyond the first touches state a
  /// concurrently scheduled one wrote, aborts validation and re-executes.
  /// Same-sender nonce runs are statically predicted by the scheduler and
  /// cost nothing extra; the shared hot key (chain::kHotKey) is exactly
  /// the cross-client conflict the predictor cannot see.
  sim::Duration conflict_exec = sim::us(900);
  /// Connectivity probing (paper: every 5 s, 2 s backoff base) makes
  /// partition recovery fast.
  sim::Duration dead_after = sim::sec(10);
  sim::Duration dial_retry_period = sim::sec(5);
  sim::Duration restart_boot_delay = sim::sec(3);
};

class AptosNode final : public chain::BlockchainNode {
 public:
  AptosNode(sim::Simulation& simulation, net::Network& network,
            chain::NodeConfig node_config, AptosConfig config);

  [[nodiscard]] std::uint64_t current_round() const { return round_; }
  [[nodiscard]] const std::set<net::NodeId>& excluded_leaders() const {
    return excluded_;
  }
  /// Count of speculative duplicate re-executions (SEQUENCE_NUMBER_TOO_OLD).
  [[nodiscard]] std::uint64_t speculative_aborts() const {
    return speculative_aborts_;
  }

  /// Block-STM conflict re-executions charged by committed blocks (hot-key
  /// contention; zero under the default workload).
  [[nodiscard]] std::uint64_t stm_conflict_reexecs() const {
    return stm_conflict_reexecs_;
  }

  [[nodiscard]] std::map<std::string, double> metrics() const override {
    std::map<std::string, double> out{
        {"speculative_aborts", static_cast<double>(speculative_aborts_)},
        {"excluded_leaders", static_cast<double>(excluded_.size())},
        {"round", static_cast<double>(round_)}};
    // Elide-when-zero: default-workload reports keep the exact key set
    // (and bytes) they had before the contention model existed.
    if (stm_conflict_reexecs_ > 0) {
      out.emplace("stm_conflict_reexecs",
                  static_cast<double>(stm_conflict_reexecs_));
    }
    return out;
  }

 protected:
  void start_protocol() override;
  void stop_protocol() override;
  void on_app_message(const net::Envelope& envelope) override;
  void accept_transaction(const chain::Transaction& tx) override;
  void on_transaction(const chain::Transaction& tx) override;
  void on_peer_up(net::NodeId peer) override;

  void on_synced() override;
  [[nodiscard]] net::PayloadPtr equivocate_payload(
      const net::PayloadPtr& payload) override;
  [[nodiscard]] bool withholdable(const net::Payload& payload) const override;

 private:
  void enter_round(std::uint64_t round);
  [[nodiscard]] net::NodeId leader_of(std::uint64_t round) const;
  void propose();
  void on_round_timeout();
  void maybe_vote();
  void try_commit();
  void record_round_outcome(std::uint64_t round, bool success);
  void jump_to_round(std::uint64_t round, net::NodeId peer_hint);
  /// Round of the last committed block; -1 before genesis. Proposals chain
  /// to a parent round: a replica only votes for / commits a proposal
  /// whose parent equals its own tip, repairing its ledger first when it
  /// is behind — otherwise a replica that timed out of a round others
  /// committed would silently skip that block and fork its ledger.
  [[nodiscard]] std::int64_t tip_round() const;

  AptosConfig config_;

  // Volatile protocol state.
  std::uint64_t round_ = 0;
  bool voted_ = false;
  bool committing_ = false;
  net::NodeId proposal_leader_ = 0;
  bool have_proposal_ = false;
  std::int64_t proposal_parent_ = -1;
  /// Sibling lockout: parent round and round of our last vote. Survives
  /// round changes (that is the point); cleared on restart.
  std::int64_t lock_parent_ = -1;
  std::uint64_t lock_round_ = 0;
  std::vector<chain::Transaction> proposal_txs_;
  std::uint64_t proposal_digest_ = 0;
  /// voter -> (leader voted for, content digest the voter claims). The
  /// quorum count is content-blind like DiemBFT's vote tally; with the
  /// misbehavior defense on, only digest-matching votes certify a block.
  struct VoteInfo {
    net::NodeId leader = 0;
    std::uint64_t digest = 0;
  };
  std::map<net::NodeId, VoteInfo> votes_;
  std::set<net::NodeId> timeouts_;               // round-timeout senders
  std::map<net::NodeId, int> consecutive_fails_; // leader reputation
  std::set<net::NodeId> excluded_;
  sim::TimerId round_timer_ = sim::kInvalidTimer;
  sim::TimerId propose_timer_ = sim::kInvalidTimer;
  std::uint64_t speculative_aborts_ = 0;
  std::uint64_t stm_conflict_reexecs_ = 0;
  /// Speculative (wasted) execution accumulated since the last block; it
  /// is charged to the next block's Block-STM execution.
  sim::Duration pending_spec_work_{0};
};

std::vector<std::unique_ptr<chain::BlockchainNode>> make_cluster(
    sim::Simulation& simulation, net::Network& network,
    chain::NodeConfig node_config_template, AptosConfig config = {});

/// No-op that anchors this chain's ChainRegistrar: a binary that calls it
/// (core::chain_registry() does) cannot have the registration object's
/// translation unit dropped by the static-archive linker.
void ensure_registered();

}  // namespace stabl::aptos
