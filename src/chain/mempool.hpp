// Deduplicating memory pool with per-sender nonce ordering.
//
// The paper leans on two mempool behaviours:
//  * deduplication — the secure client (§7) submits the same transaction to
//    t+1 nodes; "thanks to the deduplication mechanisms, legitimate
//    transactions are executed only once";
//  * nonce gaps — a transaction can only be proposed once all lower nonces
//    of its sender are executed (§7, Avalanche: "for a transaction of an
//    account owner to be executed, all its previous transactions (with
//    lower nonces) must first reach the leader").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/types.hpp"

namespace stabl::chain {

class Mempool {
 public:
  /// Resolver from account to the next expected nonce (the replica's view).
  using NonceFn = std::function<std::uint64_t(AccountId)>;

  /// Add a transaction. Returns true when newly added; false for
  /// duplicates (which are counted, see duplicate_submissions()).
  bool add(const Transaction& tx);

  [[nodiscard]] bool contains(TxId id) const;
  [[nodiscard]] std::optional<Transaction> get(TxId id) const;
  [[nodiscard]] std::size_t size() const { return by_id_.size(); }
  [[nodiscard]] bool empty() const { return by_id_.empty(); }

  /// Collect up to `max_count` transactions whose nonces are consecutive
  /// from each sender's current nonce (i.e. executable as a batch).
  /// Deterministic: senders are visited in increasing AccountId order.
  [[nodiscard]] std::vector<Transaction> collect_ready(
      std::size_t max_count, const NonceFn& next_nonce) const;

  /// What collect_ready left behind: senders whose pooled transactions
  /// could not be proposed because a lower nonce has not arrived here yet
  /// — the paper's §7 ordering hazard ("all its previous transactions
  /// (with lower nonces) must first reach the leader"), which the traffic
  /// model's shared hot wallet (kHotKey) turns into a cluster-wide stall.
  struct ReadyStats {
    std::uint64_t gap_stalled_senders = 0;
    std::uint64_t gap_stalled_txs = 0;
    std::uint64_t hot_gap_stalled_txs = 0;  ///< Of those, from kHotKey.
  };
  [[nodiscard]] std::vector<Transaction> collect_ready(
      std::size_t max_count, const NonceFn& next_nonce,
      ReadyStats& stats) const;

  /// Remove the given transactions (after they committed).
  void remove(const std::vector<Transaction>& txs);

  /// Drop transactions whose nonce is below the sender's current nonce
  /// (already executed elsewhere — arises with the secure client).
  void remove_stale(const NonceFn& next_nonce);

  /// All transaction ids currently pooled (for pull gossip).
  [[nodiscard]] std::vector<TxId> known_ids() const;

  void clear();

  /// Count of add() calls that hit the deduplication path.
  [[nodiscard]] std::uint64_t duplicate_submissions() const {
    return duplicate_submissions_;
  }

 private:
  std::unordered_map<TxId, Transaction> by_id_;
  // sender -> nonce -> txid; ordered maps give deterministic iteration.
  std::map<AccountId, std::map<std::uint64_t, TxId>> by_sender_;
  std::uint64_t duplicate_submissions_ = 0;
};

}  // namespace stabl::chain
