// Core blockchain data types shared by all five protocol models.
//
// Terminology follows Table 1 of the paper:
//  * crash            — node halted and not restarted during the experiment
//  * transient failure — node halted and restarted later with the same
//                        identity
//  * partition        — loss of network connectivity between subsets of
//                        nodes
//  * leader           — node with a distinguished role in the current
//                        consensus round
//  * sensitivity      — deviation of transaction latencies in response to
//                        variations in the execution environment
//  * resilience       — system latency under failures
//  * recoverability   — ability to recover after a transient failure
//  * f                — number of failures in an experiment
//  * t_B              — maximum number of failures tolerated by chain B
//  * n                — number of nodes in the blockchain network
#pragma once

#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "sim/time.hpp"

namespace stabl::chain {

/// Transaction identifier (content hash in a real chain).
using TxId = std::uint64_t;

/// Account identifier. The paper's workload uses one account per client;
/// the traffic model (core/traffic.hpp) assigns many per client.
using AccountId = std::uint32_t;

/// Reserved shared "hot wallet" account the traffic model's contended
/// transactions are sent FROM (an exchange's omnibus wallet during a
/// withdrawal rush). Every client draws globally-sequenced nonces for it,
/// so its inclusion order is a cluster-wide serialization point: chains
/// that order by nonce (Avalanche) stall on gossip-induced gaps, and
/// optimistic executors (Aptos Block-STM) pay re-execution for the
/// unpredicted write-write conflicts. Default workloads never touch it.
inline constexpr AccountId kHotKey = 999'999'999u;

/// Transfer sink of the hot wallet's transactions.
inline constexpr AccountId kHotSink = 999'999'998u;

/// A native transfer transaction — the only transaction type the paper's
/// workload submits (§8: "the workload ... only sends native transfer
/// transactions at a constant rate of 200 TPS").
struct Transaction {
  TxId id = 0;
  AccountId from = 0;
  AccountId to = 0;
  std::uint64_t amount = 0;
  /// Per-sender sequence number; consecutive nonces enforce issuance order.
  std::uint64_t nonce = 0;
  /// Client-side submission time, carried for bookkeeping in tests; the
  /// latency metric uses the client's own records, not this field.
  sim::Time submitted_at{0};
};

/// A committed block (or superblock, for Redbelly).
struct Block {
  std::uint64_t height = 0;
  /// Protocol-level sequence the block was decided in (consensus round,
  /// view, or slot — chain-specific).
  std::uint64_t round = 0;
  net::NodeId proposer = 0;
  sim::Time committed_at{0};
  std::vector<Transaction> txs;
};

/// Client -> node RPC: submit one transaction.
struct SubmitTxPayload final : net::Payload {
  explicit SubmitTxPayload(Transaction transaction) : tx(transaction) {}
  Transaction tx;
};

/// Node -> client notification: a watched transaction committed.
///
/// `result_hash` digests the execution result (block + position) so that a
/// client talking to several replicas can check that their answers agree —
/// the credence.js idea the paper recommends for Redbelly (§7): a response
/// is only trusted once it is "replicated at at least f+1 nodes".
struct CommitNotifyPayload final : net::Payload {
  CommitNotifyPayload(TxId tx, sim::Time at, std::uint64_t hash)
      : id(tx), committed_at(at), result_hash(hash) {}
  TxId id;
  sim::Time committed_at;
  std::uint64_t result_hash;
};

}  // namespace stabl::chain
