// Small deterministic hashing helpers used in place of cryptographic hashes
// and VRFs. Collision resistance is irrelevant for the simulation; what
// matters is that every node computes the same values from the same inputs.
#pragma once

#include <cstdint>

namespace stabl::chain {

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Order-dependent combination of two hashes.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2)));
}

}  // namespace stabl::chain
