// The committed chain of blocks, one replica per node.
//
// The ledger survives crash/restart cycles (it models on-disk storage);
// protocol state and mempools do not.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "chain/types.hpp"

namespace stabl::chain {

class Ledger {
 public:
  /// Append a block. The block's height must equal height(); committed_at
  /// must be monotonically non-decreasing. Returns the stored block.
  const Block& append(Block block);

  [[nodiscard]] bool is_committed(TxId id) const;

  /// Commit time of a transaction; requires is_committed(id).
  [[nodiscard]] sim::Time commit_time(TxId id) const;

  /// Index of the block containing a transaction; requires
  /// is_committed(id).
  [[nodiscard]] std::size_t block_index(TxId id) const;

  /// Next height to append at (= number of blocks).
  [[nodiscard]] std::uint64_t height() const { return blocks_.size(); }

  [[nodiscard]] std::uint64_t tx_count() const { return tx_records_.size(); }
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }

  /// Commit time of the most recent block, or zero when empty.
  [[nodiscard]] sim::Time last_commit_time() const;

  /// Order-sensitive digest of the committed sequence (heights and
  /// transaction ids; commit times and rounds are replica-local and
  /// deliberately excluded, so replicas holding the same chain hash the
  /// same). A replica that is merely behind hashes differently, so prefix
  /// comparisons must use content_hash_at().
  [[nodiscard]] std::uint64_t content_hash() const;

  /// Digest of the first `height` blocks only — the prefix-agreement probe
  /// the invariant oracles use: for any two replicas, the hashes at
  /// min(height_a, height_b) must match.
  [[nodiscard]] std::uint64_t content_hash_at(std::uint64_t height) const;

 private:
  struct TxRecord {
    sim::Time committed_at{0};
    std::size_t block_index = 0;
  };

  std::vector<Block> blocks_;
  std::unordered_map<TxId, TxRecord> tx_records_;
};

}  // namespace stabl::chain
