#include "chain/registry.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

namespace stabl::chain {
namespace {

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

std::size_t tolerance_fifth(std::size_t n) {
  const double dn = static_cast<double>(n);
  return static_cast<std::size_t>(std::max(0.0, std::ceil(dn / 5.0 - 1.0)));
}

std::size_t tolerance_third(std::size_t n) {
  const double dn = static_cast<double>(n);
  return static_cast<std::size_t>(std::max(0.0, std::ceil(dn / 3.0 - 1.0)));
}

ChainParams misbehavior_default_params() {
  const core::MisbehaviorConfig defaults;
  return {{"misbehavior_defense", 0.0},
          {"misbehavior_ban", defaults.ban_threshold}};
}

void apply_misbehavior_params(NodeConfig& config, const ChainParams& params) {
  config.misbehavior.enabled = params.at("misbehavior_defense") != 0.0;
  config.misbehavior.ban_threshold = params.at("misbehavior_ban");
}

ChainParams merge_params(const ChainTraits& traits,
                         const ChainParams& overrides) {
  ChainParams params = traits.default_params;
  for (const auto& [key, value] : overrides) {
    const auto it = params.find(key);
    if (it == params.end()) {
      std::string known;
      for (const auto& [known_key, unused] : traits.default_params) {
        if (!known.empty()) known += ", ";
        known += known_key;
      }
      throw std::invalid_argument(
          "chain '" + traits.name + "' has no parameter '" + key + "'" +
          (known.empty() ? " (it declares none)"
                         : " (known: " + known + ")"));
    }
    it->second = value;
  }
  return params;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

void Registry::add(ChainTraits traits) {
  if (finalized_) {
    throw std::logic_error(
        "chain registry already finalized (ids assigned); chains must "
        "register before the first lookup, e.g. from a namespace-scope "
        "ChainRegistrar");
  }
  register_traits(std::move(traits));
}

void Registry::derive(std::string base,
                      std::function<ChainTraits(const ChainTraits&)> wrap) {
  if (finalized_) {
    throw std::logic_error(
        "chain registry already finalized (ids assigned); meta-chains must "
        "derive before the first lookup");
  }
  if (base.empty()) {
    throw std::invalid_argument("derive() needs a base chain name");
  }
  if (!wrap) {
    throw std::invalid_argument("derive('" + base +
                                "') needs a wrap function");
  }
  derivations_.emplace_back(std::move(base), std::move(wrap));
}

void Registry::register_traits(ChainTraits traits) const {
  if (traits.name.empty()) {
    throw std::invalid_argument("chain traits need a name");
  }
  if (!traits.make_cluster) {
    throw std::invalid_argument("chain '" + traits.name +
                                "' registered without a make_cluster factory");
  }
  if (!traits.fault_tolerance) {
    throw std::invalid_argument(
        "chain '" + traits.name +
        "' registered without a fault_tolerance function");
  }
  const std::string lower = to_lower(traits.name);
  for (const ChainTraits& existing : chains_) {
    if (to_lower(existing.name) == lower) {
      throw std::invalid_argument("chain '" + traits.name +
                                  "' registered twice");
    }
  }
  chains_.push_back(std::move(traits));
}

void Registry::ensure_finalized() const {
  std::call_once(finalize_once_, [this] {
    // Apply queued meta-chain derivations first, before ids are assigned:
    // each looks up its base among the directly-registered chains (the
    // deferral makes this independent of registrar/link order), and the
    // wrapped traits go through the same validation as add().
    for (auto& [base, wrap] : derivations_) {
      const std::string lower = to_lower(base);
      const ChainTraits* found = nullptr;
      for (const ChainTraits& existing : chains_) {
        if (to_lower(existing.name) == lower) {
          found = &existing;
          break;
        }
      }
      if (found == nullptr) {
        throw std::invalid_argument("meta-chain derives from '" + base +
                                    "', which never registered (registered: " +
                                    [this] {
                                      std::string csv;
                                      for (const ChainTraits& t : chains_) {
                                        if (!csv.empty()) csv += ", ";
                                        csv += t.name;
                                      }
                                      return csv;
                                    }() + ")");
      }
      // Copy before register_traits() grows chains_ and invalidates it.
      const ChainTraits base_traits = *found;
      ChainTraits derived = wrap(base_traits);
      if (derived.meta_of.empty()) derived.meta_of = base_traits.name;
      register_traits(std::move(derived));
    }
    derivations_.clear();
    std::stable_sort(chains_.begin(), chains_.end(),
                     [](const ChainTraits& a, const ChainTraits& b) {
                       if (a.tier != b.tier) return a.tier < b.tier;
                       return a.name < b.name;
                     });
    for (ChainId id = 0; id < chains_.size(); ++id) {
      by_name_[to_lower(chains_[id].name)] = id;
    }
    finalized_ = true;
  });
}

const ChainTraits& Registry::traits(ChainId id) const {
  ensure_finalized();
  if (id >= chains_.size()) {
    throw std::invalid_argument(
        "no chain registered with id " + std::to_string(id) +
        " (registered: " + names_csv() + ")");
  }
  return chains_[id];
}

ChainId Registry::id_of(std::string_view name) const {
  ensure_finalized();
  const auto it = by_name_.find(to_lower(name));
  if (it == by_name_.end()) {
    throw std::invalid_argument("unknown chain '" + std::string(name) +
                                "' (valid: " + names_csv() + ")");
  }
  return it->second;
}

const ChainTraits* Registry::find(std::string_view name) const {
  ensure_finalized();
  const auto it = by_name_.find(to_lower(name));
  return it == by_name_.end() ? nullptr : &chains_[it->second];
}

std::size_t Registry::size() const {
  ensure_finalized();
  return chains_.size();
}

std::vector<ChainId> Registry::ids() const {
  ensure_finalized();
  std::vector<ChainId> out(chains_.size());
  for (ChainId id = 0; id < chains_.size(); ++id) out[id] = id;
  return out;
}

std::vector<std::string> Registry::names() const {
  ensure_finalized();
  std::vector<std::string> out;
  out.reserve(chains_.size());
  for (const ChainTraits& traits : chains_) out.push_back(traits.name);
  return out;
}

std::string Registry::names_csv() const {
  ensure_finalized();
  std::string out;
  for (const ChainTraits& traits : chains_) {
    if (!out.empty()) out += ", ";
    out += traits.name;
  }
  return out;
}

}  // namespace stabl::chain
