#include "chain/ledger.hpp"

#include <cassert>
#include <utility>

#include "chain/hash.hpp"

namespace stabl::chain {

const Block& Ledger::append(Block block) {
  assert(block.height == blocks_.size() && "out-of-order block append");
  assert(block.committed_at >= last_commit_time());
  for (const Transaction& tx : block.txs) {
    assert(!tx_records_.contains(tx.id) && "transaction committed twice");
    tx_records_.emplace(tx.id,
                        TxRecord{block.committed_at, blocks_.size()});
  }
  blocks_.push_back(std::move(block));
  return blocks_.back();
}

bool Ledger::is_committed(TxId id) const { return tx_records_.contains(id); }

sim::Time Ledger::commit_time(TxId id) const {
  const auto it = tx_records_.find(id);
  assert(it != tx_records_.end());
  return it->second.committed_at;
}

std::size_t Ledger::block_index(TxId id) const {
  const auto it = tx_records_.find(id);
  assert(it != tx_records_.end());
  return it->second.block_index;
}

sim::Time Ledger::last_commit_time() const {
  return blocks_.empty() ? sim::Time{0} : blocks_.back().committed_at;
}

std::uint64_t Ledger::content_hash() const {
  return content_hash_at(height());
}

std::uint64_t Ledger::content_hash_at(std::uint64_t height) const {
  assert(height <= blocks_.size());
  // Hash only the agreed-upon content: heights and transaction sequences.
  // committed_at (and, on some chains, round) is replica-local — each node
  // records its own commit instant — so including it would make two
  // replicas holding the SAME chain hash differently.
  std::uint64_t h = 0x5374616221ull;  // arbitrary non-zero start
  for (std::uint64_t i = 0; i < height; ++i) {
    const Block& block = blocks_[i];
    h = hash_combine(h, block.height);
    h = hash_combine(h, static_cast<std::uint64_t>(block.txs.size()));
    for (const Transaction& tx : block.txs) h = hash_combine(h, tx.id);
  }
  return h;
}

}  // namespace stabl::chain
