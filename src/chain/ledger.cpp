#include "chain/ledger.hpp"

#include <cassert>
#include <utility>

namespace stabl::chain {

const Block& Ledger::append(Block block) {
  assert(block.height == blocks_.size() && "out-of-order block append");
  assert(block.committed_at >= last_commit_time());
  for (const Transaction& tx : block.txs) {
    assert(!tx_records_.contains(tx.id) && "transaction committed twice");
    tx_records_.emplace(tx.id,
                        TxRecord{block.committed_at, blocks_.size()});
  }
  blocks_.push_back(std::move(block));
  return blocks_.back();
}

bool Ledger::is_committed(TxId id) const { return tx_records_.contains(id); }

sim::Time Ledger::commit_time(TxId id) const {
  const auto it = tx_records_.find(id);
  assert(it != tx_records_.end());
  return it->second.committed_at;
}

std::size_t Ledger::block_index(TxId id) const {
  const auto it = tx_records_.find(id);
  assert(it != tx_records_.end());
  return it->second.block_index;
}

sim::Time Ledger::last_commit_time() const {
  return blocks_.empty() ? sim::Time{0} : blocks_.back().committed_at;
}

}  // namespace stabl::chain
