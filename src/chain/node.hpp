// Base class for the five blockchain node implementations.
//
// A BlockchainNode is a simulated process attached to the network. The base
// class provides everything the paper's harness interacts with and that is
// common across chains:
//  * the TCP-like connection manager (per-chain reconnection policy);
//  * the mempool (deduplication, nonce ordering) and client RPC handling
//    (submit + committed-notification watchers);
//  * the persistent ledger + account state, with replay on restart;
//  * a block-transfer state-sync service used by restarted replicas;
//  * a CPU capacity model.
//
// Subclasses implement the consensus protocol: start_protocol(),
// on_app_message() and the commit decision, calling commit_block() when a
// batch of transactions is decided.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <memory>
#include <unordered_map>
#include <vector>

#include "chain/account.hpp"
#include "chain/cpu.hpp"
#include "chain/ledger.hpp"
#include "chain/mempool.hpp"
#include "chain/types.hpp"
#include "core/misbehavior.hpp"
#include "net/connection.hpp"
#include "net/network.hpp"
#include "sim/process.hpp"

namespace stabl::chain {

/// A batch of transactions on the wire; chains reuse this for tx gossip.
struct TxBatchPayload final : net::Payload {
  explicit TxBatchPayload(std::vector<Transaction> batch)
      : txs(std::move(batch)) {}
  std::vector<Transaction> txs;
};

/// State-sync: "send me blocks from this height".
struct SyncRequestPayload final : net::Payload {
  explicit SyncRequestPayload(std::uint64_t height) : from_height(height) {}
  std::uint64_t from_height;
};

/// State-sync: a chunk of blocks starting at `from_height`.
struct SyncResponsePayload final : net::Payload {
  SyncResponsePayload(std::uint64_t height, std::vector<Block> chunk)
      : from_height(height), blocks(std::move(chunk)) {}
  std::uint64_t from_height;
  std::vector<Block> blocks;
};

struct NodeConfig {
  net::NodeId id = 0;
  std::size_t n = 10;  ///< number of blockchain nodes (NodeIds 0..n-1)
  double vcpus = 4.0;  ///< paper default; 8.0 for the §7 experiment
  std::uint64_t network_seed = 0;
  net::ConnectionPolicy connection{};
  /// Process boot time after a restart (binary start + ledger open);
  /// contributes to the chain-specific transient recovery times.
  sim::Duration restart_boot_delay = sim::sec(3);
  /// Overlay topology: peers this node maintains connections to. Empty =
  /// fully connected (the paper's deployment). Chains with hierarchical
  /// topologies (Algorand relay nodes) restrict this.
  std::vector<net::NodeId> peers;
  /// Peer-misbehavior defense knobs (disabled by default; the registered
  /// "misbehavior_defense"/"misbehavior_ban" chain parameters set them).
  core::MisbehaviorConfig misbehavior{};
};

class BlockchainNode : public sim::Process, public net::Endpoint {
 public:
  using CommitHook = std::function<void(const Block&)>;

  BlockchainNode(sim::Simulation& simulation, net::Network& network,
                 NodeConfig config);

  // net::Endpoint
  void deliver(const net::Envelope& envelope) final;
  [[nodiscard]] bool endpoint_alive() const final { return alive(); }

  [[nodiscard]] net::NodeId node_id() const { return config_.id; }
  [[nodiscard]] std::size_t cluster_size() const { return config_.n; }
  [[nodiscard]] const Ledger& ledger() const { return ledger_; }
  [[nodiscard]] const Mempool& mempool() const { return mempool_; }
  [[nodiscard]] const AccountState& accounts() const { return accounts_; }
  [[nodiscard]] const CpuModel& cpu() const { return cpu_; }

  /// In-process observer of every locally committed block (tests/metrics).
  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }

  /// Make this node's RPC endpoint Byzantine: it confirms every submitted
  /// transaction immediately with a fabricated result hash and never
  /// forwards it — the "trusting one specific node effectively brings the
  /// number of tolerated Byzantine faults to zero" attack of §7.
  void set_rpc_byzantine(bool byzantine) { rpc_byzantine_ = byzantine; }
  [[nodiscard]] bool rpc_byzantine() const { return rpc_byzantine_; }

  /// Compromise this node with equivocation (kEquivocate): every broadcast
  /// whose payload the chain can equivocate is split-brained — one half of
  /// the peers receives the original, the other half a conflicting variant
  /// built by the chain's equivocate_payload() hook.
  void set_equivocating(bool on) { equivocating_ = on; }
  [[nodiscard]] bool equivocating() const { return equivocating_; }

  /// Compromise this node with withholding (kWithhold): broadcasts the
  /// chain marks withholdable() are suppressed; the first suppressed
  /// payload is replayed (stale) in place of every later fresh one.
  void set_withholding(bool on) {
    withholding_ = on;
    if (!on) withheld_replay_.reset();
  }
  [[nodiscard]] bool withholding() const { return withholding_; }

  /// The peer-misbehavior scorer guarding this node's inbound traffic.
  [[nodiscard]] const core::MisbehaviorScorer& misbehavior() const {
    return misbehavior_;
  }

  /// Adversarial/defense diagnostic counters, aggregated by the harness
  /// separately from the chain-specific metrics(). All zero on benign runs.
  [[nodiscard]] std::map<std::string, double> adversarial_metrics() const;

  /// Result digest a correct replica reports for a committed transaction;
  /// identical across replicas (position in the agreed block sequence).
  static std::uint64_t result_hash(TxId id, const Block& block);

  /// Chain-specific diagnostic counters (the quantities the paper digs out
  /// of node logs: speculative aborts, throttled messages, empty rounds,
  /// panics, ...). Keys are short snake_case names; values are counts.
  [[nodiscard]] virtual std::map<std::string, double> metrics() const {
    return {};
  }

 protected:
  /// Consensus lifecycle hooks.
  virtual void start_protocol() = 0;
  virtual void stop_protocol() {}
  virtual void on_app_message(const net::Envelope& envelope) = 0;
  virtual void on_peer_up(net::NodeId peer) { (void)peer; }
  virtual void on_peer_down(net::NodeId peer) { (void)peer; }

  /// A new transaction entered the mempool (client RPC or gossip).
  virtual void on_transaction(const Transaction& tx) { (void)tx; }

  /// Client RPC entry point; default pools the transaction. Solana
  /// overrides this (no mempool: transactions are forwarded to leaders).
  virtual void accept_transaction(const Transaction& tx);

  /// Commit a decided batch. Filters transactions that are already
  /// committed or not applicable (nonce/balance), applies the rest, appends
  /// a block and notifies client watchers. Returns the appended block, or
  /// nullptr when everything was filtered out and `allow_empty` is false.
  /// Chains that need height to track their round counter (Redbelly) pass
  /// allow_empty = true so empty rounds still produce a block.
  const Block* commit_block(std::vector<Transaction> txs,
                            net::NodeId proposer, std::uint64_t round = 0,
                            bool allow_empty = false);

  /// Record that this node put `txs` into a consensus proposal (batch,
  /// candidate, bank, ...) for `round`. Chains call this where they build
  /// the proposal payload; it stamps the lifecycle kProposed stage for
  /// each transaction and emits one batch-level trace instant. First-reach
  /// semantics: re-proposals of the same transaction keep the first time.
  void mark_proposed(const std::vector<Transaction>& txs,
                     std::uint64_t round);

  /// Hook invoked after a state-sync chunk was applied to the ledger.
  virtual void on_synced() {}

  /// kEquivocate hook: return a payload conflicting with `payload` (same
  /// round/slot, different content) or nullptr when this payload cannot be
  /// equivocated. Only consulted while the node is compromised.
  [[nodiscard]] virtual net::PayloadPtr equivocate_payload(
      const net::PayloadPtr& payload) {
    (void)payload;
    return nullptr;
  }

  /// kWithhold hook: true when `payload` is a proposal/vote the adversary
  /// suppresses. Only consulted while the node is compromised.
  [[nodiscard]] virtual bool withholdable(const net::Payload& payload) const {
    (void)payload;
    return false;
  }

  /// Chains call this when they hold protocol-level evidence that `peer`
  /// misbehaved (conflicting payloads for one round/slot, stale replay).
  /// No-op while the defense is disabled.
  void report_misbehavior(net::NodeId peer, core::Offense offense);

  /// Pool a transaction learned from another node (gossip), with the same
  /// dedup/stale checks as the RPC path. Returns true when newly pooled.
  bool pool_transaction(const Transaction& tx);

  /// Ask `peer` for blocks we are missing (restart catch-up).
  void request_sync(net::NodeId peer);

  /// Send/broadcast over established connections to blockchain peers.
  bool send_to(net::NodeId peer, net::PayloadPtr payload,
               std::uint32_t bytes = 256);
  void broadcast(const net::PayloadPtr& payload, std::uint32_t bytes = 256);

  [[nodiscard]] net::ConnectionManager& connections() { return connections_; }
  [[nodiscard]] Mempool& mutable_mempool() { return mempool_; }
  [[nodiscard]] CpuModel& mutable_cpu() { return cpu_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  [[nodiscard]] net::Network& network() { return net_; }
  [[nodiscard]] std::uint64_t network_seed() const {
    return config_.network_seed;
  }
  [[nodiscard]] const NodeConfig& config() const { return config_; }
  [[nodiscard]] bool booted() const { return booted_; }

  /// True for ids of blockchain nodes (as opposed to client machines).
  [[nodiscard]] bool is_blockchain_peer(net::NodeId id) const {
    return id < config_.n;
  }

  // sim::Process
  void on_start() final;
  void on_crash() final;

 private:
  void boot();
  void handle_submit(const net::Envelope& envelope);
  void handle_sync_request(const net::Envelope& envelope);
  void handle_sync_response(const net::Envelope& envelope);
  void notify_watchers(const Block& block);
  void rebuild_accounts();

  NodeConfig config_;
  net::Network& net_;
  net::ConnectionManager connections_;
  Mempool mempool_;
  Ledger ledger_;  // persistent across restarts
  AccountState accounts_;
  CpuModel cpu_;
  sim::Rng rng_;
  bool booted_ = false;
  // tx id -> client machines waiting for the commit notification. Volatile.
  std::unordered_map<TxId, std::vector<net::NodeId>> watchers_;
  CommitHook commit_hook_;
  bool rpc_byzantine_ = false;
  // Adversarial compromise switches (fault engine, kEquivocate/kWithhold).
  bool equivocating_ = false;
  bool withholding_ = false;
  net::PayloadPtr withheld_replay_;  // first suppressed payload
  std::uint64_t equivocations_sent_ = 0;
  std::uint64_t withheld_count_ = 0;
  // Defense: inbound peer reputation. `misbehavior_active_` flips on at
  // the first reported offense, so an armed-but-idle scorer costs one
  // branch per delivery (gated by bench/micro_adversarial_overhead).
  core::MisbehaviorScorer misbehavior_;
  bool misbehavior_active_ = false;
  std::uint64_t misbehavior_dropped_ = 0;
};

}  // namespace stabl::chain
