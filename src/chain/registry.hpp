// Chain plugin registry: the seam that makes every blockchain a
// self-registering plugin instead of a ChainKind switch case.
//
// Each chain under src/chains/* describes itself with a ChainTraits
// record — name, cluster factory, fault tolerance, tunable parameters and
// the oracle's expected-loss exemptions — and registers it with the
// process-wide Registry from a namespace-scope ChainRegistrar in its own
// translation unit. The harness (experiment runner, oracles, CLI parsers,
// benches) resolves chains exclusively through registry lookups, so adding
// a backend means adding one directory under src/chains/ and linking it;
// no core file changes (see chains/refbft, the reference plugin).
//
// Identifier discipline. ChainIds are assigned when the registry is first
// queried ("finalized"): chains are ordered by (tier, name), so the five
// paper chains (tier 0) always occupy ids 0-4 in alphabetical order —
// exactly the historical core::ChainKind enum values, which therefore
// survives as a thin alias over registry ids — and extension chains
// (tier 1, the default) follow, alphabetically, regardless of static
// initialization or link order. The assignment is deterministic for a
// fixed set of linked chains, so reports stay byte-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "chain/node.hpp"
#include "chain/service.hpp"
#include "core/fault.hpp"

namespace stabl::sim {
class Simulation;
}  // namespace stabl::sim

namespace stabl::net {
class Network;
}  // namespace stabl::net

namespace stabl::chain {

/// Dense registry index. Ids 0-4 are the paper's five chains (tier 0,
/// alphabetical); extension chains follow.
using ChainId = std::uint32_t;

/// Generic per-chain tunables: snake_case key -> numeric value (booleans
/// are 0/1). A chain declares its known keys and their defaults in
/// ChainTraits::default_params; overrides with unknown keys are rejected,
/// which is what makes declarative scenarios (core/scenario.hpp) strict.
using ChainParams = std::map<std::string, double>;

/// A modeled liveness loss the chain's author documents: when this chain
/// runs under a fault schedule containing a plan of type `fault` and a
/// liveness oracle fails, the verdict downgrades to expected-loss —
/// provided `evidence_metric` (a chain_metrics key, e.g. Solana's
/// "panicked") is positive in the run. See core/oracle.hpp.
struct ChainLossExemption {
  core::FaultType fault = core::FaultType::kNone;
  std::string evidence_metric;
  std::string reason;
};

/// Everything the harness needs to know about one chain.
struct ChainTraits {
  /// Lower-case identifier used in flags, reports and scenario files.
  std::string name;
  /// One-line human description (stabl_cli --list-chains).
  std::string description;
  /// Id-assignment tier: 0 = the five paper chains (ids 0-4), 1 (default)
  /// = extensions, ordered after every tier-0 chain.
  int tier = 1;
  /// Build the n-node cluster. `params` is default_params with any
  /// overrides merged in; factories read every key they declared.
  std::function<std::vector<std::unique_ptr<BlockchainNode>>(
      sim::Simulation& simulation, net::Network& network,
      const NodeConfig& node_config, const ChainParams& params)>
      make_cluster;
  /// t_B: how many Byzantine/faulty nodes an n-node cluster tolerates.
  std::function<std::size_t(std::size_t n)> fault_tolerance;
  /// Known tunables and their defaults (empty = chain has no knobs).
  ChainParams default_params;
  /// Documented failure modes the oracles downgrade to expected-loss.
  std::vector<ChainLossExemption> loss_exemptions;
  /// Base chain this meta-chain wraps (set by Registry::derive); empty for
  /// a regular chain. --list-chains shows it so scenario authors can see
  /// which backend a meta-chain runs underneath.
  std::string meta_of;
  /// Optional auxiliary services (health monitors, supervisors) started
  /// alongside the cluster. `first_id` is the first free ProcessId after
  /// the nodes and clients; `params` is the merged parameter map the
  /// cluster factory saw. Null for chains without services.
  std::function<std::vector<std::unique_ptr<ChainService>>(
      sim::Simulation& simulation, const std::vector<BlockchainNode*>& nodes,
      sim::ProcessId first_id, const ChainParams& params)>
      make_services;
};

/// t_B formulas of the paper (§2): Algorand and Avalanche tolerate a 20%
/// coalition, the BFT chains tolerate less than a third.
std::size_t tolerance_fifth(std::size_t n);
std::size_t tolerance_third(std::size_t n);

/// traits.default_params with `overrides` merged in. Strict: an override
/// key the chain did not declare throws std::invalid_argument naming the
/// chain and listing its known keys. The experiment runner and the
/// scenario resolver share this, so both reject typos identically.
ChainParams merge_params(const ChainTraits& traits,
                         const ChainParams& overrides);

/// The misbehavior-defense parameters every chain registers, for appending
/// to a chain's default_params: {"misbehavior_defense" (0/1, default off),
/// "misbehavior_ban" (ban threshold score)}.
ChainParams misbehavior_default_params();

/// Read the registered misbehavior parameters out of a merged `params` map
/// into a node config's scorer knobs. Chain factories call this once on
/// their NodeConfig template.
void apply_misbehavior_params(NodeConfig& config, const ChainParams& params);

class Registry {
 public:
  /// The process-wide registry ChainRegistrar adds to. Prefer
  /// core::chain_registry(), which also guarantees the five built-in
  /// chains' registration objects are linked in.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Register a chain. Throws std::invalid_argument on an incomplete
  /// traits record or a duplicate name, and std::logic_error when called
  /// after the registry was first queried (ids are already assigned).
  void add(ChainTraits traits);

  /// Queue a meta-chain derived from `base`, which may register later in
  /// static-init order: at finalize time `wrap` receives the base chain's
  /// traits and the result joins the registry as if add()ed (same
  /// validation; meta_of defaults to the base name). Deferral is the
  /// point — a meta-chain cannot read its base's traits at registration
  /// time because cross-TU registrar order is unspecified. Throws
  /// std::logic_error after finalize; an unknown base surfaces as
  /// std::invalid_argument from the first registry lookup.
  void derive(std::string base,
              std::function<ChainTraits(const ChainTraits&)> wrap);

  /// Traits of a registered chain. Throws std::invalid_argument with the
  /// registered-name listing when `id` is out of range — the descriptive
  /// failure an out-of-range ChainKind cast now produces.
  [[nodiscard]] const ChainTraits& traits(ChainId id) const;

  /// Case-insensitive name lookup. Throws std::invalid_argument listing
  /// the valid names when unknown.
  [[nodiscard]] ChainId id_of(std::string_view name) const;

  /// Case-insensitive name lookup; nullptr when unknown.
  [[nodiscard]] const ChainTraits* find(std::string_view name) const;

  [[nodiscard]] std::size_t size() const;
  /// All ids in deterministic (tier, name) order: 0, 1, ..., size()-1.
  [[nodiscard]] std::vector<ChainId> ids() const;
  /// All names in id order.
  [[nodiscard]] std::vector<std::string> names() const;
  /// "algorand, aptos, ..." — the listing parse errors embed.
  [[nodiscard]] std::string names_csv() const;

 private:
  void ensure_finalized() const;
  void register_traits(ChainTraits traits) const;

  mutable std::once_flag finalize_once_;
  mutable bool finalized_ = false;
  mutable std::vector<ChainTraits> chains_;        // id-indexed once final
  mutable std::map<std::string, ChainId> by_name_;  // lower-case keys
  mutable std::vector<
      std::pair<std::string, std::function<ChainTraits(const ChainTraits&)>>>
      derivations_;  // applied (and cleared) at finalize
};

/// Self-registration hook:
///   const chain::ChainRegistrar kRegistrar{[] { ... return traits; }()};
/// placed in the chain's .cpp next to its make_cluster definition.
/// Extension chains may declare it at namespace scope (registered by the
/// TU's static initializers, i.e. before main). The five built-in chains
/// instead declare it as a function-local static inside their
/// ensure_registered(), so core::chain_registry() can force registration
/// even from another TU's static initializer, where cross-TU init order
/// is unspecified.
struct ChainRegistrar {
  explicit ChainRegistrar(ChainTraits traits) {
    Registry::global().add(std::move(traits));
  }
};

}  // namespace stabl::chain
