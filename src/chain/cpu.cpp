#include "chain/cpu.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace stabl::chain {

void DecayingMeter::decay_to(sim::Time now) const {
  if (now <= last_) return;
  const double dt = sim::to_seconds(now - last_);
  level_ *= std::exp(-dt / tau_s_);
  last_ = now;
}

void DecayingMeter::add(sim::Time now, double amount) {
  decay_to(now);
  level_ += amount;
}

double DecayingMeter::rate(sim::Time now) const {
  decay_to(now);
  // A constant input of r per second settles at level = r * tau.
  return level_ / tau_s_;
}

void DecayingMeter::reset() {
  level_ = 0.0;
  last_ = sim::Time{0};
}

CpuModel::CpuModel(sim::Process& host, double cores)
    : host_(host),
      cores_(cores),
      core_free_at_(static_cast<std::size_t>(std::max(1.0, cores)),
                    sim::Time{0}),
      usage_(sim::sec(5)) {
  assert(cores > 0);
}

double CpuModel::utilization() const {
  return usage_.rate(host_.now()) / cores_;
}

sim::Duration CpuModel::queue_delay() const {
  const sim::Time now = host_.now();
  const sim::Time earliest =
      *std::min_element(core_free_at_.begin(), core_free_at_.end());
  return earliest > now ? earliest - now : sim::Duration::zero();
}

void CpuModel::reset() {
  std::fill(core_free_at_.begin(), core_free_at_.end(), sim::Time{0});
  usage_.reset();
}

}  // namespace stabl::chain
