// Chain-scoped auxiliary services: simulated processes a chain plugin runs
// NEXT TO its cluster rather than inside a node — health monitors, failover
// supervisors, sidecar daemons. The experiment runner creates them through
// ChainTraits::make_services after the nodes and clients, starts them with
// the rest of the world, and folds their metrics() into the report's
// chain_metrics (zero values elided, like adversarial metrics), so a
// service that observes nothing costs nothing in the serialized report.
#pragma once

#include <map>
#include <string>

#include "sim/process.hpp"

namespace stabl::chain {

class ChainService : public sim::Process {
 public:
  using sim::Process::Process;

  /// Counters folded into ExperimentResult::chain_metrics at harvest time.
  [[nodiscard]] virtual std::map<std::string, double> metrics() const {
    return {};
  }
};

}  // namespace stabl::chain
