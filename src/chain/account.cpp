#include "chain/account.hpp"

namespace stabl::chain {

const AccountState::Account& AccountState::get(AccountId account) const {
  auto it = accounts_.find(account);
  if (it == accounts_.end()) {
    it = accounts_.emplace(account, Account{initial_balance_, 0}).first;
  }
  return it->second;
}

std::uint64_t AccountState::next_nonce(AccountId account) const {
  return get(account).nonce;
}

std::uint64_t AccountState::balance(AccountId account) const {
  return get(account).balance;
}

bool AccountState::applicable(const Transaction& tx) const {
  const Account& from = get(tx.from);
  return tx.nonce == from.nonce && from.balance >= tx.amount;
}

bool AccountState::apply(const Transaction& tx) {
  if (!applicable(tx)) return false;
  get(tx.from);  // materialize
  get(tx.to);
  auto& from = accounts_[tx.from];
  auto& to = accounts_[tx.to];
  from.balance -= tx.amount;
  from.nonce += 1;
  to.balance += tx.amount;
  return true;
}

void AccountState::clear() { accounts_.clear(); }

}  // namespace stabl::chain
