#include "chain/node.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "chain/hash.hpp"
#include "sim/lifecycle.hpp"

namespace stabl::chain {
namespace {

std::vector<net::NodeId> blockchain_peers(net::NodeId self, std::size_t n) {
  std::vector<net::NodeId> peers;
  peers.reserve(n - 1);
  for (net::NodeId id = 0; id < n; ++id) {
    if (id != self) peers.push_back(id);
  }
  return peers;
}

constexpr std::size_t kSyncChunkBlocks = 256;

}  // namespace

BlockchainNode::BlockchainNode(sim::Simulation& simulation,
                               net::Network& network, NodeConfig config)
    : Process(simulation, config.id),
      config_(config),
      net_(network),
      connections_(
          *this, network, config.id,
          config.peers.empty() ? blockchain_peers(config.id, config.n)
                               : config.peers,
          config.connection,
          net::ConnectionManager::Callbacks{
              [this](net::NodeId peer) { on_peer_up(peer); },
              [this](net::NodeId peer) { on_peer_down(peer); }}),
      mempool_(),
      cpu_(*this, config.vcpus),
      rng_(simulation.rng().fork()),
      misbehavior_(config.misbehavior) {
  network.attach(config.id, this);
}

void BlockchainNode::on_start() {
  if (restarts() == 0) {
    boot();
    return;
  }
  // A restarted process takes a while to come back (binary start, ledger
  // open, listening sockets); then it *actively* dials its peers.
  set_timer(config_.restart_boot_delay, [this] { boot(); });
}

void BlockchainNode::boot() {
  booted_ = true;
  if (auto* trace = simulation().trace()) {
    trace->instant(static_cast<std::int32_t>(node_id()), now(), "boot",
                   "node", "\"restarts\":" + std::to_string(restarts()));
  }
  rebuild_accounts();
  connections_.start();
  start_protocol();
}

void BlockchainNode::on_crash() {
  if (auto* trace = simulation().trace()) {
    trace->instant(static_cast<std::int32_t>(node_id()), now(), "crash",
                   "node");
  }
  booted_ = false;
  connections_.stop();
  mempool_.clear();
  watchers_.clear();
  cpu_.reset();
  accounts_.clear();
  withheld_replay_.reset();  // stale-replay buffer is volatile
  misbehavior_.reset();      // peer reputation is volatile too
  misbehavior_active_ = false;
  stop_protocol();
}

void BlockchainNode::rebuild_accounts() {
  accounts_.clear();
  for (const Block& block : ledger_.blocks()) {
    for (const Transaction& tx : block.txs) {
      const bool ok = accounts_.apply(tx);
      assert(ok && "ledger replay must succeed");
      (void)ok;
    }
  }
}

void BlockchainNode::deliver(const net::Envelope& envelope) {
  if (!booted_) return;  // still booting: not listening yet
  if (connections_.handle(envelope)) return;
  // Peer-misbehavior defense: messages from throttled/banned blockchain
  // peers are dropped after the connection layer (keepalives survive so the
  // ban is an application-level quarantine, not a TCP reset storm).
  if (misbehavior_active_ && is_blockchain_peer(envelope.from) &&
      misbehavior_.should_drop(envelope.from, now())) {
    ++misbehavior_dropped_;
    return;
  }
  if (const auto* submit =
          dynamic_cast<const SubmitTxPayload*>(envelope.payload.get())) {
    (void)submit;
    handle_submit(envelope);
    return;
  }
  if (dynamic_cast<const SyncRequestPayload*>(envelope.payload.get()) !=
      nullptr) {
    handle_sync_request(envelope);
    return;
  }
  if (dynamic_cast<const SyncResponsePayload*>(envelope.payload.get()) !=
      nullptr) {
    handle_sync_response(envelope);
    return;
  }
  on_app_message(envelope);
}

std::uint64_t BlockchainNode::result_hash(TxId id, const Block& block) {
  // Replica-independent digest: committed position and content identity.
  // The proposer field is deliberately excluded — chains like Redbelly
  // stamp it with the (replica-dependent) decider, while height, round and
  // content are what consensus agrees on.
  return hash_combine(hash_combine(mix64(id), block.height),
                      hash_combine(block.round, block.txs.size()));
}

void BlockchainNode::handle_submit(const net::Envelope& envelope) {
  const auto& payload =
      static_cast<const SubmitTxPayload&>(*envelope.payload);
  const Transaction& tx = payload.tx;
  if (auto* lifecycle = simulation().lifecycle()) {
    lifecycle->mark(tx.id, sim::TxStage::kEntryReceived, now());
  }
  if (rpc_byzantine_) {
    // Lie: confirm instantly with a fabricated result and drop the
    // transaction. A client trusting only this node is deceived.
    net_.send(node_id(), envelope.from,
              std::make_shared<const CommitNotifyPayload>(
                  tx.id, now(), mix64(tx.id ^ 0xBADC0DEull)),
              96);
    return;
  }
  if (ledger_.is_committed(tx.id)) {
    // Already on chain: answer right away (the secure client's duplicate
    // submissions frequently land after the first copy committed).
    const Block& block = ledger_.blocks()[ledger_.block_index(tx.id)];
    net_.send(node_id(), envelope.from,
              std::make_shared<const CommitNotifyPayload>(
                  tx.id, ledger_.commit_time(tx.id),
                  result_hash(tx.id, block)),
              96);
    return;
  }
  watchers_[tx.id].push_back(envelope.from);
  accept_transaction(tx);
}

void BlockchainNode::accept_transaction(const Transaction& tx) {
  if (pool_transaction(tx)) on_transaction(tx);
}

bool BlockchainNode::pool_transaction(const Transaction& tx) {
  if (ledger_.is_committed(tx.id)) return false;
  if (accounts_.next_nonce(tx.from) > tx.nonce) return false;  // stale
  if (!mempool_.add(tx)) return false;
  if (auto* lifecycle = simulation().lifecycle()) {
    lifecycle->mark(tx.id, sim::TxStage::kQueued, now());
  }
  return true;
}

void BlockchainNode::mark_proposed(const std::vector<Transaction>& txs,
                                   std::uint64_t round) {
  if (txs.empty()) return;
  if (auto* lifecycle = simulation().lifecycle()) {
    for (const Transaction& tx : txs) {
      lifecycle->mark(tx.id, sim::TxStage::kProposed, now());
    }
  }
  if (auto* trace = simulation().trace()) {
    trace->instant(static_cast<std::int32_t>(node_id()), now(), "propose",
                   "lifecycle",
                   "\"round\":" + std::to_string(round) +
                       ",\"txs\":" + std::to_string(txs.size()));
  }
}

const Block* BlockchainNode::commit_block(std::vector<Transaction> txs,
                                          net::NodeId proposer,
                                          std::uint64_t round,
                                          bool allow_empty) {
  std::vector<Transaction> applied;
  applied.reserve(txs.size());
  for (const Transaction& tx : txs) {
    if (ledger_.is_committed(tx.id)) continue;  // cross-proposal duplicate
    if (!accounts_.apply(tx)) continue;         // nonce gap or no funds
    applied.push_back(tx);
  }
  if (applied.empty() && !allow_empty) return nullptr;
  Block block;
  block.height = ledger_.height();
  block.round = round;
  block.proposer = proposer;
  block.committed_at = now();
  block.txs = std::move(applied);
  const Block& stored = ledger_.append(std::move(block));
  mempool_.remove(stored.txs);
  if (auto* lifecycle = simulation().lifecycle()) {
    for (const Transaction& tx : stored.txs) {
      lifecycle->mark(tx.id, sim::TxStage::kCommitted, now());
    }
  }
  if (auto* trace = simulation().trace()) {
    trace->instant(static_cast<std::int32_t>(node_id()), now(), "commit",
                   "consensus",
                   "\"height\":" + std::to_string(stored.height) +
                       ",\"round\":" + std::to_string(stored.round) +
                       ",\"txs\":" + std::to_string(stored.txs.size()));
  }
  notify_watchers(stored);
  if (commit_hook_) commit_hook_(stored);
  return &stored;
}

void BlockchainNode::notify_watchers(const Block& block) {
  for (const Transaction& tx : block.txs) {
    const auto it = watchers_.find(tx.id);
    if (it == watchers_.end()) continue;
    for (const net::NodeId client : it->second) {
      net_.send(node_id(), client,
                std::make_shared<const CommitNotifyPayload>(
                    tx.id, block.committed_at, result_hash(tx.id, block)),
                96);
    }
    watchers_.erase(it);
  }
}

void BlockchainNode::request_sync(net::NodeId peer) {
  if (auto* trace = simulation().trace()) {
    trace->instant(static_cast<std::int32_t>(node_id()), now(),
                   "sync_request", "sync",
                   "\"peer\":" + std::to_string(peer) + ",\"height\":" +
                       std::to_string(ledger_.height()));
  }
  send_to(peer,
          std::make_shared<const SyncRequestPayload>(ledger_.height()), 64);
}

void BlockchainNode::handle_sync_request(const net::Envelope& envelope) {
  const auto& request =
      static_cast<const SyncRequestPayload&>(*envelope.payload);
  if (request.from_height >= ledger_.height()) return;  // nothing to send
  const auto& blocks = ledger_.blocks();
  const std::size_t first = request.from_height;
  const std::size_t last =
      std::min(blocks.size(), first + kSyncChunkBlocks);
  std::vector<Block> chunk(blocks.begin() + static_cast<std::ptrdiff_t>(first),
                           blocks.begin() + static_cast<std::ptrdiff_t>(last));
  std::uint32_t bytes = 0;
  for (const Block& b : chunk) {
    bytes += 128 + static_cast<std::uint32_t>(b.txs.size()) * 128;
  }
  send_to(envelope.from,
          std::make_shared<const SyncResponsePayload>(request.from_height,
                                                      std::move(chunk)),
          bytes);
}

void BlockchainNode::handle_sync_response(const net::Envelope& envelope) {
  const auto& response =
      static_cast<const SyncResponsePayload&>(*envelope.payload);
  if (response.from_height != ledger_.height()) return;  // stale chunk
  for (const Block& block : response.blocks) {
    Block copy = block;
    copy.height = ledger_.height();
    // Re-stamp nothing: committed_at is the original decision time on the
    // serving replica; our ledger requires monotone times, so clamp.
    copy.committed_at = std::max(copy.committed_at,
                                 ledger_.last_commit_time());
    std::vector<Transaction> applied;
    applied.reserve(copy.txs.size());
    for (const Transaction& tx : copy.txs) {
      if (ledger_.is_committed(tx.id)) continue;
      if (!accounts_.apply(tx)) continue;
      applied.push_back(tx);
    }
    // Keep the block even when all transactions were filtered (e.g. an
    // empty Redbelly round): heights must stay aligned with the peer.
    copy.txs = std::move(applied);
    const Block& stored = ledger_.append(std::move(copy));
    mempool_.remove(stored.txs);
    if (auto* lifecycle = simulation().lifecycle()) {
      // A replayed commit keeps its original first-reach kCommitted time
      // (mark is first-reach); the hop records that this replica only
      // learned it through recovery catch-up.
      for (const Transaction& tx : stored.txs) {
        lifecycle->mark(tx.id, sim::TxStage::kCommitted, now());
        lifecycle->hop(tx.id, sim::TxHop::kRecoveryReplay);
      }
    }
    // A node serving clients must report commits no matter how it learned
    // them — also when it caught up through state sync.
    notify_watchers(stored);
    if (commit_hook_) commit_hook_(stored);
  }
  if (auto* trace = simulation().trace()) {
    trace->instant(static_cast<std::int32_t>(node_id()), now(),
                   "sync_applied", "sync",
                   "\"blocks\":" + std::to_string(response.blocks.size()) +
                       ",\"height\":" + std::to_string(ledger_.height()));
  }
  on_synced();
  // Keep pulling until caught up with this peer.
  if (!response.blocks.empty() &&
      response.blocks.size() == kSyncChunkBlocks) {
    request_sync(envelope.from);
  }
}

bool BlockchainNode::send_to(net::NodeId peer, net::PayloadPtr payload,
                             std::uint32_t bytes) {
  return connections_.send(peer, std::move(payload), bytes);
}

void BlockchainNode::broadcast(const net::PayloadPtr& payload,
                               std::uint32_t bytes) {
  if (equivocating_) {
    if (net::PayloadPtr twin = equivocate_payload(payload)) {
      // Split-brain broadcast: even-positioned peers receive the original
      // payload, odd-positioned peers the conflicting twin. Deterministic —
      // no RNG draw — so compromised runs replay exactly.
      ++equivocations_sent_;
      if (auto* trace = simulation().trace()) {
        trace->instant(static_cast<std::int32_t>(node_id()), now(),
                       "equivocate", "adversary");
      }
      bool odd = false;
      for (const net::NodeId peer : connections_.peers()) {
        connections_.send(peer, odd ? twin : payload, bytes);
        odd = !odd;
      }
      return;
    }
  }
  if (withholding_ && withholdable(*payload)) {
    ++withheld_count_;
    if (withheld_replay_ == nullptr) {
      // First suppressed payload: keep it as the stale replay source.
      withheld_replay_ = payload;
      return;
    }
    for (const net::NodeId peer : connections_.peers()) {
      connections_.send(peer, withheld_replay_, bytes);
    }
    return;
  }
  for (const net::NodeId peer : connections_.peers()) {
    connections_.send(peer, payload, bytes);
  }
}

void BlockchainNode::report_misbehavior(net::NodeId peer,
                                        core::Offense offense) {
  if (!misbehavior_.enabled()) return;
  const bool was_banned = misbehavior_.banned(peer);
  misbehavior_.report(peer, offense, now());
  misbehavior_active_ = true;
  if (auto* trace = simulation().trace()) {
    trace->instant(static_cast<std::int32_t>(node_id()), now(),
                   misbehavior_.banned(peer) && !was_banned
                       ? "peer_banned"
                       : "misbehavior_report",
                   "adversary",
                   "\"peer\":" + std::to_string(peer) + ",\"offense\":\"" +
                       core::to_string(offense) + "\"");
  }
}

std::map<std::string, double> BlockchainNode::adversarial_metrics() const {
  return {{"equivocations_sent", static_cast<double>(equivocations_sent_)},
          {"withheld", static_cast<double>(withheld_count_)},
          {"misbehavior_reports", static_cast<double>(misbehavior_.reports())},
          {"misbehavior_banned",
           static_cast<double>(misbehavior_.banned_count())},
          {"misbehavior_dropped", static_cast<double>(misbehavior_dropped_)}};
}

}  // namespace stabl::chain
