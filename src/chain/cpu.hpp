// Per-node CPU capacity model.
//
// Two mechanisms in the paper are CPU-bound, not network-bound:
//  * Aptos Block-STM speculative execution — duplicated transactions from
//    the secure client are re-executed and add CPU load, which is why the
//    paper had to move from 4-vCPU to 8-vCPU VMs for the §7 experiment;
//  * Avalanche message throttling — the cpuThrottler blocks inbound message
//    processing when the tracked CPU usage exceeds its target.
//
// CpuModel is a multi-server deterministic-service queue: work items are
// serviced in submission order by `cores` servers; completion callbacks run
// when the work finishes. DecayingMeter tracks a recent-usage rate the way
// Avalanche's resource tracker does (exponentially decayed window).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/process.hpp"
#include "sim/time.hpp"

namespace stabl::chain {

/// Exponentially decaying rate meter: add(amount) events are smoothed over
/// a time constant tau; rate() returns amount-per-second.
class DecayingMeter {
 public:
  explicit DecayingMeter(sim::Duration tau) : tau_s_(sim::to_seconds(tau)) {}

  void add(sim::Time now, double amount);
  [[nodiscard]] double rate(sim::Time now) const;
  void reset();

 private:
  void decay_to(sim::Time now) const;

  double tau_s_;
  mutable double level_ = 0.0;  // integrated amount, decayed
  mutable sim::Time last_{0};
};

class CpuModel {
 public:
  /// `host` anchors completion timers to the process lifetime (killing the
  /// process abandons in-flight work). `cores` is the vCPU count.
  CpuModel(sim::Process& host, double cores);

  /// Enqueue `cost` seconds of CPU work; `done` runs at completion (never
  /// if the process dies first). Templated so the completion callback goes
  /// straight into the pooled event queue without a std::function wrapper.
  template <typename F>
  void submit(sim::Duration cost, F&& done) {
    const sim::Time now = host_.now();
    auto earliest =
        std::min_element(core_free_at_.begin(), core_free_at_.end());
    const sim::Time start = std::max(now, *earliest);
    const sim::Time end = start + cost;
    *earliest = end;
    usage_.add(now, sim::to_seconds(cost));
    host_.set_timer(end - now, std::forward<F>(done));
  }

  /// Recent utilization in [0, ~1]: smoothed busy-seconds per second per
  /// core.
  [[nodiscard]] double utilization() const;

  /// How long a work item submitted now would wait before starting.
  [[nodiscard]] sim::Duration queue_delay() const;

  /// Forget all queued work and usage history (process restart).
  void reset();

  [[nodiscard]] double cores() const { return cores_; }

 private:
  sim::Process& host_;
  double cores_;
  std::vector<sim::Time> core_free_at_;
  DecayingMeter usage_;
};

}  // namespace stabl::chain
