#include "chain/mempool.hpp"

#include <iterator>

namespace stabl::chain {

bool Mempool::add(const Transaction& tx) {
  if (by_id_.contains(tx.id)) {
    ++duplicate_submissions_;
    return false;
  }
  // A different transaction already occupying this (sender, nonce) slot is
  // a conflict; first-come-first-served (no fee-replacement modeled).
  auto& slot = by_sender_[tx.from][tx.nonce];
  if (slot != 0) {
    ++duplicate_submissions_;
    return false;
  }
  slot = tx.id;
  by_id_.emplace(tx.id, tx);
  return true;
}

bool Mempool::contains(TxId id) const { return by_id_.contains(id); }

std::optional<Transaction> Mempool::get(TxId id) const {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  return it->second;
}

std::vector<Transaction> Mempool::collect_ready(
    std::size_t max_count, const NonceFn& next_nonce) const {
  ReadyStats stats;
  return collect_ready(max_count, next_nonce, stats);
}

std::vector<Transaction> Mempool::collect_ready(
    std::size_t max_count, const NonceFn& next_nonce,
    ReadyStats& stats) const {
  std::vector<Transaction> out;
  out.reserve(std::min(max_count, by_id_.size()));
  for (const auto& [sender, by_nonce] : by_sender_) {
    std::uint64_t expected = next_nonce(sender);
    auto it = by_nonce.lower_bound(expected);
    for (; it != by_nonce.end(); ++it) {
      if (it->first != expected) break;  // nonce gap: stop this sender
      if (out.size() >= max_count) return out;
      out.push_back(by_id_.at(it->second));
      ++expected;
    }
    if (it != by_nonce.end()) {
      // Pooled transactions stranded behind the gap — the batch quota is
      // not the reason (that path returned above), a missing nonce is.
      ++stats.gap_stalled_senders;
      const auto stranded = static_cast<std::uint64_t>(
          std::distance(it, by_nonce.end()));
      stats.gap_stalled_txs += stranded;
      if (sender == kHotKey) stats.hot_gap_stalled_txs += stranded;
    }
  }
  return out;
}

void Mempool::remove(const std::vector<Transaction>& txs) {
  for (const Transaction& tx : txs) {
    const auto it = by_id_.find(tx.id);
    if (it == by_id_.end()) continue;
    auto sender_it = by_sender_.find(it->second.from);
    if (sender_it != by_sender_.end()) {
      sender_it->second.erase(it->second.nonce);
      if (sender_it->second.empty()) by_sender_.erase(sender_it);
    }
    by_id_.erase(it);
  }
}

void Mempool::remove_stale(const NonceFn& next_nonce) {
  for (auto sender_it = by_sender_.begin(); sender_it != by_sender_.end();) {
    const std::uint64_t expected = next_nonce(sender_it->first);
    auto& by_nonce = sender_it->second;
    for (auto it = by_nonce.begin();
         it != by_nonce.end() && it->first < expected;) {
      by_id_.erase(it->second);
      it = by_nonce.erase(it);
    }
    sender_it = by_nonce.empty() ? by_sender_.erase(sender_it)
                                 : std::next(sender_it);
  }
}

std::vector<TxId> Mempool::known_ids() const {
  std::vector<TxId> ids;
  ids.reserve(by_id_.size());
  for (const auto& [sender, by_nonce] : by_sender_) {
    for (const auto& [nonce, id] : by_nonce) ids.push_back(id);
  }
  return ids;
}

void Mempool::clear() {
  by_id_.clear();
  by_sender_.clear();
}

}  // namespace stabl::chain
