#include "chain/vrf.hpp"

#include <cassert>

namespace stabl::chain {
namespace {

std::uint64_t draw_bits(std::uint64_t network_seed, std::uint64_t round,
                        std::uint32_t step, net::NodeId node) {
  std::uint64_t h = hash_combine(network_seed, round);
  h = hash_combine(h, step);
  h = hash_combine(h, node);
  return mix64(h);
}

}  // namespace

double sortition_draw(std::uint64_t network_seed, std::uint64_t round,
                      std::uint32_t step, net::NodeId node) {
  return static_cast<double>(draw_bits(network_seed, round, step, node) >>
                             11) *
         0x1.0p-53;
}

std::vector<net::NodeId> sortition_committee(std::uint64_t network_seed,
                                             std::uint64_t round,
                                             std::uint32_t step,
                                             std::size_t n,
                                             double expected_size) {
  assert(n > 0);
  const double p = expected_size / static_cast<double>(n);
  std::vector<net::NodeId> committee;
  committee.reserve(static_cast<std::size_t>(expected_size) + 4);
  for (net::NodeId node = 0; node < n; ++node) {
    if (sortition_draw(network_seed, round, step, node) < p) {
      committee.push_back(node);
    }
  }
  return committee;
}

net::NodeId sortition_leader(std::uint64_t network_seed, std::uint64_t round,
                             std::uint32_t step, std::size_t n) {
  assert(n > 0);
  net::NodeId best = 0;
  double best_draw = 2.0;
  for (net::NodeId node = 0; node < n; ++node) {
    const double draw = sortition_draw(network_seed, round, step, node);
    if (draw < best_draw) {
      best_draw = draw;
      best = node;
    }
  }
  return best;
}

}  // namespace stabl::chain
