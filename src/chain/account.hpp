// Account state: balances and nonces, rebuilt deterministically from the
// ledger. One instance per node replica.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "chain/types.hpp"

namespace stabl::chain {

class AccountState {
 public:
  /// Every account starts with `initial_balance` (the genesis allocation;
  /// large enough that the constant-rate transfer workload never runs dry).
  explicit AccountState(std::uint64_t initial_balance = 1'000'000'000'000ull)
      : initial_balance_(initial_balance) {}

  /// Sequence number the next transaction from `account` must carry.
  [[nodiscard]] std::uint64_t next_nonce(AccountId account) const;

  [[nodiscard]] std::uint64_t balance(AccountId account) const;

  /// Apply a transfer. Returns false (state unchanged) when the nonce is
  /// out of order or funds are insufficient.
  bool apply(const Transaction& tx);

  /// Would apply() succeed right now?
  [[nodiscard]] bool applicable(const Transaction& tx) const;

  void clear();

 private:
  struct Account {
    std::uint64_t balance = 0;
    std::uint64_t nonce = 0;
  };

  const Account& get(AccountId account) const;

  std::uint64_t initial_balance_;
  mutable std::unordered_map<AccountId, Account> accounts_;
};

}  // namespace stabl::chain
