// Simulated cryptographic sortition (Algorand-style VRF).
//
// Every node evaluates the same deterministic pseudo-random function of
// (network seed, round, step, node id), so all replicas agree on committee
// membership without communication — the property real VRFs provide.
// Crashed nodes remain in the candidate set: sortition is stake-based and
// cannot observe liveness, which is precisely why Algorand rounds stall
// when sortition picks dead proposers (paper §4).
#pragma once

#include <cstdint>
#include <vector>

#include "chain/hash.hpp"
#include "net/message.hpp"

namespace stabl::chain {

/// Pseudo-random value in [0,1) for a node's sortition draw.
double sortition_draw(std::uint64_t network_seed, std::uint64_t round,
                      std::uint32_t step, net::NodeId node);

/// Nodes selected for (round, step): each of the n equal-stake nodes is
/// included independently with probability expected_size / n. Result is
/// sorted and identical on every replica.
std::vector<net::NodeId> sortition_committee(std::uint64_t network_seed,
                                             std::uint64_t round,
                                             std::uint32_t step,
                                             std::size_t n,
                                             double expected_size);

/// The single proposer for (round, step): the node with the smallest draw,
/// mirroring Algorand's lowest-VRF-hash proposer selection.
net::NodeId sortition_leader(std::uint64_t network_seed, std::uint64_t round,
                             std::uint32_t step, std::size_t n);

}  // namespace stabl::chain
