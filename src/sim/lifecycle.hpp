// Per-transaction lifecycle recording.
//
// A LifecycleRecorder collects, for every submitted transaction, the
// sim-time at which it first reached each stage of its life — client
// submission, entry-node receipt, mempool admission, proposal, commit and
// client-side confirmation — plus counters for the resilience hops a
// transaction can take along the way (resubmission, hedged copy, endpoint
// failover, recovery replay through state sync). The paper measures *how
// much* a chain degrades under failures; this record is what lets the
// attribution layer (core/attribution.hpp) say *where* the lost time went.
//
// The recorder lives at the sim layer, next to TraceSink, and obeys the
// same two contracts:
//
// Determinism contract: a recorder only OBSERVES. Recording never draws
// from any Rng, never schedules or cancels events and never mutates
// component state, so a run is byte-identical in every report with
// lifecycle recording on or off (tests/test_trace.cpp asserts this).
//
// Overhead contract: recording is disabled by leaving Simulation's
// lifecycle pointer null. Emit sites guard with
// `if (auto* l = sim.lifecycle())`, so the disabled path costs one pointer
// load and a predicted branch — gated at < 2% by bench/micro_trace_overhead.
//
// Stage semantics: marks are FIRST-REACH — a resubmitted transaction that
// re-enters a node keeps its original kEntryReceived time, and a block
// replayed through state sync keeps the original kCommitted time of the
// first replica that reported it to the recorder. Stage times are whatever
// each site observed; they are not forced monotone at record time (a
// transaction can commit on a replica before the entry node that first
// received it does). stage_times() applies the carry-forward clamp that
// makes per-stage latencies telescope exactly to the client-observed
// commit latency.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace stabl::sim {

/// Stages of a transaction's life, in causal order. Every stage time is
/// measured on the component that owns the transition: the client stamps
/// kSubmitted/kConfirmed, the entry node kEntryReceived/kQueued, the
/// proposer kProposed, the first committing replica kCommitted.
enum class TxStage : std::uint8_t {
  kSubmitted = 0,      ///< client built and sent the transaction
  kEntryReceived = 1,  ///< an entry node's RPC handler saw it
  kQueued = 2,         ///< admitted to a mempool / leader forward buffer
  kProposed = 3,       ///< included in a consensus proposal / candidate
  kCommitted = 4,      ///< first replica appended it to its ledger
  kConfirmed = 5,      ///< the client accepted the commit notification
};
inline constexpr std::size_t kNumTxStages = 6;

/// Resilience hops a transaction can take between stages. Counted, not
/// timestamped: a hop can repeat (several resubmissions) and what the
/// attribution layer needs is "how often did the fault force this detour".
enum class TxHop : std::uint8_t {
  kResubmit = 0,        ///< client re-sent after a commit timeout / RST
  kHedge = 1,           ///< client sent a hedged copy to a second endpoint
  kFailover = 2,        ///< an attempt targeted a different endpoint
  kRecoveryReplay = 3,  ///< committed via state-sync replay on a replica
};
inline constexpr std::size_t kNumTxHops = 4;

/// Sentinel for "stage never reached".
inline constexpr Time kStageUnset{-1};

/// One transaction's compact lifecycle record: 6 stage times + 4 hop
/// counters. 64 bytes of payload per transaction — cheap enough to keep
/// for every transaction of a 400 s cell.
struct TxLifecycle {
  std::uint64_t tx = 0;
  std::array<Time, kNumTxStages> stage_at{kStageUnset, kStageUnset,
                                          kStageUnset, kStageUnset,
                                          kStageUnset, kStageUnset};
  std::array<std::uint32_t, kNumTxHops> hops{};

  [[nodiscard]] bool reached(TxStage stage) const {
    return stage_at[static_cast<std::size_t>(stage)] != kStageUnset;
  }
  [[nodiscard]] Time at(TxStage stage) const {
    return stage_at[static_cast<std::size_t>(stage)];
  }
  /// Deepest stage this transaction reached (kSubmitted when only
  /// submitted). Loss attribution buckets unconfirmed transactions by this.
  [[nodiscard]] TxStage deepest() const;
};

/// Stage times clamped monotone by carry-forward: stage i's effective time
/// is max(recorded time of i if set, effective time of i-1). The resulting
/// per-stage latencies (times[i+1] - times[i]) are all >= 0 and telescope
/// EXACTLY to times[kConfirmed] - times[kSubmitted] — the client-observed
/// commit latency — which is what makes attribution deltas sum to the
/// measured latency delta. Only meaningful for records with kSubmitted set.
[[nodiscard]] std::array<Time, kNumTxStages> stage_times(
    const TxLifecycle& record);

/// Short snake_case stage name ("submitted", "entry_received", ...).
[[nodiscard]] const char* to_string(TxStage stage);
/// Short snake_case hop name ("resubmit", "hedge", ...).
[[nodiscard]] const char* to_string(TxHop hop);

/// The per-stage latency segment names, in order: segment i is the time
/// from stage i to stage i+1 ("submit" = submitted->entry_received, ...,
/// "notify" = committed->confirmed). kNumTxStages - 1 entries.
[[nodiscard]] const std::array<const char*, kNumTxStages - 1>&
stage_segment_names();

class LifecycleRecorder {
 public:
  /// Record that `tx` reached `stage` at time `t`. First reach wins;
  /// later marks for the same (tx, stage) are ignored.
  void mark(std::uint64_t tx, TxStage stage, Time t);

  /// Count one resilience hop for `tx`.
  void hop(std::uint64_t tx, TxHop kind);

  /// All records in first-touch order — deterministic, since the simulation
  /// is single-threaded and event order is deterministic.
  [[nodiscard]] const std::vector<TxLifecycle>& records() const {
    return records_;
  }
  /// Record for `tx`, or nullptr when the tx was never seen.
  [[nodiscard]] const TxLifecycle* find(std::uint64_t tx) const;

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  /// Pre-size for an expected transaction count (experiment runner plumbs
  /// the workload's submission estimate through this).
  void reserve(std::size_t txs);
  void clear();

 private:
  TxLifecycle& slot(std::uint64_t tx);

  std::vector<TxLifecycle> records_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
};

}  // namespace stabl::sim
