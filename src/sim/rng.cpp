#include "sim/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace stabl::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : state_) s = splitmix64(seed);
  // Guard against the all-zero state, which xoshiro cannot leave.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits, as recommended for xoshiro output.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_spare_normal_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal_median(double median, double sigma) {
  assert(median > 0.0);
  return median * std::exp(sigma * normal());
}

double Rng::exponential(double mean) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  assert(k <= n);
  // Partial Fisher-Yates over an index vector: O(n) setup, O(k) draws.
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n - 1)));
    std::swap(indices[i], indices[j]);
    out.push_back(indices[i]);
  }
  return out;
}

Rng Rng::fork() { return Rng{next_u64()}; }

Rng Rng::derive(std::uint64_t stream) const {
  // Hash the full parent state together with the stream index; the parent
  // is left untouched. splitmix64 finalization decorrelates neighbouring
  // stream indices.
  std::uint64_t h = stream;
  for (const std::uint64_t word : state_) {
    h += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = h ^ word;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    h = z ^ (z >> 31);
  }
  return Rng{h};
}

}  // namespace stabl::sim
