#include "sim/event_queue.hpp"

namespace stabl::sim {

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNpos) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNpos;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.action.reset();
  s.heap_pos = kNpos;
  // Stale handles to this slot die here: the generation advances, so a
  // later cancel() with the old id no longer matches.
  ++s.generation;
  s.next_free = free_head_;
  free_head_ = slot;
}

void EventQueue::cancel(TimerId id) {
  if (id == kInvalidTimer) return;
  const std::uint64_t biased = id >> 32;
  if (biased == 0 || biased > slots_.size()) return;
  const auto slot = static_cast<std::uint32_t>(biased - 1);
  const Slot& s = slots_[slot];
  if (s.generation != static_cast<std::uint32_t>(id)) {
    return;  // already fired or cancelled (slot possibly reused)
  }
  remove_heap_entry(s.heap_pos);
  release_slot(slot);
}

void EventQueue::remove_heap_entry(std::uint32_t pos) {
  const auto last = static_cast<std::uint32_t>(heap_.size() - 1);
  const std::uint32_t moved = heap_[last];
  heap_.pop_back();
  if (pos == last) return;
  place(pos, moved);
  // The relocated entry may order either way relative to its new
  // neighbourhood; one of the sifts is a no-op.
  sift_down(pos);
  sift_up(slots_[moved].heap_pos);
}

Time EventQueue::next_time() const {
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::next_time() called on empty queue");
  }
  return slots_[heap_.front()].at;
}

EventQueue::Action EventQueue::pop(Time& fired_at, TimerId* fired_id) {
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::pop() called on empty queue");
  }
  const std::uint32_t slot = heap_.front();
  Slot& s = slots_[slot];
  fired_at = s.at;
  if (fired_id != nullptr) *fired_id = make_id(slot, s.generation);
  Action action = std::move(s.action);
  remove_heap_entry(0);
  release_slot(slot);
  return action;
}

void EventQueue::reserve(std::size_t events) {
  slots_.reserve(events);
  heap_.reserve(events);
}

void EventQueue::sift_up(std::uint32_t pos) {
  const std::uint32_t moving = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 2;
    if (!before(moving, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, moving);
}

void EventQueue::sift_down(std::uint32_t pos) {
  const auto n = static_cast<std::uint32_t>(heap_.size());
  if (pos >= n) return;
  const std::uint32_t moving = heap_[pos];
  while (true) {
    std::uint32_t child = 2 * pos + 1;
    if (child >= n) break;
    const std::uint32_t right = child + 1;
    if (right < n && before(heap_[right], heap_[child])) child = right;
    if (!before(heap_[child], moving)) break;
    place(pos, heap_[child]);
    pos = child;
  }
  place(pos, moving);
}

}  // namespace stabl::sim
