#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace stabl::sim {

TimerId EventQueue::schedule(Time at, Action action) {
  const TimerId id = next_id_++;
  heap_.push(Entry{at, id});
  actions_.emplace(id, std::move(action));
  ++live_count_;
  return id;
}

void EventQueue::cancel(TimerId id) {
  if (id == kInvalidTimer) return;
  const auto it = actions_.find(id);
  if (it == actions_.end()) return;  // already fired or cancelled
  actions_.erase(it);
  cancelled_.insert(id);
  --live_count_;
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_cancelled_head();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  drop_cancelled_head();
  assert(!heap_.empty());
  return heap_.top().at;
}

EventQueue::Action EventQueue::pop(Time& fired_at) {
  drop_cancelled_head();
  assert(!heap_.empty());
  const Entry entry = heap_.top();
  heap_.pop();
  fired_at = entry.at;
  auto it = actions_.find(entry.id);
  assert(it != actions_.end());
  Action action = std::move(it->second);
  actions_.erase(it);
  --live_count_;
  return action;
}

}  // namespace stabl::sim
