// Deterministic pseudo-random number generation.
//
// Every random choice in a STABL experiment flows from a single seeded Rng
// so that an experiment is a pure function of its configuration: same seed,
// same commit log. The generator is xoshiro256++ (public domain, Blackman &
// Vigna), seeded through splitmix64 as its authors recommend.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace stabl::sim {

/// xoshiro256++ generator with convenience distributions.
///
/// Not thread-safe; the simulator is single-threaded by design.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Satisfies UniformRandomBitGenerator so Rng works with <algorithm>.
  std::uint64_t operator()() { return next_u64(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~std::uint64_t{0}; }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Standard normal via Box-Muller (cached spare for the second value).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal such that the *median* of the distribution is `median`
  /// and the underlying normal has standard deviation `sigma`.
  double lognormal_median(double median, double sigma);

  /// Exponential with the given mean.
  double exponential(double mean);

  /// Sample k distinct indices from [0, n) without replacement.
  /// Requires k <= n. Order of the returned sample is unspecified.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Derive an independent child generator; used to give each node its own
  /// stream so that adding events to one node does not perturb another.
  /// Consumes one draw from this generator, so repeated forks differ.
  Rng fork();

  /// Derive the child generator for a named stream WITHOUT consuming any
  /// state: same parent state + same stream index always yields the same
  /// child, regardless of how many other streams were derived in between
  /// or in what order. This is the RNG discipline the chaos engine relies
  /// on — trial k of a campaign draws from derive(k) and is therefore
  /// reproducible in isolation, independent of thread scheduling.
  [[nodiscard]] Rng derive(std::uint64_t stream) const;

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace stabl::sim
