#include "sim/process.hpp"

namespace stabl::sim {

Process::~Process() {
  // Make sure no scheduled closure can run against a destroyed object.
  for (const TimerId id : timers_) sim_.cancel(id);
}

void Process::kill() {
  if (!alive_) return;
  alive_ = false;
  for (const TimerId id : timers_) sim_.cancel(id);
  timers_.clear();
  on_crash();
}

void Process::start() {
  if (alive_) return;
  alive_ = true;
  ++restarts_;
  on_start();
}

void Process::cancel_timer(TimerId id) {
  if (id == kInvalidTimer) return;
  sim_.cancel(id);
  timers_.erase(id);
}

}  // namespace stabl::sim
