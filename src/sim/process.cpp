#include "sim/process.hpp"

#include <memory>
#include <utility>

namespace stabl::sim {

Process::~Process() {
  // Make sure no scheduled closure can run against a destroyed object.
  for (const TimerId id : timers_) sim_.cancel(id);
}

void Process::kill() {
  if (!alive_) return;
  alive_ = false;
  for (const TimerId id : timers_) sim_.cancel(id);
  timers_.clear();
  on_crash();
}

void Process::start() {
  if (alive_) return;
  alive_ = true;
  ++restarts_;
  on_start();
}

TimerId Process::set_timer(Duration delay, std::function<void()> fn) {
  if (!alive_) return kInvalidTimer;
  // The closure needs its own id to drop the bookkeeping entry when it
  // fires, but the id only exists after scheduling; a shared cell bridges
  // the gap.
  auto cell = std::make_shared<TimerId>(kInvalidTimer);
  const TimerId id =
      sim_.schedule_after(delay, [this, cell, fn = std::move(fn)]() {
        timers_.erase(*cell);
        if (!alive_) return;  // defensive; kill() cancels timers anyway
        fn();
      });
  *cell = id;
  timers_.insert(id);
  return id;
}

void Process::cancel_timer(TimerId id) {
  if (id == kInvalidTimer) return;
  sim_.cancel(id);
  timers_.erase(id);
}

}  // namespace stabl::sim
