// The simulator's time-ordered event queue.
//
// Events are closures keyed by (time, sequence number); the sequence number
// makes ordering of same-time events deterministic (FIFO in scheduling
// order). Cancellation is lazy: cancelled entries stay in the heap and are
// skipped on pop, which keeps schedule/cancel O(log n) without a secondary
// index structure.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace stabl::sim {

/// Opaque handle identifying a scheduled event, usable for cancellation.
using TimerId = std::uint64_t;

/// Sentinel returned by operations that have no timer to identify.
inline constexpr TimerId kInvalidTimer = 0;

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedule `action` to run at absolute time `at`. Returns a handle that
  /// can be passed to cancel(). `at` must not be in the past relative to the
  /// last popped event; the Simulation enforces this.
  TimerId schedule(Time at, Action action);

  /// Cancel a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled event is a harmless no-op.
  void cancel(TimerId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const;

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] Time next_time() const;

  /// Pop and return the earliest live event's action, advancing internal
  /// bookkeeping. Requires !empty(). `fired_at` receives the event's time.
  Action pop(Time& fired_at);

  /// Number of live events currently scheduled.
  [[nodiscard]] std::size_t size() const { return live_count_; }

 private:
  struct Entry {
    Time at;
    TimerId id;
    // Heap ordering: earliest time first; ties broken by schedule order.
    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return id > other.id;
    }
  };

  void drop_cancelled_head() const;

  // `mutable` so that empty()/next_time() can shed cancelled heads lazily.
  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
      heap_;
  mutable std::unordered_set<TimerId> cancelled_;
  std::unordered_map<TimerId, Action> actions_;
  TimerId next_id_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace stabl::sim
