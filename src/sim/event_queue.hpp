// The simulator's time-ordered event queue.
//
// Scale redesign (DESIGN.md §14): events live in a slab of pooled slots
// recycled through a free list, ordered by an indexed binary min-heap of
// slot indices. Event actions are stored inline in the slot (small-buffer
// storage, no per-event heap allocation for the closures the simulator
// actually schedules); oversized callables fall back to one heap block.
// Cancellation is *eager*: the slot's heap entry is removed in O(log n)
// and the slot recycled immediately, so schedule/cancel churn — timeout
// timers that almost always get cancelled — no longer grows any internal
// structure. TimerIds carry a per-slot generation tag, which makes a
// stale handle (already fired or cancelled, slot possibly reused) a
// harmless no-op to cancel, exactly like the previous design's lazy set.
//
// Ordering contract (unchanged): earliest time first, ties broken FIFO in
// scheduling order via a monotone sequence number. The pop sequence is
// byte-for-byte the sequence the previous priority_queue implementation
// produced, which is what keeps every report byte-identical across the
// swap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace stabl::sim {

/// Opaque handle identifying a scheduled event, usable for cancellation.
/// Encodes (slot index + 1) in the high 32 bits and the slot's generation
/// in the low 32 bits; callers must treat it as opaque.
using TimerId = std::uint64_t;

/// Sentinel returned by operations that have no timer to identify. No
/// valid handle is ever 0 (the encoded slot index is biased by one).
inline constexpr TimerId kInvalidTimer = 0;

namespace detail {

/// Move-only callable with fixed inline storage. The simulator's closures
/// (a captured `this` plus a few ids, an envelope with a shared_ptr
/// payload, ...) fit the inline buffer; anything larger transparently
/// falls back to a single heap allocation. Replaces std::function on the
/// event hot path, where the latter's allocation per schedule dominated
/// large-cell profiles.
class InlineAction {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  InlineAction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineAction>>>
  InlineAction(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(fn));
  }

  InlineAction(InlineAction&& other) noexcept { take(other); }
  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }
  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;
  ~InlineAction() { reset(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage()); }

  template <typename F>
  void emplace(F&& fn) {
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (storage()) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (storage()) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &kBoxedOps<Fn>;
    }
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage());
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*);
    // Move-construct `dst` from `src`, then destroy `src`.
    void (*relocate)(void* dst, void* src);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
      [](void* dst, void* src) {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      }};

  template <typename Fn>
  static constexpr Ops kBoxedOps{
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* p) { delete *static_cast<Fn**>(p); },
      [](void* dst, void* src) {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      }};

  void take(InlineAction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage(), other.storage());
      other.ops_ = nullptr;
    }
  }

  void* storage() { return static_cast<void*>(buf_); }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace detail

class EventQueue {
 public:
  /// The type pop() hands back: a move-only callable owning the event's
  /// action. Invoke it at most once.
  using Action = detail::InlineAction;

  /// Schedule `action` (any void() callable) to run at absolute time `at`.
  /// Returns a handle that can be passed to cancel(). `at` must not be in
  /// the past relative to the last popped event; the Simulation enforces
  /// this. No heap allocation when the callable fits the inline buffer.
  template <typename F>
  TimerId schedule(Time at, F&& action) {
    const std::uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    s.at = at;
    s.seq = next_seq_++;
    s.action.emplace(std::forward<F>(action));
    s.heap_pos = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(slot);
    sift_up(s.heap_pos);
    return make_id(slot, s.generation);
  }

  /// Cancel a previously scheduled event: its heap entry is removed and
  /// its slot recycled immediately (eager — nothing lingers until the
  /// fire time). Cancelling an already-fired, already-cancelled or
  /// invalid handle is a harmless no-op.
  void cancel(TimerId id);

  /// True when no live events remain.
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  /// Time of the earliest live event. Throws std::logic_error when the
  /// queue is empty — in every build type, not just with assertions on.
  [[nodiscard]] Time next_time() const;

  /// Pop and return the earliest live event's action, advancing internal
  /// bookkeeping. `fired_at` receives the event's time; `fired_id` (when
  /// non-null) its handle. Throws std::logic_error when empty.
  Action pop(Time& fired_at, TimerId* fired_id = nullptr);

  /// Number of live events currently scheduled.
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Pre-size the slab and heap for an expected peak of live events
  /// (plumbed from cluster size so large cells skip growth reallocation).
  void reserve(std::size_t events);

  /// Slots ever allocated (live + free-listed). Bounded by the peak live
  /// count, NOT by total schedule/cancel traffic — the regression test
  /// for the old lazy-cancel leak asserts exactly this.
  [[nodiscard]] std::size_t allocated_slots() const { return slots_.size(); }

 private:
  struct Slot {
    Time at{0};
    std::uint64_t seq = 0;
    std::uint32_t generation = 1;
    std::uint32_t heap_pos = kNpos;   // kNpos while free
    std::uint32_t next_free = kNpos;  // free-list link while free
    detail::InlineAction action;
  };

  static constexpr std::uint32_t kNpos = ~std::uint32_t{0};

  static TimerId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<TimerId>(slot + 1) << 32) | generation;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void remove_heap_entry(std::uint32_t pos);

  [[nodiscard]] bool before(std::uint32_t a, std::uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.at != sb.at) return sa.at < sb.at;
    return sa.seq < sb.seq;
  }

  void sift_up(std::uint32_t pos);
  void sift_down(std::uint32_t pos);
  void place(std::uint32_t pos, std::uint32_t slot) {
    heap_[pos] = slot;
    slots_[slot].heap_pos = pos;
  }

  std::vector<Slot> slots_;           // pooled entries, free-list recycled
  std::vector<std::uint32_t> heap_;   // indexed binary min-heap of slots
  std::uint32_t free_head_ = kNpos;
  std::uint64_t next_seq_ = 0;        // FIFO tie-break, monotone forever
};

}  // namespace stabl::sim
