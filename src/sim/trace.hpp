// Sim-time trace recording.
//
// A TraceSink collects timestamped spans, instants, async spans and counter
// samples from anywhere in the simulation — transaction lifecycles,
// consensus rounds, fault injections, connection churn. The sink lives at
// the sim layer so that every component (net, chain, chains, core) can emit
// through the Simulation it already holds, without inverting the layering.
//
// Determinism contract: a sink only OBSERVES. Emitting never draws from any
// Rng, never schedules or cancels events and never mutates component state,
// so a run is byte-identical in every report with tracing on or off (the
// harness asserts this; see tests/test_trace.cpp).
//
// Overhead contract: tracing is disabled by leaving Simulation's sink
// pointer null. Emit sites guard with `if (auto* t = sim.trace())`, so the
// disabled path costs one pointer load and a predicted branch — gated at
// < 2% by bench/micro_trace_overhead.
//
// The sink itself is format-agnostic; core/trace.hpp renders the recorded
// events as Chrome/Perfetto trace_event JSON with one track per node.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace stabl::sim {

class TraceSink {
 public:
  enum class Phase : std::uint8_t {
    kBegin,       // open a synchronous span on a track (Perfetto "B")
    kEnd,         // close the innermost span on a track ("E")
    kInstant,     // a point event ("i")
    kCounter,     // a sampled counter value ("C")
    kAsyncBegin,  // open an id-keyed overlapping span ("b")
    kAsyncEnd,    // close an id-keyed overlapping span ("e")
  };

  struct Event {
    Phase phase = Phase::kInstant;
    std::int32_t track = 0;  // NodeId for nodes/clients; kFaultsTrack, ...
    Time time{0};
    std::string name;      // low-cardinality label ("round", "commit", ...)
    std::string category;  // "consensus", "txn", "fault", "net", ...
    /// Pre-rendered JSON object *body* ("\"round\":7"), may be empty.
    std::string args;
    double value = 0.0;       // kCounter only
    std::uint64_t id = 0;     // kAsync* correlation id (e.g. a TxId)
  };

  void begin(std::int32_t track, Time t, std::string name,
             std::string category, std::string args = {});
  void end(std::int32_t track, Time t, std::string name);
  void instant(std::int32_t track, Time t, std::string name,
               std::string category, std::string args = {});
  void counter(Time t, std::string name, double value);
  void async_begin(std::int32_t track, Time t, std::uint64_t id,
                   std::string name, std::string category,
                   std::string args = {});
  void async_end(std::int32_t track, Time t, std::uint64_t id,
                 std::string name, std::string category);

  /// Human-readable label for a track ("node 3", "client 11", "faults").
  void set_track_name(std::int32_t track, std::string name);

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] const std::map<std::int32_t, std::string>& track_names()
      const {
    return tracks_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  void clear();

 private:
  std::vector<Event> events_;
  std::map<std::int32_t, std::string> tracks_;
};

/// Hook invoked by the Simulation whenever its clock advances, OUTSIDE the
/// event queue: observer callbacks never consume TimerIds, never count
/// toward events_processed() and run before any event at the new time, so
/// attaching one cannot perturb event ordering or RNG draws. The metrics
/// sampler (core/metrics.hpp) is the canonical implementation.
class TimeObserver {
 public:
  virtual ~TimeObserver() = default;
  /// The clock is about to advance to `now` (state reflects every event
  /// strictly before `now`).
  virtual void on_time_advance(Time now) = 0;
};

}  // namespace stabl::sim
