#include "sim/lifecycle.hpp"

#include <algorithm>

namespace stabl::sim {

TxStage TxLifecycle::deepest() const {
  for (std::size_t i = kNumTxStages; i-- > 0;) {
    if (stage_at[i] != kStageUnset) return static_cast<TxStage>(i);
  }
  return TxStage::kSubmitted;
}

std::array<Time, kNumTxStages> stage_times(const TxLifecycle& record) {
  std::array<Time, kNumTxStages> times{};
  Time carry = record.stage_at[0];
  times[0] = carry;
  for (std::size_t i = 1; i < kNumTxStages; ++i) {
    const Time at = record.stage_at[i];
    if (at != kStageUnset) carry = std::max(carry, at);
    times[i] = carry;
  }
  return times;
}

const char* to_string(TxStage stage) {
  switch (stage) {
    case TxStage::kSubmitted: return "submitted";
    case TxStage::kEntryReceived: return "entry_received";
    case TxStage::kQueued: return "queued";
    case TxStage::kProposed: return "proposed";
    case TxStage::kCommitted: return "committed";
    case TxStage::kConfirmed: return "confirmed";
  }
  return "unknown";
}

const char* to_string(TxHop hop) {
  switch (hop) {
    case TxHop::kResubmit: return "resubmit";
    case TxHop::kHedge: return "hedge";
    case TxHop::kFailover: return "failover";
    case TxHop::kRecoveryReplay: return "recovery_replay";
  }
  return "unknown";
}

const std::array<const char*, kNumTxStages - 1>& stage_segment_names() {
  static const std::array<const char*, kNumTxStages - 1> kNames{
      "submit", "admission", "queueing", "consensus", "notify"};
  return kNames;
}

TxLifecycle& LifecycleRecorder::slot(std::uint64_t tx) {
  const auto [it, inserted] = index_.emplace(tx, records_.size());
  if (inserted) {
    records_.emplace_back();
    records_.back().tx = tx;
  }
  return records_[it->second];
}

void LifecycleRecorder::mark(std::uint64_t tx, TxStage stage, Time t) {
  TxLifecycle& record = slot(tx);
  Time& at = record.stage_at[static_cast<std::size_t>(stage)];
  if (at == kStageUnset) at = t;
}

void LifecycleRecorder::hop(std::uint64_t tx, TxHop kind) {
  ++slot(tx).hops[static_cast<std::size_t>(kind)];
}

const TxLifecycle* LifecycleRecorder::find(std::uint64_t tx) const {
  const auto it = index_.find(tx);
  return it == index_.end() ? nullptr : &records_[it->second];
}

void LifecycleRecorder::reserve(std::size_t txs) {
  records_.reserve(txs);
  index_.reserve(txs);
}

void LifecycleRecorder::clear() {
  records_.clear();
  index_.clear();
}

}  // namespace stabl::sim
