#include "sim/trace.hpp"

#include <utility>

namespace stabl::sim {

void TraceSink::begin(std::int32_t track, Time t, std::string name,
                      std::string category, std::string args) {
  events_.push_back(Event{Phase::kBegin, track, t, std::move(name),
                          std::move(category), std::move(args), 0.0, 0});
}

void TraceSink::end(std::int32_t track, Time t, std::string name) {
  events_.push_back(
      Event{Phase::kEnd, track, t, std::move(name), {}, {}, 0.0, 0});
}

void TraceSink::instant(std::int32_t track, Time t, std::string name,
                        std::string category, std::string args) {
  events_.push_back(Event{Phase::kInstant, track, t, std::move(name),
                          std::move(category), std::move(args), 0.0, 0});
}

void TraceSink::counter(Time t, std::string name, double value) {
  events_.push_back(
      Event{Phase::kCounter, 0, t, std::move(name), {}, {}, value, 0});
}

void TraceSink::async_begin(std::int32_t track, Time t, std::uint64_t id,
                            std::string name, std::string category,
                            std::string args) {
  events_.push_back(Event{Phase::kAsyncBegin, track, t, std::move(name),
                          std::move(category), std::move(args), 0.0, id});
}

void TraceSink::async_end(std::int32_t track, Time t, std::uint64_t id,
                          std::string name, std::string category) {
  events_.push_back(Event{Phase::kAsyncEnd, track, t, std::move(name),
                          std::move(category), {}, 0.0, id});
}

void TraceSink::set_track_name(std::int32_t track, std::string name) {
  tracks_[track] = std::move(name);
}

void TraceSink::clear() {
  events_.clear();
  tracks_.clear();
}

}  // namespace stabl::sim
