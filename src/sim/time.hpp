// Simulated-time primitives.
//
// All of STABL's simulated components share one logical clock owned by
// sim::Simulation. Time is expressed as std::chrono::microseconds: fine
// enough to resolve sub-millisecond LAN latencies, coarse enough that a
// 400-second experiment stays far away from overflow.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace stabl::sim {

/// Absolute simulated time since the start of the simulation.
using Time = std::chrono::microseconds;

/// A span of simulated time. Same representation as Time; the alias keeps
/// signatures self-documenting.
using Duration = std::chrono::microseconds;

/// Shorthand constructors, so call sites read `ms(250)` instead of
/// `std::chrono::microseconds{250'000}`.
constexpr Duration us(std::int64_t v) { return Duration{v}; }
constexpr Duration ms(std::int64_t v) { return Duration{v * 1000}; }
constexpr Duration sec(std::int64_t v) { return Duration{v * 1'000'000}; }

/// Fractional seconds, for configuration knobs expressed as doubles.
constexpr Duration seconds(double v) {
  return Duration{static_cast<std::int64_t>(v * 1e6)};
}

/// Convert a simulated time to fractional seconds (for metrics and reports).
constexpr double to_seconds(Time t) {
  return static_cast<double>(t.count()) / 1e6;
}

/// Render a time as "123.456s" for logs and reports.
std::string format_time(Time t);

}  // namespace stabl::sim
