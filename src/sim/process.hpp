// A simulated OS process.
//
// Blockchain nodes, clients and observers are all Processes: they can be
// killed (crash) and started again (restart) by the fault-injection layer.
// A Process owns a set of timers that are cancelled wholesale when the
// process dies, mirroring how killing a real process destroys its in-flight
// work. Timer callbacks scheduled through the Process helpers never fire on
// a dead process.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <utility>

#include "sim/simulation.hpp"

namespace stabl::sim {

/// Identifier of a simulated machine/process slot (stable across restarts,
/// matching the paper's "restarted later with the same identity").
using ProcessId = std::uint32_t;

class Process {
 public:
  Process(Simulation& simulation, ProcessId id)
      : sim_(simulation), id_(id) {}
  virtual ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] ProcessId id() const { return id_; }
  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] Simulation& simulation() { return sim_; }
  [[nodiscard]] Time now() const { return sim_.now(); }

  /// Kill the process: cancels every pending timer, flips alive to false and
  /// invokes on_crash() so subclasses can drop volatile state.
  void kill();

  /// Start the process again with the same identity. Invokes on_restart().
  /// Killing an alive process and starting a dead one are the only legal
  /// transitions; the others are no-ops.
  void start();

  /// Count of crash/restart cycles this process went through.
  [[nodiscard]] int restarts() const { return restarts_; }

  /// Schedule a timer owned by this process; auto-cancelled on kill() and
  /// skipped if the process somehow died before it fired. Public so that
  /// components owned by the process (connection manager, CPU model) can
  /// anchor their timers to the owning process's lifetime. The wrapper
  /// learns its own handle from Simulation::current_timer() when it fires,
  /// so per-timer bookkeeping costs no allocation.
  template <typename F>
  TimerId set_timer(Duration delay, F&& fn) {
    if (!alive_) return kInvalidTimer;
    const TimerId id = sim_.schedule_after(
        delay, [this, fn = std::forward<F>(fn)]() mutable {
          timers_.erase(sim_.current_timer());
          if (!alive_) return;  // defensive; kill() cancels timers anyway
          fn();
        });
    timers_.insert(id);
    return id;
  }

  /// Cancel one of this process's timers (no-op if already fired).
  void cancel_timer(TimerId id);

  /// Cancel `id` (if pending) and re-arm it `delay` from now — the
  /// cancel-then-reschedule idiom every chain backend's pacemaker uses.
  template <typename F>
  void reset_timer(TimerId& id, Duration delay, F&& fn) {
    cancel_timer(id);
    id = set_timer(delay, std::forward<F>(fn));
  }

 protected:

  /// Subclass hooks. on_start() also runs for the initial boot via start().
  virtual void on_start() {}
  virtual void on_crash() {}

 private:
  Simulation& sim_;
  ProcessId id_;
  bool alive_ = false;
  int restarts_ = -1;  // first start() brings this to 0
  std::unordered_set<TimerId> timers_;
};

}  // namespace stabl::sim
