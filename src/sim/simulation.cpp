#include "sim/simulation.hpp"

#include <cstdio>

namespace stabl::sim {

std::string format_time(Time t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds(t));
  return buf;
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  Time fired_at{};
  TimerId fired_id = kInvalidTimer;
  auto action = queue_.pop(fired_at, &fired_id);
  // Observers see the advance before any event at the new time runs, so a
  // sample at time T reflects exactly the events strictly before T.
  if (observer_ != nullptr && fired_at > now_) {
    observer_->on_time_advance(fired_at);
  }
  now_ = fired_at;
  current_timer_ = fired_id;
  ++events_processed_;
  action();
  current_timer_ = kInvalidTimer;
  return true;
}

void Simulation::run_until(Time deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) step();
  if (now_ < deadline) {
    if (observer_ != nullptr) observer_->on_time_advance(deadline);
    now_ = deadline;
  }
}

void Simulation::run() {
  while (step()) {
  }
}

}  // namespace stabl::sim
