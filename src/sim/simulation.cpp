#include "sim/simulation.hpp"

#include <cstdio>
#include <utility>

namespace stabl::sim {

std::string format_time(Time t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds(t));
  return buf;
}

TimerId Simulation::schedule_at(Time at, EventQueue::Action action) {
  if (at < now_) at = now_;
  return queue_.schedule(at, std::move(action));
}

TimerId Simulation::schedule_after(Duration delay, EventQueue::Action action) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return queue_.schedule(now_ + delay, std::move(action));
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  Time fired_at{};
  auto action = queue_.pop(fired_at);
  // Observers see the advance before any event at the new time runs, so a
  // sample at time T reflects exactly the events strictly before T.
  if (observer_ != nullptr && fired_at > now_) {
    observer_->on_time_advance(fired_at);
  }
  now_ = fired_at;
  ++events_processed_;
  action();
  return true;
}

void Simulation::run_until(Time deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) step();
  if (now_ < deadline) {
    if (observer_ != nullptr) observer_->on_time_advance(deadline);
    now_ = deadline;
  }
}

void Simulation::run() {
  while (step()) {
  }
}

}  // namespace stabl::sim
