// The discrete-event simulation core.
//
// A Simulation owns the logical clock, the event queue and the root PRNG.
// Components schedule closures; run()/run_until() execute them in time
// order. The simulation is strictly single-threaded and deterministic:
// an experiment is a pure function of its configuration and seed.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace stabl::sim {

class LifecycleRecorder;  // sim/lifecycle.hpp

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time. Starts at zero.
  [[nodiscard]] Time now() const { return now_; }

  /// Root generator. Components should typically fork() their own stream at
  /// construction so their consumption patterns stay independent.
  Rng& rng() { return rng_; }

  /// Schedule `action` at absolute time `at` (clamped to now if in the past,
  /// which makes "fire immediately" idioms safe). Templated so the callable
  /// lands directly in the event queue's pooled inline storage — no
  /// std::function wrapper, no per-event heap allocation.
  template <typename F>
  TimerId schedule_at(Time at, F&& action) {
    if (at < now_) at = now_;
    return queue_.schedule(at, std::forward<F>(action));
  }

  /// Schedule `action` after `delay` from now. Negative delays clamp to now.
  template <typename F>
  TimerId schedule_after(Duration delay, F&& action) {
    if (delay < Duration::zero()) delay = Duration::zero();
    return queue_.schedule(now_ + delay, std::forward<F>(action));
  }

  /// Cancel a scheduled action; no-op if it already fired or was cancelled.
  void cancel(TimerId id) { queue_.cancel(id); }

  /// Handle of the event currently executing (kInvalidTimer outside an
  /// event). Lets timer owners drop their bookkeeping for the firing timer
  /// without smuggling the id into the closure via a shared cell.
  [[nodiscard]] TimerId current_timer() const { return current_timer_; }

  /// Pre-size the event queue for an expected peak of live events. The
  /// experiment runner plumbs cluster size through this so large cells
  /// skip slab growth on the hot path.
  void reserve_events(std::size_t events) { queue_.reserve(events); }

  /// Execute the next event, if any. Returns false when the queue is empty.
  bool step();

  /// Run events up to and including time `deadline`, then set now to
  /// `deadline` (even if the queue drained earlier).
  void run_until(Time deadline);

  /// Run until the event queue is empty.
  void run();

  /// Total events executed so far; useful for perf reporting and tests.
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }

  /// Live events currently scheduled.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Trace sink, or null when tracing is off (the default). Emit sites
  /// guard on this pointer, so disabled tracing costs one predicted
  /// branch. The sink is observe-only: attaching one never perturbs event
  /// ordering or RNG draws.
  [[nodiscard]] TraceSink* trace() const { return trace_; }
  void set_trace(TraceSink* sink) { trace_ = sink; }

  /// Clock observer, or null (the default). Called whenever the clock is
  /// about to advance — outside the event queue, so it consumes no
  /// TimerIds and never counts toward events_processed(). Used by the
  /// metrics sampler; must not mutate simulation state.
  void set_time_observer(TimeObserver* observer) { observer_ = observer; }

  /// Per-transaction lifecycle recorder, or null when recording is off
  /// (the default). Same null-gated discipline as trace(): emit sites
  /// guard on the pointer, the recorder only observes, and attaching one
  /// never perturbs event ordering or RNG draws (sim/lifecycle.hpp).
  [[nodiscard]] LifecycleRecorder* lifecycle() const { return lifecycle_; }
  void set_lifecycle(LifecycleRecorder* recorder) { lifecycle_ = recorder; }

 private:
  Time now_{0};
  EventQueue queue_;
  Rng rng_;
  TimerId current_timer_ = kInvalidTimer;
  std::uint64_t events_processed_ = 0;
  TraceSink* trace_ = nullptr;
  TimeObserver* observer_ = nullptr;
  LifecycleRecorder* lifecycle_ = nullptr;
};

}  // namespace stabl::sim
