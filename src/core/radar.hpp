// Fig. 7 aggregation: all sensitivity scores of all chains across the four
// dimensions (crash, transient, partition, Byzantine-node-tolerance
// mechanism), rendered as a text radar table. Seed-sweep campaigns also
// record per-cell aggregates, rendered as a second mean±stddev table.
#pragma once

#include <map>
#include <string>

#include "core/experiment.hpp"
#include "core/fault.hpp"
#include "core/sensitivity.hpp"

namespace stabl::core {

struct SeedSweepStats;  // core/campaign.hpp

/// Per-cell seed-sweep aggregate as the radar stores it (a trimmed copy of
/// SeedSweepStats, kept here so radar.hpp need not include campaign.hpp).
struct RadarSweepCell {
  std::size_t seeds = 0;
  std::size_t liveness_losses = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;
};

/// One cell of the sensitivity-to-attack radar: the sensitivity score and
/// oracle verdict of an adversarial dimension, with the misbehavior
/// defense off (the attack surface) and on (what the defense contains).
/// Verdict strings are short labels: "SAFETY" (a safety oracle fired —
/// ledger fork or duplicate-height commit), "liveness", "loss" (expected
/// loss) or "ok".
struct RadarAttackCell {
  SensitivityScore undefended{};
  std::string undefended_verdict = "ok";
  SensitivityScore defended{};
  std::string defended_verdict = "ok";
};

/// One attributed cell as the radar stores it (a trimmed copy of an
/// AttributionCell's headline, kept here so radar.hpp need not include
/// attribution.hpp): the mean commit-latency delta of the pair and the
/// lifecycle stage segment it predominantly comes from.
struct RadarAttributionCell {
  double latency_delta_s = 0.0;
  std::string dominant_stage;  ///< sim::stage_segment_names() entry
  double dominant_share = 0.0;  ///< its fraction of the total |delta|
};

class RadarSummary {
 public:
  void record(ChainKind chain, FaultType dimension,
              const SensitivityScore& score);
  /// Record a cell's seed-sweep aggregate (shown by sweep_table()).
  void record_sweep(ChainKind chain, FaultType dimension,
                    const SeedSweepStats& stats);
  /// Record an adversarial dimension's defended/undefended pair (shown by
  /// attack_table()).
  void record_attack(ChainKind chain, FaultType dimension,
                     RadarAttackCell cell);
  /// Record a cell's sensitivity attribution (shown by
  /// attribution_table()).
  void record_attribution(ChainKind chain, FaultType dimension,
                          RadarAttributionCell cell);

  [[nodiscard]] const SensitivityScore* get(ChainKind chain,
                                            FaultType dimension) const;
  [[nodiscard]] const RadarSweepCell* get_sweep(ChainKind chain,
                                                FaultType dimension) const;
  [[nodiscard]] const RadarAttackCell* get_attack(ChainKind chain,
                                                  FaultType dimension) const;
  [[nodiscard]] const RadarAttributionCell* get_attribution(
      ChainKind chain, FaultType dimension) const;

  /// Table with one row per chain and one column per dimension; scores
  /// rendered like the paper's figures ("inf", trailing '*' = benefits).
  [[nodiscard]] std::string to_table() const;
  /// Seed-sweep companion table: "mean±sd [min..max]" per cell, with the
  /// liveness-loss fraction when any seed died. Cells without a recorded
  /// sweep render as "-".
  [[nodiscard]] std::string sweep_table() const;
  /// Sensitivity-to-attack table, one column per adversarial dimension
  /// (equivocate, withhold, eclipse): "<score> <verdict> | <score>
  /// <verdict>" per cell, defenses off | on. The paper's radar asks how
  /// sensitive each chain is to failures; this companion asks how
  /// sensitive it is to a Byzantine coalition, and whether the
  /// misbehavior defense changes the answer.
  [[nodiscard]] std::string attack_table() const;
  /// Attribution companion table: "+<delta>s <stage> <share>%" per cell —
  /// where the cell's latency degradation predominantly comes from
  /// (core/attribution.hpp). Cells without a recorded attribution render
  /// as "-".
  [[nodiscard]] std::string attribution_table() const;

 private:
  std::map<std::pair<ChainKind, FaultType>, SensitivityScore> scores_;
  std::map<std::pair<ChainKind, FaultType>, RadarSweepCell> sweeps_;
  std::map<std::pair<ChainKind, FaultType>, RadarAttackCell> attacks_;
  std::map<std::pair<ChainKind, FaultType>, RadarAttributionCell>
      attributions_;
};

}  // namespace stabl::core
