// Fig. 7 aggregation: all sensitivity scores of all chains across the four
// dimensions (crash, transient, partition, Byzantine-node-tolerance
// mechanism), rendered as a text radar table.
#pragma once

#include <map>
#include <string>

#include "core/experiment.hpp"
#include "core/fault.hpp"
#include "core/sensitivity.hpp"

namespace stabl::core {

class RadarSummary {
 public:
  void record(ChainKind chain, FaultType dimension,
              const SensitivityScore& score);

  [[nodiscard]] const SensitivityScore* get(ChainKind chain,
                                            FaultType dimension) const;

  /// Table with one row per chain and one column per dimension; scores
  /// rendered like the paper's figures ("inf", trailing '*' = benefits).
  [[nodiscard]] std::string to_table() const;

 private:
  std::map<std::pair<ChainKind, FaultType>, SensitivityScore> scores_;
};

}  // namespace stabl::core
