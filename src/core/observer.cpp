#include "core/observer.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "core/trace.hpp"

namespace stabl::core {
namespace {

std::string plan_args(const FaultPlan& plan) {
  std::string args = "\"type\":\"" + to_string(plan.type) + "\",\"targets\":[";
  for (std::size_t i = 0; i < plan.targets.size(); ++i) {
    if (i > 0) args += ',';
    args += std::to_string(plan.targets[i]);
  }
  args += ']';
  return args;
}

}  // namespace

Observers::Observers(sim::Simulation& simulation, net::Network& network,
                     std::vector<chain::BlockchainNode*> nodes,
                     std::vector<net::NodeId> client_ids)
    : sim_(simulation),
      net_(network),
      nodes_(std::move(nodes)),
      client_ids_(std::move(client_ids)) {}

std::vector<net::NodeId> Observers::others(
    const std::vector<net::NodeId>& targets) const {
  std::vector<net::NodeId> rest;
  rest.reserve(nodes_.size());
  for (const auto* node : nodes_) {
    const bool targeted =
        std::find(targets.begin(), targets.end(), node->node_id()) !=
        targets.end();
    if (!targeted) rest.push_back(node->node_id());
  }
  rest.insert(rest.end(), client_ids_.begin(), client_ids_.end());
  return rest;
}

void Observers::churn_kill(const FaultPlan& plan, sim::Time at) {
  if (auto* trace = sim_.trace()) {
    trace->instant(kFaultsTrack, sim_.now(), "churn_down", "fault",
                   plan_args(plan));
  }
  for (const net::NodeId id : plan.targets) nodes_.at(id)->kill();
  const sim::Time up_at = at + plan.churn_down;
  sim_.schedule_at(up_at, [this, plan, up_at] {
    if (auto* trace = sim_.trace()) {
      trace->instant(kFaultsTrack, sim_.now(), "churn_up", "fault",
                     plan_args(plan));
    }
    for (const net::NodeId id : plan.targets) nodes_.at(id)->start();
    const sim::Time next_kill = up_at + plan.churn_up;
    // Only start another cycle when it fully fits the fault window, so
    // the targets are guaranteed back up at recover_at.
    if (next_kill + plan.churn_down <= plan.recover_at) {
      sim_.schedule_at(next_kill, [this, plan, next_kill] {
        churn_kill(plan, next_kill);
      });
    }
  });
}

void Observers::arm(const FaultSchedule& schedule) {
  for (std::size_t i = 0; i < schedule.plans.size(); ++i) {
    try {
      arm(schedule.plans[i]);
    } catch (const std::invalid_argument& error) {
      // Multi-plan schedules say WHICH plan was malformed.
      throw std::invalid_argument("plan " + std::to_string(i) + " of " +
                                  std::to_string(schedule.plans.size()) +
                                  ": " + error.what());
    }
  }
}

void Observers::arm(const FaultPlan& plan) {
  const std::string error = validate(plan, nodes_.size());
  if (!error.empty()) throw std::invalid_argument(error);
  // Faults-track bookkeeping: each armed plan gets a numbered async span
  // from inject to recover (an instant for crashes, which never recover).
  const std::uint64_t span = ++armed_;
  if (auto* trace = sim_.trace()) {
    trace->instant(kFaultsTrack, sim_.now(), "arm", "fault",
                   plan_args(plan) + ",\"plan\":" + std::to_string(span));
  }
  const auto trace_inject = [this, span](const FaultPlan& p) {
    if (auto* trace = sim_.trace()) {
      if (uses_recovery_window(p.type)) {
        trace->async_begin(kFaultsTrack, sim_.now(), span, to_string(p.type),
                           "fault", plan_args(p));
      } else {
        trace->instant(kFaultsTrack, sim_.now(), "inject", "fault",
                       plan_args(p));
      }
    }
  };
  const auto trace_recover = [this, span](FaultType type) {
    if (auto* trace = sim_.trace()) {
      trace->async_end(kFaultsTrack, sim_.now(), span, to_string(type),
                       "fault");
    }
  };
  switch (plan.type) {
    case FaultType::kNone:
    case FaultType::kSecureClient:
      return;
    case FaultType::kCrash:
      sim_.schedule_at(plan.inject_at,
                       [this, plan, trace_inject] {
        trace_inject(plan);
        for (const net::NodeId id : plan.targets) nodes_.at(id)->kill();
      });
      return;
    case FaultType::kTransient:
      sim_.schedule_at(plan.inject_at, [this, plan, trace_inject] {
        trace_inject(plan);
        for (const net::NodeId id : plan.targets) nodes_.at(id)->kill();
      });
      sim_.schedule_at(plan.recover_at, [this, plan, trace_recover] {
        for (const net::NodeId id : plan.targets) nodes_.at(id)->start();
        trace_recover(plan.type);
      });
      return;
    case FaultType::kChurn:
      sim_.schedule_at(plan.inject_at, [this, plan, trace_inject] {
        trace_inject(plan);
        churn_kill(plan, plan.inject_at);
      });
      sim_.schedule_at(plan.recover_at, [this, plan, trace_recover] {
        trace_recover(plan.type);
      });
      return;
    case FaultType::kEquivocate:
      sim_.schedule_at(plan.inject_at, [this, plan, trace_inject] {
        trace_inject(plan);
        for (const net::NodeId id : plan.targets) {
          nodes_.at(id)->set_equivocating(true);
        }
      });
      sim_.schedule_at(plan.recover_at, [this, plan, trace_recover] {
        for (const net::NodeId id : plan.targets) {
          nodes_.at(id)->set_equivocating(false);
        }
        trace_recover(plan.type);
      });
      return;
    case FaultType::kWithhold:
      sim_.schedule_at(plan.inject_at, [this, plan, trace_inject] {
        trace_inject(plan);
        for (const net::NodeId id : plan.targets) {
          nodes_.at(id)->set_withholding(true);
        }
      });
      sim_.schedule_at(plan.recover_at, [this, plan, trace_recover] {
        for (const net::NodeId id : plan.targets) {
          nodes_.at(id)->set_withholding(false);
        }
        trace_recover(plan.type);
      });
      return;
    case FaultType::kEclipse: {
      auto rule = std::make_shared<net::RuleId>(0);
      sim_.schedule_at(plan.inject_at, [this, plan, rule, trace_inject] {
        trace_inject(plan);
        *rule = net_.add_eclipse(plan.eclipse_victim, plan.targets,
                                 plan.eclipse_delay, plan.eclipse_filter);
      });
      sim_.schedule_at(plan.recover_at,
                       [this, rule, type = plan.type, trace_recover] {
        if (*rule != 0) net_.remove_rule(*rule);
        trace_recover(type);
      });
      return;
    }
    case FaultType::kPartition:
    case FaultType::kDelay:
    case FaultType::kLoss:
    case FaultType::kThrottle:
    case FaultType::kGray: {
      // Each plan owns its rule handle, shared between the install and
      // lift events, so overlapping plans never clobber each other.
      auto rule = std::make_shared<net::RuleId>(0);
      sim_.schedule_at(plan.inject_at, [this, plan, rule, trace_inject] {
        trace_inject(plan);
        const std::vector<net::NodeId> rest = others(plan.targets);
        switch (plan.type) {
          case FaultType::kPartition:
            *rule = net_.add_partition(plan.targets, rest);
            break;
          case FaultType::kDelay:
            *rule = net_.add_delay(plan.targets, rest, plan.delay_amount);
            break;
          case FaultType::kLoss:
            *rule = net_.add_loss(plan.targets, rest,
                                  plan.loss_probability);
            break;
          case FaultType::kThrottle:
            *rule = net_.add_bandwidth(plan.targets, rest,
                                       plan.throttle_bytes_per_s);
            break;
          case FaultType::kGray:
            *rule = net_.add_gray(plan.targets, plan.gray_latency);
            break;
          default:
            break;
        }
      });
      sim_.schedule_at(plan.recover_at,
                       [this, rule, type = plan.type, trace_recover] {
        if (*rule != 0) net_.remove_rule(*rule);
        trace_recover(type);
      });
      return;
    }
  }
}

}  // namespace stabl::core
