#include "core/observer.hpp"

#include <cassert>

namespace stabl::core {

std::string to_string(FaultType type) {
  switch (type) {
    case FaultType::kNone: return "none";
    case FaultType::kCrash: return "crash";
    case FaultType::kTransient: return "transient";
    case FaultType::kPartition: return "partition";
    case FaultType::kSecureClient: return "secure-client";
    case FaultType::kDelay: return "delay";
    case FaultType::kChurn: return "churn";
  }
  return "?";
}

Observers::Observers(sim::Simulation& simulation, net::Network& network,
                     std::vector<chain::BlockchainNode*> nodes)
    : sim_(simulation), net_(network), nodes_(std::move(nodes)) {}

void Observers::churn_kill(const FaultPlan& plan, sim::Time at) {
  for (const net::NodeId id : plan.targets) nodes_.at(id)->kill();
  const sim::Time up_at = at + plan.churn_down;
  sim_.schedule_at(up_at, [this, plan, up_at] {
    for (const net::NodeId id : plan.targets) nodes_.at(id)->start();
    const sim::Time next_kill = up_at + plan.churn_up;
    // Only start another cycle when it fully fits the fault window, so
    // the targets are guaranteed back up at recover_at.
    if (next_kill + plan.churn_down <= plan.recover_at) {
      sim_.schedule_at(next_kill, [this, plan, next_kill] {
        churn_kill(plan, next_kill);
      });
    }
  });
}

void Observers::arm(const FaultPlan& plan) {
  switch (plan.type) {
    case FaultType::kNone:
    case FaultType::kSecureClient:
      return;
    case FaultType::kCrash:
      sim_.schedule_at(plan.inject_at, [this, targets = plan.targets] {
        for (const net::NodeId id : targets) nodes_.at(id)->kill();
      });
      return;
    case FaultType::kTransient:
      sim_.schedule_at(plan.inject_at, [this, targets = plan.targets] {
        for (const net::NodeId id : targets) nodes_.at(id)->kill();
      });
      sim_.schedule_at(plan.recover_at, [this, targets = plan.targets] {
        for (const net::NodeId id : targets) nodes_.at(id)->start();
      });
      return;
    case FaultType::kChurn:
      sim_.schedule_at(plan.inject_at, [this, plan] {
        churn_kill(plan, plan.inject_at);
      });
      return;
    case FaultType::kPartition:
    case FaultType::kDelay: {
      sim_.schedule_at(
          plan.inject_at,
          [this, targets = plan.targets, type = plan.type,
           extra = plan.delay_amount] {
            std::vector<net::NodeId> rest;
            for (const auto* node : nodes_) {
              bool isolated = false;
              for (const net::NodeId t : targets) {
                if (node->node_id() == t) isolated = true;
              }
              if (!isolated) rest.push_back(node->node_id());
            }
            active_rule_ = type == FaultType::kPartition
                               ? net_.add_partition(targets, rest)
                               : net_.add_delay(targets, rest, extra);
          });
      sim_.schedule_at(plan.recover_at, [this] {
        net_.remove_rule(active_rule_);
        active_rule_ = 0;
      });
      return;
    }
  }
}

}  // namespace stabl::core
