#include "core/observer.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace stabl::core {

Observers::Observers(sim::Simulation& simulation, net::Network& network,
                     std::vector<chain::BlockchainNode*> nodes,
                     std::vector<net::NodeId> client_ids)
    : sim_(simulation),
      net_(network),
      nodes_(std::move(nodes)),
      client_ids_(std::move(client_ids)) {}

std::vector<net::NodeId> Observers::others(
    const std::vector<net::NodeId>& targets) const {
  std::vector<net::NodeId> rest;
  rest.reserve(nodes_.size());
  for (const auto* node : nodes_) {
    const bool targeted =
        std::find(targets.begin(), targets.end(), node->node_id()) !=
        targets.end();
    if (!targeted) rest.push_back(node->node_id());
  }
  rest.insert(rest.end(), client_ids_.begin(), client_ids_.end());
  return rest;
}

void Observers::churn_kill(const FaultPlan& plan, sim::Time at) {
  for (const net::NodeId id : plan.targets) nodes_.at(id)->kill();
  const sim::Time up_at = at + plan.churn_down;
  sim_.schedule_at(up_at, [this, plan, up_at] {
    for (const net::NodeId id : plan.targets) nodes_.at(id)->start();
    const sim::Time next_kill = up_at + plan.churn_up;
    // Only start another cycle when it fully fits the fault window, so
    // the targets are guaranteed back up at recover_at.
    if (next_kill + plan.churn_down <= plan.recover_at) {
      sim_.schedule_at(next_kill, [this, plan, next_kill] {
        churn_kill(plan, next_kill);
      });
    }
  });
}

void Observers::arm(const FaultSchedule& schedule) {
  for (const FaultPlan& plan : schedule.plans) arm(plan);
}

void Observers::arm(const FaultPlan& plan) {
  const std::string error = validate(plan, nodes_.size());
  if (!error.empty()) throw std::invalid_argument(error);
  switch (plan.type) {
    case FaultType::kNone:
    case FaultType::kSecureClient:
      return;
    case FaultType::kCrash:
      sim_.schedule_at(plan.inject_at, [this, targets = plan.targets] {
        for (const net::NodeId id : targets) nodes_.at(id)->kill();
      });
      return;
    case FaultType::kTransient:
      sim_.schedule_at(plan.inject_at, [this, targets = plan.targets] {
        for (const net::NodeId id : targets) nodes_.at(id)->kill();
      });
      sim_.schedule_at(plan.recover_at, [this, targets = plan.targets] {
        for (const net::NodeId id : targets) nodes_.at(id)->start();
      });
      return;
    case FaultType::kChurn:
      sim_.schedule_at(plan.inject_at, [this, plan] {
        churn_kill(plan, plan.inject_at);
      });
      return;
    case FaultType::kPartition:
    case FaultType::kDelay:
    case FaultType::kLoss:
    case FaultType::kThrottle:
    case FaultType::kGray: {
      // Each plan owns its rule handle, shared between the install and
      // lift events, so overlapping plans never clobber each other.
      auto rule = std::make_shared<net::RuleId>(0);
      sim_.schedule_at(plan.inject_at, [this, plan, rule] {
        const std::vector<net::NodeId> rest = others(plan.targets);
        switch (plan.type) {
          case FaultType::kPartition:
            *rule = net_.add_partition(plan.targets, rest);
            break;
          case FaultType::kDelay:
            *rule = net_.add_delay(plan.targets, rest, plan.delay_amount);
            break;
          case FaultType::kLoss:
            *rule = net_.add_loss(plan.targets, rest,
                                  plan.loss_probability);
            break;
          case FaultType::kThrottle:
            *rule = net_.add_bandwidth(plan.targets, rest,
                                       plan.throttle_bytes_per_s);
            break;
          case FaultType::kGray:
            *rule = net_.add_gray(plan.targets, plan.gray_latency);
            break;
          default:
            break;
        }
      });
      sim_.schedule_at(plan.recover_at, [this, rule] {
        if (*rule != 0) net_.remove_rule(*rule);
      });
      return;
    }
  }
}

}  // namespace stabl::core
