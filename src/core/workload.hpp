// Workload shapes.
//
// The paper's campaign uses a constant 200 TPS of native transfers and
// names this as a limitation (§8: "not representative of realistic
// fluctuating workloads, request bursts or demanding workloads"). The
// workload module supplies the constant shape plus the fluctuating ones
// the paper points to, so the sensitivity harness can also score
// congestion behaviour (see bench/micro_ablation_workload).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace stabl::core {

enum class WorkloadShape {
  kConstant,  // the paper's workload: fixed inter-arrival gap
  kBursty,    // square wave: alternating high/low phases, same average
  kRamp,      // linear ramp from low to high over the run, same average
  kDiurnal,   // raised-cosine day/night cycle, same average
  kFlash,     // flash crowd: one multiplied window, same average
};

struct WorkloadConfig {
  WorkloadShape shape = WorkloadShape::kConstant;
  /// Average transactions per second over the whole run.
  double tps = 40.0;
  /// kBursty: phase length and the high:low rate ratio. A burst factor of
  /// 3 with average 40 TPS gives phases of 60 and 20 TPS.
  sim::Duration burst_period = sim::sec(20);
  double burst_factor = 3.0;
  /// kRamp: start fraction of the average rate (ends at 2 - start).
  double ramp_start_fraction = 0.2;
  /// kDiurnal: rate = tps * (1 - amplitude * cos(2*pi*t / period)); the
  /// trough sits at t = 0, the peak at half a period. Amplitude is clamped
  /// to [0, 1); a period of 0 means one full cycle over the run, which is
  /// also the only period that keeps the average exact for any duration.
  double diurnal_amplitude = 0.6;
  sim::Duration diurnal_period{0};
  /// kFlash: inside [flash_at, flash_at + flash_duration) the rate is
  /// flash_factor x the off-window base rate; the base rate is depressed
  /// so the whole run still averages tps.
  sim::Time flash_at = sim::sec(150);
  sim::Duration flash_duration = sim::sec(50);
  double flash_factor = 6.0;

  /// Identical profiles share one aggregate arrival process
  /// (core/arrivals.hpp groups enrolment cohorts by equality).
  friend bool operator==(const WorkloadConfig&,
                         const WorkloadConfig&) = default;
};

/// Smallest inter-tick gap an arrival process schedules. Below this the
/// timer overhead would dominate the simulated work; an aggregate process
/// preserves the configured average anyway by emitting several
/// transactions per tick (ArrivalStep::count below).
inline constexpr sim::Duration kMinArrivalGap = sim::us(100);

/// Stateless rate function: target TPS at time `at` within a run lasting
/// `duration`. Always averages to `config.tps` over the run.
double workload_rate(const WorkloadConfig& config, sim::Time at,
                     sim::Duration duration);

/// One step of an aggregate arrival process: emit `count` transactions
/// per enrolled generator now, schedule the next tick `interval` later.
/// When the raw gap (1/rate) falls below kMinArrivalGap the step batches
/// `count` arrivals per tick instead of clamping the rate, so the average
/// still honours config.tps; `clamped` reports that the floor bound (the
/// arrival scheduler surfaces it once through the metrics registry).
struct ArrivalStep {
  sim::Duration interval = kMinArrivalGap;
  int count = 1;
  bool clamped = false;
};

ArrivalStep workload_step(const WorkloadConfig& config, sim::Time at,
                          sim::Duration duration);

}  // namespace stabl::core
