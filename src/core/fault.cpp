#include "core/fault.hpp"

#include <sstream>

namespace stabl::core {
namespace {

bool is_targeted(FaultType type) {
  return type != FaultType::kNone && type != FaultType::kSecureClient;
}

}  // namespace

std::string to_string(FaultType type) {
  switch (type) {
    case FaultType::kNone: return "none";
    case FaultType::kCrash: return "crash";
    case FaultType::kTransient: return "transient";
    case FaultType::kPartition: return "partition";
    case FaultType::kSecureClient: return "secure-client";
    case FaultType::kDelay: return "delay";
    case FaultType::kChurn: return "churn";
    case FaultType::kLoss: return "loss";
    case FaultType::kThrottle: return "throttle";
    case FaultType::kGray: return "gray";
  }
  return "?";
}

bool uses_recovery_window(FaultType type) {
  switch (type) {
    case FaultType::kNone:
    case FaultType::kSecureClient:
    case FaultType::kCrash:
      return false;
    case FaultType::kTransient:
    case FaultType::kPartition:
    case FaultType::kDelay:
    case FaultType::kChurn:
    case FaultType::kLoss:
    case FaultType::kThrottle:
    case FaultType::kGray:
      return true;
  }
  return false;
}

std::string validate(const FaultPlan& plan, std::size_t n) {
  std::ostringstream error;
  const std::string name = to_string(plan.type);
  if (is_targeted(plan.type) && plan.targets.empty()) {
    error << name << " plan needs at least one target node";
    return error.str();
  }
  for (const net::NodeId target : plan.targets) {
    if (target >= n) {
      error << name << " plan targets node " << target
            << " but the cluster only has nodes 0.." << (n - 1);
      return error.str();
    }
  }
  if (uses_recovery_window(plan.type) && plan.inject_at >= plan.recover_at) {
    error << name << " plan injects at " << sim::format_time(plan.inject_at)
          << " which does not precede its recovery at "
          << sim::format_time(plan.recover_at);
    return error.str();
  }
  switch (plan.type) {
    case FaultType::kChurn:
      if (plan.churn_down <= sim::Duration::zero() ||
          plan.churn_up <= sim::Duration::zero()) {
        error << "churn plan needs positive churn_down and churn_up";
      }
      break;
    case FaultType::kDelay:
      if (plan.delay_amount <= sim::Duration::zero()) {
        error << "delay plan needs a positive delay_amount";
      }
      break;
    case FaultType::kLoss:
      if (!(plan.loss_probability > 0.0 && plan.loss_probability <= 1.0)) {
        error << "loss plan needs loss_probability in (0, 1], got "
              << plan.loss_probability;
      }
      break;
    case FaultType::kThrottle:
      if (!(plan.throttle_bytes_per_s > 0.0)) {
        error << "throttle plan needs a positive throttle_bytes_per_s";
      }
      break;
    case FaultType::kGray:
      if (plan.gray_latency <= sim::Duration::zero()) {
        error << "gray plan needs a positive gray_latency";
      }
      break;
    default:
      break;
  }
  return error.str();
}

}  // namespace stabl::core
