#include "core/fault.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace stabl::core {
namespace {

bool is_targeted(FaultType type) {
  return type != FaultType::kNone && type != FaultType::kSecureClient;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

bool is_adversarial(FaultType type) {
  return type == FaultType::kEquivocate || type == FaultType::kWithhold ||
         type == FaultType::kEclipse;
}

std::string to_string(FaultType type) {
  switch (type) {
    case FaultType::kNone: return "none";
    case FaultType::kCrash: return "crash";
    case FaultType::kTransient: return "transient";
    case FaultType::kPartition: return "partition";
    case FaultType::kSecureClient: return "secure-client";
    case FaultType::kDelay: return "delay";
    case FaultType::kChurn: return "churn";
    case FaultType::kLoss: return "loss";
    case FaultType::kThrottle: return "throttle";
    case FaultType::kGray: return "gray";
    case FaultType::kEquivocate: return "equivocate";
    case FaultType::kWithhold: return "withhold";
    case FaultType::kEclipse: return "eclipse";
  }
  return "?";
}

std::string fault_description(FaultType type) {
  switch (type) {
    case FaultType::kNone:
      return "baseline: no failure injected";
    case FaultType::kCrash:
      return "halt the targets at inject_at, never restart them";
    case FaultType::kTransient:
      return "halt the targets at inject_at, restart them at recover_at";
    case FaultType::kPartition:
      return "drop all packets between the targets and the rest";
    case FaultType::kSecureClient:
      return "no failure: clients submit every transaction to t+1 nodes";
    case FaultType::kDelay:
      return "add delay_amount one-way latency between targets and rest";
    case FaultType::kChurn:
      return "repeatedly kill and restart the targets during the window";
    case FaultType::kLoss:
      return "drop packets between targets and rest with loss_probability";
    case FaultType::kThrottle:
      return "throttle target links to throttle_bytes_per_s";
    case FaultType::kGray:
      return "serve all traffic touching the targets gray_latency late";
    case FaultType::kEquivocate:
      return "targets double-propose/vote: conflicting payloads per half";
    case FaultType::kWithhold:
      return "targets suppress own proposals/votes, replay stale ones";
    case FaultType::kEclipse:
      return "attacker targets intercept, delay and filter a victim's view";
  }
  return "?";
}

FaultType fault_from_name(std::string_view name) {
  const std::string lower = to_lower(name);
  for (const FaultType type : kAllFaultTypes) {
    if (to_string(type) == lower) return type;
  }
  std::string valid;
  for (const FaultType type : kAllFaultTypes) {
    if (!valid.empty()) valid += ", ";
    valid += to_string(type);
  }
  throw std::invalid_argument("unknown fault type '" + std::string(name) +
                              "' (valid: " + valid + ")");
}

bool uses_recovery_window(FaultType type) {
  switch (type) {
    case FaultType::kNone:
    case FaultType::kSecureClient:
    case FaultType::kCrash:
      return false;
    case FaultType::kTransient:
    case FaultType::kPartition:
    case FaultType::kDelay:
    case FaultType::kChurn:
    case FaultType::kLoss:
    case FaultType::kThrottle:
    case FaultType::kGray:
    case FaultType::kEquivocate:
    case FaultType::kWithhold:
    case FaultType::kEclipse:
      return true;
  }
  return false;
}

std::string validate(const FaultPlan& plan, std::size_t n) {
  std::ostringstream error;
  const std::string name = to_string(plan.type);
  if (is_targeted(plan.type) && plan.targets.empty()) {
    error << name << " plan needs at least one target node";
    return error.str();
  }
  for (const net::NodeId target : plan.targets) {
    if (target >= n) {
      error << name << " plan targets node " << target
            << " but the cluster only has nodes 0.." << (n - 1);
      return error.str();
    }
  }
  {
    // A duplicated id would silently double-arm kill/restart actions (two
    // kill() calls on an already-dead process) and double-count the node
    // on netfilter rule sides; reject instead.
    std::vector<net::NodeId> seen = plan.targets;
    std::sort(seen.begin(), seen.end());
    const auto dup = std::adjacent_find(seen.begin(), seen.end());
    if (dup != seen.end()) {
      error << name << " plan targets node " << *dup << " twice";
      return error.str();
    }
  }
  if (uses_recovery_window(plan.type) && plan.inject_at >= plan.recover_at) {
    error << name << " plan injects at " << sim::format_time(plan.inject_at)
          << " which does not precede its recovery at "
          << sim::format_time(plan.recover_at);
    return error.str();
  }
  switch (plan.type) {
    case FaultType::kChurn:
      if (plan.churn_down <= sim::Duration::zero() ||
          plan.churn_up <= sim::Duration::zero()) {
        error << "churn plan needs positive churn_down and churn_up";
      }
      break;
    case FaultType::kDelay:
      if (plan.delay_amount <= sim::Duration::zero()) {
        error << "delay plan needs a positive delay_amount";
      }
      break;
    case FaultType::kLoss:
      if (!(plan.loss_probability > 0.0 && plan.loss_probability <= 1.0)) {
        error << "loss plan needs loss_probability in (0, 1], got "
              << plan.loss_probability;
      }
      break;
    case FaultType::kThrottle:
      if (!(plan.throttle_bytes_per_s > 0.0)) {
        error << "throttle plan needs a positive throttle_bytes_per_s";
      }
      break;
    case FaultType::kGray:
      if (plan.gray_latency <= sim::Duration::zero()) {
        error << "gray plan needs a positive gray_latency";
      }
      break;
    case FaultType::kEclipse:
      if (plan.eclipse_victim >= n) {
        error << "eclipse plan victim node " << plan.eclipse_victim
              << " is outside the cluster 0.." << (n - 1);
      } else if (std::find(plan.targets.begin(), plan.targets.end(),
                           plan.eclipse_victim) != plan.targets.end()) {
        error << "eclipse plan victim node " << plan.eclipse_victim
              << " cannot also be an attacker target";
      } else if (plan.eclipse_delay <= sim::Duration::zero()) {
        error << "eclipse plan needs a positive eclipse_delay";
      } else if (!(plan.eclipse_filter >= 0.0 && plan.eclipse_filter < 1.0)) {
        error << "eclipse plan needs eclipse_filter in [0, 1), got "
              << plan.eclipse_filter;
      }
      break;
    default:
      break;
  }
  return error.str();
}

FaultPlan canonical(FaultPlan plan) {
  const FaultPlan defaults{};
  if (!uses_recovery_window(plan.type)) plan.recover_at = sim::Time{0};
  if (plan.type == FaultType::kNone ||
      plan.type == FaultType::kSecureClient) {
    plan.targets.clear();
    plan.inject_at = sim::Time{0};
  }
  if (plan.type != FaultType::kDelay) plan.delay_amount = defaults.delay_amount;
  if (plan.type != FaultType::kChurn) {
    plan.churn_down = defaults.churn_down;
    plan.churn_up = defaults.churn_up;
  }
  if (plan.type != FaultType::kLoss) {
    plan.loss_probability = defaults.loss_probability;
  }
  if (plan.type != FaultType::kThrottle) {
    plan.throttle_bytes_per_s = defaults.throttle_bytes_per_s;
  }
  if (plan.type != FaultType::kGray) plan.gray_latency = defaults.gray_latency;
  if (plan.type != FaultType::kEclipse) {
    plan.eclipse_victim = defaults.eclipse_victim;
    plan.eclipse_delay = defaults.eclipse_delay;
    plan.eclipse_filter = defaults.eclipse_filter;
  }
  std::sort(plan.targets.begin(), plan.targets.end());
  return plan;
}

FaultSchedule canonical(FaultSchedule schedule) {
  for (FaultPlan& plan : schedule.plans) plan = canonical(std::move(plan));
  return schedule;
}

std::vector<net::NodeId> adversarial_nodes(const FaultSchedule& schedule) {
  std::vector<net::NodeId> nodes;
  for (const FaultPlan& plan : schedule.plans) {
    if (plan.type != FaultType::kEquivocate &&
        plan.type != FaultType::kWithhold) {
      continue;
    }
    nodes.insert(nodes.end(), plan.targets.begin(), plan.targets.end());
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

}  // namespace stabl::core
