#include "core/arrivals.hpp"

#include <cstdio>

#include "core/metrics.hpp"

namespace stabl::core {

void ArrivalScheduler::enroll(const ArrivalProfile& profile,
                              ArrivalSink* sink) {
  for (Cohort& cohort : cohorts_) {
    if (cohort.profile == profile) {
      cohort.members.push_back(sink);
      return;
    }
  }
  cohorts_.push_back(Cohort{profile, {sink}});
  const std::size_t index = cohorts_.size() - 1;
  // Arm the cohort at its window start. Cohorts are armed in enrolment
  // order, so at a shared start instant the FIFO tie-break pops them in
  // the same order the per-client timers used to fire.
  sim_.schedule_at(profile.start_at, [this, index] { tick(index); });
}

void ArrivalScheduler::tick(std::size_t index) {
  Cohort& cohort = cohorts_[index];
  const sim::Time now = sim_.now();
  // Same end-of-window rule the per-client timer chain had: the tick that
  // lands at/after stop_at emits nothing and does not reschedule.
  if (now >= cohort.profile.stop_at) return;
  const ArrivalStep step =
      workload_step(cohort.profile.workload, now,
                    cohort.profile.stop_at - cohort.profile.start_at);
  if (step.clamped && !floor_bound_) {
    floor_bound_ = true;
    if (metrics_ != nullptr) {
      metrics_->note(
          "workload arrival-interval floor (100us) bound; batching "
          "arrivals per tick to preserve the configured average TPS");
    } else {
      std::fprintf(stderr,
                   "stabl: workload arrival-interval floor (100us) bound; "
                   "batching arrivals per tick to preserve the average\n");
    }
  }
  // Emit before rescheduling — the per-client chain sent, then armed its
  // next timer, and the network RNG draws at send time, so this order is
  // what keeps reports byte-identical.
  for (int burst = 0; burst < step.count; ++burst) {
    for (ArrivalSink* member : cohort.members) {
      if (!member->arrivals_active()) continue;
      member->generate_arrival();
      ++generated_;
    }
  }
  sim_.schedule_after(step.interval, [this, index] { tick(index); });
}

}  // namespace stabl::core
