#include "core/client.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "chain/hash.hpp"
#include "sim/lifecycle.hpp"

namespace stabl::core {

ClientMachine::ClientMachine(sim::Simulation& simulation,
                             net::Network& network, ClientConfig config)
    : Process(simulation, config.id), config_(std::move(config)),
      net_(network), rng_(simulation.rng().fork()) {
  assert(!config_.endpoints.empty());
  if (config_.traffic.active()) {
    account_nonces_.assign(config_.traffic.accounts.size(), 0);
    traffic_rng_.emplace(config_.traffic.rng_seed);
  }
  if (config_.resilience.enabled) {
    failover_.emplace(config_.endpoints, config_.resilience.breaker,
                      config_.resilience.score);
  } else {
    assert(config_.endpoints.size() <= 32);  // ack_mask is 32-bit
  }
  network.attach(config_.id, this);
}

void ClientMachine::on_start() {
  if (config_.arrivals != nullptr) {
    ArrivalProfile profile;
    profile.node = config_.endpoints.front();
    profile.workload = config_.workload;
    profile.workload.tps = config_.tps;
    profile.start_at = config_.start_at;
    profile.stop_at = config_.stop_at;
    if (config_.traffic.active()) {
      profile.region = static_cast<std::uint32_t>(config_.traffic.region);
      profile.population =
          static_cast<std::uint32_t>(config_.traffic.accounts.size());
    }
    config_.arrivals->enroll(profile, this);
    return;
  }
  set_timer(config_.start_at, [this] { submit_next(); });
}

void ClientMachine::submit_next() {
  if (now() >= config_.stop_at) return;
  WorkloadConfig workload = config_.workload;
  workload.tps = config_.tps;
  // The same batched step the aggregate scheduler uses: below the interval
  // floor the configured average survives by emitting several transactions
  // per tick (the retired single-timer pacing silently capped at 10k TPS).
  const ArrivalStep step = workload_step(
      workload, now(), config_.stop_at - config_.start_at);
  for (int burst = 0; burst < step.count; ++burst) generate_arrival();
  set_timer(step.interval, [this] { submit_next(); });
}

void ClientMachine::generate_arrival() {
  chain::Transaction tx;
  if (config_.traffic.active()) {
    // Population path: a hot-wallet coin flip, then a Zipf-weighted pick
    // among this client's accounts. Hot transactions draw their nonce from
    // the run-wide sequencer, so the hot account's issuance order spans
    // every client — the contention the execution models must absorb.
    const ClientTrafficPlan& plan = config_.traffic;
    sim::Rng& rng = *traffic_rng_;
    const double hot_fraction = plan.model->config().hot_fraction;
    if (hot_fraction > 0.0 && rng.chance(hot_fraction)) {
      tx.from = chain::kHotKey;
      tx.to = chain::kHotSink;
      tx.nonce = plan.model->next_hot_nonce();
    } else {
      const std::size_t pick =
          plan.accounts.size() > 1 ? zipf_pick(plan.zipf_cdf, rng.uniform())
                                   : 0;
      tx.from = plan.accounts[pick];
      tx.to = population_sink(tx.from);
      tx.nonce = account_nonces_[pick]++;
    }
  } else {
    tx.from = config_.account;
    tx.to = config_.recipient;
    tx.nonce = nonce_++;
  }
  tx.amount = 1;
  tx.submitted_at = now();
  tx.id = chain::hash_combine(
      chain::hash_combine(config_.tx_seed, tx.from), tx.nonce);
  ++submitted_;
  submitted_ids_.push_back(tx.id);
  if (auto* lifecycle = simulation().lifecycle()) {
    lifecycle->mark(tx.id, sim::TxStage::kSubmitted, now());
  }
  if (auto* trace = simulation().trace()) {
    trace->async_begin(static_cast<std::int32_t>(id()), now(), tx.id,
                       "txn", "txn",
                       "\"nonce\":" + std::to_string(tx.nonce));
  }
  if (config_.resilience.enabled) {
    Pending pending;
    pending.submitted_at = now();
    pending.tx = tx;
    pending_.emplace(tx.id, std::move(pending));
    submit_attempt(tx.id);
  } else {
    pending_.emplace(tx.id, Pending{now(), 0, {}, {}, 0, 0, 0});
    auto payload = std::make_shared<const chain::SubmitTxPayload>(tx);
    for (const net::NodeId endpoint : config_.endpoints) {
      net_.send(id(), endpoint, payload, 192);
    }
  }
}

void ClientMachine::submit_attempt(chain::TxId id) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  const net::NodeId previous = pending.endpoint;
  pending.endpoint = failover_->select(now());
  ++pending.attempts;
  if (pending.attempts > 1) {
    ++stats_.resubmissions;
    if (auto* lifecycle = simulation().lifecycle()) {
      lifecycle->hop(id, sim::TxHop::kResubmit);
      if (pending.endpoint != previous) {
        lifecycle->hop(id, sim::TxHop::kFailover);
      }
    }
    if (auto* trace = simulation().trace()) {
      trace->instant(static_cast<std::int32_t>(this->id()), now(),
                     "resubmit", "txn",
                     "\"endpoint\":" + std::to_string(pending.endpoint) +
                         ",\"attempt\":" + std::to_string(pending.attempts));
    }
  }
  net_.send(this->id(), pending.endpoint,
            std::make_shared<const chain::SubmitTxPayload>(pending.tx), 192);
  reset_timer(pending.timer, config_.resilience.retry.commit_timeout,
              [this, id] { on_commit_timeout(id); });
  arm_hedge(pending, id);
}

void ClientMachine::arm_hedge(Pending& pending, chain::TxId id) {
  if (!config_.resilience.hedge.enabled) return;
  if (config_.endpoints.size() < 2) return;  // nowhere to hedge to
  cancel_hedge(pending);  // a re-arm replaces the previous attempt's hedge
  pending.hedge_timer =
      set_timer(hedge_delay(), [this, id] { on_hedge_timeout(id); });
  ++stats_.hedges_armed;
}

void ClientMachine::on_hedge_timeout(chain::TxId id) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  pending.hedge_timer = sim::kInvalidTimer;
  const std::optional<net::NodeId> target =
      failover_->hedge_target(pending.endpoint, now());
  if (!target.has_value()) return;
  pending.hedged = true;
  pending.hedge_endpoint = *target;
  if (auto* lifecycle = simulation().lifecycle()) {
    lifecycle->hop(id, sim::TxHop::kHedge);
  }
  if (auto* trace = simulation().trace()) {
    trace->instant(static_cast<std::int32_t>(this->id()), now(), "hedge",
                   "txn",
                   "\"endpoint\":" + std::to_string(*target) +
                       ",\"attempt\":" + std::to_string(pending.attempts));
  }
  // The hedged copy is not a retry: attempts and resubmissions stay put,
  // and the commit timer keeps running on the original attempt. The chain
  // mempool deduplicates the double execution.
  net_.send(this->id(), *target,
            std::make_shared<const chain::SubmitTxPayload>(pending.tx), 192);
}

void ClientMachine::cancel_hedge(Pending& pending) {
  if (pending.hedge_timer == sim::kInvalidTimer) return;
  cancel_timer(pending.hedge_timer);
  pending.hedge_timer = sim::kInvalidTimer;
}

sim::Duration ClientMachine::hedge_delay() const {
  const HedgePolicy& hedge = config_.resilience.hedge;
  if (hedge_latencies_.empty()) return hedge.max_delay;
  std::vector<double> sorted = hedge_latencies_;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      hedge.percentile * static_cast<double>(sorted.size() - 1));
  return std::clamp(sim::seconds(sorted[rank]), hedge.min_delay,
                    hedge.max_delay);
}

void ClientMachine::record_commit_latency(double seconds) {
  constexpr std::size_t kWindow = 64;
  if (hedge_latencies_.size() < kWindow) {
    hedge_latencies_.push_back(seconds);
    return;
  }
  hedge_latencies_[hedge_latency_next_] = seconds;
  hedge_latency_next_ = (hedge_latency_next_ + 1) % kWindow;
}

void ClientMachine::on_commit_timeout(chain::TxId id) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  pending.timer = sim::kInvalidTimer;
  cancel_hedge(pending);  // the next attempt re-arms its own hedge
  ++stats_.timeouts;
  if (auto* trace = simulation().trace()) {
    trace->instant(static_cast<std::int32_t>(this->id()), now(),
                   "commit_timeout", "txn",
                   "\"endpoint\":" + std::to_string(pending.endpoint));
  }
  if (failover_->on_failure(pending.endpoint, now())) {
    ++stats_.circuit_opens;
    if (auto* trace = simulation().trace()) {
      trace->instant(static_cast<std::int32_t>(this->id()), now(),
                     "breaker_open", "resilience",
                     "\"endpoint\":" + std::to_string(pending.endpoint));
    }
  }
  if (pending.attempts >= config_.resilience.retry.max_attempts) {
    ++stats_.exhausted;
    pending_.erase(it);
    return;
  }
  const auto backoff =
      config_.resilience.retry.backoff(pending.attempts, rng_);
  reset_timer(pending.timer, backoff, [this, id] { submit_attempt(id); });
}

void ClientMachine::on_endpoint_reset(net::NodeId endpoint) {
  ++stats_.resets;
  if (auto* trace = simulation().trace()) {
    trace->instant(static_cast<std::int32_t>(id()), now(), "rst", "net",
                   "\"endpoint\":" + std::to_string(endpoint));
  }
  if (failover_->on_failure(endpoint, now())) {
    ++stats_.circuit_opens;
    if (auto* trace = simulation().trace()) {
      trace->instant(static_cast<std::int32_t>(id()), now(), "breaker_open",
                     "resilience",
                     "\"endpoint\":" + std::to_string(endpoint));
    }
  }
  // Everything awaiting a commit from the dead endpoint will never be
  // answered; resubmit with backoff instead of sitting out the timeout.
  std::vector<chain::TxId> abandoned;
  for (auto& [id, pending] : pending_) {
    if (pending.endpoint != endpoint || pending.timer == sim::kInvalidTimer) {
      continue;
    }
    cancel_timer(pending.timer);
    pending.timer = sim::kInvalidTimer;
    cancel_hedge(pending);
    if (pending.attempts >= config_.resilience.retry.max_attempts) {
      abandoned.push_back(id);
      continue;
    }
    const auto backoff =
        config_.resilience.retry.backoff(pending.attempts, rng_);
    const chain::TxId tx_id = id;
    pending.timer =
        set_timer(backoff, [this, tx_id] { submit_attempt(tx_id); });
  }
  for (const chain::TxId id : abandoned) {
    ++stats_.exhausted;
    pending_.erase(id);
  }
}

void ClientMachine::handle_resilient(const net::Envelope& envelope) {
  if (const auto* control = dynamic_cast<const net::ControlPayload*>(
          envelope.payload.get())) {
    if (control->kind == net::ControlPayload::Kind::kRst) {
      on_endpoint_reset(envelope.from);
    }
    return;
  }
  const auto* notify =
      dynamic_cast<const chain::CommitNotifyPayload*>(envelope.payload.get());
  if (notify == nullptr) return;
  const auto it = pending_.find(notify->id);
  if (it == pending_.end()) {
    // A resubmitted copy committed (or notified) a second time; the chain
    // deduplicates execution, the client just counts the evidence.
    if (accepted_hashes_.contains(notify->id)) ++stats_.duplicate_commits;
    return;
  }
  Pending& pending = it->second;
  if (pending.timer != sim::kInvalidTimer) cancel_timer(pending.timer);
  if (pending.hedge_timer != sim::kInvalidTimer) {
    cancel_hedge(pending);
    ++stats_.hedges_cancelled;  // the commit beat the hedge timer
  }
  if (pending.hedged && envelope.from == pending.hedge_endpoint) {
    ++stats_.hedges_won;
  }
  failover_->on_success(envelope.from);
  const double latency_s = sim::to_seconds(now() - pending.submitted_at);
  failover_->note_latency(envelope.from, latency_s);
  if (config_.resilience.hedge.enabled) record_commit_latency(latency_s);
  if (pending.attempts > 1) ++stats_.recovered;
  accept(notify->id, pending, notify->result_hash);
  pending_.erase(it);
}

void ClientMachine::deliver(const net::Envelope& envelope) {
  if (config_.resilience.enabled) {
    handle_resilient(envelope);
    return;
  }
  const auto* notify =
      dynamic_cast<const chain::CommitNotifyPayload*>(envelope.payload.get());
  if (notify == nullptr) return;  // control frames etc.
  const auto it = pending_.find(notify->id);
  if (it == pending_.end()) return;  // duplicate notification
  // Which endpoint answered?
  std::uint32_t bit = 0;
  bool found = false;
  for (std::size_t i = 0; i < config_.endpoints.size(); ++i) {
    if (config_.endpoints[i] == envelope.from) {
      bit = 1u << i;
      found = true;
      break;
    }
  }
  if (!found) return;
  Pending& pending = it->second;
  pending.ack_mask |= bit;
  pending.hash_masks[notify->result_hash] |= bit;

  if (config_.required_matching > 0) {
    // credence.js-style: accept as soon as `required_matching` endpoints
    // agree on the result.
    for (const auto& [hash, mask] : pending.hash_masks) {
      if (static_cast<std::size_t>(std::popcount(mask)) >=
          config_.required_matching) {
        accept(notify->id, pending, hash);
        pending_.erase(it);
        return;
      }
    }
    return;
  }
  // Paper §7 secure client: report success once every endpoint confirmed.
  const std::uint32_t all =
      (config_.endpoints.size() == 32)
          ? ~0u
          : ((1u << config_.endpoints.size()) - 1);
  if (pending.ack_mask != all) return;
  // Majority result (the comparison step of the secure client).
  std::uint64_t best_hash = 0;
  int best_count = -1;
  for (const auto& [hash, mask] : pending.hash_masks) {
    const int count = std::popcount(mask);
    if (count > best_count) {
      best_count = count;
      best_hash = hash;
    }
  }
  accept(notify->id, pending, best_hash);
  pending_.erase(it);
}

void ClientMachine::accept(chain::TxId id, Pending& pending,
                           std::uint64_t hash) {
  if (pending.hash_masks.size() > 1) ++conflicting_responses_;
  accepted_hashes_.emplace(id, hash);
  latencies_.push_back(sim::to_seconds(now() - pending.submitted_at));
  last_commit_at_ = now();
  ++committed_;
  if (auto* lifecycle = simulation().lifecycle()) {
    lifecycle->mark(id, sim::TxStage::kConfirmed, now());
  }
  if (auto* trace = simulation().trace()) {
    trace->async_end(static_cast<std::int32_t>(this->id()), now(), id,
                     "txn", "txn");
  }
}

ResilienceStats ClientMachine::resilience_stats() const {
  ResilienceStats stats = stats_;
  if (failover_.has_value()) stats.failovers = failover_->failovers();
  return stats;
}

}  // namespace stabl::core
