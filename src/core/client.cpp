#include "core/client.hpp"

#include <bit>
#include <cassert>

#include "chain/hash.hpp"

namespace stabl::core {

ClientMachine::ClientMachine(sim::Simulation& simulation,
                             net::Network& network, ClientConfig config)
    : Process(simulation, config.id), config_(std::move(config)),
      net_(network) {
  assert(!config_.endpoints.empty());
  assert(config_.endpoints.size() <= 32);
  network.attach(config_.id, this);
}

void ClientMachine::on_start() {
  set_timer(config_.start_at, [this] { submit_next(); });
}

void ClientMachine::submit_next() {
  if (now() >= config_.stop_at) return;
  chain::Transaction tx;
  tx.from = config_.account;
  tx.to = config_.recipient;
  tx.amount = 1;
  tx.nonce = nonce_++;
  tx.submitted_at = now();
  tx.id = chain::hash_combine(
      chain::hash_combine(config_.tx_seed, config_.account), tx.nonce);
  pending_.emplace(tx.id, Pending{now(), 0, {}});
  ++submitted_;
  auto payload = std::make_shared<const chain::SubmitTxPayload>(tx);
  for (const net::NodeId endpoint : config_.endpoints) {
    net_.send(id(), endpoint, payload, 192);
  }
  WorkloadConfig workload = config_.workload;
  workload.tps = config_.tps;
  const auto interval = workload_interval(
      workload, now(), config_.stop_at - config_.start_at);
  set_timer(interval, [this] { submit_next(); });
}

void ClientMachine::deliver(const net::Envelope& envelope) {
  const auto* notify =
      dynamic_cast<const chain::CommitNotifyPayload*>(envelope.payload.get());
  if (notify == nullptr) return;  // control frames etc.
  const auto it = pending_.find(notify->id);
  if (it == pending_.end()) return;  // duplicate notification
  // Which endpoint answered?
  std::uint32_t bit = 0;
  bool found = false;
  for (std::size_t i = 0; i < config_.endpoints.size(); ++i) {
    if (config_.endpoints[i] == envelope.from) {
      bit = 1u << i;
      found = true;
      break;
    }
  }
  if (!found) return;
  Pending& pending = it->second;
  pending.ack_mask |= bit;
  pending.hash_masks[notify->result_hash] |= bit;

  if (config_.required_matching > 0) {
    // credence.js-style: accept as soon as `required_matching` endpoints
    // agree on the result.
    for (const auto& [hash, mask] : pending.hash_masks) {
      if (static_cast<std::size_t>(std::popcount(mask)) >=
          config_.required_matching) {
        accept(notify->id, pending, hash);
        pending_.erase(it);
        return;
      }
    }
    return;
  }
  // Paper §7 secure client: report success once every endpoint confirmed.
  const std::uint32_t all =
      (config_.endpoints.size() == 32)
          ? ~0u
          : ((1u << config_.endpoints.size()) - 1);
  if (pending.ack_mask != all) return;
  // Majority result (the comparison step of the secure client).
  std::uint64_t best_hash = 0;
  int best_count = -1;
  for (const auto& [hash, mask] : pending.hash_masks) {
    const int count = std::popcount(mask);
    if (count > best_count) {
      best_count = count;
      best_hash = hash;
    }
  }
  accept(notify->id, pending, best_hash);
  pending_.erase(it);
}

void ClientMachine::accept(chain::TxId id, Pending& pending,
                           std::uint64_t hash) {
  if (pending.hash_masks.size() > 1) ++conflicting_responses_;
  accepted_hashes_.emplace(id, hash);
  latencies_.push_back(sim::to_seconds(now() - pending.submitted_at));
  last_commit_at_ = now();
  ++committed_;
}

}  // namespace stabl::core
