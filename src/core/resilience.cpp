#include "core/resilience.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace stabl::core {

sim::Duration RetryPolicy::backoff(int attempt, sim::Rng& rng) const {
  assert(attempt >= 1);
  const double scale =
      std::pow(backoff_multiplier, static_cast<double>(attempt - 1));
  const double capped =
      std::min(static_cast<double>(backoff_base.count()) * scale,
               static_cast<double>(backoff_cap.count()));
  const double jitter = 1.0 + jitter_frac * (rng.uniform() - 0.5) * 2.0;
  return sim::Duration{static_cast<std::int64_t>(capped * jitter)};
}

bool CircuitBreaker::allow(sim::Time now) {
  switch (state_) {
    case State::kClosed:
    case State::kHalfOpen:
      return true;
    case State::kOpen:
      if (now < open_until_) return false;
      state_ = State::kHalfOpen;  // quarantine over: admit one probe
      return true;
  }
  return true;
}

void CircuitBreaker::on_success() {
  state_ = State::kClosed;
  consecutive_failures_ = 0;
}

bool CircuitBreaker::on_failure(sim::Time now) {
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen) {
    // Failed probe: straight back to quarantine.
    state_ = State::kOpen;
    open_until_ = now + policy_.open_duration;
    return true;
  }
  if (state_ == State::kClosed &&
      consecutive_failures_ >= policy_.failure_threshold) {
    state_ = State::kOpen;
    open_until_ = now + policy_.open_duration;
    return true;
  }
  return false;
}

EndpointFailover::EndpointFailover(std::vector<net::NodeId> candidates,
                                   CircuitBreakerPolicy policy)
    : candidates_(std::move(candidates)) {
  assert(!candidates_.empty());
  breakers_.resize(candidates_.size(), CircuitBreaker{policy});
}

net::NodeId EndpointFailover::select(sim::Time now) {
  for (std::size_t k = 0; k < candidates_.size(); ++k) {
    const std::size_t index = (primary_ + k) % candidates_.size();
    if (!breakers_[index].allow(now)) continue;
    if (index != primary_) {
      primary_ = index;
      ++failovers_;
    }
    return candidates_[index];
  }
  return candidates_[primary_];
}

bool EndpointFailover::on_failure(net::NodeId id, sim::Time now) {
  return breakers_[index_of(id)].on_failure(now);
}

void EndpointFailover::on_success(net::NodeId id) {
  breakers_[index_of(id)].on_success();
}

const CircuitBreaker& EndpointFailover::breaker(net::NodeId id) const {
  return breakers_[index_of(id)];
}

std::size_t EndpointFailover::open_breakers() const {
  std::size_t open = 0;
  for (const CircuitBreaker& breaker : breakers_) {
    if (breaker.state() != CircuitBreaker::State::kClosed) ++open;
  }
  return open;
}

std::size_t EndpointFailover::index_of(net::NodeId id) const {
  const auto it = std::find(candidates_.begin(), candidates_.end(), id);
  assert(it != candidates_.end() && "endpoint outside the candidate list");
  return static_cast<std::size_t>(it - candidates_.begin());
}

ResilienceStats& ResilienceStats::operator+=(const ResilienceStats& other) {
  timeouts += other.timeouts;
  resets += other.resets;
  resubmissions += other.resubmissions;
  failovers += other.failovers;
  circuit_opens += other.circuit_opens;
  recovered += other.recovered;
  exhausted += other.exhausted;
  duplicate_commits += other.duplicate_commits;
  return *this;
}

}  // namespace stabl::core
