#include "core/resilience.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace stabl::core {

sim::Duration RetryPolicy::backoff(int attempt, sim::Rng& rng) const {
  assert(attempt >= 1);
  const double scale =
      std::pow(backoff_multiplier, static_cast<double>(attempt - 1));
  const double capped =
      std::min(static_cast<double>(backoff_base.count()) * scale,
               static_cast<double>(backoff_cap.count()));
  const double jitter = 1.0 + jitter_frac * (rng.uniform() - 0.5) * 2.0;
  return sim::Duration{static_cast<std::int64_t>(capped * jitter)};
}

bool CircuitBreaker::allow(sim::Time now) {
  switch (state_) {
    case State::kClosed:
    case State::kHalfOpen:
      return true;
    case State::kOpen:
      if (now < open_until_) return false;
      state_ = State::kHalfOpen;  // quarantine over: admit one probe
      return true;
  }
  return true;
}

void CircuitBreaker::on_success() {
  state_ = State::kClosed;
  consecutive_failures_ = 0;
}

bool CircuitBreaker::on_failure(sim::Time now) {
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen) {
    // Failed probe: straight back to quarantine.
    state_ = State::kOpen;
    open_until_ = now + policy_.open_duration;
    return true;
  }
  if (state_ == State::kClosed &&
      consecutive_failures_ >= policy_.failure_threshold) {
    state_ = State::kOpen;
    open_until_ = now + policy_.open_duration;
    return true;
  }
  return false;
}

EndpointScorer::EndpointScorer(std::size_t endpoints,
                               EndpointScorePolicy policy)
    : policy_(policy), scores_(endpoints, 0.0) {}

void EndpointScorer::on_latency(std::size_t index, double seconds) {
  scores_[index] =
      (1.0 - policy_.alpha) * scores_[index] + policy_.alpha * seconds;
}

void EndpointScorer::on_failure(std::size_t index) {
  scores_[index] = (1.0 - policy_.alpha) * scores_[index] +
                   policy_.alpha * policy_.failure_penalty_s;
}

std::size_t EndpointScorer::best(
    const std::vector<std::size_t>& allowed) const {
  assert(!allowed.empty());
  std::size_t best_index = allowed.front();
  for (const std::size_t index : allowed) {
    if (scores_[index] < scores_[best_index]) best_index = index;
  }
  return best_index;
}

EndpointFailover::EndpointFailover(std::vector<net::NodeId> candidates,
                                   CircuitBreakerPolicy policy,
                                   EndpointScorePolicy score)
    : candidates_(std::move(candidates)) {
  assert(!candidates_.empty());
  breakers_.resize(candidates_.size(), CircuitBreaker{policy});
  if (score.enabled) scorer_.emplace(candidates_.size(), score);
}

net::NodeId EndpointFailover::select(sim::Time now) {
  if (scorer_.has_value()) {
    // Scored selection: stay on an admissible primary (stability beats a
    // marginally better score), otherwise fail over to the best-scored
    // admissible candidate rather than the next one in rotation.
    if (breakers_[primary_].allow(now)) return candidates_[primary_];
    std::vector<std::size_t> allowed;
    allowed.reserve(candidates_.size());
    for (std::size_t index = 0; index < candidates_.size(); ++index) {
      if (index != primary_ && breakers_[index].allow(now)) {
        allowed.push_back(index);
      }
    }
    if (allowed.empty()) return candidates_[primary_];
    primary_ = scorer_->best(allowed);
    ++failovers_;
    return candidates_[primary_];
  }
  for (std::size_t k = 0; k < candidates_.size(); ++k) {
    const std::size_t index = (primary_ + k) % candidates_.size();
    if (!breakers_[index].allow(now)) continue;
    if (index != primary_) {
      primary_ = index;
      ++failovers_;
    }
    return candidates_[index];
  }
  return candidates_[primary_];
}

bool EndpointFailover::on_failure(net::NodeId id, sim::Time now) {
  const std::size_t index = index_of(id);
  if (scorer_.has_value()) scorer_->on_failure(index);
  return breakers_[index].on_failure(now);
}

void EndpointFailover::on_success(net::NodeId id) {
  breakers_[index_of(id)].on_success();
}

void EndpointFailover::note_latency(net::NodeId id, double seconds) {
  if (scorer_.has_value()) scorer_->on_latency(index_of(id), seconds);
}

std::optional<net::NodeId> EndpointFailover::hedge_target(net::NodeId exclude,
                                                          sim::Time now) {
  if (scorer_.has_value()) {
    std::vector<std::size_t> allowed;
    allowed.reserve(candidates_.size());
    for (std::size_t index = 0; index < candidates_.size(); ++index) {
      if (candidates_[index] != exclude && breakers_[index].allow(now)) {
        allowed.push_back(index);
      }
    }
    if (allowed.empty()) return std::nullopt;
    return candidates_[scorer_->best(allowed)];
  }
  for (std::size_t k = 1; k < candidates_.size() + 1; ++k) {
    const std::size_t index = (primary_ + k) % candidates_.size();
    if (candidates_[index] == exclude) continue;
    if (!breakers_[index].allow(now)) continue;
    return candidates_[index];
  }
  return std::nullopt;
}

const CircuitBreaker& EndpointFailover::breaker(net::NodeId id) const {
  return breakers_[index_of(id)];
}

std::size_t EndpointFailover::open_breakers() const {
  std::size_t open = 0;
  for (const CircuitBreaker& breaker : breakers_) {
    if (breaker.state() != CircuitBreaker::State::kClosed) ++open;
  }
  return open;
}

std::size_t EndpointFailover::index_of(net::NodeId id) const {
  const auto it = std::find(candidates_.begin(), candidates_.end(), id);
  assert(it != candidates_.end() && "endpoint outside the candidate list");
  return static_cast<std::size_t>(it - candidates_.begin());
}

ResilienceStats& ResilienceStats::operator+=(const ResilienceStats& other) {
  timeouts += other.timeouts;
  resets += other.resets;
  resubmissions += other.resubmissions;
  failovers += other.failovers;
  circuit_opens += other.circuit_opens;
  recovered += other.recovered;
  exhausted += other.exhausted;
  duplicate_commits += other.duplicate_commits;
  hedges_armed += other.hedges_armed;
  hedges_won += other.hedges_won;
  hedges_cancelled += other.hedges_cancelled;
  return *this;
}

}  // namespace stabl::core
