// Campaign orchestration: run the paper's full experiment matrix (every
// chain x every dimension) and collect the radar, CSV and JSON outputs in
// one call — the entry point a CI pipeline would use ("STABL, pluggable in
// continuous integration pipelines", §1).
//
// The (chain x fault x seed) cell grid is embarrassingly parallel — every
// cell is an independent, deterministic DES — so `run_campaign` fans it
// out across `jobs` threads and gathers results into index-addressed slots
// in deterministic order: parallel output is byte-identical to serial
// output for the same config. Seed sweeps aggregate per-cell runs into
// `SeedSweepStats` (mean / min / max / sample stddev of the score plus the
// liveness-loss count), and the CI gate judges the *worst* seed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/radar.hpp"

namespace stabl::core {

struct CampaignConfig {
  /// Chains to evaluate (defaults to all five).
  std::vector<ChainKind> chains{kAllChains,
                                kAllChains + std::size(kAllChains)};
  /// Dimensions to evaluate (defaults to the paper's four).
  std::vector<FaultType> faults{FaultType::kCrash, FaultType::kTransient,
                                FaultType::kPartition,
                                FaultType::kSecureClient};
  /// Template applied to every run; chain/fault/fanout/vcpus are set per
  /// cell (secure-client cells get fanout 4 and 8 vCPUs, as in §7).
  ExperimentConfig base{};
  /// Explicit seeds to sweep per cell. When empty, `num_seeds` consecutive
  /// seeds starting at base.seed are used (the default 1 keeps the single
  /// point estimate of the paper).
  std::vector<std::uint64_t> seeds{};
  std::size_t num_seeds = 1;
  /// Worker lanes for the (chain x fault x seed) grid, including the
  /// calling thread; 1 = serial. Output is byte-identical for any value.
  unsigned jobs = 1;
  /// Invoked after each (cell, seed) completes (progress reporting); may
  /// be empty. Serialized behind an internal mutex — at most one
  /// invocation runs at a time — but with jobs > 1 the *completion order*
  /// across cells is nondeterministic.
  std::function<void(ChainKind, FaultType, std::uint64_t /*seed*/,
                     const SensitivityRun&)>
      on_cell_done;

  /// The effective seed list (explicit `seeds`, or `num_seeds` consecutive
  /// seeds from base.seed).
  [[nodiscard]] std::vector<std::uint64_t> seed_list() const;
};

/// Per-cell aggregate over a seed sweep. The moment statistics cover the
/// seeds with a *finite* score; seeds whose altered run lost liveness
/// (infinite score) are counted separately.
struct SeedSweepStats {
  std::size_t seeds = 0;            ///< Seeds evaluated for the cell.
  std::size_t finite = 0;           ///< Seeds with a finite score.
  std::size_t liveness_losses = 0;  ///< Seeds with an infinite score.
  /// True when any seed's baseline measured nothing (invalid cell).
  bool any_invalid_baseline = false;
  /// Over the finite-score seeds (0 when none are finite).
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;  ///< Sample standard deviation (0 for < 2 seeds).
};

/// Aggregate one cell's per-seed runs (in seed-list order).
SeedSweepStats aggregate_seed_sweep(const std::vector<SensitivityRun>& runs);

struct CampaignResult {
  using CellKey = std::pair<ChainKind, FaultType>;

  RadarSummary radar;
  /// Representative run per cell: the FIRST seed of the sweep (the full
  /// per-seed list is in `seed_runs`). Single-seed campaigns behave
  /// exactly as before.
  std::map<CellKey, SensitivityRun> runs;
  /// Every seed's run per cell, in seed-list order.
  std::map<CellKey, std::vector<SensitivityRun>> seed_runs;
  /// Aggregate statistics per cell.
  std::map<CellKey, SeedSweepStats> sweeps;
  /// The seed list the campaign actually swept.
  std::vector<std::uint64_t> seeds;
  /// Wall-clock milliseconds per (cell, seed) run, in seed-list order, and
  /// for the whole campaign. Harness profiling only: wall timings depend
  /// on the machine and the jobs value, so they are deliberately excluded
  /// from to_csv()/to_json() (which must stay byte-identical) and surface
  /// through timing_table() instead.
  std::map<CellKey, std::vector<double>> cell_wall_ms;
  double total_wall_ms = 0.0;

  [[nodiscard]] const SensitivityRun* get(ChainKind chain,
                                          FaultType fault) const;
  [[nodiscard]] const SeedSweepStats* sweep(ChainKind chain,
                                            FaultType fault) const;
  /// Full campaign as CSV (header + one row per cell; the representative
  /// first-seed columns are followed by the seed-sweep aggregate columns).
  [[nodiscard]] std::string to_csv() const;
  /// Full campaign as a JSON array of per-cell documents, each carrying a
  /// "seed_sweep" aggregate object.
  [[nodiscard]] std::string to_json() const;
  /// Wall-clock phase profile: one row per cell (total and mean ms across
  /// its seeds, and each seed's ms) plus a campaign total row.
  [[nodiscard]] std::string timing_table() const;
};

/// Run every (chain, fault, seed) cell of the matrix across `config.jobs`
/// threads. Deterministic given the config: any jobs value produces
/// byte-identical to_csv()/to_json() output.
CampaignResult run_campaign(const CampaignConfig& config);

/// CI gate: true when every cell satisfies the paper-shaped expectations
/// passed in `max_score` (per fault type; cells expected to be infinite
/// are listed in `expected_infinite`). Used by examples/regression_gate.
/// Seed sweeps gate on the WORST seed: a cell violates its bound when any
/// seed's finite score exceeds it, loses liveness when any seed does, and
/// an expected-infinite cell must lose liveness at every seed.
struct CampaignGate {
  std::map<FaultType, double> max_score;
  std::vector<std::pair<ChainKind, FaultType>> expected_infinite;
  /// When false, cells that lose liveness are not violations unless listed
  /// in expected_infinite (coarse gates for short smoke runs).
  bool flag_unexpected_liveness_loss = true;
};

/// Returns the list of human-readable violations (empty = gate passes).
std::vector<std::string> check_gate(const CampaignResult& result,
                                    const CampaignGate& gate);

}  // namespace stabl::core
