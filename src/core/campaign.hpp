// Campaign orchestration: run the paper's full experiment matrix (every
// chain x every dimension) and collect the radar, CSV and JSON outputs in
// one call — the entry point a CI pipeline would use ("STABL, pluggable in
// continuous integration pipelines", §1).
//
// The (chain x fault x seed) cell grid is embarrassingly parallel — every
// cell is an independent, deterministic DES — so `run_campaign` fans it
// out across `jobs` threads and gathers results into index-addressed slots
// in deterministic order: parallel output is byte-identical to serial
// output for the same config. Seed sweeps aggregate per-cell runs into
// `SeedSweepStats` (mean / min / max / sample stddev of the score plus the
// liveness-loss count), and the CI gate judges the *worst* seed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/radar.hpp"

namespace stabl::core {

struct CampaignConfig {
  /// Chains to evaluate (defaults to all five).
  std::vector<ChainKind> chains{kAllChains,
                                kAllChains + std::size(kAllChains)};
  /// Dimensions to evaluate (defaults to the paper's four).
  std::vector<FaultType> faults{FaultType::kCrash, FaultType::kTransient,
                                FaultType::kPartition,
                                FaultType::kSecureClient};
  /// Template applied to every run; chain/fault/fanout/vcpus are set per
  /// cell (secure-client cells get fanout 4 and 8 vCPUs, as in §7).
  ExperimentConfig base{};
  /// Explicit seeds to sweep per cell. When empty, `num_seeds` consecutive
  /// seeds starting at base.seed are used (the default 1 keeps the single
  /// point estimate of the paper).
  std::vector<std::uint64_t> seeds{};
  std::size_t num_seeds = 1;
  /// Worker lanes for the (chain x fault x seed) grid, including the
  /// calling thread; 1 = serial. Output is byte-identical for any value.
  unsigned jobs = 1;
  /// Invoked after each (cell, seed) completes (progress reporting); may
  /// be empty. Serialized behind an internal mutex — at most one
  /// invocation runs at a time — but with jobs > 1 the *completion order*
  /// across cells is nondeterministic.
  std::function<void(ChainKind, FaultType, std::uint64_t /*seed*/,
                     const SensitivityRun&)>
      on_cell_done;
  /// Wall-clock progress heartbeat on stderr (core::Heartbeat): completed
  /// cells, cells/s and an ETA. Excluded from every deterministic
  /// serializer, like cell_wall_ms.
  bool heartbeat = false;

  /// The effective seed list (explicit `seeds`, or `num_seeds` consecutive
  /// seeds from base.seed).
  [[nodiscard]] std::vector<std::uint64_t> seed_list() const;
};

/// Per-cell aggregate over a seed sweep. The moment statistics cover the
/// seeds with a *finite* score; seeds whose altered run lost liveness
/// (infinite score) are counted separately.
struct SeedSweepStats {
  std::size_t seeds = 0;            ///< Seeds evaluated for the cell.
  std::size_t finite = 0;           ///< Seeds with a finite score.
  std::size_t liveness_losses = 0;  ///< Seeds with an infinite score.
  /// True when any seed's baseline measured nothing (invalid cell).
  bool any_invalid_baseline = false;
  /// Over the finite-score seeds (0 when none are finite).
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;  ///< Sample standard deviation (0 for < 2 seeds).
};

/// Aggregate one cell's per-seed runs (in seed-list order).
SeedSweepStats aggregate_seed_sweep(const std::vector<SensitivityRun>& runs);

struct CampaignResult {
  using CellKey = std::pair<ChainKind, FaultType>;

  RadarSummary radar;
  /// Representative run per cell: the FIRST seed of the sweep (the full
  /// per-seed list is in `seed_runs`). Single-seed campaigns behave
  /// exactly as before.
  std::map<CellKey, SensitivityRun> runs;
  /// Every seed's run per cell, in seed-list order.
  std::map<CellKey, std::vector<SensitivityRun>> seed_runs;
  /// Aggregate statistics per cell.
  std::map<CellKey, SeedSweepStats> sweeps;
  /// The seed list the campaign actually swept.
  std::vector<std::uint64_t> seeds;
  /// Wall-clock milliseconds per (cell, seed) run, in seed-list order, and
  /// for the whole campaign. Harness profiling only: wall timings depend
  /// on the machine and the jobs value, so they are deliberately excluded
  /// from to_csv()/to_json() (which must stay byte-identical) and surface
  /// through timing_table() instead.
  std::map<CellKey, std::vector<double>> cell_wall_ms;
  double total_wall_ms = 0.0;

  [[nodiscard]] const SensitivityRun* get(ChainKind chain,
                                          FaultType fault) const;
  [[nodiscard]] const SeedSweepStats* sweep(ChainKind chain,
                                            FaultType fault) const;
  /// Full campaign as CSV (header + one row per cell; the representative
  /// first-seed columns are followed by the seed-sweep aggregate columns).
  [[nodiscard]] std::string to_csv() const;
  /// Full campaign as a JSON array of per-cell documents, each carrying a
  /// "seed_sweep" aggregate object.
  [[nodiscard]] std::string to_json() const;
  /// Wall-clock phase profile: one row per cell (total and mean ms across
  /// its seeds, and each seed's ms) plus a campaign total row.
  [[nodiscard]] std::string timing_table() const;
};

/// Run every (chain, fault, seed) cell of the matrix across `config.jobs`
/// threads. Deterministic given the config: any jobs value produces
/// byte-identical to_csv()/to_json() output.
CampaignResult run_campaign(const CampaignConfig& config);

/// CI gate: true when every cell satisfies the paper-shaped expectations
/// passed in `max_score` (per fault type; cells expected to be infinite
/// are listed in `expected_infinite`). Used by examples/regression_gate.
/// Seed sweeps gate on the WORST seed: a cell violates its bound when any
/// seed's finite score exceeds it, loses liveness when any seed does, and
/// an expected-infinite cell must lose liveness at every seed.
struct CampaignGate {
  std::map<FaultType, double> max_score;
  std::vector<std::pair<ChainKind, FaultType>> expected_infinite;
  /// When false, cells that lose liveness are not violations unless listed
  /// in expected_infinite (coarse gates for short smoke runs).
  bool flag_unexpected_liveness_loss = true;
};

/// Returns the list of human-readable violations (empty = gate passes).
std::vector<std::string> check_gate(const CampaignResult& result,
                                    const CampaignGate& gate);

// ---------------------------------------------------------------------------
// Mitigation-evaluation campaign: from measuring sensitivity to reducing it.
//
// Every cell of the (chain x fault x seed) grid — plus, optionally, pairs
// drawn from the adversarial chaos plan space — runs TWICE under the same
// seed and the same fault schedule: once as-configured (unmitigated) and
// once with the mitigation stack applied (the nversion_<chain> meta-chain,
// hedged submissions, endpoint scoring — each layer independently
// switchable). The paired delta `unmitigated − mitigated` quantifies how
// much sensitivity each mitigation removes; a fault fully masked by the
// stack (unmitigated infinite, mitigated finite) reports +inf.
// ---------------------------------------------------------------------------

/// Which mitigation layers the mitigated twin of each pair enables.
struct MitigationLayers {
  /// Swap the chain for its `nversion_<chain>` meta-chain (N-version
  /// failover masking crash/hang faults at the node level).
  bool nversion = true;
  /// Resilient client with hedged submissions.
  bool hedging = true;
  /// Resilient client with EWMA endpoint scoring steering failover.
  bool scoring = true;
};

struct MitigationConfig {
  /// Chains to evaluate (defaults to all five paper chains; the mitigated
  /// twin derives its nversion_* counterpart through the registry).
  std::vector<ChainKind> chains{kAllChains,
                                kAllChains + std::size(kAllChains)};
  /// Fault dimensions to pair up. Defaults to the two the nversion design
  /// targets (process failures); any FaultType is accepted.
  std::vector<FaultType> faults{FaultType::kCrash, FaultType::kTransient};
  /// Template applied to both twins of every pair.
  ExperimentConfig base{};
  std::vector<std::uint64_t> seeds{};
  std::size_t num_seeds = 1;
  /// Adversarial chaos pairs per chain: schedule k of chain c is drawn
  /// from Rng(base.seed).derive(c * 1'000'003 + k) with
  /// adversarial_gen_for(base.duration) — the chaos campaign's stream
  /// discipline — and both twins replay the identical schedule.
  std::size_t chaos_pairs = 0;
  unsigned jobs = 1;
  MitigationLayers layers{};
  /// Invoked after each pair completes (progress reporting); serialized
  /// behind a mutex, completion order nondeterministic for jobs > 1.
  std::function<void(const struct MitigationPair&)> on_pair_done;
  /// Wall-clock progress heartbeat on stderr (see CampaignConfig).
  bool heartbeat = false;

  [[nodiscard]] std::vector<std::uint64_t> seed_list() const;
};

/// One matched baseline/mitigated cell pair: same chain family, same seed,
/// same fault schedule; only the mitigation stack differs.
struct MitigationPair {
  ChainKind chain = ChainKind::kRedbelly;
  FaultType fault = FaultType::kNone;  ///< kNone for chaos rows
  bool chaos = false;
  std::size_t chaos_trial = 0;
  std::uint64_t seed = 0;
  /// Name of the chain the mitigated twin actually ran
  /// ("nversion_redbelly", or the base name when layers.nversion is off).
  std::string mitigated_chain;
  /// The chaos schedule both twins replayed (empty for matrix rows).
  FaultSchedule schedule;
  SensitivityRun unmitigated;
  SensitivityRun mitigated;

  /// unmitigated − mitigated sensitivity. +inf when the mitigation masked
  /// a liveness loss, -inf when it *introduced* one, 0 when both twins
  /// lost liveness or either baseline was invalid.
  [[nodiscard]] double delta() const;
  /// Strict improvement: the mitigation stack reduced sensitivity.
  [[nodiscard]] bool improved() const;
};

struct MitigationResult {
  MitigationLayers layers;
  /// Matrix pairs first (chain-major, fault, seed order), then chaos pairs
  /// (chain-major, trial order) — deterministic for any jobs value.
  std::vector<MitigationPair> pairs;

  [[nodiscard]] std::size_t improvements() const;
  [[nodiscard]] std::size_t regressions() const;
  /// Human-readable paired sensitivity-delta table.
  [[nodiscard]] std::string delta_table() const;
  /// Machine-readable delta table. Byte-identical for any jobs value.
  [[nodiscard]] std::string delta_csv() const;
  /// Full campaign as JSON. Byte-identical for any jobs value.
  [[nodiscard]] std::string to_json() const;
};

/// The mitigated twin of a cell config: chain swapped for its nversion
/// meta-chain and/or the resilient-client hedging/scoring knobs enabled,
/// per `layers`. Everything else (seed, faults, workload, duration, chain
/// parameter overrides) is carried verbatim.
ExperimentConfig mitigated_config(const ExperimentConfig& cell,
                                  const MitigationLayers& layers);

/// Run the paired campaign across config.jobs threads. Deterministic:
/// delta_csv()/to_json() are byte-identical for any jobs value.
MitigationResult run_mitigation_campaign(const MitigationConfig& config);

}  // namespace stabl::core
