// Campaign orchestration: run the paper's full experiment matrix (every
// chain x every dimension) and collect the radar, CSV and JSON outputs in
// one call — the entry point a CI pipeline would use ("STABL, pluggable in
// continuous integration pipelines", §1).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/radar.hpp"

namespace stabl::core {

struct CampaignConfig {
  /// Chains to evaluate (defaults to all five).
  std::vector<ChainKind> chains{kAllChains,
                                kAllChains + std::size(kAllChains)};
  /// Dimensions to evaluate (defaults to the paper's four).
  std::vector<FaultType> faults{FaultType::kCrash, FaultType::kTransient,
                                FaultType::kPartition,
                                FaultType::kSecureClient};
  /// Template applied to every run; chain/fault/fanout/vcpus are set per
  /// cell (secure-client cells get fanout 4 and 8 vCPUs, as in §7).
  ExperimentConfig base{};
  /// Invoked after each cell completes (progress reporting); may be empty.
  std::function<void(ChainKind, FaultType, const SensitivityRun&)>
      on_cell_done;
};

struct CampaignResult {
  RadarSummary radar;
  std::map<std::pair<ChainKind, FaultType>, SensitivityRun> runs;

  [[nodiscard]] const SensitivityRun* get(ChainKind chain,
                                          FaultType fault) const;
  /// Full campaign as CSV (header + one row per cell).
  [[nodiscard]] std::string to_csv() const;
  /// Full campaign as a JSON array of per-cell documents.
  [[nodiscard]] std::string to_json() const;
};

/// Run every (chain, fault) cell of the matrix. Deterministic given
/// config.base.seed.
CampaignResult run_campaign(const CampaignConfig& config);

/// CI gate: true when every cell satisfies the paper-shaped expectations
/// passed in `max_score` (per fault type; cells expected to be infinite
/// are listed in `expected_infinite`). Used by examples/regression_gate.
struct CampaignGate {
  std::map<FaultType, double> max_score;
  std::vector<std::pair<ChainKind, FaultType>> expected_infinite;
  /// When false, cells that lose liveness are not violations unless listed
  /// in expected_infinite (coarse gates for short smoke runs).
  bool flag_unexpected_liveness_loss = true;
};

/// Returns the list of human-readable violations (empty = gate passes).
std::vector<std::string> check_gate(const CampaignResult& result,
                                    const CampaignGate& gate);

}  // namespace stabl::core
