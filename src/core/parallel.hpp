// A small work-stealing-free thread pool for embarrassingly parallel cell
// grids (the campaign's chain x fault x seed matrix). Workers pull indexes
// from one shared cursor — no per-worker deques, no stealing — and the
// caller participates as a lane, so `jobs = 1` spawns no threads and is
// exactly the serial loop. Results must be written into pre-sized,
// index-addressed slots by the body; gathering by index is what keeps
// parallel output byte-identical to serial output.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace stabl::core {

/// Lanes to use by default: the hardware concurrency, at least 1.
unsigned default_jobs();

/// Wall-clock campaign progress reporter: "label: done/total cells
/// (pct) | rate cells/s | ETA", written to stderr as a carriage-return
/// line so multi-thousand-cell campaigns are not silent. Strictly a
/// human-facing side channel: output is wall-clock dependent and NEVER
/// part of any deterministic serializer (the same exclusion discipline as
/// ChaosTrial::wall_ms). Thread-safe — campaign workers tick it from pool
/// lanes; updates are rate-limited to one line per 250 ms of wall time,
/// plus a final newline-terminated line at completion.
class Heartbeat {
 public:
  /// A disabled heartbeat (enabled = false) makes tick() a no-op, so
  /// campaign code can tick unconditionally and drivers decide once
  /// (typically `isatty(stderr)` or an explicit flag).
  Heartbeat(std::string label, std::size_t total, bool enabled);
  ~Heartbeat();  ///< finishes the line if anything was printed

  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  /// One unit of work finished.
  void tick();

 private:
  void print(std::size_t done, bool final_line);

  const std::string label_;
  const std::size_t total_;
  const bool enabled_;
  const std::chrono::steady_clock::time_point start_;
  std::mutex mutex_;
  std::size_t done_ = 0;
  std::chrono::steady_clock::time_point last_print_;
  bool printed_ = false;
};

class ThreadPool {
 public:
  /// `jobs` is the total number of lanes including the calling thread;
  /// values < 1 are clamped to 1 (serial, no threads spawned).
  explicit ThreadPool(unsigned jobs);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned jobs() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Run body(i) for every i in [0, count), fanned across all lanes;
  /// blocks until every index completed. The first exception thrown by any
  /// body is rethrown here (remaining indexes are skipped best-effort).
  /// Reusable: parallel_for may be called repeatedly on the same pool, but
  /// not concurrently from several threads.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  void drain();  // pull indexes until the cursor passes count_

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait for a new batch
  std::condition_variable done_cv_;   // caller waits for workers to finish
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t count_ = 0;
  std::size_t cursor_ = 0;      // next index to hand out (guarded by mutex_)
  std::size_t active_ = 0;      // workers still inside the current batch
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  bool failed_ = false;         // short-circuits remaining indexes
  std::exception_ptr error_;
};

}  // namespace stabl::core
