#include "core/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "core/throughput.hpp"

namespace stabl::core {
namespace {

OracleVerdict worst(OracleVerdict a, OracleVerdict b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

bool schedule_contains(const FaultSchedule& schedule, FaultType type) {
  return std::any_of(
      schedule.plans.begin(), schedule.plans.end(),
      [type](const FaultPlan& plan) { return plan.type == type; });
}

/// Try to downgrade a failed liveness finding to kExpectedLoss. The match
/// needs (a) the chain, (b) a plan of the exempted fault type in the
/// schedule, and (c) positive evidence in chain_metrics when the exemption
/// names a metric. Returns the matching exemption, or nullptr.
const OracleExemption* match_exemption(const OracleConfig& config,
                                       const OracleContext& context,
                                       const ExperimentResult& result) {
  for (const OracleExemption& exemption : config.exemptions) {
    if (exemption.chain != context.chain) continue;
    if (!schedule_contains(context.schedule, exemption.fault)) continue;
    if (!exemption.evidence_metric.empty()) {
      const auto it = result.chain_metrics.find(exemption.evidence_metric);
      if (it == result.chain_metrics.end() || it->second <= 0.0) continue;
    }
    return &exemption;
  }
  return nullptr;
}

void check_agreement(const std::vector<ReplicaSnapshot>& replicas,
                     OracleReport& report) {
  OracleFinding finding;
  finding.oracle = "agreement";
  finding.cls = OracleClass::kSafety;
  // Reference = the replica with the longest ledger; every other replica
  // must match it block-for-block over their common prefix. Transaction
  // *sequences* are compared — commit times and rounds are replica-local.
  const ReplicaSnapshot* reference = &replicas.front();
  for (const ReplicaSnapshot& replica : replicas) {
    if (replica.blocks.size() > reference->blocks.size()) {
      reference = &replica;
    }
  }
  for (const ReplicaSnapshot& replica : replicas) {
    const std::size_t prefix =
        std::min(replica.blocks.size(), reference->blocks.size());
    for (std::size_t h = 0; h < prefix; ++h) {
      if (replica.blocks[h].txs == reference->blocks[h].txs) continue;
      finding.verdict = OracleVerdict::kViolation;
      std::ostringstream detail;
      detail << "ledger fork: replica " << replica.id << " and replica "
             << reference->id << " commit different transaction sequences "
             << "at height " << h << " (" << replica.blocks[h].txs.size()
             << " vs " << reference->blocks[h].txs.size() << " txs)";
      finding.detail = detail.str();
      report.findings.push_back(std::move(finding));
      return;
    }
  }
  finding.detail = "all replicas agree on their common ledger prefix";
  report.findings.push_back(std::move(finding));
}

void check_no_duplicate_commit(const std::vector<ReplicaSnapshot>& replicas,
                               OracleReport& report) {
  OracleFinding finding;
  finding.oracle = "no-duplicate-commit";
  finding.cls = OracleClass::kSafety;
  for (const ReplicaSnapshot& replica : replicas) {
    std::unordered_set<chain::TxId> seen;
    for (const BlockSummary& block : replica.blocks) {
      for (const chain::TxId id : block.txs) {
        if (seen.insert(id).second) continue;
        finding.verdict = OracleVerdict::kViolation;
        std::ostringstream detail;
        detail << "replica " << replica.id << " committed transaction "
               << id << " twice (second copy at height " << block.height
               << ")";
        finding.detail = detail.str();
        report.findings.push_back(std::move(finding));
        return;
      }
    }
  }
  finding.detail = "no transaction id committed twice on any replica";
  report.findings.push_back(std::move(finding));
}

void check_monotone(const std::vector<ReplicaSnapshot>& replicas,
                    OracleReport& report) {
  OracleFinding finding;
  finding.oracle = "monotone";
  finding.cls = OracleClass::kSafety;
  for (const ReplicaSnapshot& replica : replicas) {
    double last_commit_s = 0.0;
    for (std::size_t i = 0; i < replica.blocks.size(); ++i) {
      const BlockSummary& block = replica.blocks[i];
      std::ostringstream detail;
      if (block.height != i) {
        detail << "replica " << replica.id << " stores height "
               << block.height << " at ledger index " << i
               << " (heights must be consecutive from zero)";
      } else if (block.committed_at_s < last_commit_s) {
        detail << "replica " << replica.id << " commit time went backwards"
               << " at height " << block.height << " ("
               << block.committed_at_s << " s after " << last_commit_s
               << " s)";
      } else {
        last_commit_s = block.committed_at_s;
        continue;
      }
      finding.verdict = OracleVerdict::kViolation;
      finding.detail = detail.str();
      report.findings.push_back(std::move(finding));
      return;
    }
  }
  finding.detail = "heights consecutive and commit times monotone";
  report.findings.push_back(std::move(finding));
}

void check_committed_subset(const std::vector<ReplicaSnapshot>& replicas,
                            const std::vector<chain::TxId>& submitted_ids,
                            OracleReport& report) {
  OracleFinding finding;
  finding.oracle = "committed-subset";
  finding.cls = OracleClass::kSafety;
  const std::unordered_set<chain::TxId> submitted(submitted_ids.begin(),
                                                  submitted_ids.end());
  for (const ReplicaSnapshot& replica : replicas) {
    for (const BlockSummary& block : replica.blocks) {
      for (const chain::TxId id : block.txs) {
        if (submitted.contains(id)) continue;
        finding.verdict = OracleVerdict::kViolation;
        std::ostringstream detail;
        detail << "replica " << replica.id << " committed transaction "
               << id << " (height " << block.height
               << ") that no client ever submitted";
        finding.detail = detail.str();
        report.findings.push_back(std::move(finding));
        return;
      }
    }
  }
  finding.detail = "every committed transaction was submitted by a client";
  report.findings.push_back(std::move(finding));
}

void check_recovery_resume(const OracleContext& context,
                           const ExperimentResult& result,
                           const OracleConfig& config,
                           OracleReport& report) {
  OracleFinding finding;
  finding.oracle = "recovery-resume";
  finding.cls = OracleClass::kLiveness;
  if (context.schedule.empty()) {
    // Fault-free run: the chain must simply stay live.
    if (result.live_at_end) {
      finding.detail = "fault-free run stayed live";
    } else {
      finding.verdict = OracleVerdict::kViolation;
      finding.detail = "chain lost liveness with no fault injected";
    }
    report.findings.push_back(std::move(finding));
    return;
  }
  const bool all_recover = std::all_of(
      context.schedule.plans.begin(), context.schedule.plans.end(),
      [](const FaultPlan& plan) { return uses_recovery_window(plan.type); });
  if (!all_recover) {
    finding.detail =
        "schedule contains a non-recovering plan (crash); resume not "
        "required";
    report.findings.push_back(std::move(finding));
    return;
  }
  double last_recover_s = 0.0;
  for (const FaultPlan& plan : context.schedule.plans) {
    last_recover_s = std::max(last_recover_s, sim::to_seconds(plan.recover_at));
  }
  const double duration_s = sim::to_seconds(context.duration);
  const double grace_s = sim::to_seconds(config.liveness_grace);
  const auto lo = static_cast<std::size_t>(std::ceil(last_recover_s));
  const auto hi = static_cast<std::size_t>(std::min(
      duration_s, last_recover_s + grace_s));
  const double window_s = static_cast<double>(hi) - static_cast<double>(lo);
  if (window_s < sim::to_seconds(config.min_conclusive_window)) {
    std::ostringstream detail;
    detail << "inconclusive: only " << window_s
           << " s between recovery and run end";
    finding.detail = detail.str();
    report.findings.push_back(std::move(finding));
    return;
  }
  bool resumed = false;
  for (std::size_t t = lo; t < hi && t < result.throughput.size(); ++t) {
    if (result.throughput[t] > 0.0) {
      resumed = true;
      break;
    }
  }
  if (resumed) {
    finding.detail = "commit progress resumed within the grace window";
    report.findings.push_back(std::move(finding));
    return;
  }
  std::ostringstream detail;
  detail << "no commits in the " << window_s << " s grace window after the "
         << "last plan recovered at " << last_recover_s << " s";
  if (const OracleExemption* exemption =
          match_exemption(config, context, result)) {
    finding.verdict = OracleVerdict::kExpectedLoss;
    detail << "; expected for " << to_string(context.chain) << " under "
           << to_string(exemption->fault) << ": " << exemption->reason;
    if (!exemption->evidence_metric.empty()) {
      detail << " (" << exemption->evidence_metric << " = "
             << result.chain_metrics.at(exemption->evidence_metric) << ")";
    }
  } else {
    finding.verdict = OracleVerdict::kViolation;
  }
  finding.detail = detail.str();
  report.findings.push_back(std::move(finding));
}

void check_recovery_consistency(const OracleContext& context,
                                const ExperimentResult& result,
                                const OracleConfig& config,
                                OracleReport& report) {
  if (!uses_recovery_window(context.primary_fault)) return;
  OracleFinding finding;
  finding.oracle = "recovery-consistency";
  finding.cls = OracleClass::kHarness;
  const double recomputed = recovery_seconds(
      result.throughput, sim::to_seconds(context.primary_recover_at),
      context.recovery_threshold_tps, /*window_s=*/3.0);
  const bool both_never = recomputed < 0.0 && result.recovery_seconds < 0.0;
  if (both_never ||
      std::abs(recomputed - result.recovery_seconds) <=
          config.recovery_tolerance_s) {
    finding.detail = "reported recovery_seconds matches the throughput "
                     "series";
  } else {
    // A harness inconsistency, not a chain failure — never exempted.
    finding.verdict = OracleVerdict::kViolation;
    std::ostringstream detail;
    detail << "reported recovery_seconds = " << result.recovery_seconds
           << " but the throughput series recomputes to " << recomputed;
    finding.detail = detail.str();
  }
  report.findings.push_back(std::move(finding));
}

}  // namespace

std::string to_string(OracleVerdict verdict) {
  switch (verdict) {
    case OracleVerdict::kPass: return "pass";
    case OracleVerdict::kExpectedLoss: return "expected-loss";
    case OracleVerdict::kViolation: return "violation";
  }
  return "?";
}

std::string to_string(OracleClass cls) {
  switch (cls) {
    case OracleClass::kSafety: return "safety";
    case OracleClass::kLiveness: return "liveness";
    case OracleClass::kHarness: return "harness";
  }
  return "?";
}

const OracleFinding* OracleReport::violation() const {
  for (const OracleFinding& finding : findings) {
    if (finding.verdict == OracleVerdict::kViolation) return &finding;
  }
  return nullptr;
}

const OracleFinding* OracleReport::safety_violation() const {
  for (const OracleFinding& finding : findings) {
    if (finding.cls == OracleClass::kSafety &&
        finding.verdict == OracleVerdict::kViolation) {
      return &finding;
    }
  }
  return nullptr;
}

std::string OracleReport::summary() const {
  std::ostringstream out;
  bool any = false;
  for (const OracleFinding& finding : findings) {
    if (finding.verdict == OracleVerdict::kPass) continue;
    if (any) out << "\n";
    out << to_string(finding.verdict) << " [" << finding.oracle << "] "
        << finding.detail;
    any = true;
  }
  if (!any) return "all oracles passed";
  return out.str();
}

std::vector<OracleExemption> default_exemptions() {
  // Every registered chain's self-declared failure modes (the paper's
  // per-chain observations live in ChainTraits::loss_exemptions next to
  // each chain's model). Each exemption requires the named chain_metrics
  // evidence to actually be present in the run, so a Solana liveness loss
  // without a panic still counts as a violation.
  std::vector<OracleExemption> exemptions;
  const chain::Registry& registry = chain_registry();
  for (const chain::ChainId id : registry.ids()) {
    for (const chain::ChainLossExemption& exemption :
         registry.traits(id).loss_exemptions) {
      exemptions.push_back({chain_kind(id), exemption.fault,
                            exemption.evidence_metric, exemption.reason});
    }
  }
  return exemptions;
}

OracleContext make_oracle_context(const ExperimentConfig& config) {
  OracleContext context;
  context.chain = config.chain;
  context.schedule = resolved_schedule(config);
  context.adversarial = adversarial_nodes(context.schedule);
  context.duration = config.duration;
  context.primary_fault = config.fault;
  context.primary_recover_at = config.recover_at;
  context.recovery_threshold_tps =
      0.5 * config.tps_per_client * static_cast<double>(config.clients);
  return context;
}

OracleReport check_invariants(const OracleContext& context,
                              const ExperimentResult& result,
                              const OracleConfig& config) {
  OracleReport report;
  // A Byzantine replica's own ledger proves nothing: audit safety over the
  // honest replicas only. A fork *between honest replicas* — the damage an
  // equivocator actually does — remains a violation.
  std::vector<ReplicaSnapshot> honest;
  honest.reserve(result.replicas.size());
  for (const ReplicaSnapshot& replica : result.replicas) {
    if (!std::binary_search(context.adversarial.begin(),
                            context.adversarial.end(), replica.id)) {
      honest.push_back(replica);
    }
  }
  if (honest.empty()) {
    report.findings.push_back(
        {"safety", OracleClass::kSafety, OracleVerdict::kPass,
         result.replicas.empty()
             ? "skipped: result carries no replica snapshots (set "
               "ExperimentConfig::capture_replicas)"
             : "skipped: every captured replica is adversarial"});
  } else {
    check_agreement(honest, report);
    check_no_duplicate_commit(honest, report);
    check_monotone(honest, report);
    check_committed_subset(honest, result.submitted_ids, report);
  }
  check_recovery_resume(context, result, config, report);
  check_recovery_consistency(context, result, config, report);
  for (const OracleFinding& finding : report.findings) {
    report.verdict = worst(report.verdict, finding.verdict);
  }
  return report;
}

}  // namespace stabl::core
