// Chaos campaign engine: randomized multi-plan fault schedules, oracle
// verdicts and automatic schedule shrinking.
//
// The paper's matrix scripts nine fault types one at a time; real outages
// compose (a partition during churn, loss on top of a throttled link).
// The chaos engine samples *valid* FaultSchedules of 1-4 overlapping plans
// from a seeded Rng, runs each against a chain, audits the run with the
// invariant oracles (core/oracle.hpp), and — when an oracle fires — delta-
// debugs the schedule down to a minimal repro, emitted as replayable JSON.
//
// Determinism discipline: a campaign trial draws everything from
// root.derive(stream) where stream encodes (chain, trial), so the same
// (chain, seed) always yields the byte-identical schedule and verdict
// regardless of how many jobs execute the campaign or in which order
// trials complete.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/oracle.hpp"
#include "sim/rng.hpp"

namespace stabl::core {

/// Knob ranges for the schedule generator. All windows are whole seconds
/// and all knobs are quantized (loss to percents, throttle to whole
/// bytes/s, gray to whole ms, delay to whole s) so that a schedule
/// round-trips byte-identically through its JSON repro.
struct ChaosGenConfig {
  /// Cluster geometry the schedules must be valid for.
  std::size_t n = 10;
  /// Nodes 0..entry_nodes-1 take client traffic; by default they are never
  /// targeted, matching the paper's "faulty nodes never receive
  /// transactions" deployment.
  std::size_t entry_nodes = 5;
  bool allow_entry_targets = false;

  std::size_t min_plans = 1;
  std::size_t max_plans = 4;
  /// Targets drawn per plan (without replacement), clamped to the
  /// eligible-node pool.
  std::size_t max_targets = 3;
  /// Fault types the generator samples from. kNone/kSecureClient inject
  /// nothing and are excluded by default; kCrash is sampled (a schedule
  /// containing one is permanently degraded and the recovery oracle knows
  /// it).
  std::vector<FaultType> types{
      FaultType::kCrash,  FaultType::kTransient, FaultType::kPartition,
      FaultType::kDelay,  FaultType::kChurn,     FaultType::kLoss,
      FaultType::kThrottle, FaultType::kGray};

  /// Injection windows, whole seconds: inject in [earliest_inject_s,
  /// latest_recover_s - min_window_s], window length in [min_window_s,
  /// min(max_window_s, latest_recover_s - inject)].
  int earliest_inject_s = 30;
  int latest_recover_s = 140;
  int min_window_s = 5;
  int max_window_s = 60;

  /// Per-type knob ranges (inclusive, quantized as documented above).
  double min_loss = 0.05, max_loss = 0.90;              // whole percents
  double min_throttle_bytes_per_s = 8.0 * 1024.0;       // whole bytes
  double max_throttle_bytes_per_s = 256.0 * 1024.0;
  int min_delay_s = 1, max_delay_s = 120;               // whole seconds
  int min_churn_period_s = 3, max_churn_period_s = 20;  // down + up each
  int min_gray_ms = 500, max_gray_ms = 5000;            // whole ms
  int min_eclipse_ms = 100, max_eclipse_ms = 2000;      // whole ms
  double min_eclipse_filter = 0.05, max_eclipse_filter = 0.90;  // percents
};

/// Generator windows scaled for a run of the given duration: inject from
/// duration/8, everything recovered by duration/3, so the recovery-resume
/// oracle always has a conclusive observation window.
ChaosGenConfig default_gen_for(sim::Duration duration);

/// default_gen_for plus the adversarial plan space: equivocate, withhold
/// and eclipse join the sampled types. Opt-in — default campaigns stay
/// byte-identical to builds that predate the adversarial family.
ChaosGenConfig adversarial_gen_for(sim::Duration duration);

/// Sample one schedule. Consumes rng state. Every returned schedule is
/// canonical() and passes validate() against config.n (enforced by
/// assertion — a sampling bug is a programming error, not an input error).
FaultSchedule generate_schedule(sim::Rng& rng, const ChaosGenConfig& config);

/// Replayable JSON repro of a schedule: {"plans":[{...}]} with only the
/// fields the plan's type reads. canonical(schedule) is serialized, so
/// to_json . from_json . to_json is byte-stable.
std::string schedule_to_json(const FaultSchedule& schedule);

/// Parse schedule_to_json output (a minimal JSON reader — objects, arrays,
/// strings, numbers — sufficient for repro files, not a general parser).
/// Throws std::invalid_argument on malformed input or unknown fields.
FaultSchedule schedule_from_json(const std::string& json);

/// Re-runs a candidate schedule and reports the oracle verdict. The
/// shrinker is harness-agnostic: campaigns evaluate with run_experiment,
/// the self-test evaluates with a toy simulation.
using ScheduleEvaluator = std::function<OracleReport(const FaultSchedule&)>;

struct ShrinkOptions {
  /// Evaluation budget (each candidate costs one full run).
  std::size_t max_runs = 200;
  /// Minimum fault window the time-shrinking pass may reach, seconds.
  int min_window_s = 1;
};

struct ShrinkResult {
  FaultSchedule schedule;    ///< minimal schedule still violating
  std::string oracle;        ///< the oracle both schedules trip
  OracleReport report;       ///< verdict of the minimal schedule
  std::size_t runs = 0;      ///< evaluations spent (including the initial)
  std::size_t initial_plans = 0;
};

/// ddmin-style greedy shrink: (1) drop whole plans to a fixed point,
/// (2) narrow each plan's target list, (3) halve each plan's fault window
/// down to min_window_s — keeping a candidate only when the evaluator
/// still reports a violation of the SAME oracle. Returns std::nullopt when
/// the original schedule does not violate at all.
std::optional<ShrinkResult> shrink_schedule(const FaultSchedule& schedule,
                                            const ScheduleEvaluator& evaluate,
                                            const ShrinkOptions& options = {});

struct ChaosCampaignConfig {
  std::vector<ChainKind> chains{kAllChains,
                                kAllChains + std::size(kAllChains)};
  std::size_t trials_per_chain = 5;
  /// Root seed; trial k of chain c draws from derive(c * 1'000'003 + k).
  std::uint64_t seed = 42;
  /// Template for every trial run (chain/fault/seed/schedule overwritten
  /// per trial; capture_replicas forced on so the safety oracles can see).
  ExperimentConfig base{};
  /// Generator knobs; windows default to default_gen_for(base.duration).
  std::optional<ChaosGenConfig> gen{};
  OracleConfig oracle{};
  /// Shrink every violating schedule to a minimal repro.
  bool shrink = false;
  ShrinkOptions shrink_options{};
  /// Re-run every violating trial's minimal schedule (the shrunk one when
  /// shrinking is on, else the original) with a TraceSink attached and
  /// store the Perfetto JSON in ChaosTrial::repro_trace — every repro
  /// ships with its timeline. The traced re-run is byte-identical to the
  /// audited run (tracing is observe-only), so verdicts never change.
  bool trace_repros = true;
  /// Worker lanes (1 = serial). Output is byte-identical for any value.
  unsigned jobs = 1;
  /// Wall-clock progress heartbeat on stderr (core::Heartbeat). Excluded
  /// from every deterministic serializer, like wall_ms.
  bool heartbeat = false;
};

struct ChaosTrial {
  ChainKind chain = ChainKind::kRedbelly;
  std::size_t trial = 0;             ///< index within the chain
  std::uint64_t experiment_seed = 0;  ///< drawn from the trial stream
  FaultSchedule schedule;
  OracleReport report;
  /// Slim run summary (full replica snapshots are dropped after auditing).
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  bool live_at_end = false;
  /// Only for violating trials when shrinking is on.
  std::optional<ShrinkResult> shrunk;
  /// Perfetto trace_event JSON of the violating run (minimal schedule),
  /// when ChaosCampaignConfig::trace_repros is on. Deterministic — it is a
  /// function of (config, seed, schedule) — but deliberately kept out of
  /// to_json(): a campaign document should not embed megabytes of
  /// timeline. Harness binaries write it to a sidecar file instead.
  std::string repro_trace;
  /// Wall-clock milliseconds this trial consumed (run + oracles + shrink +
  /// traced re-run). Machine-dependent; excluded from to_json().
  double wall_ms = 0.0;
};

struct ChaosCampaignResult {
  /// Chain-major, trial-minor — deterministic order.
  std::vector<ChaosTrial> trials;

  [[nodiscard]] std::size_t violations() const;
  [[nodiscard]] std::size_t expected_losses() const;
  /// One row per trial: chain, trial, seed, plans, verdict, worst oracle.
  [[nodiscard]] std::string summary_table() const;
  /// Full campaign as a JSON array (schedule + findings + repro).
  [[nodiscard]] std::string to_json() const;
  /// Wall-clock phase profile: one row per trial plus a total row.
  [[nodiscard]] std::string timing_table() const;
};

/// The ExperimentConfig a chaos trial runs: base with the chain set, the
/// primary fault disabled (the schedule carries every plan), the sampled
/// schedule in extra_faults and replica capture forced on.
ExperimentConfig chaos_trial_config(const ChaosCampaignConfig& config,
                                    ChainKind chain,
                                    std::uint64_t experiment_seed,
                                    const FaultSchedule& schedule);

/// Run trials_per_chain randomized schedules against every chain, fanned
/// across config.jobs threads into index-addressed slots: byte-identical
/// output for any jobs value.
ChaosCampaignResult run_chaos_campaign(const ChaosCampaignConfig& config);

}  // namespace stabl::core
