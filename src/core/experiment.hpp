// The STABL experiment runner (paper §3, "Experimental settings").
//
// Deployment geometry: n = 10 blockchain nodes and 5 client machines, each
// client sending native transfers at 40 TPS (200 TPS total) to one
// blockchain node (nodes 0-4). Failures are injected on the remaining
// nodes 5-9, "this way, faulty nodes never receive transactions they would
// otherwise lose". A run lasts 400 s; faults hit at 133 s and transient
// conditions clear at 266 s. The Byzantine-node-tolerance experiment (§7)
// instead connects every client to 4 = max(t_B)+1 nodes and doubles the
// VM size to 8 vCPUs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "chain/registry.hpp"
#include "chain/types.hpp"
#include "core/fault.hpp"
#include "core/resilience.hpp"
#include "core/sensitivity.hpp"
#include "core/traffic.hpp"
#include "core/workload.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"

namespace stabl::chain {
class BlockchainNode;
}  // namespace stabl::chain

namespace stabl::sim {
class LifecycleRecorder;
class TraceSink;
}  // namespace stabl::sim

namespace stabl::core {

class MetricsRegistry;

/// ChainKind is a thin alias over chain::Registry ids: the five paper
/// chains register at tier 0 and therefore always hold ids 0-4 in
/// alphabetical order — exactly these historical enum values. Extension
/// chains (e.g. the refbft reference plugin) get ids past the enum range;
/// every ChainKind consumer resolves through the registry, so those values
/// are just as valid.
enum class ChainKind { kAlgorand, kAptos, kAvalanche, kRedbelly, kSolana };

/// The paper's five chains. Campaign/bench defaults iterate this — not the
/// registry — so linking an extension chain never silently widens a
/// default campaign.
inline constexpr ChainKind kAllChains[] = {
    ChainKind::kAlgorand, ChainKind::kAptos, ChainKind::kAvalanche,
    ChainKind::kRedbelly, ChainKind::kSolana};

/// The process-wide chain registry, with the five built-in chains'
/// registration objects anchored (a plain chain::Registry::global() call
/// from a binary that never names a chain symbol would let the static
/// archive linker drop their translation units — and the registrations
/// with them).
const chain::Registry& chain_registry();

constexpr chain::ChainId chain_id(ChainKind chain) {
  return static_cast<chain::ChainId>(chain);
}
constexpr ChainKind chain_kind(chain::ChainId id) {
  return static_cast<ChainKind>(id);
}

/// Registry traits of a chain. Throws std::invalid_argument (listing the
/// registered chains) on an out-of-range value — the descriptive failure
/// an out-of-range ChainKind cast produces everywhere now.
const chain::ChainTraits& chain_traits(ChainKind chain);

/// Case-insensitive name -> ChainKind. Throws std::invalid_argument
/// listing the valid names when unknown.
ChainKind parse_chain_name(std::string_view name);

std::string to_string(ChainKind chain);

/// t_B: Algorand and Avalanche tolerate a 20% coalition (⌈n/5-1⌉); Aptos,
/// Redbelly and Solana tolerate less than a third (⌈n/3-1⌉). Paper §2.
std::size_t fault_tolerance(ChainKind chain, std::size_t n);

/// Chain-specific knobs exposed for the ablation benches.
struct ChainTuning {
  /// Avalanche: disable the InboundMsgThrottler (shows the collapse is
  /// throttling-induced).
  std::optional<bool> avalanche_throttling;
  /// Avalanche: override the CPU quota target.
  std::optional<double> avalanche_cpu_target;
  /// Solana: disable warm-up epochs (the ≥360-slots-per-epoch fix).
  std::optional<bool> solana_warmup_epochs;
  /// Redbelly: MaxIdleTime in seconds (developers suggested 30 s).
  std::optional<double> redbelly_max_idle_s;
};

struct ExperimentConfig {
  ChainKind chain = ChainKind::kRedbelly;
  std::size_t n = 10;
  std::size_t clients = 5;
  double tps_per_client = 40.0;
  double vcpus = 4.0;
  /// Blockchain nodes each client submits to (1, or t_B+1 = 4 for the
  /// secure client).
  int client_fanout = 1;
  /// 0 = wait for all endpoints (paper's secure client); k > 0 = accept on
  /// k matching result hashes (credence.js-style verified client).
  std::size_t client_matching = 0;
  std::uint64_t seed = 42;
  sim::Duration duration = sim::sec(400);
  FaultType fault = FaultType::kNone;
  /// Number of faulty nodes; -1 selects the paper's default (t for crash,
  /// t+1 for transient and partition).
  int fault_count = -1;
  sim::Duration inject_at = sim::sec(133);
  sim::Duration recover_at = sim::sec(266);
  /// Explicit target override for the primary fault; empty selects the
  /// paper's default (nodes that take no client traffic). Targeting an
  /// entry node is how the resilient client's failover is studied.
  std::vector<net::NodeId> fault_targets{};
  /// kLoss: per-packet drop probability between targets and the rest.
  double loss_probability = 0.2;
  /// kThrottle: link bandwidth in bytes/s between targets and the rest.
  double throttle_bytes_per_s = 64.0 * 1024.0;
  /// kGray: service latency added to all traffic touching a target.
  sim::Duration gray_latency = sim::sec(2);
  /// kEclipse: the victim whose connectivity the targets (attackers)
  /// intercept, the extra delay added to each intercepted packet, and the
  /// per-packet filter (drop) probability. The default victim is the last
  /// node — like the paper's fault targets it takes no client traffic.
  net::NodeId eclipse_victim = 9;
  sim::Duration eclipse_delay = sim::ms(500);
  double eclipse_filter = 0.2;
  /// Additional fault plans armed alongside the primary `fault` (engine
  /// v2 composition: loss during a partition, churn plus delay, ...).
  /// Plans with empty targets get the same default target selection as
  /// the primary fault of their type.
  FaultSchedule extra_faults{};
  /// Client-side timeouts + failover + backoff + circuit breaker. When
  /// enabled, every client gets all entry nodes as failover candidates
  /// (rotated so client i starts at entry node i) and client_fanout is
  /// ignored — submissions go to one endpoint at a time.
  ResilienceConfig resilience{};
  ChainTuning tuning{};
  /// Generic per-chain parameter overrides, merged over the chain's
  /// registered defaults (chain::ChainTraits::default_params). Strict: a
  /// key the chain did not declare throws std::invalid_argument. The
  /// legacy `tuning` knobs are applied on top, preserving their
  /// ignored-on-other-chains semantics. Scenario files (core/scenario.hpp)
  /// populate this.
  chain::ChainParams chain_params{};
  /// Submission shape (average rate stays tps_per_client). The paper uses
  /// the constant shape; the others quantify its §8 limitation.
  WorkloadConfig workload{};
  /// Production traffic population (core/traffic.hpp): accounts per
  /// client, Zipf skew, hot-key contention, regions. Inactive by default —
  /// the paper's one-account-per-client workload stays byte-for-byte.
  TrafficConfig traffic{};
  /// Capture per-replica ledger snapshots and the clients' submitted
  /// transaction ids into the result, so the invariant oracles
  /// (core/oracle.hpp) can audit the run. Off by default: a 400 s run
  /// snapshots ~10 x 80k transaction ids, too heavy to keep for every
  /// cell of a large seed-swept campaign.
  bool capture_replicas = false;
  /// Observability (core/trace.hpp, core/metrics.hpp). Both observe-only:
  /// attaching them never perturbs RNG draws or event ordering, so every
  /// report stays byte-identical with or without them (tests assert this).
  /// Not owned; null = disabled. A sink/registry must not be shared across
  /// concurrently running cells.
  sim::TraceSink* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
  /// Sim-time sampling period of the metrics ticker.
  sim::Duration metrics_period = sim::sec(1);
  /// Per-transaction lifecycle recorder (sim/lifecycle.hpp). Same
  /// observe-only contract and ownership rules as trace/metrics; the
  /// attribution layer (core/attribution.hpp) attaches one per run.
  sim::LifecycleRecorder* lifecycle = nullptr;
};

/// One committed block as the oracles see it: structure only, no payloads.
struct BlockSummary {
  std::uint64_t height = 0;
  std::uint64_t round = 0;
  double committed_at_s = 0.0;
  std::vector<chain::TxId> txs;
};

/// A replica's ledger at the end of the run, plus its process state.
struct ReplicaSnapshot {
  net::NodeId id = 0;
  bool alive_at_end = true;
  int restarts = 0;
  /// Ledger::content_hash() — fast whole-chain equality probe.
  std::uint64_t ledger_hash = 0;
  std::vector<BlockSummary> blocks;
};

/// Snapshot every node's ledger (tests and custom harnesses reuse this; the
/// chaos self-test snapshots its deliberately broken toy chain with it).
std::vector<ReplicaSnapshot> snapshot_replicas(
    const std::vector<chain::BlockchainNode*>& nodes);

struct ExperimentResult {
  std::vector<double> latencies;  // client-observed, seconds
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::vector<double> throughput;  // committed tx per 1 s bin (node 0)
  /// Whether transactions were still being committed at the end of the
  /// run; false means the chain lost liveness (infinite sensitivity).
  bool live_at_end = false;
  /// Seconds from recover_at to sustained throughput; negative if never
  /// (only meaningful for transient/partition runs).
  double recovery_seconds = -1.0;
  double mean_latency_s = 0.0;
  double p50_latency_s = 0.0;
  double p99_latency_s = 0.0;
  std::uint64_t blocks = 0;
  std::uint64_t events = 0;
  net::NetworkStats net_stats{};
  /// Resubmission bookkeeping summed over all clients: lost vs. recovered
  /// vs. duplicate-committed transactions (all zeros for naive clients).
  ResilienceStats resilience{};
  /// Transactions still awaiting a commit notification at the end.
  std::uint64_t in_flight_at_end = 0;
  /// Chain-specific diagnostic counters, summed over all nodes (the
  /// paper's log-derived quantities: "speculative_aborts",
  /// "throttled_dropped", "panicked", ...). Keys depend on the chain.
  std::map<std::string, double> chain_metrics;
  /// Only populated when ExperimentConfig::capture_replicas is set.
  std::vector<ReplicaSnapshot> replicas;
  /// Union of every client's generated transaction ids (capture_replicas
  /// only), for the committed-subset-of-submitted oracle.
  std::vector<chain::TxId> submitted_ids;
};

ExperimentResult run_experiment(const ExperimentConfig& config);

/// The full fault schedule run_experiment arms for a config: the primary
/// `fault` plan with the paper's default targets resolved, followed by the
/// `extra_faults` plans (empty target lists resolved the same way). The
/// invariant oracles call this to learn exactly which windows and targets
/// a run was subjected to.
FaultSchedule resolved_schedule(const ExperimentConfig& config);

/// A baseline/altered pair and its sensitivity score. The baseline is the
/// altered config with no fault and fanout 1 (same chain, same resources,
/// same seed), exactly the paper's pairing.
struct SensitivityRun {
  ExperimentResult baseline;
  ExperimentResult altered;
  SensitivityScore score;
};

/// The fault-free twin of a config: no fault, no extra plans, fanout 1,
/// constant workload, observability detached — the paper's pairing rule,
/// shared by run_sensitivity and the attribution campaign.
ExperimentConfig baseline_of(const ExperimentConfig& altered_config);

SensitivityRun run_sensitivity(const ExperimentConfig& altered_config,
                               const SensitivityOptions& options = {});

}  // namespace stabl::core
