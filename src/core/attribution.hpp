// Sensitivity attribution: *where* does the lost time go?
//
// The paper's radar charts say how much each chain's client-observed
// behavior degrades under a fault; this layer explains the degradation by
// stage. Every (chain, fault) cell runs as a paired twin experiment —
// fault-free baseline vs altered, same seed, the exact pairing rule of
// run_sensitivity — with a sim::LifecycleRecorder attached to each run.
// The recorder's per-transaction stage times fold into five latency
// segments per run:
//
//   submit     = submitted      -> entry_received   (client -> entry node)
//   admission  = entry_received -> queued           (RPC -> mempool)
//   queueing   = queued         -> proposed         (mempool wait)
//   consensus  = proposed       -> committed        (rounds, votes, stalls)
//   notify     = committed      -> confirmed        (commit notification,
//                                                    incl. client retries)
//
// Stage times are clamped monotone by carry-forward (sim::stage_times), so
// the five segment latencies of a confirmed transaction telescope EXACTLY
// to its client-observed commit latency, and the per-stage mean deltas of
// a cell sum (within floating-point rounding) to the cell's measured mean
// commit-latency delta — the invariant tests/test_trace.cpp asserts.
//
// Unconfirmed transactions are attributed by the deepest stage they
// reached (loss breakdown), and the resilience hop counters (resubmit,
// hedge, failover, recovery replay) quantify how often the fault forced a
// detour. The cell's dominant stage is the segment with the largest
// absolute mean-latency delta.
//
// Determinism: cells fan out over a ThreadPool into index-addressed slots
// (the campaign discipline), every serializer uses fixed precisions, and
// the recorder is independent of TraceSink — to_csv()/to_json() are
// byte-identical at every jobs setting and with tracing on or off.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "sim/lifecycle.hpp"

namespace stabl::core {

struct AttributionConfig {
  /// Chains to attribute (defaults to all five paper chains; nversion_*
  /// meta-chains work too — pass their registry ids).
  std::vector<ChainKind> chains{kAllChains,
                                kAllChains + std::size(kAllChains)};
  /// Fault dimensions (defaults to the paper's four).
  std::vector<FaultType> faults{FaultType::kCrash, FaultType::kTransient,
                                FaultType::kPartition,
                                FaultType::kSecureClient};
  /// Template applied to both twins of every cell; chain/fault set per
  /// cell (secure-client cells get fanout 4 and 8 vCPUs, as in §7).
  ExperimentConfig base{};
  /// Worker lanes; 1 = serial. Output is byte-identical for any value.
  unsigned jobs = 1;
  /// Wall-clock progress heartbeat on stderr (core::Heartbeat). Never
  /// touches the deterministic serializers.
  bool heartbeat = false;
};

/// Number of latency segments (stage transitions).
inline constexpr std::size_t kNumStageSegments = sim::kNumTxStages - 1;

/// One run's per-stage fold of its lifecycle records.
struct StageBreakdown {
  std::uint64_t submitted = 0;  ///< records seen by the recorder
  std::uint64_t confirmed = 0;  ///< records that reached kConfirmed
  /// Mean latency of each segment over the confirmed transactions,
  /// seconds. Telescopes exactly: the entries sum to mean_latency_s.
  std::array<double, kNumStageSegments> mean_s{};
  /// Mean client-observed commit latency over the confirmed transactions.
  double mean_latency_s = 0.0;
  /// Log-scale segment-latency histograms (Histogram::log_bounds(0.001,
  /// 256.0, 4)) over the confirmed transactions, for p50/p90/p99 columns.
  std::array<Histogram, kNumStageSegments> segments{};
  /// Unconfirmed transactions bucketed by the deepest stage they reached
  /// (index = sim::TxStage). lost_at[kConfirmed] is always 0.
  std::array<std::uint64_t, sim::kNumTxStages> lost_at{};
  /// Resilience hop totals over all transactions (index = sim::TxHop).
  std::array<std::uint64_t, sim::kNumTxHops> hops{};
};

/// Fold a recorder's records into a StageBreakdown. Deterministic: record
/// order is the recorder's first-touch order.
StageBreakdown fold_lifecycle(const sim::LifecycleRecorder& recorder);

/// One attributed (chain, fault) cell: both twins' breakdowns plus the
/// headline measurements of the paired runs.
struct AttributionCell {
  ChainKind chain = ChainKind::kRedbelly;
  FaultType fault = FaultType::kNone;
  std::uint64_t seed = 0;
  SensitivityScore score{};       ///< paper score of the pair, for context
  bool altered_live_at_end = true;
  StageBreakdown baseline;
  StageBreakdown altered;
  /// Mean commit-latency delta as run_experiment measured it
  /// (altered.mean_latency_s − baseline.mean_latency_s of the results) —
  /// the quantity the per-stage deltas must sum to.
  double measured_latency_delta_s = 0.0;

  /// Per-segment mean-latency delta, altered − baseline, seconds.
  [[nodiscard]] std::array<double, kNumStageSegments> delta_s() const;
  /// Loss-fraction delta per deepest stage (altered − baseline share of
  /// submitted transactions never confirmed).
  [[nodiscard]] std::array<double, sim::kNumTxStages> loss_delta() const;
  /// Index into stage_segment_names() of the segment with the largest
  /// absolute mean-latency delta.
  [[nodiscard]] std::size_t dominant_segment() const;
  /// The dominant segment's share of the total absolute delta, in [0, 1].
  [[nodiscard]] double dominant_share() const;
};

struct AttributionReport {
  /// Chain-major, fault order — deterministic for any jobs value.
  std::vector<AttributionCell> cells;

  [[nodiscard]] const AttributionCell* get(ChainKind chain,
                                           FaultType fault) const;
  /// Human-readable per-cell table: one row per cell with the five
  /// segment deltas, the dominant stage and the loss delta.
  [[nodiscard]] std::string to_table() const;
  /// Machine-readable CSV: per-cell row with baseline/altered/delta mean
  /// per segment plus p50/p90/p99 of the altered run's segments, loss and
  /// hop columns. Byte-identical for any jobs value and trace on/off.
  [[nodiscard]] std::string to_csv() const;
  /// Full report as JSON (self-describing, fixed precision). Byte-stable
  /// under the same conditions as to_csv().
  [[nodiscard]] std::string to_json() const;
};

/// Run the paired attribution campaign over config.jobs threads.
AttributionReport run_attribution(const AttributionConfig& config);

}  // namespace stabl::core
