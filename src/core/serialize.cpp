#include "core/serialize.hpp"

#include <cmath>
#include <sstream>

#include "core/report.hpp"

namespace stabl::core {
namespace {

std::string score_field(const SensitivityScore& score) {
  if (score.invalid_baseline) return "invalid";
  if (score.infinite) return "inf";
  return Table::num(score.value, 4);
}

void append_result_json(std::ostringstream& out, const char* name,
                        const ExperimentResult& result) {
  out << '"' << name << "\":{"
      << "\"submitted\":" << result.submitted
      << ",\"committed\":" << result.committed
      << ",\"blocks\":" << result.blocks
      << ",\"mean_latency_s\":" << Table::num(result.mean_latency_s, 6)
      << ",\"p50_latency_s\":" << Table::num(result.p50_latency_s, 6)
      << ",\"p99_latency_s\":" << Table::num(result.p99_latency_s, 6)
      << ",\"live_at_end\":" << (result.live_at_end ? "true" : "false")
      << ",\"recovery_seconds\":"
      << Table::num(result.recovery_seconds, 3)
      << ",\"lost\":" << (result.submitted - result.committed)
      << ",\"recovered\":" << result.resilience.recovered
      << ",\"duplicate_commits\":" << result.resilience.duplicate_commits
      << ",\"resubmissions\":" << result.resilience.resubmissions
      << ",\"failovers\":" << result.resilience.failovers;
  // Hedging fields are elided when all-zero so pre-hedging reports (and
  // the checked-in baseline artifacts) stay byte-identical.
  if (result.resilience.hedges_armed != 0 ||
      result.resilience.hedges_won != 0 ||
      result.resilience.hedges_cancelled != 0) {
    out << ",\"hedges_armed\":" << result.resilience.hedges_armed
        << ",\"hedges_won\":" << result.resilience.hedges_won
        << ",\"hedges_cancelled\":" << result.resilience.hedges_cancelled;
  }
  out << ",\"throughput\":[";
  for (std::size_t i = 0; i < result.throughput.size(); ++i) {
    if (i > 0) out << ',';
    out << Table::num(result.throughput[i], 0);
  }
  out << "]}";
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string summary_csv_header() {
  return "chain,fault,score,benefits,live_at_end,recovery_s,"
         "baseline_mean_s,altered_mean_s,baseline_committed,"
         "altered_committed";
}

std::string summary_csv_row(ChainKind chain, FaultType fault,
                            const SensitivityRun& run) {
  return csv_join({to_string(chain), to_string(fault),
                   score_field(run.score),
                   run.score.benefits ? "1" : "0",
                   run.altered.live_at_end ? "1" : "0",
                   Table::num(run.altered.recovery_seconds, 2),
                   Table::num(run.baseline.mean_latency_s, 4),
                   Table::num(run.altered.mean_latency_s, 4),
                   std::to_string(run.baseline.committed),
                   std::to_string(run.altered.committed)});
}

std::string throughput_csv(const ExperimentResult& result) {
  std::ostringstream out;
  out << "second,tps\n";
  for (std::size_t t = 0; t < result.throughput.size(); ++t) {
    out << t << ',' << Table::num(result.throughput[t], 0) << '\n';
  }
  return out.str();
}

std::string to_json(const OracleReport& report) {
  std::ostringstream out;
  out << "{\"verdict\":\"" << to_string(report.verdict)
      << "\",\"findings\":[";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const OracleFinding& finding = report.findings[i];
    if (i > 0) out << ',';
    out << "{\"oracle\":\"" << json_escape(finding.oracle)
        << "\",\"verdict\":\"" << to_string(finding.verdict)
        << "\",\"detail\":\"" << json_escape(finding.detail) << "\"}";
  }
  out << "]}";
  return out.str();
}

std::string to_json(ChainKind chain, FaultType fault,
                    const SensitivityRun& run) {
  std::ostringstream out;
  out << "{\"chain\":\"" << json_escape(to_string(chain)) << "\","
      << "\"fault\":\"" << json_escape(to_string(fault)) << "\","
      << "\"score\":"
      << (run.score.invalid_baseline
              ? std::string("\"invalid\"")
              : run.score.infinite ? std::string("\"inf\"")
                                   : Table::num(run.score.value, 6))
      << ",\"benefits\":" << (run.score.benefits ? "true" : "false")
      << ",\"invalid_baseline\":"
      << (run.score.invalid_baseline ? "true" : "false") << ',';
  append_result_json(out, "baseline", run.baseline);
  out << ',';
  append_result_json(out, "altered", run.altered);
  out << '}';
  return out.str();
}

}  // namespace stabl::core
