#include "core/campaign.hpp"

#include <sstream>

#include "core/report.hpp"
#include "core/serialize.hpp"

namespace stabl::core {

const SensitivityRun* CampaignResult::get(ChainKind chain,
                                          FaultType fault) const {
  const auto it = runs.find({chain, fault});
  return it == runs.end() ? nullptr : &it->second;
}

std::string CampaignResult::to_csv() const {
  std::ostringstream out;
  out << summary_csv_header() << '\n';
  for (const auto& [key, run] : runs) {
    out << summary_csv_row(key.first, key.second, run) << '\n';
  }
  return out.str();
}

std::string CampaignResult::to_json() const {
  std::ostringstream out;
  out << '[';
  bool first = true;
  for (const auto& [key, run] : runs) {
    if (!first) out << ',';
    first = false;
    out << stabl::core::to_json(key.first, key.second, run);
  }
  out << ']';
  return out.str();
}

CampaignResult run_campaign(const CampaignConfig& config) {
  CampaignResult result;
  for (const ChainKind chain : config.chains) {
    for (const FaultType fault : config.faults) {
      ExperimentConfig cell = config.base;
      cell.chain = chain;
      cell.fault = fault;
      if (fault == FaultType::kSecureClient) {
        cell.client_fanout = 4;
        cell.vcpus = 8.0;
      }
      SensitivityRun run = run_sensitivity(cell);
      result.radar.record(chain, fault, run.score);
      if (config.on_cell_done) config.on_cell_done(chain, fault, run);
      result.runs.emplace(std::make_pair(chain, fault), std::move(run));
    }
  }
  return result;
}

std::vector<std::string> check_gate(const CampaignResult& result,
                                    const CampaignGate& gate) {
  std::vector<std::string> violations;
  const auto expects_infinite = [&](ChainKind chain, FaultType fault) {
    for (const auto& [c, f] : gate.expected_infinite) {
      if (c == chain && f == fault) return true;
    }
    return false;
  };
  for (const auto& [key, run] : result.runs) {
    const auto [chain, fault] = key;
    const std::string name =
        to_string(chain) + "/" + to_string(fault);
    if (expects_infinite(chain, fault)) {
      if (!run.score.infinite) {
        violations.push_back(name + ": expected liveness loss, got score " +
                             format_score(run.score));
      }
      continue;
    }
    if (run.score.infinite) {
      if (gate.flag_unexpected_liveness_loss) {
        violations.push_back(name + ": unexpected liveness loss");
      }
      continue;
    }
    const auto limit = gate.max_score.find(fault);
    if (limit != gate.max_score.end() &&
        run.score.value > limit->second) {
      violations.push_back(name + ": score " + format_score(run.score) +
                           " exceeds gate " +
                           Table::num(limit->second, 2));
    }
  }
  return violations;
}

}  // namespace stabl::core
