#include "core/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <sstream>

#include "core/metrics.hpp"
#include "core/parallel.hpp"
#include "core/report.hpp"
#include "core/serialize.hpp"

namespace stabl::core {
namespace {

std::string sweep_csv_suffix(const SeedSweepStats& stats) {
  return csv_join({std::to_string(stats.seeds),
                   Table::num(stats.mean, 4), Table::num(stats.min, 4),
                   Table::num(stats.max, 4), Table::num(stats.stddev, 4),
                   std::to_string(stats.liveness_losses)});
}

std::string sweep_json(const SeedSweepStats& stats) {
  std::ostringstream out;
  out << "{\"seeds\":" << stats.seeds << ",\"finite\":" << stats.finite
      << ",\"liveness_losses\":" << stats.liveness_losses
      << ",\"invalid_baseline\":"
      << (stats.any_invalid_baseline ? "true" : "false")
      << ",\"score_mean\":" << Table::num(stats.mean, 6)
      << ",\"score_min\":" << Table::num(stats.min, 6)
      << ",\"score_max\":" << Table::num(stats.max, 6)
      << ",\"score_stddev\":" << Table::num(stats.stddev, 6) << '}';
  return out.str();
}

}  // namespace

std::vector<std::uint64_t> CampaignConfig::seed_list() const {
  if (!seeds.empty()) return seeds;
  std::vector<std::uint64_t> list;
  const std::size_t count = std::max<std::size_t>(num_seeds, 1);
  list.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    list.push_back(base.seed + static_cast<std::uint64_t>(i));
  }
  return list;
}

SeedSweepStats aggregate_seed_sweep(const std::vector<SensitivityRun>& runs) {
  SeedSweepStats stats;
  stats.seeds = runs.size();
  double sum = 0.0;
  for (const SensitivityRun& run : runs) {
    if (run.score.invalid_baseline) stats.any_invalid_baseline = true;
    if (run.score.infinite) {
      ++stats.liveness_losses;
      continue;
    }
    if (stats.finite == 0) {
      stats.min = stats.max = run.score.value;
    } else {
      stats.min = std::min(stats.min, run.score.value);
      stats.max = std::max(stats.max, run.score.value);
    }
    ++stats.finite;
    sum += run.score.value;
  }
  if (stats.finite > 0) {
    stats.mean = sum / static_cast<double>(stats.finite);
  }
  if (stats.finite > 1) {
    double sq = 0.0;
    for (const SensitivityRun& run : runs) {
      if (run.score.infinite) continue;
      const double d = run.score.value - stats.mean;
      sq += d * d;
    }
    stats.stddev = std::sqrt(sq / static_cast<double>(stats.finite - 1));
  }
  return stats;
}

const SensitivityRun* CampaignResult::get(ChainKind chain,
                                          FaultType fault) const {
  const auto it = runs.find({chain, fault});
  return it == runs.end() ? nullptr : &it->second;
}

const SeedSweepStats* CampaignResult::sweep(ChainKind chain,
                                            FaultType fault) const {
  const auto it = sweeps.find({chain, fault});
  return it == sweeps.end() ? nullptr : &it->second;
}

std::string CampaignResult::to_csv() const {
  std::ostringstream out;
  out << summary_csv_header()
      << ",seeds,score_mean,score_min,score_max,score_stddev,"
         "liveness_losses\n";
  for (const auto& [key, run] : runs) {
    out << summary_csv_row(key.first, key.second, run);
    const auto it = sweeps.find(key);
    out << ','
        << sweep_csv_suffix(it == sweeps.end()
                                ? aggregate_seed_sweep({run})
                                : it->second)
        << '\n';
  }
  return out.str();
}

std::string CampaignResult::to_json() const {
  std::ostringstream out;
  out << '[';
  bool first = true;
  for (const auto& [key, run] : runs) {
    if (!first) out << ',';
    first = false;
    std::string doc = stabl::core::to_json(key.first, key.second, run);
    doc.pop_back();  // reopen the cell document to append the aggregate
    out << doc << ",\"seed_sweep\":";
    const auto it = sweeps.find(key);
    out << sweep_json(it == sweeps.end() ? aggregate_seed_sweep({run})
                                         : it->second)
        << '}';
  }
  out << ']';
  return out.str();
}

std::string CampaignResult::timing_table() const {
  Table table({"chain", "fault", "seeds", "total_ms", "mean_ms", "per_seed_ms"});
  double campaign_ms = 0.0;
  for (const auto& [key, wall] : cell_wall_ms) {
    double total = 0.0;
    std::string per_seed;
    for (std::size_t i = 0; i < wall.size(); ++i) {
      total += wall[i];
      if (i > 0) per_seed += ' ';
      per_seed += Table::num(wall[i], 0);
    }
    campaign_ms += total;
    const double mean =
        wall.empty() ? 0.0 : total / static_cast<double>(wall.size());
    table.add_row({to_string(key.first), to_string(key.second),
                   std::to_string(wall.size()), Table::num(total, 0),
                   Table::num(mean, 0), per_seed});
  }
  table.add_row({"total", "-", "-",
                 Table::num(total_wall_ms > 0.0 ? total_wall_ms : campaign_ms,
                            0),
                 "-", "-"});
  return table.to_string();
}

CampaignResult run_campaign(const CampaignConfig& config) {
  const WallTimer campaign_timer;
  const std::vector<std::uint64_t> seeds = config.seed_list();

  struct Cell {
    ChainKind chain;
    FaultType fault;
    std::uint64_t seed;
  };
  std::vector<Cell> grid;
  grid.reserve(config.chains.size() * config.faults.size() * seeds.size());
  for (const ChainKind chain : config.chains) {
    for (const FaultType fault : config.faults) {
      for (const std::uint64_t seed : seeds) {
        grid.push_back({chain, fault, seed});
      }
    }
  }

  // Fan the grid out: each cell writes only its own slot, so gathering by
  // index below is deterministic regardless of completion order.
  std::vector<SensitivityRun> slots(grid.size());
  std::vector<double> wall_slots(grid.size(), 0.0);
  std::mutex progress_mutex;
  ThreadPool pool(config.jobs);
  pool.parallel_for(grid.size(), [&](std::size_t i) {
    const WallTimer cell_timer;
    ExperimentConfig cell = config.base;
    cell.chain = grid[i].chain;
    cell.fault = grid[i].fault;
    cell.seed = grid[i].seed;
    // Cells run concurrently; a sink/registry shared through base would
    // race. Per-cell tracing goes through stabl_cli's single-run path.
    cell.trace = nullptr;
    cell.metrics = nullptr;
    if (cell.fault == FaultType::kSecureClient) {
      cell.client_fanout = 4;
      cell.vcpus = 8.0;
    }
    SensitivityRun run = run_sensitivity(cell);
    wall_slots[i] = cell_timer.elapsed_ms();
    if (config.on_cell_done) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      config.on_cell_done(grid[i].chain, grid[i].fault, grid[i].seed, run);
    }
    slots[i] = std::move(run);
  });

  CampaignResult result;
  result.seeds = seeds;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    result.seed_runs[{grid[i].chain, grid[i].fault}].push_back(
        std::move(slots[i]));
    result.cell_wall_ms[{grid[i].chain, grid[i].fault}].push_back(
        wall_slots[i]);
  }
  for (const auto& [key, cell_runs] : result.seed_runs) {
    result.radar.record(key.first, key.second, cell_runs.front().score);
    const SeedSweepStats stats = aggregate_seed_sweep(cell_runs);
    result.radar.record_sweep(key.first, key.second, stats);
    result.sweeps.emplace(key, stats);
    result.runs.emplace(key, cell_runs.front());
  }
  result.total_wall_ms = campaign_timer.elapsed_ms();
  return result;
}

std::vector<std::string> check_gate(const CampaignResult& result,
                                    const CampaignGate& gate) {
  std::vector<std::string> violations;
  const auto expects_infinite = [&](ChainKind chain, FaultType fault) {
    for (const auto& [c, f] : gate.expected_infinite) {
      if (c == chain && f == fault) return true;
    }
    return false;
  };
  for (const auto& [key, run] : result.runs) {
    const auto [chain, fault] = key;
    const std::string name =
        to_string(chain) + "/" + to_string(fault);
    const auto sweep_it = result.sweeps.find(key);
    const SeedSweepStats stats = sweep_it == result.sweeps.end()
                                     ? aggregate_seed_sweep({run})
                                     : sweep_it->second;
    const std::string worst =
        stats.seeds > 1 ? " (worst of " + std::to_string(stats.seeds) +
                              " seeds)"
                        : "";
    if (expects_infinite(chain, fault)) {
      // Gate on the worst seed: every seed must have lost liveness.
      if (stats.finite > 0) {
        violations.push_back(name + ": expected liveness loss, got score " +
                             Table::num(stats.max, 2) + worst);
      }
      continue;
    }
    if (stats.liveness_losses > 0) {
      if (gate.flag_unexpected_liveness_loss) {
        violations.push_back(
            name + ": unexpected liveness loss" +
            (stats.seeds > 1
                 ? " in " + std::to_string(stats.liveness_losses) + "/" +
                       std::to_string(stats.seeds) + " seeds"
                 : ""));
      }
      continue;
    }
    const auto limit = gate.max_score.find(fault);
    if (limit != gate.max_score.end() && stats.finite > 0 &&
        stats.max > limit->second) {
      violations.push_back(name + ": score " + Table::num(stats.max, 2) +
                           worst + " exceeds gate " +
                           Table::num(limit->second, 2));
    }
  }
  return violations;
}

}  // namespace stabl::core
