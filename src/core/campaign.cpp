#include "core/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <sstream>

#include "core/chaos.hpp"
#include "core/metrics.hpp"
#include "core/parallel.hpp"
#include "core/report.hpp"
#include "core/serialize.hpp"
#include "sim/rng.hpp"

namespace stabl::core {
namespace {

std::string sweep_csv_suffix(const SeedSweepStats& stats) {
  return csv_join({std::to_string(stats.seeds),
                   Table::num(stats.mean, 4), Table::num(stats.min, 4),
                   Table::num(stats.max, 4), Table::num(stats.stddev, 4),
                   std::to_string(stats.liveness_losses)});
}

std::string sweep_json(const SeedSweepStats& stats) {
  std::ostringstream out;
  out << "{\"seeds\":" << stats.seeds << ",\"finite\":" << stats.finite
      << ",\"liveness_losses\":" << stats.liveness_losses
      << ",\"invalid_baseline\":"
      << (stats.any_invalid_baseline ? "true" : "false")
      << ",\"score_mean\":" << Table::num(stats.mean, 6)
      << ",\"score_min\":" << Table::num(stats.min, 6)
      << ",\"score_max\":" << Table::num(stats.max, 6)
      << ",\"score_stddev\":" << Table::num(stats.stddev, 6) << '}';
  return out.str();
}

}  // namespace

std::vector<std::uint64_t> CampaignConfig::seed_list() const {
  if (!seeds.empty()) return seeds;
  std::vector<std::uint64_t> list;
  const std::size_t count = std::max<std::size_t>(num_seeds, 1);
  list.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    list.push_back(base.seed + static_cast<std::uint64_t>(i));
  }
  return list;
}

SeedSweepStats aggregate_seed_sweep(const std::vector<SensitivityRun>& runs) {
  SeedSweepStats stats;
  stats.seeds = runs.size();
  double sum = 0.0;
  for (const SensitivityRun& run : runs) {
    if (run.score.invalid_baseline) stats.any_invalid_baseline = true;
    if (run.score.infinite) {
      ++stats.liveness_losses;
      continue;
    }
    if (stats.finite == 0) {
      stats.min = stats.max = run.score.value;
    } else {
      stats.min = std::min(stats.min, run.score.value);
      stats.max = std::max(stats.max, run.score.value);
    }
    ++stats.finite;
    sum += run.score.value;
  }
  if (stats.finite > 0) {
    stats.mean = sum / static_cast<double>(stats.finite);
  }
  if (stats.finite > 1) {
    double sq = 0.0;
    for (const SensitivityRun& run : runs) {
      if (run.score.infinite) continue;
      const double d = run.score.value - stats.mean;
      sq += d * d;
    }
    stats.stddev = std::sqrt(sq / static_cast<double>(stats.finite - 1));
  }
  return stats;
}

const SensitivityRun* CampaignResult::get(ChainKind chain,
                                          FaultType fault) const {
  const auto it = runs.find({chain, fault});
  return it == runs.end() ? nullptr : &it->second;
}

const SeedSweepStats* CampaignResult::sweep(ChainKind chain,
                                            FaultType fault) const {
  const auto it = sweeps.find({chain, fault});
  return it == sweeps.end() ? nullptr : &it->second;
}

std::string CampaignResult::to_csv() const {
  std::ostringstream out;
  out << summary_csv_header()
      << ",seeds,score_mean,score_min,score_max,score_stddev,"
         "liveness_losses\n";
  for (const auto& [key, run] : runs) {
    out << summary_csv_row(key.first, key.second, run);
    const auto it = sweeps.find(key);
    out << ','
        << sweep_csv_suffix(it == sweeps.end()
                                ? aggregate_seed_sweep({run})
                                : it->second)
        << '\n';
  }
  return out.str();
}

std::string CampaignResult::to_json() const {
  std::ostringstream out;
  out << '[';
  bool first = true;
  for (const auto& [key, run] : runs) {
    if (!first) out << ',';
    first = false;
    std::string doc = stabl::core::to_json(key.first, key.second, run);
    doc.pop_back();  // reopen the cell document to append the aggregate
    out << doc << ",\"seed_sweep\":";
    const auto it = sweeps.find(key);
    out << sweep_json(it == sweeps.end() ? aggregate_seed_sweep({run})
                                         : it->second)
        << '}';
  }
  out << ']';
  return out.str();
}

std::string CampaignResult::timing_table() const {
  Table table({"chain", "fault", "seeds", "total_ms", "mean_ms", "per_seed_ms"});
  double campaign_ms = 0.0;
  for (const auto& [key, wall] : cell_wall_ms) {
    double total = 0.0;
    std::string per_seed;
    for (std::size_t i = 0; i < wall.size(); ++i) {
      total += wall[i];
      if (i > 0) per_seed += ' ';
      per_seed += Table::num(wall[i], 0);
    }
    campaign_ms += total;
    const double mean =
        wall.empty() ? 0.0 : total / static_cast<double>(wall.size());
    table.add_row({to_string(key.first), to_string(key.second),
                   std::to_string(wall.size()), Table::num(total, 0),
                   Table::num(mean, 0), per_seed});
  }
  table.add_row({"total", "-", "-",
                 Table::num(total_wall_ms > 0.0 ? total_wall_ms : campaign_ms,
                            0),
                 "-", "-"});
  return table.to_string();
}

CampaignResult run_campaign(const CampaignConfig& config) {
  const WallTimer campaign_timer;
  const std::vector<std::uint64_t> seeds = config.seed_list();

  struct Cell {
    ChainKind chain;
    FaultType fault;
    std::uint64_t seed;
  };
  std::vector<Cell> grid;
  grid.reserve(config.chains.size() * config.faults.size() * seeds.size());
  for (const ChainKind chain : config.chains) {
    for (const FaultType fault : config.faults) {
      for (const std::uint64_t seed : seeds) {
        grid.push_back({chain, fault, seed});
      }
    }
  }

  // Fan the grid out: each cell writes only its own slot, so gathering by
  // index below is deterministic regardless of completion order.
  std::vector<SensitivityRun> slots(grid.size());
  std::vector<double> wall_slots(grid.size(), 0.0);
  std::mutex progress_mutex;
  Heartbeat heartbeat("campaign", grid.size(), config.heartbeat);
  ThreadPool pool(config.jobs);
  pool.parallel_for(grid.size(), [&](std::size_t i) {
    const WallTimer cell_timer;
    ExperimentConfig cell = config.base;
    cell.chain = grid[i].chain;
    cell.fault = grid[i].fault;
    cell.seed = grid[i].seed;
    // Cells run concurrently; a sink/registry/recorder shared through base
    // would race. Per-cell tracing goes through stabl_cli's single-run
    // path.
    cell.trace = nullptr;
    cell.metrics = nullptr;
    cell.lifecycle = nullptr;
    if (cell.fault == FaultType::kSecureClient) {
      cell.client_fanout = 4;
      cell.vcpus = 8.0;
    }
    SensitivityRun run = run_sensitivity(cell);
    wall_slots[i] = cell_timer.elapsed_ms();
    if (config.on_cell_done) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      config.on_cell_done(grid[i].chain, grid[i].fault, grid[i].seed, run);
    }
    slots[i] = std::move(run);
    heartbeat.tick();
  });

  CampaignResult result;
  result.seeds = seeds;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    result.seed_runs[{grid[i].chain, grid[i].fault}].push_back(
        std::move(slots[i]));
    result.cell_wall_ms[{grid[i].chain, grid[i].fault}].push_back(
        wall_slots[i]);
  }
  for (const auto& [key, cell_runs] : result.seed_runs) {
    result.radar.record(key.first, key.second, cell_runs.front().score);
    const SeedSweepStats stats = aggregate_seed_sweep(cell_runs);
    result.radar.record_sweep(key.first, key.second, stats);
    result.sweeps.emplace(key, stats);
    result.runs.emplace(key, cell_runs.front());
  }
  result.total_wall_ms = campaign_timer.elapsed_ms();
  return result;
}

std::vector<std::string> check_gate(const CampaignResult& result,
                                    const CampaignGate& gate) {
  std::vector<std::string> violations;
  const auto expects_infinite = [&](ChainKind chain, FaultType fault) {
    for (const auto& [c, f] : gate.expected_infinite) {
      if (c == chain && f == fault) return true;
    }
    return false;
  };
  for (const auto& [key, run] : result.runs) {
    const auto [chain, fault] = key;
    const std::string name =
        to_string(chain) + "/" + to_string(fault);
    const auto sweep_it = result.sweeps.find(key);
    const SeedSweepStats stats = sweep_it == result.sweeps.end()
                                     ? aggregate_seed_sweep({run})
                                     : sweep_it->second;
    const std::string worst =
        stats.seeds > 1 ? " (worst of " + std::to_string(stats.seeds) +
                              " seeds)"
                        : "";
    if (expects_infinite(chain, fault)) {
      // Gate on the worst seed: every seed must have lost liveness.
      if (stats.finite > 0) {
        violations.push_back(name + ": expected liveness loss, got score " +
                             Table::num(stats.max, 2) + worst);
      }
      continue;
    }
    if (stats.liveness_losses > 0) {
      if (gate.flag_unexpected_liveness_loss) {
        violations.push_back(
            name + ": unexpected liveness loss" +
            (stats.seeds > 1
                 ? " in " + std::to_string(stats.liveness_losses) + "/" +
                       std::to_string(stats.seeds) + " seeds"
                 : ""));
      }
      continue;
    }
    const auto limit = gate.max_score.find(fault);
    if (limit != gate.max_score.end() && stats.finite > 0 &&
        stats.max > limit->second) {
      violations.push_back(name + ": score " + Table::num(stats.max, 2) +
                           worst + " exceeds gate " +
                           Table::num(limit->second, 2));
    }
  }
  return violations;
}

// --------------------------------------------------------------------------
// Mitigation-evaluation campaign.
// --------------------------------------------------------------------------

namespace {

/// Score rendered for the delta table/CSV: number, "inf" or "invalid".
std::string mitigation_score_text(const SensitivityScore& score) {
  if (score.invalid_baseline) return "invalid";
  if (score.infinite) return "inf";
  return Table::num(score.value, 4);
}

/// Delta rendered for the CSV: finite number, "inf" (masked liveness
/// loss) or "-inf" (mitigation introduced one).
std::string mitigation_delta_text(double delta) {
  if (std::isinf(delta)) return delta > 0.0 ? "inf" : "-inf";
  return Table::num(delta, 4);
}

double chain_metric_or_zero(const ExperimentResult& result,
                            const std::string& key) {
  const auto it = result.chain_metrics.find(key);
  return it == result.chain_metrics.end() ? 0.0 : it->second;
}

std::string pair_verdict(const MitigationPair& pair) {
  const double delta = pair.delta();
  if (std::isinf(delta)) return delta > 0.0 ? "masked" : "lost";
  if (pair.unmitigated.score.invalid_baseline ||
      pair.mitigated.score.invalid_baseline) {
    return "invalid";
  }
  if (pair.unmitigated.score.infinite && pair.mitigated.score.infinite) {
    return "both-lost";
  }
  if (delta > 0.0) return "improved";
  if (delta < 0.0) return "regressed";
  return "even";
}

std::string mitigation_fault_text(const MitigationPair& pair) {
  return pair.chaos ? "chaos" : to_string(pair.fault);
}

}  // namespace

std::vector<std::uint64_t> MitigationConfig::seed_list() const {
  if (!seeds.empty()) return seeds;
  std::vector<std::uint64_t> list;
  const std::size_t count = std::max<std::size_t>(num_seeds, 1);
  list.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    list.push_back(base.seed + static_cast<std::uint64_t>(i));
  }
  return list;
}

double MitigationPair::delta() const {
  if (unmitigated.score.invalid_baseline || mitigated.score.invalid_baseline) {
    return 0.0;
  }
  const bool u_inf = unmitigated.score.infinite;
  const bool m_inf = mitigated.score.infinite;
  if (u_inf && m_inf) return 0.0;
  if (u_inf) return std::numeric_limits<double>::infinity();
  if (m_inf) return -std::numeric_limits<double>::infinity();
  return unmitigated.score.value - mitigated.score.value;
}

bool MitigationPair::improved() const { return delta() > 0.0; }

std::size_t MitigationResult::improvements() const {
  std::size_t count = 0;
  for (const MitigationPair& pair : pairs) {
    if (pair.improved()) ++count;
  }
  return count;
}

std::size_t MitigationResult::regressions() const {
  std::size_t count = 0;
  for (const MitigationPair& pair : pairs) {
    if (pair.delta() < 0.0) ++count;
  }
  return count;
}

std::string MitigationResult::delta_table() const {
  Table table({"chain", "fault", "seed", "mitigated_as", "unmitigated",
               "mitigated", "delta", "verdict"});
  for (const MitigationPair& pair : pairs) {
    table.add_row({to_string(pair.chain), mitigation_fault_text(pair),
                   std::to_string(pair.seed), pair.mitigated_chain,
                   mitigation_score_text(pair.unmitigated.score),
                   mitigation_score_text(pair.mitigated.score),
                   mitigation_delta_text(pair.delta()), pair_verdict(pair)});
  }
  return table.to_string();
}

std::string MitigationResult::delta_csv() const {
  std::ostringstream out;
  out << "chain,fault,seed,chaos_trial,mitigated_chain,unmitigated_score,"
         "mitigated_score,delta,verdict,unmitigated_live,mitigated_live,"
         "failovers,version_failovers,hedges_armed,hedges_won\n";
  for (const MitigationPair& pair : pairs) {
    out << csv_join(
               {to_string(pair.chain), mitigation_fault_text(pair),
                std::to_string(pair.seed),
                pair.chaos ? std::to_string(pair.chaos_trial) : "-",
                pair.mitigated_chain,
                mitigation_score_text(pair.unmitigated.score),
                mitigation_score_text(pair.mitigated.score),
                mitigation_delta_text(pair.delta()), pair_verdict(pair),
                pair.unmitigated.altered.live_at_end ? "1" : "0",
                pair.mitigated.altered.live_at_end ? "1" : "0",
                std::to_string(pair.mitigated.altered.resilience.failovers),
                Table::num(chain_metric_or_zero(pair.mitigated.altered,
                                                "nversion_failovers"),
                           0),
                std::to_string(pair.mitigated.altered.resilience.hedges_armed),
                std::to_string(pair.mitigated.altered.resilience.hedges_won)})
        << '\n';
  }
  return out.str();
}

std::string MitigationResult::to_json() const {
  std::ostringstream out;
  out << "{\"layers\":{\"nversion\":" << (layers.nversion ? "true" : "false")
      << ",\"hedging\":" << (layers.hedging ? "true" : "false")
      << ",\"scoring\":" << (layers.scoring ? "true" : "false")
      << "},\"improvements\":" << improvements()
      << ",\"regressions\":" << regressions() << ",\"pairs\":[";
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const MitigationPair& pair = pairs[i];
    if (i > 0) out << ',';
    const auto score_json = [](const SensitivityScore& score) {
      if (score.invalid_baseline) return std::string("\"invalid\"");
      if (score.infinite) return std::string("\"inf\"");
      return Table::num(score.value, 6);
    };
    const double delta = pair.delta();
    out << "{\"chain\":\"" << json_escape(to_string(pair.chain))
        << "\",\"fault\":\"" << json_escape(mitigation_fault_text(pair))
        << "\",\"chaos\":" << (pair.chaos ? "true" : "false");
    if (pair.chaos) {
      out << ",\"chaos_trial\":" << pair.chaos_trial
          << ",\"schedule\":" << schedule_to_json(pair.schedule);
    }
    out << ",\"seed\":" << pair.seed << ",\"mitigated_chain\":\""
        << json_escape(pair.mitigated_chain)
        << "\",\"unmitigated_score\":" << score_json(pair.unmitigated.score)
        << ",\"mitigated_score\":" << score_json(pair.mitigated.score)
        << ",\"delta\":"
        << (std::isinf(delta)
                ? std::string(delta > 0.0 ? "\"inf\"" : "\"-inf\"")
                : Table::num(delta, 6))
        << ",\"verdict\":\"" << pair_verdict(pair)
        << "\",\"unmitigated_live\":"
        << (pair.unmitigated.altered.live_at_end ? "true" : "false")
        << ",\"mitigated_live\":"
        << (pair.mitigated.altered.live_at_end ? "true" : "false")
        << ",\"failovers\":" << pair.mitigated.altered.resilience.failovers
        << ",\"version_failovers\":"
        << Table::num(chain_metric_or_zero(pair.mitigated.altered,
                                           "nversion_failovers"),
                      0)
        << ",\"hedges_armed\":"
        << pair.mitigated.altered.resilience.hedges_armed
        << ",\"hedges_won\":" << pair.mitigated.altered.resilience.hedges_won
        << '}';
  }
  out << "]}";
  return out.str();
}

ExperimentConfig mitigated_config(const ExperimentConfig& cell,
                                  const MitigationLayers& layers) {
  ExperimentConfig mitigated = cell;
  if (layers.nversion) {
    // The derived chain's default_params are a strict superset of the
    // base chain's, so any chain_params overrides carry over unchanged.
    mitigated.chain = parse_chain_name("nversion_" + to_string(cell.chain));
  }
  if (layers.hedging || layers.scoring) {
    mitigated.resilience.enabled = true;
    if (layers.hedging) mitigated.resilience.hedge.enabled = true;
    if (layers.scoring) mitigated.resilience.score.enabled = true;
  }
  return mitigated;
}

MitigationResult run_mitigation_campaign(const MitigationConfig& config) {
  const std::vector<std::uint64_t> seeds = config.seed_list();

  struct PairCell {
    ChainKind chain;
    FaultType fault;
    bool chaos;
    std::size_t chaos_trial;
    std::uint64_t seed;
    FaultSchedule schedule;
  };
  std::vector<PairCell> grid;
  grid.reserve(config.chains.size() *
                   (config.faults.size() * seeds.size() + config.chaos_pairs));
  for (const ChainKind chain : config.chains) {
    for (const FaultType fault : config.faults) {
      for (const std::uint64_t seed : seeds) {
        grid.push_back({chain, fault, false, 0, seed, {}});
      }
    }
  }
  if (config.chaos_pairs > 0) {
    // Chaos pairs reuse the chaos campaign's stream discipline: trial k of
    // chain c draws its experiment seed and schedule from
    // root.derive(c * 1'000'003 + k), so the same (seed, chain) always
    // yields the same paired schedule regardless of jobs or chain order.
    const ChaosGenConfig gen = adversarial_gen_for(config.base.duration);
    const sim::Rng root(config.base.seed);
    for (const ChainKind chain : config.chains) {
      for (std::size_t k = 0; k < config.chaos_pairs; ++k) {
        const std::uint64_t stream =
            static_cast<std::uint64_t>(chain) * 1'000'003ull +
            static_cast<std::uint64_t>(k);
        sim::Rng rng = root.derive(stream);
        const std::uint64_t experiment_seed = rng.next_u64();
        grid.push_back({chain, FaultType::kNone, true, k, experiment_seed,
                        generate_schedule(rng, gen)});
      }
    }
  }

  // Both twins of a pair run in the same slot: the mitigated run follows
  // the unmitigated run of the same cell, and slots are gathered in grid
  // order — byte-identical output for any jobs value.
  std::vector<MitigationPair> slots(grid.size());
  std::mutex progress_mutex;
  Heartbeat heartbeat("mitigation", grid.size(), config.heartbeat);
  ThreadPool pool(config.jobs);
  pool.parallel_for(grid.size(), [&](std::size_t i) {
    const PairCell& cell = grid[i];
    ExperimentConfig unmitigated = config.base;
    unmitigated.chain = cell.chain;
    unmitigated.seed = cell.seed;
    // Pairs run concurrently; a sink/registry/recorder shared through base
    // would race. Observability goes through stabl_cli's single-run path.
    unmitigated.trace = nullptr;
    unmitigated.metrics = nullptr;
    unmitigated.lifecycle = nullptr;
    if (cell.chaos) {
      unmitigated.fault = FaultType::kNone;
      unmitigated.fault_targets.clear();
      unmitigated.extra_faults = cell.schedule;
    } else {
      unmitigated.fault = cell.fault;
      if (cell.fault == FaultType::kSecureClient) {
        unmitigated.client_fanout = 4;
        unmitigated.vcpus = 8.0;
      }
    }
    const ExperimentConfig mitigated =
        mitigated_config(unmitigated, config.layers);

    MitigationPair pair;
    pair.chain = cell.chain;
    pair.fault = cell.fault;
    pair.chaos = cell.chaos;
    pair.chaos_trial = cell.chaos_trial;
    pair.seed = cell.seed;
    pair.mitigated_chain = to_string(mitigated.chain);
    pair.schedule = cell.schedule;
    pair.unmitigated = run_sensitivity(unmitigated);
    pair.mitigated = run_sensitivity(mitigated);
    if (config.on_pair_done) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      config.on_pair_done(pair);
    }
    slots[i] = std::move(pair);
    heartbeat.tick();
  });

  MitigationResult result;
  result.layers = config.layers;
  result.pairs = std::move(slots);
  return result;
}

}  // namespace stabl::core
