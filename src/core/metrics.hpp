// Sim-time metrics: a registry of probes sampled on a fixed sim-time grid.
//
// Components register gauge/counter probes (cheap closures reading live
// state) and histograms (explicit-bound latency/size distributions). A
// MetricsTicker — a sim::TimeObserver, so it rides clock advances instead
// of the event queue — samples every probe once per period. Because the
// ticker never schedules events and probes never mutate state, attaching
// metrics cannot perturb RNG draws or event ordering: runs stay
// byte-identical in every report with metrics on or off.
//
// Snapshots serialize to CSV (one row per sample instant) and JSON, and
// the JSON round-trips byte-identically through metrics_from_json — the
// same discipline the fault-schedule repro files follow.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace stabl::core {

/// Fixed-bound histogram. `counts[i]` holds observations <= bounds[i];
/// the final slot is the overflow bucket, so counts.size() == bounds.size()+1.
struct Histogram {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;
  double sum = 0.0;

  Histogram() = default;
  Histogram(std::string metric_name, std::vector<double> bucket_bounds);

  /// Fixed log-scale bucket bounds covering [lo, hi] with `per_decade`
  /// bounds per factor of ten, each quantized to 1e-6 so the bounds
  /// round-trip byte-identically through the serializers. The stage
  /// latency histograms use log_bounds(0.001, 256.0, 4): sub-millisecond
  /// network hops and multi-minute consensus stalls on one axis.
  [[nodiscard]] static std::vector<double> log_bounds(double lo, double hi,
                                                      int per_decade);

  void observe(double value);
  [[nodiscard]] double mean() const {
    return total == 0 ? 0.0 : sum / static_cast<double>(total);
  }
  /// Quantile estimate by linear interpolation inside the bucket holding
  /// the target rank (bucket i spans (bounds[i-1], bounds[i]], bucket 0
  /// starts at 0). Deterministic — a pure function of the counts — and
  /// clamped to bounds.back() for ranks landing in the overflow bucket.
  [[nodiscard]] double quantile(double q) const;
};

/// One sampled time series: the value of a single probe on the tick grid.
struct MetricSeries {
  std::string name;
  std::vector<double> samples;  // samples[k] taken at t = (k+1) * period
};

class MetricsRegistry {
 public:
  using Probe = std::function<double()>;

  /// Register a probe sampled every tick. Gauges and counters share the
  /// sampling machinery; the distinction is documentation (a counter probe
  /// should be monotone).
  void add_gauge(std::string name, Probe probe);
  void add_counter(std::string name, Probe probe);

  /// Find-or-create a histogram with the given bucket bounds.
  Histogram& histogram(std::string name, std::vector<double> bounds);

  /// Sample every probe at sim-time `t_s` seconds. When `trace` is
  /// non-null each value is also emitted as a Perfetto counter so the
  /// series shows up as tracks in the timeline UI.
  void sample(double t_s, sim::TraceSink* trace = nullptr);

  /// Record a one-time diagnostic note (e.g. "the workload interval floor
  /// bound at 12000 TPS"). Duplicates are collapsed, so emit sites can
  /// fire unconditionally. Notes serialize as a trailing "notes" array —
  /// omitted entirely when empty, which keeps note-free documents
  /// byte-identical to those of builds that predate the field.
  void note(const std::string& text);

  /// Drop all probes but keep recorded samples. Called when the sampled
  /// simulation is torn down: probes capture references into it, and a
  /// registry outliving its run must not keep dangling closures callable.
  void detach_probes();

  [[nodiscard]] const std::vector<MetricSeries>& series() const {
    return series_;
  }
  [[nodiscard]] const std::vector<Histogram>& histograms() const {
    return histograms_;
  }
  [[nodiscard]] const std::vector<double>& sample_times() const {
    return times_;
  }
  [[nodiscard]] const std::vector<std::string>& notes() const {
    return notes_;
  }

  /// CSV: header "t_s,<name>,..." then one row per sample instant.
  [[nodiscard]] std::string to_csv() const;
  /// CSV summary of the recorded histograms: one row per histogram with
  /// name, total, mean and interpolated p50/p90/p99 columns. Byte-stable
  /// (fixed precisions, registration order).
  [[nodiscard]] std::string histograms_csv() const;
  /// JSON document; byte-stable round trip through metrics_from_json.
  [[nodiscard]] std::string to_json() const;

  /// Replace recorded data wholesale (deserialization path; probes null).
  void restore(std::vector<double> times, std::vector<MetricSeries> series,
               std::vector<Histogram> histograms,
               std::vector<std::string> notes = {});

 private:
  std::vector<MetricSeries> series_;
  std::vector<Probe> probes_;  // parallel to series_
  std::vector<Histogram> histograms_;
  std::vector<double> times_;
  std::vector<std::string> notes_;
};

/// Parse a document produced by MetricsRegistry::to_json back into a
/// registry (samples and histograms only — probes are not serializable).
/// Re-serializing the result is byte-identical to the input.
MetricsRegistry metrics_from_json(const std::string& json);

/// Samples a MetricsRegistry every `period` of sim time, implemented as a
/// clock observer so sampling consumes no TimerIds and never counts toward
/// events_processed(). Sample k fires logically at t = k*period (k >= 1),
/// observing exactly the events strictly before that instant; crossing
/// several periods in one clock jump emits one sample per boundary.
class MetricsTicker final : public sim::TimeObserver {
 public:
  MetricsTicker(MetricsRegistry& registry, sim::Duration period,
                sim::TraceSink* trace = nullptr)
      : registry_(registry), period_(period), trace_(trace) {}

  void on_time_advance(sim::Time now) override;

 private:
  MetricsRegistry& registry_;
  sim::Duration period_;
  sim::TraceSink* trace_;
  std::uint64_t ticks_emitted_ = 0;
};

/// Wall-clock stopwatch for harness phase profiling. Wall timings are
/// intentionally kept OUT of the deterministic reports (to_csv/to_json);
/// they surface in separate timing tables only.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace stabl::core
