// Client-side resilience policies (the mitigation layer STABL evaluates).
//
// The paper's Diablo-style clients pin one endpoint forever: when that node
// is killed, every in-flight and future transaction from the client is
// silently lost. This layer gives a client the standard production
// defences so the harness can *study mitigations* instead of only
// reproducing failure curves:
//
//  * per-request commit timeouts with exponential backoff and
//    deterministic jitter (the ConnectionManager retry idiom);
//  * automatic endpoint failover across a candidate node list;
//  * a per-endpoint circuit breaker that quarantines an endpoint after
//    consecutive timeouts and probes it for recovery (half-open state);
//  * resubmission bookkeeping so the observer can report lost vs.
//    recovered vs. duplicate-committed transactions per run.
//  * hedged submissions: instead of waiting out the full commit timeout,
//    arm a second endpoint once the observed latency percentile elapses;
//  * an EWMA endpoint scorer steering failover (and hedge) target choice
//    toward the endpoints that have actually been answering fastest.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/message.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace stabl::core {

struct RetryPolicy {
  /// How long a submission waits for a commit notification before the
  /// attempt counts as failed and the transaction is resubmitted.
  sim::Duration commit_timeout = sim::sec(10);
  /// Delay before the first resubmission; doubles per attempt up to the cap.
  sim::Duration backoff_base = sim::ms(500);
  double backoff_multiplier = 2.0;
  sim::Duration backoff_cap = sim::sec(30);
  /// Deterministic per-attempt jitter, as a fraction of the delay.
  double jitter_frac = 0.1;
  /// Submission attempts per transaction before it is abandoned (>= 1).
  int max_attempts = 8;

  /// Backoff before resubmission attempt `attempt` (1 = first retry).
  [[nodiscard]] sim::Duration backoff(int attempt, sim::Rng& rng) const;
};

struct CircuitBreakerPolicy {
  /// Consecutive failures that trip the breaker open.
  int failure_threshold = 3;
  /// Quarantine span before a half-open probe is admitted.
  sim::Duration open_duration = sim::sec(20);
};

/// Per-endpoint breaker: closed (normal) -> open (quarantined) ->
/// half-open (one probe in flight) -> closed on success / open on failure.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerPolicy policy = {})
      : policy_(policy) {}

  /// True when traffic may be sent to the endpoint now. An open breaker
  /// whose quarantine elapsed moves to half-open and admits the probe.
  bool allow(sim::Time now);

  void on_success();
  /// Returns true when this failure newly opened (or re-opened) the breaker.
  bool on_failure(sim::Time now);

  [[nodiscard]] State state() const { return state_; }

 private:
  CircuitBreakerPolicy policy_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  sim::Time open_until_{0};
};

/// Hedged submissions ("The Tail at Scale" defence): when a commit takes
/// longer than the recent `percentile` latency, send the transaction to a
/// second endpoint instead of waiting for the full commit timeout. The
/// first commit wins; the loser is a cheap duplicate the mempool dedups.
struct HedgePolicy {
  bool enabled = false;
  /// Latency percentile of recently observed commits at which the hedge
  /// fires.
  double percentile = 0.95;
  /// Clamp on the hedge delay, so a streak of fast commits cannot turn
  /// every submission into an instant double-send.
  sim::Duration min_delay = sim::ms(250);
  /// Clamp on the hedge delay; also the delay used before any commit has
  /// been observed.
  sim::Duration max_delay = sim::sec(8);
};

/// EWMA endpoint scoring: score = (1 - alpha) * score + alpha * observed
/// cost, where cost is the commit latency in seconds, or failure_penalty_s
/// for a timeout/reset. Lower is better; unprobed endpoints score 0 so the
/// client still explores them.
struct EndpointScorePolicy {
  bool enabled = false;
  /// Weight of the newest observation.
  double alpha = 0.3;
  /// Seconds-equivalent cost blended in per failure (a timeout should
  /// outweigh many slow-but-successful commits).
  double failure_penalty_s = 30.0;
};

class EndpointScorer {
 public:
  EndpointScorer(std::size_t endpoints, EndpointScorePolicy policy);

  void on_latency(std::size_t index, double seconds);
  void on_failure(std::size_t index);

  [[nodiscard]] double score(std::size_t index) const {
    return scores_[index];
  }
  [[nodiscard]] std::size_t size() const { return scores_.size(); }

  /// Index with the lowest score among `allowed` (ties -> lowest index).
  /// Requires a non-empty candidate list.
  [[nodiscard]] std::size_t best(const std::vector<std::size_t>& allowed) const;

 private:
  EndpointScorePolicy policy_;
  std::vector<double> scores_;
};

/// Rotates a client's primary endpoint through a candidate list, skipping
/// quarantined endpoints via per-endpoint circuit breakers. With scoring
/// enabled, failover picks the best-scored admissible endpoint instead of
/// the next one in rotation.
class EndpointFailover {
 public:
  EndpointFailover(std::vector<net::NodeId> candidates,
                   CircuitBreakerPolicy policy,
                   EndpointScorePolicy score = {});

  /// Endpoint to submit to now: the current primary when its breaker
  /// admits traffic, else the next admissible candidate (the primary moves
  /// with the failover). With every breaker open the primary is returned
  /// unchanged — the client keeps trying rather than going silent.
  net::NodeId select(sim::Time now);

  [[nodiscard]] net::NodeId primary() const { return candidates_[primary_]; }
  /// Returns true when the endpoint's breaker newly opened.
  bool on_failure(net::NodeId id, sim::Time now);
  void on_success(net::NodeId id);
  /// Feed an observed commit latency to the scorer (no-op when scoring is
  /// off).
  void note_latency(net::NodeId id, double seconds);
  /// A second endpoint for a hedged submission: admissible, different from
  /// `exclude`; best-scored when scoring is on, else the next candidate in
  /// rotation. Does not move the primary. nullopt when no other endpoint
  /// is admissible.
  [[nodiscard]] std::optional<net::NodeId> hedge_target(net::NodeId exclude,
                                                        sim::Time now);
  [[nodiscard]] const CircuitBreaker& breaker(net::NodeId id) const;
  [[nodiscard]] std::uint64_t failovers() const { return failovers_; }
  /// Breakers currently not closed (open or half-open) — the gauge the
  /// metrics registry samples.
  [[nodiscard]] std::size_t open_breakers() const;
  /// The scorer, when scoring is enabled; nullptr otherwise.
  [[nodiscard]] const EndpointScorer* scorer() const {
    return scorer_.has_value() ? &*scorer_ : nullptr;
  }

 private:
  [[nodiscard]] std::size_t index_of(net::NodeId id) const;

  std::vector<net::NodeId> candidates_;
  std::vector<CircuitBreaker> breakers_;
  std::optional<EndpointScorer> scorer_;
  std::size_t primary_ = 0;
  std::uint64_t failovers_ = 0;
};

struct ResilienceConfig {
  bool enabled = false;
  RetryPolicy retry{};
  CircuitBreakerPolicy breaker{};
  HedgePolicy hedge{};
  EndpointScorePolicy score{};
};

/// Resubmission bookkeeping, per client (summed per run by the harness).
struct ResilienceStats {
  std::uint64_t timeouts = 0;        // attempts that hit commit_timeout
  std::uint64_t resets = 0;          // attempts answered by a TCP RST
  std::uint64_t resubmissions = 0;   // total retry submissions sent
  std::uint64_t failovers = 0;       // primary endpoint changes
  std::uint64_t circuit_opens = 0;   // breaker trips (incl. re-opens)
  std::uint64_t recovered = 0;       // committed after >= 1 resubmission
  std::uint64_t exhausted = 0;       // abandoned after max_attempts
  std::uint64_t duplicate_commits = 0;  // notifications after acceptance
  std::uint64_t hedges_armed = 0;     // hedge timers armed
  std::uint64_t hedges_won = 0;       // commits answered by the hedge
  std::uint64_t hedges_cancelled = 0;  // commit beat the hedge timer

  ResilienceStats& operator+=(const ResilienceStats& other);
};

}  // namespace stabl::core
