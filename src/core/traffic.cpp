#include "core/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "chain/hash.hpp"

namespace stabl::core {
namespace {

/// First sender account of the population (clear of the legacy clients'
/// accounts 0..4, their 1000+ sinks, and the reserved hot accounts).
constexpr chain::AccountId kPopulationBase = 10'000;
/// Population sinks live far above the senders; each sender pays into its
/// own sink so transfers never create accidental cross-account coupling.
constexpr chain::AccountId kPopulationSinkBase = 500'000'000;

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

}  // namespace

const std::vector<std::string>& workload_shape_names() {
  static const std::vector<std::string> names{"constant", "bursty", "ramp",
                                              "diurnal", "flash"};
  return names;
}

const std::vector<std::string>& traffic_preset_names() {
  static const std::vector<std::string> names{"exchange_burst", "nft_mint",
                                              "dex_sustained"};
  return names;
}

std::string workload_shape_description(const std::string& name) {
  if (name == "constant") return "steady rate, the paper's workload";
  if (name == "bursty") return "square wave alternating high/low phases";
  if (name == "ramp") return "linear growth, same average";
  if (name == "diurnal") return "sinusoidal day/night cycle, same average";
  if (name == "flash") return "flash crowd: factor-x window, same average";
  return "";
}

std::string traffic_preset_description(const std::string& name) {
  if (name == "exchange_burst") {
    return "withdrawal rush: flash crowd, 3 regions, 15% hot wallet";
  }
  if (name == "nft_mint") {
    return "mint drop: 10x spike, 60% of traffic on the contended key";
  }
  if (name == "dex_sustained") {
    return "sustained DEX: diurnal swing, Zipf 1.2 accounts, 30% hot pool";
  }
  return "";
}

WorkloadShape parse_workload_shape(const std::string& name) {
  if (name == "constant") return WorkloadShape::kConstant;
  if (name == "bursty") return WorkloadShape::kBursty;
  if (name == "ramp") return WorkloadShape::kRamp;
  if (name == "diurnal") return WorkloadShape::kDiurnal;
  if (name == "flash") return WorkloadShape::kFlash;
  throw std::invalid_argument("unknown workload shape \"" + name +
                              "\" (valid: " + join(workload_shape_names()) +
                              ")");
}

std::string to_string(WorkloadShape shape) {
  switch (shape) {
    case WorkloadShape::kConstant: return "constant";
    case WorkloadShape::kBursty: return "bursty";
    case WorkloadShape::kRamp: return "ramp";
    case WorkloadShape::kDiurnal: return "diurnal";
    case WorkloadShape::kFlash: return "flash";
  }
  return "constant";
}

TrafficSpec traffic_preset(const std::string& name) {
  TrafficSpec preset;
  preset.preset = name;
  if (name == "exchange_burst") {
    // Exchange withdrawal rush: a flash crowd of omnibus-wallet traffic
    // from a geographically spread user base.
    preset.shape = "flash";
    preset.accounts_per_client = 32;
    preset.zipf_exponent = 1.1;
    preset.hot_fraction = 0.15;
    preset.regions = 3;
    preset.fault_phase = "burst";
    return preset;
  }
  if (name == "nft_mint") {
    // Mint drop: a short, very tall spike, most of it hammering the one
    // contended key.
    preset.shape = "flash";
    preset.flash_factor = 10.0;
    preset.flash_duration_s = 30.0;
    preset.accounts_per_client = 8;
    preset.zipf_exponent = 0.8;
    preset.hot_fraction = 0.6;
    preset.regions = 2;
    preset.fault_phase = "burst";
    return preset;
  }
  if (name == "dex_sustained") {
    // Sustained DEX load: diurnal swing, deep heavy-tailed population, a
    // popular pool taking a steady share of the flow.
    preset.shape = "diurnal";
    preset.diurnal_amplitude = 0.7;
    preset.accounts_per_client = 16;
    preset.zipf_exponent = 1.2;
    preset.hot_fraction = 0.3;
    preset.regions = 3;
    return preset;
  }
  throw std::invalid_argument("unknown traffic preset \"" + name +
                              "\" (valid: " + join(traffic_preset_names()) +
                              ")");
}

void apply_traffic_preset(TrafficSpec& spec) {
  if (spec.preset.empty()) return;
  const TrafficSpec base = traffic_preset(spec.preset);
  const TrafficSpec defaults{};
  // A preset is a starting point, not a straitjacket: knobs the spec set
  // to something other than the TrafficSpec{} default stay as written.
  if (spec.shape == defaults.shape) spec.shape = base.shape;
  if (spec.accounts_per_client == defaults.accounts_per_client) {
    spec.accounts_per_client = base.accounts_per_client;
  }
  if (spec.zipf_exponent == defaults.zipf_exponent) {
    spec.zipf_exponent = base.zipf_exponent;
  }
  if (spec.hot_fraction == defaults.hot_fraction) {
    spec.hot_fraction = base.hot_fraction;
  }
  if (spec.regions == defaults.regions) spec.regions = base.regions;
  if (spec.region_spread_ms == defaults.region_spread_ms) {
    spec.region_spread_ms = base.region_spread_ms;
  }
  if (spec.diurnal_amplitude == defaults.diurnal_amplitude) {
    spec.diurnal_amplitude = base.diurnal_amplitude;
  }
  if (spec.diurnal_period_s == defaults.diurnal_period_s) {
    spec.diurnal_period_s = base.diurnal_period_s;
  }
  if (spec.flash_at_s == defaults.flash_at_s) {
    spec.flash_at_s = base.flash_at_s;
  }
  if (spec.flash_duration_s == defaults.flash_duration_s) {
    spec.flash_duration_s = base.flash_duration_s;
  }
  if (spec.flash_factor == defaults.flash_factor) {
    spec.flash_factor = base.flash_factor;
  }
  if (spec.fault_phase == defaults.fault_phase) {
    spec.fault_phase = base.fault_phase;
  }
}

std::string validate_traffic(const TrafficSpec& spec) {
  std::ostringstream error;
  const auto known = [](const std::vector<std::string>& names,
                        const std::string& name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  if (!spec.preset.empty() &&
      !known(traffic_preset_names(), spec.preset)) {
    error << "\"traffic.preset\" unknown preset \"" << spec.preset
          << "\" (valid: " << join(traffic_preset_names()) << ")";
  } else if (!spec.shape.empty() &&
             !known(workload_shape_names(), spec.shape)) {
    error << "\"traffic.shape\" unknown shape \"" << spec.shape
          << "\" (valid: " << join(workload_shape_names()) << ")";
  } else if (spec.accounts_per_client < 1) {
    error << "\"traffic.accounts_per_client\" must be >= 1 (got "
          << spec.accounts_per_client << ")";
  } else if (spec.zipf_exponent < 0.0) {
    error << "\"traffic.zipf_exponent\" must be >= 0";
  } else if (spec.hot_fraction < 0.0 || spec.hot_fraction > 1.0) {
    error << "\"traffic.hot_fraction\" must be in [0, 1]";
  } else if (spec.regions < 1) {
    error << "\"traffic.regions\" must be >= 1 (got " << spec.regions
          << ")";
  } else if (spec.region_spread_ms < 0.0) {
    error << "\"traffic.region_spread_ms\" must be >= 0";
  } else if (spec.diurnal_amplitude < 0.0 || spec.diurnal_amplitude >= 1.0) {
    error << "\"traffic.diurnal_amplitude\" must be in [0, 1)";
  } else if (spec.diurnal_period_s < 0.0) {
    error << "\"traffic.diurnal_period_s\" must be >= 0";
  } else if (spec.flash_at_s < 0.0) {
    error << "\"traffic.flash_at_s\" must be >= 0";
  } else if (!(spec.flash_duration_s > 0.0)) {
    error << "\"traffic.flash_duration_s\" must be > 0";
  } else if (spec.flash_factor < 1.0) {
    error << "\"traffic.flash_factor\" must be >= 1";
  } else if (!spec.fault_phase.empty() && spec.fault_phase != "steady" &&
             spec.fault_phase != "burst") {
    error << "\"traffic.fault_phase\" must be steady or burst (got \""
          << spec.fault_phase << "\")";
  }
  return error.str();
}

TrafficConfig resolve_traffic(const TrafficSpec& spec) {
  TrafficSpec effective = spec;
  apply_traffic_preset(effective);
  TrafficConfig config;
  config.accounts_per_client =
      static_cast<std::size_t>(effective.accounts_per_client);
  config.zipf_exponent = effective.zipf_exponent;
  config.hot_fraction = effective.hot_fraction;
  config.regions = static_cast<std::size_t>(effective.regions);
  config.region_spread = sim::Duration{
      static_cast<std::int64_t>(effective.region_spread_ms * 1000.0)};
  return config;
}

ClientTrafficPlan make_client_plan(const TrafficConfig& config,
                                   TrafficModel& model, std::size_t index,
                                   std::uint64_t tx_seed) {
  ClientTrafficPlan plan;
  plan.model = &model;
  const std::size_t count = std::max<std::size_t>(1, config.accounts_per_client);
  plan.accounts.reserve(count);
  const auto base = static_cast<chain::AccountId>(
      kPopulationBase + index * count);
  for (std::size_t k = 0; k < count; ++k) {
    plan.accounts.push_back(static_cast<chain::AccountId>(base + k));
  }
  // Zipf CDF over the client's accounts: account 0 is the whale, the tail
  // are minnows. Exponent 0 degrades to uniform.
  plan.zipf_cdf.reserve(count);
  double total = 0.0;
  for (std::size_t k = 0; k < count; ++k) {
    total += std::pow(static_cast<double>(k + 1), -config.zipf_exponent);
    plan.zipf_cdf.push_back(total);
  }
  for (double& c : plan.zipf_cdf) c /= total;
  // The traffic RNG is its own stream: population draws must not perturb
  // the simulation's fork()/derive() discipline.
  plan.rng_seed = chain::hash_combine(chain::mix64(tx_seed ^ 0x7AFF1Cull),
                                      static_cast<std::uint64_t>(index));
  plan.region = config.regions > 1 ? index % config.regions : 0;
  return plan;
}

std::size_t zipf_pick(const std::vector<double>& cdf, double u) {
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
  if (it == cdf.end()) return cdf.size() - 1;
  return static_cast<std::size_t>(it - cdf.begin());
}

chain::AccountId population_sink(chain::AccountId sender) {
  return static_cast<chain::AccountId>(kPopulationSinkBase + sender);
}

}  // namespace stabl::core
