// Chrome/Perfetto export of sim-time traces.
//
// sim::TraceSink (the emission side, see src/sim/trace.hpp) is
// format-agnostic; this module renders a recorded sink as a Chrome
// trace_event JSON document that loads directly in ui.perfetto.dev or
// chrome://tracing — one track (tid) per blockchain node, one per client
// machine, plus a dedicated faults track. It also ships a strict validator
// used by tests and CI to guarantee every exported trace actually parses
// as the schema Perfetto expects.
#pragma once

#include <cstdint>
#include <string>

#include "sim/trace.hpp"

namespace stabl::core {

/// Track (tid) carrying fault-plan arm/inject/recover events. Far above
/// any node or client id so cluster growth can never collide with it.
inline constexpr std::int32_t kFaultsTrack = 1'000'000;

/// Label the standard cluster layout: nodes 0..n-1, clients n..n+c-1 (the
/// NodeIds run_experiment assigns), plus the faults track.
void name_cluster_tracks(sim::TraceSink& sink, std::size_t n_nodes,
                         std::size_t n_clients);

/// Render the sink as a Chrome trace_event JSON document:
///   {"displayTimeUnit":"ms","traceEvents":[...]}
/// Metadata (thread_name) events come first, then the recorded events in
/// emission order (which is sim-time order). Timestamps are microseconds.
std::string trace_to_json(const sim::TraceSink& sink);

/// What validate_trace_json counted while checking the document.
struct TraceStats {
  std::size_t events = 0;    // all non-metadata trace events
  std::size_t metadata = 0;  // "M" thread_name records
  std::size_t spans = 0;     // "B" (each must pair with an "E")
  std::size_t instants = 0;  // "i"
  std::size_t counters = 0;  // "C"
  std::size_t asyncs = 0;    // "b" + "e"
  std::size_t tracks = 0;    // distinct tids seen
};

/// Strictly validate a document produced by trace_to_json: top-level
/// shape, required keys per phase ("ts"/"pid"/"tid" on trace events, "id"
/// on async events, "args.value" on counters), non-negative timestamps and
/// balanced B/E nesting per track. Throws std::invalid_argument with a
/// byte offset on the first violation.
TraceStats validate_trace_json(const std::string& json);

}  // namespace stabl::core
