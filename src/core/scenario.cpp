#include "core/scenario.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/json.hpp"

namespace stabl::core {
namespace {

/// Shortest round-trip formatting (std::to_chars): "0.2" stays "0.2",
/// integral values carry no trailing ".0". This is what keeps dumped
/// specs byte-stable through a parse/serialize cycle.
std::string fmt_double(double value) {
  char buffer[64];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc{}) return "0";
  return std::string(buffer, end);
}

void append_string(std::string& out, const std::string& value) {
  out += '"';
  out += value;  // harness strings never contain quotes or escapes
  out += '"';
}

bool parse_bool(JsonCursor& cursor) {
  if (cursor.consume('t')) {
    cursor.expect('r');
    cursor.expect('u');
    cursor.expect('e');
    return true;
  }
  cursor.expect('f');
  cursor.expect('a');
  cursor.expect('l');
  cursor.expect('s');
  cursor.expect('e');
  return false;
}

std::int64_t parse_integer(JsonCursor& cursor, const std::string& key) {
  const double value = cursor.parse_number();
  if (value != std::floor(value) || std::abs(value) > 9e15) {
    throw std::invalid_argument("scenario: \"" + key +
                                "\" must be an integer");
  }
  return static_cast<std::int64_t>(value);
}

}  // namespace

std::string validate_scenario(const ScenarioSpec& spec) {
  std::ostringstream error;
  if (spec.chain.empty()) {
    error << "\"chain\" must not be empty";
  } else if (spec.fault.empty()) {
    error << "\"fault\" must not be empty";
  } else if (spec.duration_s < 30) {
    error << "\"duration_s\" must be >= 30 (got " << spec.duration_s << ")";
  } else if (spec.num_seeds < 1) {
    error << "\"num_seeds\" must be >= 1 (got " << spec.num_seeds << ")";
  } else if (spec.jobs < 1) {
    error << "\"jobs\" must be >= 1 (got " << spec.jobs << ")";
  } else if (spec.chaos_trials < 0) {
    error << "\"chaos_trials\" must be >= 0 (got " << spec.chaos_trials
          << ")";
  } else if (spec.fanout < 1) {
    error << "\"fanout\" must be >= 1 (got " << spec.fanout << ")";
  } else if (spec.matching < 0) {
    error << "\"matching\" must be >= 0 (got " << spec.matching << ")";
  } else if (!(spec.vcpus > 0.0)) {
    error << "\"vcpus\" must be > 0 (got " << fmt_double(spec.vcpus) << ")";
  } else if (!(spec.loss_probability > 0.0) || spec.loss_probability > 1.0) {
    error << "\"loss_probability\" must be in (0, 1] (got "
          << fmt_double(spec.loss_probability) << ")";
  } else if (!(spec.throttle_bytes_per_s > 0.0)) {
    error << "\"throttle_bytes_per_s\" must be > 0 (got "
          << fmt_double(spec.throttle_bytes_per_s) << ")";
  } else if (spec.gray_delay_s < 0.0) {
    error << "\"gray_delay_s\" must be >= 0 (got "
          << fmt_double(spec.gray_delay_s) << ")";
  } else if (spec.eclipse_victim < 0) {
    error << "\"eclipse_victim\" must be >= 0 (got " << spec.eclipse_victim
          << ")";
  } else if (spec.eclipse_delay_s < 0.0) {
    error << "\"eclipse_delay_s\" must be >= 0 (got "
          << fmt_double(spec.eclipse_delay_s) << ")";
  } else if (spec.eclipse_filter < 0.0 || spec.eclipse_filter >= 1.0) {
    error << "\"eclipse_filter\" must be in [0, 1) (got "
          << fmt_double(spec.eclipse_filter) << ")";
  } else if (!(spec.commit_timeout_s > 0.0)) {
    error << "\"commit_timeout_s\" must be > 0 (got "
          << fmt_double(spec.commit_timeout_s) << ")";
  } else if (spec.hedge && !spec.resilient) {
    error << "\"hedge\" needs \"resilient\": true";
  } else if (spec.endpoint_scoring && !spec.resilient) {
    error << "\"endpoint_scoring\" needs \"resilient\": true";
  } else if (!(spec.hedge_percentile > 0.0) || spec.hedge_percentile > 1.0) {
    error << "\"hedge_percentile\" must be in (0, 1] (got "
          << fmt_double(spec.hedge_percentile) << ")";
  } else if (!(spec.hedge_min_delay_s > 0.0)) {
    error << "\"hedge_min_delay_s\" must be > 0 (got "
          << fmt_double(spec.hedge_min_delay_s) << ")";
  } else if (spec.hedge_max_delay_s < spec.hedge_min_delay_s) {
    error << "\"hedge_max_delay_s\" must be >= \"hedge_min_delay_s\" (got "
          << fmt_double(spec.hedge_max_delay_s) << " < "
          << fmt_double(spec.hedge_min_delay_s) << ")";
  } else if (std::find(workload_shape_names().begin(),
                       workload_shape_names().end(),
                       spec.workload) == workload_shape_names().end()) {
    error << "\"workload\" must be constant, bursty, ramp, diurnal or "
             "flash (got \""
          << spec.workload << "\")";
  } else if (spec.shrink && spec.chaos_trials == 0) {
    error << "\"shrink\" needs \"chaos_trials\" > 0";
  } else if (spec.chaos_adversarial && spec.chaos_trials == 0) {
    error << "\"chaos_adversarial\" needs \"chaos_trials\" > 0";
  }
  if (error.str().empty() && spec.has_traffic) {
    return validate_traffic(spec.traffic);
  }
  return error.str();
}

std::string scenario_to_json(const ScenarioSpec& spec) {
  std::string out = "{\n";
  const auto field = [&out](const char* key, bool last = false) {
    out += "  \"";
    out += key;
    out += "\": ";
    if (!last) out.reserve(out.size() + 16);
  };
  const auto close = [&out](bool last = false) {
    if (!last) out += ',';
    out += '\n';
  };

  field("name");
  append_string(out, spec.name);
  close();
  field("chain");
  append_string(out, spec.chain);
  close();
  field("chain_params");
  out += '{';
  bool first = true;
  for (const auto& [key, value] : spec.chain_params) {
    if (!first) out += ", ";
    first = false;
    append_string(out, key);
    out += ": ";
    out += fmt_double(value);
  }
  out += '}';
  close();
  field("fault");
  append_string(out, spec.fault);
  close();
  field("fault_targets");
  out += '[';
  for (std::size_t i = 0; i < spec.fault_targets.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(spec.fault_targets[i]);
  }
  out += ']';
  close();
  field("extra_faults");
  out += '[';
  for (std::size_t i = 0; i < spec.extra_faults.size(); ++i) {
    if (i > 0) out += ", ";
    append_string(out, spec.extra_faults[i]);
  }
  out += ']';
  close();
  field("loss_probability");
  out += fmt_double(spec.loss_probability);
  close();
  field("throttle_bytes_per_s");
  out += fmt_double(spec.throttle_bytes_per_s);
  close();
  field("gray_delay_s");
  out += fmt_double(spec.gray_delay_s);
  close();
  field("eclipse_victim");
  out += std::to_string(spec.eclipse_victim);
  close();
  field("eclipse_delay_s");
  out += fmt_double(spec.eclipse_delay_s);
  close();
  field("eclipse_filter");
  out += fmt_double(spec.eclipse_filter);
  close();
  field("duration_s");
  out += std::to_string(spec.duration_s);
  close();
  field("seed");
  out += std::to_string(spec.seed);
  close();
  field("num_seeds");
  out += std::to_string(spec.num_seeds);
  close();
  field("jobs");
  out += std::to_string(spec.jobs);
  close();
  field("workload");
  append_string(out, spec.workload);
  close();
  if (spec.has_traffic) {
    // Emitted only when present, so dumps of traffic-free specs keep the
    // exact bytes they had before the traffic layer existed.
    field("traffic");
    out += "{\n";
    const auto traffic_field = [&out](const char* key) {
      out += "    \"";
      out += key;
      out += "\": ";
    };
    const auto traffic_close = [&out](bool last = false) {
      if (!last) out += ',';
      out += '\n';
    };
    traffic_field("preset");
    append_string(out, spec.traffic.preset);
    traffic_close();
    traffic_field("shape");
    append_string(out, spec.traffic.shape);
    traffic_close();
    traffic_field("accounts_per_client");
    out += std::to_string(spec.traffic.accounts_per_client);
    traffic_close();
    traffic_field("zipf_exponent");
    out += fmt_double(spec.traffic.zipf_exponent);
    traffic_close();
    traffic_field("hot_fraction");
    out += fmt_double(spec.traffic.hot_fraction);
    traffic_close();
    traffic_field("regions");
    out += std::to_string(spec.traffic.regions);
    traffic_close();
    traffic_field("region_spread_ms");
    out += fmt_double(spec.traffic.region_spread_ms);
    traffic_close();
    traffic_field("diurnal_amplitude");
    out += fmt_double(spec.traffic.diurnal_amplitude);
    traffic_close();
    traffic_field("diurnal_period_s");
    out += fmt_double(spec.traffic.diurnal_period_s);
    traffic_close();
    traffic_field("flash_at_s");
    out += fmt_double(spec.traffic.flash_at_s);
    traffic_close();
    traffic_field("flash_duration_s");
    out += fmt_double(spec.traffic.flash_duration_s);
    traffic_close();
    traffic_field("flash_factor");
    out += fmt_double(spec.traffic.flash_factor);
    traffic_close();
    traffic_field("fault_phase");
    append_string(out, spec.traffic.fault_phase);
    traffic_close(/*last=*/true);
    out += "  }";
    close();
  }
  field("fanout");
  out += std::to_string(spec.fanout);
  close();
  field("matching");
  out += std::to_string(spec.matching);
  close();
  field("vcpus");
  out += fmt_double(spec.vcpus);
  close();
  field("resilient");
  out += spec.resilient ? "true" : "false";
  close();
  field("commit_timeout_s");
  out += fmt_double(spec.commit_timeout_s);
  close();
  field("hedge");
  out += spec.hedge ? "true" : "false";
  close();
  field("hedge_percentile");
  out += fmt_double(spec.hedge_percentile);
  close();
  field("hedge_min_delay_s");
  out += fmt_double(spec.hedge_min_delay_s);
  close();
  field("hedge_max_delay_s");
  out += fmt_double(spec.hedge_max_delay_s);
  close();
  field("endpoint_scoring");
  out += spec.endpoint_scoring ? "true" : "false";
  close();
  field("chaos_trials");
  out += std::to_string(spec.chaos_trials);
  close();
  field("shrink");
  out += spec.shrink ? "true" : "false";
  close();
  field("chaos_adversarial");
  out += spec.chaos_adversarial ? "true" : "false";
  close();
  field("trace");
  append_string(out, spec.trace);
  close();
  field("metrics", /*last=*/true);
  append_string(out, spec.metrics);
  close(/*last=*/true);
  out += "}";
  return out;
}

ScenarioSpec scenario_from_json(const std::string& json) {
  ScenarioSpec spec;
  JsonCursor cursor(json);
  std::set<std::string> seen;
  cursor.expect('{');
  bool first = true;
  while (!cursor.consume('}')) {
    if (!first) cursor.expect(',');
    first = false;
    const std::string key = cursor.parse_string();
    cursor.expect(':');
    if (!seen.insert(key).second) {
      throw std::invalid_argument("scenario: duplicate key \"" + key + "\"");
    }
    if (key == "name") {
      spec.name = cursor.parse_string();
    } else if (key == "chain") {
      spec.chain = cursor.parse_string();
    } else if (key == "chain_params") {
      cursor.expect('{');
      bool first_param = true;
      while (!cursor.consume('}')) {
        if (!first_param) cursor.expect(',');
        first_param = false;
        const std::string param = cursor.parse_string();
        cursor.expect(':');
        if (!spec.chain_params.emplace(param, cursor.parse_number())
                 .second) {
          throw std::invalid_argument(
              "scenario: duplicate chain parameter \"" + param + "\"");
        }
      }
    } else if (key == "fault") {
      spec.fault = cursor.parse_string();
    } else if (key == "fault_targets") {
      cursor.expect('[');
      if (!cursor.consume(']')) {
        do {
          const std::int64_t id = parse_integer(cursor, key);
          if (id < 0) {
            throw std::invalid_argument(
                "scenario: \"fault_targets\" ids must be >= 0");
          }
          spec.fault_targets.push_back(static_cast<net::NodeId>(id));
        } while (cursor.consume(','));
        cursor.expect(']');
      }
    } else if (key == "extra_faults") {
      cursor.expect('[');
      if (!cursor.consume(']')) {
        do {
          spec.extra_faults.push_back(cursor.parse_string());
        } while (cursor.consume(','));
        cursor.expect(']');
      }
    } else if (key == "loss_probability") {
      spec.loss_probability = cursor.parse_number();
    } else if (key == "throttle_bytes_per_s") {
      spec.throttle_bytes_per_s = cursor.parse_number();
    } else if (key == "gray_delay_s") {
      spec.gray_delay_s = cursor.parse_number();
    } else if (key == "eclipse_victim") {
      spec.eclipse_victim = parse_integer(cursor, key);
    } else if (key == "eclipse_delay_s") {
      spec.eclipse_delay_s = cursor.parse_number();
    } else if (key == "eclipse_filter") {
      spec.eclipse_filter = cursor.parse_number();
    } else if (key == "duration_s") {
      spec.duration_s = parse_integer(cursor, key);
    } else if (key == "seed") {
      const std::int64_t seed = parse_integer(cursor, key);
      if (seed < 0) {
        throw std::invalid_argument("scenario: \"seed\" must be >= 0");
      }
      spec.seed = static_cast<std::uint64_t>(seed);
    } else if (key == "num_seeds") {
      spec.num_seeds = parse_integer(cursor, key);
    } else if (key == "jobs") {
      spec.jobs = parse_integer(cursor, key);
    } else if (key == "workload") {
      spec.workload = cursor.parse_string();
    } else if (key == "traffic") {
      spec.has_traffic = true;
      cursor.expect('{');
      std::set<std::string> traffic_seen;
      bool first_traffic = true;
      while (!cursor.consume('}')) {
        if (!first_traffic) cursor.expect(',');
        first_traffic = false;
        const std::string traffic_key = cursor.parse_string();
        cursor.expect(':');
        if (!traffic_seen.insert(traffic_key).second) {
          throw std::invalid_argument(
              "scenario: duplicate key \"traffic." + traffic_key + "\"");
        }
        if (traffic_key == "preset") {
          spec.traffic.preset = cursor.parse_string();
        } else if (traffic_key == "shape") {
          spec.traffic.shape = cursor.parse_string();
        } else if (traffic_key == "accounts_per_client") {
          spec.traffic.accounts_per_client =
              parse_integer(cursor, traffic_key);
        } else if (traffic_key == "zipf_exponent") {
          spec.traffic.zipf_exponent = cursor.parse_number();
        } else if (traffic_key == "hot_fraction") {
          spec.traffic.hot_fraction = cursor.parse_number();
        } else if (traffic_key == "regions") {
          spec.traffic.regions = parse_integer(cursor, traffic_key);
        } else if (traffic_key == "region_spread_ms") {
          spec.traffic.region_spread_ms = cursor.parse_number();
        } else if (traffic_key == "diurnal_amplitude") {
          spec.traffic.diurnal_amplitude = cursor.parse_number();
        } else if (traffic_key == "diurnal_period_s") {
          spec.traffic.diurnal_period_s = cursor.parse_number();
        } else if (traffic_key == "flash_at_s") {
          spec.traffic.flash_at_s = cursor.parse_number();
        } else if (traffic_key == "flash_duration_s") {
          spec.traffic.flash_duration_s = cursor.parse_number();
        } else if (traffic_key == "flash_factor") {
          spec.traffic.flash_factor = cursor.parse_number();
        } else if (traffic_key == "fault_phase") {
          spec.traffic.fault_phase = cursor.parse_string();
        } else {
          throw std::invalid_argument(
              "scenario: unknown key \"traffic." + traffic_key +
              "\" (scenarios are strict; see core/traffic.hpp for the "
              "schema)");
        }
      }
    } else if (key == "fanout") {
      spec.fanout = parse_integer(cursor, key);
    } else if (key == "matching") {
      spec.matching = parse_integer(cursor, key);
    } else if (key == "vcpus") {
      spec.vcpus = cursor.parse_number();
    } else if (key == "resilient") {
      spec.resilient = parse_bool(cursor);
    } else if (key == "commit_timeout_s") {
      spec.commit_timeout_s = cursor.parse_number();
    } else if (key == "hedge") {
      spec.hedge = parse_bool(cursor);
    } else if (key == "hedge_percentile") {
      spec.hedge_percentile = cursor.parse_number();
    } else if (key == "hedge_min_delay_s") {
      spec.hedge_min_delay_s = cursor.parse_number();
    } else if (key == "hedge_max_delay_s") {
      spec.hedge_max_delay_s = cursor.parse_number();
    } else if (key == "endpoint_scoring") {
      spec.endpoint_scoring = parse_bool(cursor);
    } else if (key == "chaos_trials") {
      spec.chaos_trials = parse_integer(cursor, key);
    } else if (key == "shrink") {
      spec.shrink = parse_bool(cursor);
    } else if (key == "chaos_adversarial") {
      spec.chaos_adversarial = parse_bool(cursor);
    } else if (key == "trace") {
      spec.trace = cursor.parse_string();
    } else if (key == "metrics") {
      spec.metrics = cursor.parse_string();
    } else {
      throw std::invalid_argument(
          "scenario: unknown key \"" + key +
          "\" (scenarios are strict; see core/scenario.hpp for the "
          "schema)");
    }
  }
  cursor.finish();
  const std::string error = validate_scenario(spec);
  if (!error.empty()) throw std::invalid_argument("scenario: " + error);
  return spec;
}

ResolvedScenario resolve_scenario(const ScenarioSpec& spec) {
  const std::string error = validate_scenario(spec);
  if (!error.empty()) throw std::invalid_argument("scenario: " + error);

  ResolvedScenario resolved;
  ExperimentConfig& config = resolved.config;
  config.chain = parse_chain_name(spec.chain);
  config.chain_params = spec.chain_params;
  // Reject unknown parameter keys now, with the resolving chain named,
  // rather than deep inside the first run.
  (void)chain::merge_params(chain_traits(config.chain), spec.chain_params);
  config.fault = fault_from_name(spec.fault);
  config.seed = spec.seed;
  config.duration = sim::sec(spec.duration_s);
  // The historical CLI windows: integer thirds of the duration (400 s
  // runs keep the paper's 133 s / 266 s schedule).
  config.inject_at = sim::sec(spec.duration_s / 3);
  config.recover_at = sim::sec(2 * spec.duration_s / 3);
  config.fault_targets = spec.fault_targets;
  config.loss_probability = spec.loss_probability;
  config.throttle_bytes_per_s = spec.throttle_bytes_per_s;
  config.gray_latency = sim::seconds(spec.gray_delay_s);
  config.eclipse_victim = static_cast<net::NodeId>(spec.eclipse_victim);
  config.eclipse_delay = sim::seconds(spec.eclipse_delay_s);
  config.eclipse_filter = spec.eclipse_filter;
  for (const std::string& name : spec.extra_faults) {
    // Composed plans share the primary fault window and knob values; the
    // runner fills in their default targets.
    FaultPlan plan;
    plan.type = fault_from_name(name);
    plan.inject_at = config.inject_at;
    plan.recover_at = config.recover_at;
    plan.loss_probability = config.loss_probability;
    plan.throttle_bytes_per_s = config.throttle_bytes_per_s;
    plan.gray_latency = config.gray_latency;
    plan.eclipse_victim = config.eclipse_victim;
    plan.eclipse_delay = config.eclipse_delay;
    plan.eclipse_filter = config.eclipse_filter;
    config.extra_faults.add(std::move(plan));
  }
  config.client_fanout = static_cast<int>(spec.fanout);
  config.client_matching = static_cast<std::size_t>(spec.matching);
  config.vcpus = spec.vcpus;
  config.workload.shape = parse_workload_shape(spec.workload);
  if (spec.has_traffic) {
    // The preset fills default knobs first, so the resolved run and the
    // re-dumped spec agree on what actually executed.
    TrafficSpec traffic = spec.traffic;
    apply_traffic_preset(traffic);
    config.traffic = resolve_traffic(traffic);
    if (!traffic.shape.empty()) {
      config.workload.shape = parse_workload_shape(traffic.shape);
    }
    config.workload.diurnal_amplitude = traffic.diurnal_amplitude;
    config.workload.diurnal_period = sim::seconds(traffic.diurnal_period_s);
    config.workload.flash_at = sim::seconds(traffic.flash_at_s);
    config.workload.flash_duration =
        sim::seconds(traffic.flash_duration_s);
    config.workload.flash_factor = traffic.flash_factor;
    if (traffic.fault_phase == "burst") {
      // Land the fault DURING the busy window instead of the historical
      // thirds: centred in the middle half of the flash crowd, or across
      // the diurnal peak (the cosine peaks at half a period).
      if (config.workload.shape == WorkloadShape::kFlash) {
        const sim::Duration width = config.workload.flash_duration;
        config.inject_at = config.workload.flash_at + width / 4;
        config.recover_at = config.workload.flash_at + (3 * width) / 4;
      } else if (config.workload.shape == WorkloadShape::kDiurnal) {
        const sim::Duration period =
            config.workload.diurnal_period.count() > 0
                ? config.workload.diurnal_period
                : config.duration;
        config.inject_at = (3 * period) / 8;
        config.recover_at = (5 * period) / 8;
      }
    }
  }
  config.resilience.enabled = spec.resilient;
  config.resilience.retry.commit_timeout =
      sim::seconds(spec.commit_timeout_s);
  config.resilience.hedge.enabled = spec.hedge;
  config.resilience.hedge.percentile = spec.hedge_percentile;
  config.resilience.hedge.min_delay = sim::seconds(spec.hedge_min_delay_s);
  config.resilience.hedge.max_delay = sim::seconds(spec.hedge_max_delay_s);
  config.resilience.score.enabled = spec.endpoint_scoring;
  // The §7 secure-client geometry: t_B+1 = 4 endpoints, 8-vCPU VMs.
  if (config.fault == FaultType::kSecureClient &&
      config.client_fanout == 1) {
    config.client_fanout = 4;
    config.vcpus = 8.0;
  }

  resolved.num_seeds = static_cast<std::size_t>(spec.num_seeds);
  resolved.jobs = static_cast<unsigned>(spec.jobs);
  resolved.chaos_trials = static_cast<std::size_t>(spec.chaos_trials);
  resolved.shrink = spec.shrink;
  resolved.chaos_adversarial = spec.chaos_adversarial;
  resolved.trace_path = spec.trace;
  resolved.metrics_path = spec.metrics;
  return resolved;
}

}  // namespace stabl::core
