// Plain-text rendering of tables, time series and eCDF plots, so every
// bench binary can print the figure it reproduces.
#pragma once

#include <string>
#include <vector>

#include "core/sensitivity.hpp"

namespace stabl::core {

/// Fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string to_string() const;

  /// Format helpers.
  static std::string num(double value, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a per-second series as rows of `bucket_s`-second averages, e.g.
///   [  0- 20s] ####################  201.3 tps
std::string render_timeseries(const std::vector<double>& per_second,
                              double bucket_s = 10.0, double max_scale = 0.0);

/// Render two eCDFs side by side over a shared latency grid (Fig. 1 style):
/// baseline '#', altered '*', overlap '@'.
std::string render_ecdf_pair(const Ecdf& baseline, const Ecdf& altered,
                             int width = 61, int height = 16);

/// CSV line helpers for machine-readable output.
std::string csv_join(const std::vector<std::string>& cells);

}  // namespace stabl::core
