#include "core/attribution.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "core/parallel.hpp"
#include "core/report.hpp"
#include "core/sensitivity.hpp"

namespace stabl::core {
namespace {

// Same fixed precision as the metrics serializers: byte-stable output.
constexpr int kSecondsPrecision = 6;

std::vector<double> segment_bounds() {
  return Histogram::log_bounds(0.001, 256.0, 4);
}

std::string seconds(double value) {
  return Table::num(value, kSecondsPrecision);
}

}  // namespace

StageBreakdown fold_lifecycle(const sim::LifecycleRecorder& recorder) {
  StageBreakdown out;
  const auto& names = sim::stage_segment_names();
  for (std::size_t i = 0; i < kNumStageSegments; ++i) {
    out.segments[i] = Histogram(names[i], segment_bounds());
  }
  std::array<double, kNumStageSegments> sums{};
  double latency_sum = 0.0;
  for (const sim::TxLifecycle& record : recorder.records()) {
    if (!record.reached(sim::TxStage::kSubmitted)) continue;
    ++out.submitted;
    for (std::size_t h = 0; h < sim::kNumTxHops; ++h) {
      out.hops[h] += record.hops[h];
    }
    if (!record.reached(sim::TxStage::kConfirmed)) {
      ++out.lost_at[static_cast<std::size_t>(record.deepest())];
      continue;
    }
    ++out.confirmed;
    const auto times = sim::stage_times(record);
    for (std::size_t i = 0; i < kNumStageSegments; ++i) {
      const double dt_s = sim::to_seconds(times[i + 1] - times[i]);
      sums[i] += dt_s;
      out.segments[i].observe(dt_s);
    }
    latency_sum +=
        sim::to_seconds(times[kNumStageSegments] - times[0]);
  }
  if (out.confirmed > 0) {
    const double n = static_cast<double>(out.confirmed);
    for (std::size_t i = 0; i < kNumStageSegments; ++i) {
      out.mean_s[i] = sums[i] / n;
    }
    out.mean_latency_s = latency_sum / n;
  }
  return out;
}

std::array<double, kNumStageSegments> AttributionCell::delta_s() const {
  std::array<double, kNumStageSegments> deltas{};
  for (std::size_t i = 0; i < kNumStageSegments; ++i) {
    deltas[i] = altered.mean_s[i] - baseline.mean_s[i];
  }
  return deltas;
}

std::array<double, sim::kNumTxStages> AttributionCell::loss_delta() const {
  std::array<double, sim::kNumTxStages> deltas{};
  for (std::size_t s = 0; s < sim::kNumTxStages; ++s) {
    const double altered_share =
        altered.submitted == 0
            ? 0.0
            : static_cast<double>(altered.lost_at[s]) /
                  static_cast<double>(altered.submitted);
    const double baseline_share =
        baseline.submitted == 0
            ? 0.0
            : static_cast<double>(baseline.lost_at[s]) /
                  static_cast<double>(baseline.submitted);
    deltas[s] = altered_share - baseline_share;
  }
  return deltas;
}

std::size_t AttributionCell::dominant_segment() const {
  const auto deltas = delta_s();
  std::size_t best = 0;
  for (std::size_t i = 1; i < kNumStageSegments; ++i) {
    if (std::abs(deltas[i]) > std::abs(deltas[best])) best = i;
  }
  return best;
}

double AttributionCell::dominant_share() const {
  const auto deltas = delta_s();
  double total = 0.0;
  for (const double d : deltas) total += std::abs(d);
  if (total <= 0.0) return 0.0;
  return std::abs(deltas[dominant_segment()]) / total;
}

const AttributionCell* AttributionReport::get(ChainKind chain,
                                              FaultType fault) const {
  for (const AttributionCell& cell : cells) {
    if (cell.chain == chain && cell.fault == fault) return &cell;
  }
  return nullptr;
}

std::string AttributionReport::to_table() const {
  const auto& names = sim::stage_segment_names();
  std::vector<std::string> header{"chain", "fault", "score", "dlat_s"};
  for (const char* name : names) header.push_back(std::string("d") + name);
  header.push_back("dominant");
  header.push_back("share");
  header.push_back("dloss");
  Table table(std::move(header));
  for (const AttributionCell& cell : cells) {
    const auto deltas = cell.delta_s();
    std::vector<std::string> row{to_string(cell.chain),
                                 to_string(cell.fault),
                                 format_score(cell.score),
                                 Table::num(cell.measured_latency_delta_s, 3)};
    for (const double d : deltas) row.push_back(Table::num(d, 3));
    row.push_back(names[cell.dominant_segment()]);
    row.push_back(Table::num(cell.dominant_share(), 2));
    const auto losses = cell.loss_delta();
    double loss_total = 0.0;
    for (const double l : losses) loss_total += l;
    row.push_back(Table::num(loss_total, 3));
    table.add_row(std::move(row));
  }
  return table.to_string();
}

std::string AttributionReport::to_csv() const {
  const auto& names = sim::stage_segment_names();
  std::vector<std::string> header{
      "chain",      "fault",          "seed",
      "score",      "live_at_end",    "baseline_mean_s",
      "altered_mean_s", "latency_delta_s", "measured_delta_s"};
  for (const char* name : names) {
    header.push_back(std::string(name) + "_baseline_s");
    header.push_back(std::string(name) + "_altered_s");
    header.push_back(std::string(name) + "_delta_s");
    header.push_back(std::string(name) + "_p50_s");
    header.push_back(std::string(name) + "_p90_s");
    header.push_back(std::string(name) + "_p99_s");
  }
  header.insert(header.end(),
                {"dominant_stage", "dominant_share", "baseline_submitted",
                 "baseline_confirmed", "altered_submitted",
                 "altered_confirmed"});
  for (std::size_t s = 0; s < sim::kNumTxStages; ++s) {
    header.push_back(std::string("lost_at_") +
                     to_string(static_cast<sim::TxStage>(s)));
  }
  for (std::size_t h = 0; h < sim::kNumTxHops; ++h) {
    header.push_back(std::string("hops_") +
                     to_string(static_cast<sim::TxHop>(h)));
  }
  std::ostringstream out;
  out << csv_join(header) << '\n';
  for (const AttributionCell& cell : cells) {
    const auto deltas = cell.delta_s();
    std::vector<std::string> row{
        to_string(cell.chain),
        to_string(cell.fault),
        std::to_string(cell.seed),
        format_score(cell.score),
        cell.altered_live_at_end ? "1" : "0",
        seconds(cell.baseline.mean_latency_s),
        seconds(cell.altered.mean_latency_s),
        seconds(cell.altered.mean_latency_s - cell.baseline.mean_latency_s),
        seconds(cell.measured_latency_delta_s)};
    for (std::size_t i = 0; i < kNumStageSegments; ++i) {
      row.push_back(seconds(cell.baseline.mean_s[i]));
      row.push_back(seconds(cell.altered.mean_s[i]));
      row.push_back(seconds(deltas[i]));
      row.push_back(seconds(cell.altered.segments[i].quantile(0.50)));
      row.push_back(seconds(cell.altered.segments[i].quantile(0.90)));
      row.push_back(seconds(cell.altered.segments[i].quantile(0.99)));
    }
    row.push_back(names[cell.dominant_segment()]);
    row.push_back(seconds(cell.dominant_share()));
    row.push_back(std::to_string(cell.baseline.submitted));
    row.push_back(std::to_string(cell.baseline.confirmed));
    row.push_back(std::to_string(cell.altered.submitted));
    row.push_back(std::to_string(cell.altered.confirmed));
    for (std::size_t s = 0; s < sim::kNumTxStages; ++s) {
      row.push_back(std::to_string(cell.altered.lost_at[s]));
    }
    for (std::size_t h = 0; h < sim::kNumTxHops; ++h) {
      row.push_back(std::to_string(cell.altered.hops[h]));
    }
    out << csv_join(row) << '\n';
  }
  return out.str();
}

std::string AttributionReport::to_json() const {
  const auto& names = sim::stage_segment_names();
  std::ostringstream out;
  out << "[";
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const AttributionCell& cell = cells[c];
    const auto deltas = cell.delta_s();
    if (c > 0) out << ",";
    out << "{\"chain\":\"" << to_string(cell.chain) << "\",\"fault\":\""
        << to_string(cell.fault) << "\",\"seed\":" << cell.seed
        << ",\"score\":\"" << format_score(cell.score)
        << "\",\"live_at_end\":" << (cell.altered_live_at_end ? "true" : "false")
        << ",\"measured_latency_delta_s\":"
        << seconds(cell.measured_latency_delta_s) << ",\"segments\":[";
    for (std::size_t i = 0; i < kNumStageSegments; ++i) {
      if (i > 0) out << ",";
      out << "{\"segment\":\"" << names[i] << "\",\"baseline_mean_s\":"
          << seconds(cell.baseline.mean_s[i]) << ",\"altered_mean_s\":"
          << seconds(cell.altered.mean_s[i]) << ",\"delta_s\":"
          << seconds(deltas[i]) << ",\"altered_p50_s\":"
          << seconds(cell.altered.segments[i].quantile(0.50))
          << ",\"altered_p90_s\":"
          << seconds(cell.altered.segments[i].quantile(0.90))
          << ",\"altered_p99_s\":"
          << seconds(cell.altered.segments[i].quantile(0.99)) << "}";
    }
    out << "],\"dominant_stage\":\"" << names[cell.dominant_segment()]
        << "\",\"dominant_share\":" << seconds(cell.dominant_share())
        << ",\"baseline\":{\"submitted\":" << cell.baseline.submitted
        << ",\"confirmed\":" << cell.baseline.confirmed
        << ",\"mean_latency_s\":" << seconds(cell.baseline.mean_latency_s)
        << "},\"altered\":{\"submitted\":" << cell.altered.submitted
        << ",\"confirmed\":" << cell.altered.confirmed
        << ",\"mean_latency_s\":" << seconds(cell.altered.mean_latency_s)
        << "},\"lost_at\":{";
    for (std::size_t s = 0; s < sim::kNumTxStages; ++s) {
      if (s > 0) out << ",";
      out << "\"" << to_string(static_cast<sim::TxStage>(s))
          << "\":" << cell.altered.lost_at[s];
    }
    out << "},\"hops\":{";
    for (std::size_t h = 0; h < sim::kNumTxHops; ++h) {
      if (h > 0) out << ",";
      out << "\"" << to_string(static_cast<sim::TxHop>(h)) << "\":["
          << cell.baseline.hops[h] << "," << cell.altered.hops[h] << "]";
    }
    out << "}}";
  }
  out << "]";
  return out.str();
}

AttributionReport run_attribution(const AttributionConfig& config) {
  struct CellSpec {
    ChainKind chain;
    FaultType fault;
  };
  std::vector<CellSpec> grid;
  grid.reserve(config.chains.size() * config.faults.size());
  for (const ChainKind chain : config.chains) {
    for (const FaultType fault : config.faults) {
      grid.push_back({chain, fault});
    }
  }

  std::vector<AttributionCell> slots(grid.size());
  Heartbeat heartbeat("attribution", grid.size(), config.heartbeat);
  ThreadPool pool(config.jobs);
  pool.parallel_for(grid.size(), [&](std::size_t i) {
    ExperimentConfig altered = config.base;
    altered.chain = grid[i].chain;
    altered.fault = grid[i].fault;
    // Cells run concurrently; observability shared through base would
    // race. The recorders below are per-cell locals.
    altered.trace = nullptr;
    altered.metrics = nullptr;
    if (altered.fault == FaultType::kSecureClient) {
      altered.client_fanout = 4;
      altered.vcpus = 8.0;
    }
    ExperimentConfig baseline = baseline_of(altered);
    sim::LifecycleRecorder baseline_recorder;
    sim::LifecycleRecorder altered_recorder;
    baseline.lifecycle = &baseline_recorder;
    altered.lifecycle = &altered_recorder;

    const ExperimentResult baseline_result = run_experiment(baseline);
    const ExperimentResult altered_result = run_experiment(altered);

    AttributionCell cell;
    cell.chain = grid[i].chain;
    cell.fault = grid[i].fault;
    cell.seed = altered.seed;
    cell.score =
        sensitivity(baseline_result.latencies, altered_result.latencies,
                    altered_result.live_at_end, {});
    cell.altered_live_at_end = altered_result.live_at_end;
    cell.baseline = fold_lifecycle(baseline_recorder);
    cell.altered = fold_lifecycle(altered_recorder);
    cell.measured_latency_delta_s =
        altered_result.mean_latency_s - baseline_result.mean_latency_s;
    slots[i] = std::move(cell);
    heartbeat.tick();
  });

  AttributionReport report;
  report.cells = std::move(slots);
  return report;
}

}  // namespace stabl::core
