#include "core/chaos.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "core/json.hpp"
#include "core/metrics.hpp"
#include "core/parallel.hpp"
#include "core/report.hpp"
#include "core/serialize.hpp"
#include "core/trace.hpp"

namespace stabl::core {
namespace {

std::string plan_json(const FaultPlan& plan) {
  std::ostringstream out;
  out << "{\"type\":\"" << to_string(plan.type) << "\",\"targets\":[";
  for (std::size_t i = 0; i < plan.targets.size(); ++i) {
    if (i > 0) out << ',';
    out << plan.targets[i];
  }
  out << "],\"inject_at_s\":" << Table::num(sim::to_seconds(plan.inject_at), 3);
  if (uses_recovery_window(plan.type)) {
    out << ",\"recover_at_s\":"
        << Table::num(sim::to_seconds(plan.recover_at), 3);
  }
  switch (plan.type) {
    case FaultType::kDelay:
      out << ",\"delay_s\":"
          << Table::num(sim::to_seconds(plan.delay_amount), 3);
      break;
    case FaultType::kChurn:
      out << ",\"churn_down_s\":"
          << Table::num(sim::to_seconds(plan.churn_down), 3)
          << ",\"churn_up_s\":"
          << Table::num(sim::to_seconds(plan.churn_up), 3);
      break;
    case FaultType::kLoss:
      out << ",\"loss_probability\":" << Table::num(plan.loss_probability, 2);
      break;
    case FaultType::kThrottle:
      out << ",\"throttle_bytes_per_s\":"
          << Table::num(plan.throttle_bytes_per_s, 0);
      break;
    case FaultType::kGray:
      out << ",\"gray_ms\":"
          << Table::num(sim::to_seconds(plan.gray_latency) * 1000.0, 0);
      break;
    case FaultType::kEclipse:
      out << ",\"eclipse_victim\":" << plan.eclipse_victim
          << ",\"eclipse_ms\":"
          << Table::num(sim::to_seconds(plan.eclipse_delay) * 1000.0, 0)
          << ",\"eclipse_filter\":" << Table::num(plan.eclipse_filter, 2);
      break;
    default:
      break;
  }
  out << '}';
  return out.str();
}

FaultPlan parse_plan(JsonCursor& cursor) {
  FaultPlan plan;
  cursor.expect('{');
  bool first = true;
  while (!cursor.consume('}')) {
    if (!first) cursor.expect(',');
    first = false;
    const std::string key = cursor.parse_string();
    cursor.expect(':');
    if (key == "type") {
      plan.type = fault_from_name(cursor.parse_string());
    } else if (key == "targets") {
      cursor.expect('[');
      if (!cursor.consume(']')) {
        do {
          plan.targets.push_back(
              static_cast<net::NodeId>(cursor.parse_number()));
        } while (cursor.consume(','));
        cursor.expect(']');
      }
    } else if (key == "inject_at_s") {
      plan.inject_at = sim::seconds(cursor.parse_number());
    } else if (key == "recover_at_s") {
      plan.recover_at = sim::seconds(cursor.parse_number());
    } else if (key == "delay_s") {
      plan.delay_amount = sim::seconds(cursor.parse_number());
    } else if (key == "churn_down_s") {
      plan.churn_down = sim::seconds(cursor.parse_number());
    } else if (key == "churn_up_s") {
      plan.churn_up = sim::seconds(cursor.parse_number());
    } else if (key == "loss_probability") {
      plan.loss_probability = cursor.parse_number();
    } else if (key == "throttle_bytes_per_s") {
      plan.throttle_bytes_per_s = cursor.parse_number();
    } else if (key == "gray_ms") {
      plan.gray_latency = sim::seconds(cursor.parse_number() / 1000.0);
    } else if (key == "eclipse_victim") {
      plan.eclipse_victim = static_cast<net::NodeId>(cursor.parse_number());
    } else if (key == "eclipse_ms") {
      plan.eclipse_delay = sim::seconds(cursor.parse_number() / 1000.0);
    } else if (key == "eclipse_filter") {
      plan.eclipse_filter = cursor.parse_number();
    } else {
      cursor.fail("unknown plan field \"" + key + "\"");
    }
  }
  return canonical(plan);
}

}  // namespace

ChaosGenConfig default_gen_for(sim::Duration duration) {
  ChaosGenConfig config;
  const int d = static_cast<int>(sim::to_seconds(duration));
  config.earliest_inject_s = std::max(1, d / 8);
  config.latest_recover_s =
      std::max(config.earliest_inject_s + config.min_window_s, d / 3);
  config.max_window_s = std::max(10, d / 6);
  return config;
}

ChaosGenConfig adversarial_gen_for(sim::Duration duration) {
  ChaosGenConfig config = default_gen_for(duration);
  config.types.push_back(FaultType::kEquivocate);
  config.types.push_back(FaultType::kWithhold);
  config.types.push_back(FaultType::kEclipse);
  return config;
}

FaultSchedule generate_schedule(sim::Rng& rng, const ChaosGenConfig& config) {
  assert(!config.types.empty());
  const std::size_t pool_start =
      config.allow_entry_targets ? 0 : config.entry_nodes;
  assert(pool_start < config.n && "no nodes eligible for faults");
  const std::size_t pool = config.n - pool_start;

  const auto plan_count = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(config.min_plans),
      static_cast<std::int64_t>(config.max_plans)));
  FaultSchedule schedule;
  for (std::size_t p = 0; p < plan_count; ++p) {
    FaultPlan plan;
    plan.type = config.types[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(config.types.size()) - 1))];

    const std::size_t most = std::min(
        std::max<std::size_t>(config.max_targets, 1), pool);
    const auto count = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(most)));
    for (const std::size_t index :
         rng.sample_without_replacement(pool, count)) {
      plan.targets.push_back(static_cast<net::NodeId>(pool_start + index));
    }

    const int latest_inject = config.latest_recover_s - config.min_window_s;
    const auto inject = static_cast<int>(
        rng.uniform_int(config.earliest_inject_s,
                        std::max(config.earliest_inject_s, latest_inject)));
    const int widest =
        std::min(config.max_window_s, config.latest_recover_s - inject);
    const auto window = static_cast<int>(rng.uniform_int(
        config.min_window_s, std::max(config.min_window_s, widest)));
    plan.inject_at = sim::sec(inject);
    plan.recover_at = sim::sec(inject + window);

    switch (plan.type) {
      case FaultType::kDelay:
        plan.delay_amount =
            sim::sec(rng.uniform_int(config.min_delay_s, config.max_delay_s));
        break;
      case FaultType::kChurn:
        plan.churn_down = sim::sec(rng.uniform_int(
            config.min_churn_period_s, config.max_churn_period_s));
        plan.churn_up = sim::sec(rng.uniform_int(
            config.min_churn_period_s, config.max_churn_period_s));
        break;
      case FaultType::kLoss: {
        const auto percent = rng.uniform_int(
            static_cast<std::int64_t>(std::lround(config.min_loss * 100.0)),
            static_cast<std::int64_t>(std::lround(config.max_loss * 100.0)));
        plan.loss_probability = static_cast<double>(percent) / 100.0;
        break;
      }
      case FaultType::kThrottle:
        plan.throttle_bytes_per_s = static_cast<double>(rng.uniform_int(
            static_cast<std::int64_t>(config.min_throttle_bytes_per_s),
            static_cast<std::int64_t>(config.max_throttle_bytes_per_s)));
        break;
      case FaultType::kGray:
        plan.gray_latency = sim::ms(
            rng.uniform_int(config.min_gray_ms, config.max_gray_ms));
        break;
      case FaultType::kEclipse: {
        // The victim is drawn from the nodes the plan does not control
        // (validate() rejects a victim that is also an attacker).
        std::vector<net::NodeId> eligible;
        for (std::size_t id = 0; id < config.n; ++id) {
          const auto node = static_cast<net::NodeId>(id);
          if (std::find(plan.targets.begin(), plan.targets.end(), node) ==
              plan.targets.end()) {
            eligible.push_back(node);
          }
        }
        plan.eclipse_victim = eligible[static_cast<std::size_t>(
            rng.uniform_int(0,
                            static_cast<std::int64_t>(eligible.size()) - 1))];
        plan.eclipse_delay = sim::ms(
            rng.uniform_int(config.min_eclipse_ms, config.max_eclipse_ms));
        const auto filter_percent = rng.uniform_int(
            static_cast<std::int64_t>(
                std::lround(config.min_eclipse_filter * 100.0)),
            static_cast<std::int64_t>(
                std::lround(config.max_eclipse_filter * 100.0)));
        plan.eclipse_filter = static_cast<double>(filter_percent) / 100.0;
        break;
      }
      default:
        break;
    }
    plan = canonical(std::move(plan));
    assert(validate(plan, config.n).empty() &&
           "generator produced an invalid plan");
    schedule.add(std::move(plan));
  }
  return schedule;
}

std::string schedule_to_json(const FaultSchedule& schedule) {
  const FaultSchedule canon = canonical(schedule);
  std::ostringstream out;
  out << "{\"plans\":[";
  for (std::size_t i = 0; i < canon.plans.size(); ++i) {
    if (i > 0) out << ',';
    out << plan_json(canon.plans[i]);
  }
  out << "]}";
  return out.str();
}

FaultSchedule schedule_from_json(const std::string& json) {
  JsonCursor cursor(json);
  cursor.expect('{');
  if (cursor.parse_string() != "plans") cursor.fail("expected \"plans\"");
  cursor.expect(':');
  cursor.expect('[');
  FaultSchedule schedule;
  if (!cursor.consume(']')) {
    do {
      schedule.add(parse_plan(cursor));
    } while (cursor.consume(','));
    cursor.expect(']');
  }
  cursor.expect('}');
  cursor.finish();
  return schedule;
}

std::optional<ShrinkResult> shrink_schedule(const FaultSchedule& schedule,
                                            const ScheduleEvaluator& evaluate,
                                            const ShrinkOptions& options) {
  std::size_t runs = 0;
  const auto run = [&](const FaultSchedule& candidate) {
    ++runs;
    return evaluate(candidate);
  };
  const OracleReport initial = run(schedule);
  const OracleFinding* violation = initial.violation();
  if (violation == nullptr) return std::nullopt;
  const std::string oracle = violation->oracle;

  FaultSchedule best = canonical(schedule);
  OracleReport best_report = initial;
  // A candidate survives only when it violates the SAME oracle — a shrink
  // step that trades an agreement fork for an unrelated liveness failure
  // would "minimize" into a different bug.
  const auto still_violates = [&](const FaultSchedule& candidate,
                                  OracleReport& out) {
    if (runs >= options.max_runs) return false;
    OracleReport report = run(candidate);
    const bool hit = std::any_of(
        report.findings.begin(), report.findings.end(),
        [&](const OracleFinding& finding) {
          return finding.verdict == OracleVerdict::kViolation &&
                 finding.oracle == oracle;
        });
    if (hit) out = std::move(report);
    return hit;
  };

  // Pass 1: drop whole plans, restarting until no single removal keeps the
  // violation alive (greedy ddmin with subset size 1).
  bool changed = true;
  while (changed && best.plans.size() > 1) {
    changed = false;
    for (std::size_t i = 0; i < best.plans.size();) {
      FaultSchedule candidate = best;
      candidate.plans.erase(candidate.plans.begin() +
                            static_cast<std::ptrdiff_t>(i));
      OracleReport report;
      if (still_violates(candidate, report)) {
        best = std::move(candidate);
        best_report = std::move(report);
        changed = true;
      } else {
        ++i;
      }
    }
  }

  // Pass 2: narrow each surviving plan's target list one node at a time.
  for (std::size_t i = 0; i < best.plans.size(); ++i) {
    for (std::size_t t = 0;
         best.plans[i].targets.size() > 1 && t < best.plans[i].targets.size();) {
      FaultSchedule candidate = best;
      candidate.plans[i].targets.erase(
          candidate.plans[i].targets.begin() + static_cast<std::ptrdiff_t>(t));
      OracleReport report;
      if (still_violates(candidate, report)) {
        best = std::move(candidate);
        best_report = std::move(report);
      } else {
        ++t;
      }
    }
  }

  // Pass 3: halve each plan's fault window while the violation persists.
  for (std::size_t i = 0; i < best.plans.size(); ++i) {
    while (uses_recovery_window(best.plans[i].type)) {
      const double inject = sim::to_seconds(best.plans[i].inject_at);
      const double recover = sim::to_seconds(best.plans[i].recover_at);
      const double halved = std::floor((recover - inject) / 2.0);
      if (halved < static_cast<double>(options.min_window_s)) break;
      FaultSchedule candidate = best;
      candidate.plans[i].recover_at = sim::seconds(inject + halved);
      OracleReport report;
      if (!still_violates(candidate, report)) break;
      best = std::move(candidate);
      best_report = std::move(report);
    }
  }

  ShrinkResult result;
  result.schedule = canonical(best);
  result.oracle = oracle;
  result.report = std::move(best_report);
  result.runs = runs;
  result.initial_plans = schedule.plans.size();
  return result;
}

std::size_t ChaosCampaignResult::violations() const {
  return static_cast<std::size_t>(
      std::count_if(trials.begin(), trials.end(), [](const ChaosTrial& t) {
        return t.report.violated();
      }));
}

std::size_t ChaosCampaignResult::expected_losses() const {
  return static_cast<std::size_t>(
      std::count_if(trials.begin(), trials.end(), [](const ChaosTrial& t) {
        return t.report.verdict == OracleVerdict::kExpectedLoss;
      }));
}

std::string ChaosCampaignResult::summary_table() const {
  Table table({"chain", "trial", "seed", "plans", "types", "verdict",
               "detail"});
  for (const ChaosTrial& trial : trials) {
    std::string types;
    for (std::size_t i = 0; i < trial.schedule.plans.size(); ++i) {
      if (i > 0) types += '+';
      types += to_string(trial.schedule.plans[i].type);
    }
    std::string detail = "-";
    for (const OracleFinding& finding : trial.report.findings) {
      if (finding.verdict != OracleVerdict::kPass) {
        detail = finding.oracle;
        break;
      }
    }
    if (trial.shrunk.has_value()) {
      detail += " (shrunk " + std::to_string(trial.shrunk->initial_plans) +
                "->" + std::to_string(trial.shrunk->schedule.plans.size()) +
                " plans)";
    }
    table.add_row({to_string(trial.chain), std::to_string(trial.trial),
                   std::to_string(trial.experiment_seed),
                   std::to_string(trial.schedule.plans.size()), types,
                   to_string(trial.report.verdict), detail});
  }
  return table.to_string();
}

std::string ChaosCampaignResult::to_json() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const ChaosTrial& trial = trials[i];
    if (i > 0) out << ',';
    out << "{\"chain\":\"" << to_string(trial.chain) << "\",\"trial\":"
        << trial.trial << ",\"experiment_seed\":" << trial.experiment_seed
        << ",\"schedule\":" << schedule_to_json(trial.schedule)
        << ",\"submitted\":" << trial.submitted << ",\"committed\":"
        << trial.committed << ",\"live_at_end\":"
        << (trial.live_at_end ? "true" : "false")
        << ",\"oracle\":" << stabl::core::to_json(trial.report);
    if (trial.shrunk.has_value()) {
      out << ",\"shrunk\":{\"oracle\":\""
          << json_escape(trial.shrunk->oracle) << "\",\"runs\":"
          << trial.shrunk->runs << ",\"initial_plans\":"
          << trial.shrunk->initial_plans << ",\"schedule\":"
          << schedule_to_json(trial.shrunk->schedule) << '}';
    }
    out << '}';
  }
  out << ']';
  return out.str();
}

std::string ChaosCampaignResult::timing_table() const {
  Table table({"chain", "trial", "verdict", "wall_ms"});
  double total = 0.0;
  for (const ChaosTrial& trial : trials) {
    total += trial.wall_ms;
    table.add_row({to_string(trial.chain), std::to_string(trial.trial),
                   to_string(trial.report.verdict),
                   Table::num(trial.wall_ms, 0)});
  }
  table.add_row({"total", "-", "-", Table::num(total, 0)});
  return table.to_string();
}

ExperimentConfig chaos_trial_config(const ChaosCampaignConfig& config,
                                    ChainKind chain,
                                    std::uint64_t experiment_seed,
                                    const FaultSchedule& schedule) {
  ExperimentConfig cell = config.base;
  cell.chain = chain;
  cell.fault = FaultType::kNone;
  cell.fault_targets.clear();
  cell.extra_faults = schedule;
  cell.seed = experiment_seed;
  cell.capture_replicas = true;
  // Trials run concurrently; a sink/registry/recorder inherited from the
  // template would race. The traced repro re-run attaches its own local
  // sink.
  cell.trace = nullptr;
  cell.metrics = nullptr;
  cell.lifecycle = nullptr;
  return cell;
}

ChaosCampaignResult run_chaos_campaign(const ChaosCampaignConfig& config) {
  ChaosGenConfig gen;
  if (config.gen.has_value()) {
    gen = *config.gen;
  } else {
    gen = default_gen_for(config.base.duration);
    gen.n = config.base.n;
    gen.entry_nodes = std::min(config.base.clients, config.base.n);
  }

  const sim::Rng root(config.seed);
  const std::size_t total = config.chains.size() * config.trials_per_chain;
  std::vector<ChaosTrial> slots(total);
  Heartbeat heartbeat("chaos", total, config.heartbeat);
  ThreadPool pool(config.jobs);
  pool.parallel_for(total, [&](std::size_t index) {
    const WallTimer trial_timer;
    const ChainKind chain = config.chains[index / config.trials_per_chain];
    const std::size_t k = index % config.trials_per_chain;
    // The stream id encodes the chain's identity (not its list position),
    // so reordering config.chains never changes a trial's schedule.
    const std::uint64_t stream =
        static_cast<std::uint64_t>(chain) * 1'000'003ull +
        static_cast<std::uint64_t>(k);
    sim::Rng rng = root.derive(stream);

    ChaosTrial trial;
    trial.chain = chain;
    trial.trial = k;
    trial.experiment_seed = rng.next_u64();
    trial.schedule = generate_schedule(rng, gen);

    const ExperimentConfig cell = chaos_trial_config(
        config, chain, trial.experiment_seed, trial.schedule);
    const ExperimentResult result = run_experiment(cell);
    trial.report =
        check_invariants(make_oracle_context(cell), result, config.oracle);
    trial.submitted = result.submitted;
    trial.committed = result.committed;
    trial.live_at_end = result.live_at_end;

    if (config.shrink && trial.report.violated()) {
      const auto evaluate = [&](const FaultSchedule& candidate) {
        const ExperimentConfig candidate_cell = chaos_trial_config(
            config, chain, trial.experiment_seed, candidate);
        return check_invariants(make_oracle_context(candidate_cell),
                                run_experiment(candidate_cell),
                                config.oracle);
      };
      trial.shrunk =
          shrink_schedule(trial.schedule, evaluate, config.shrink_options);
    }
    if (config.trace_repros && trial.report.violated()) {
      // Re-run the minimal violating schedule with tracing on, so the
      // repro ships with its timeline. A sink per worker: sinks are not
      // shareable across concurrent runs.
      const FaultSchedule& minimal = trial.shrunk.has_value()
                                         ? trial.shrunk->schedule
                                         : trial.schedule;
      ExperimentConfig traced_cell = chaos_trial_config(
          config, chain, trial.experiment_seed, minimal);
      sim::TraceSink sink;
      traced_cell.trace = &sink;
      run_experiment(traced_cell);
      trial.repro_trace = trace_to_json(sink);
    }
    trial.wall_ms = trial_timer.elapsed_ms();
    slots[index] = std::move(trial);
    heartbeat.tick();
  });

  ChaosCampaignResult result;
  result.trials = std::move(slots);
  return result;
}

}  // namespace stabl::core
