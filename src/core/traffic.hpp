// Declarative production traffic model (ROADMAP item 4).
//
// The paper's workload is 5 clients x 40 TPS of native transfers from one
// account each — §8 names it a limitation ("not representative of
// realistic fluctuating workloads, request bursts or demanding
// workloads"). This layer replaces the hard-wired population with a
// declarative spec composing four orthogonal axes:
//
//  * arrival shape — the WorkloadShape family, extended with diurnal and
//    flash-crowd bursts (core/workload.hpp);
//  * account population — a heavy-tailed (Zipf) set of sender accounts per
//    client, whales at the head and minnows in the tail, assigned
//    deterministically from the client index;
//  * contention — a fraction of traffic spent from the shared hot wallet
//    (chain::kHotKey) with globally-sequenced nonces, which stresses
//    exactly what the paper's constant transfer mix cannot: Block-STM
//    re-execution on Aptos and nonce-gap ordering stalls on Avalanche;
//  * geography — clients spread over regions mapped onto extra network
//    link latency toward the cluster.
//
// Determinism: population assignment and account selection draw from a
// dedicated per-client RNG seeded from the tx seed and client index —
// never from the simulation RNG streams — so a run with the traffic model
// disabled is byte-identical to one built before this layer existed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/types.hpp"
#include "core/workload.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace stabl::core {

/// The JSON-facing traffic knobs (the "traffic" object of a scenario —
/// core/scenario.hpp parses and serializes these strictly). Defaults are
/// the paper's legacy population: one account per client, no contention,
/// one region, shape inherited from the scenario's "workload" field.
struct TrafficSpec {
  /// Named preset ("exchange_burst", "nft_mint", "dex_sustained"); empty
  /// = fully explicit. A preset fills every knob still at its default;
  /// explicitly set non-default values win. See traffic_preset_names().
  std::string preset{};
  /// Arrival shape override ("constant", "bursty", "ramp", "diurnal",
  /// "flash"); empty inherits the scenario's top-level "workload" shape.
  std::string shape{};
  std::int64_t accounts_per_client = 1;
  /// Zipf exponent s over each client's accounts (weight 1/(k+1)^s);
  /// 0 = uniform.
  double zipf_exponent = 0.0;
  /// Fraction of submissions spent from the shared hot wallet.
  double hot_fraction = 0.0;
  std::int64_t regions = 1;
  /// Extra client->cluster latency of the farthest region; intermediate
  /// regions interpolate linearly.
  double region_spread_ms = 40.0;
  // Shape knobs forwarded into WorkloadConfig (diurnal/flash only).
  double diurnal_amplitude = 0.6;
  double diurnal_period_s = 0.0;  // 0 = one cycle over the run
  double flash_at_s = 150.0;
  double flash_duration_s = 50.0;
  double flash_factor = 6.0;
  /// Where the fault window lands relative to the traffic shape:
  /// "" / "steady" keeps the historical integer-thirds windows; "burst"
  /// centres the window inside the flash crowd (or the diurnal peak), so
  /// a cell measures the fault hitting the system at its busiest.
  std::string fault_phase{};

  bool operator==(const TrafficSpec&) const = default;
};

/// Valid names, for validation errors and `stabl_cli --list-workloads`.
const std::vector<std::string>& traffic_preset_names();
const std::vector<std::string>& workload_shape_names();

/// One-line descriptions for `stabl_cli --list-workloads`. Unknown names
/// return an empty string (the listing only iterates the names above).
std::string workload_shape_description(const std::string& name);
std::string traffic_preset_description(const std::string& name);

/// Parse a shape name ("constant"..."flash"). Throws std::invalid_argument
/// listing the valid names when unknown.
WorkloadShape parse_workload_shape(const std::string& name);
std::string to_string(WorkloadShape shape);

/// The preset's TrafficSpec (shape + population + contention + regions).
/// Throws std::invalid_argument listing the valid presets when unknown.
TrafficSpec traffic_preset(const std::string& name);

/// Fill every knob of `spec` still at its TrafficSpec{} default from
/// `spec.preset` (no-op for an empty preset name).
void apply_traffic_preset(TrafficSpec& spec);

/// Range validation mirroring validate_scenario's style: empty string when
/// well-formed, else a human-readable error.
[[nodiscard]] std::string validate_traffic(const TrafficSpec& spec);

/// The resolved, experiment-facing form (core/experiment.hpp carries one).
struct TrafficConfig {
  std::size_t accounts_per_client = 1;
  double zipf_exponent = 0.0;
  double hot_fraction = 0.0;
  std::size_t regions = 1;
  sim::Duration region_spread = sim::ms(40);

  /// True when any axis departs from the paper's legacy population; the
  /// client then takes the population submission path. False keeps the
  /// legacy one-account-per-client path byte-for-byte.
  [[nodiscard]] bool active() const {
    return accounts_per_client > 1 || zipf_exponent > 0.0 ||
           hot_fraction > 0.0 || regions > 1;
  }

  friend bool operator==(const TrafficConfig&,
                         const TrafficConfig&) = default;
};

/// Lower the JSON knobs onto the experiment form (shape/fault_phase are
/// handled by resolve_scenario, which owns WorkloadConfig and windows).
TrafficConfig resolve_traffic(const TrafficSpec& spec);

/// Run-wide shared state of the traffic model: the hot wallet's global
/// nonce sequencer. The simulation is single-threaded and clients emit in
/// deterministic enrolment order, so handing out nonces first-come makes
/// the hot account's issuance order a pure function of the schedule.
class TrafficModel {
 public:
  explicit TrafficModel(const TrafficConfig& config) : config_(config) {}

  TrafficModel(const TrafficModel&) = delete;
  TrafficModel& operator=(const TrafficModel&) = delete;

  [[nodiscard]] const TrafficConfig& config() const { return config_; }
  std::uint64_t next_hot_nonce() { return hot_nonce_++; }
  [[nodiscard]] std::uint64_t hot_submitted() const { return hot_nonce_; }

 private:
  TrafficConfig config_;
  std::uint64_t hot_nonce_ = 0;
};

/// One client's slice of the population: its sender accounts, the Zipf
/// CDF over them, its region, and the shared model. Inactive (null model)
/// keeps the legacy single-account path.
struct ClientTrafficPlan {
  TrafficModel* model = nullptr;  ///< Shared, not owned; null = inactive.
  std::vector<chain::AccountId> accounts;
  /// Cumulative normalized Zipf weights, one entry per account.
  std::vector<double> zipf_cdf;
  /// Seed of the client's dedicated traffic RNG (account selection and the
  /// hot-wallet coin flip draw from here, never from simulation streams).
  std::uint64_t rng_seed = 0;
  std::size_t region = 0;

  [[nodiscard]] bool active() const { return model != nullptr; }
};

/// Deterministic population slice for client `index`: accounts
/// [base + index*apc, base + (index+1)*apc), Zipf CDF from
/// config.zipf_exponent, region = index % config.regions, RNG seed mixed
/// from `tx_seed` and the index.
ClientTrafficPlan make_client_plan(const TrafficConfig& config,
                                   TrafficModel& model, std::size_t index,
                                   std::uint64_t tx_seed);

/// Index into `cdf` selected by uniform draw `u` in [0, 1).
std::size_t zipf_pick(const std::vector<double>& cdf, double u);

/// Sink account a population sender transfers into (one sink per sender).
chain::AccountId population_sink(chain::AccountId sender);

}  // namespace stabl::core
