// Throughput-over-time series and recovery-time detection.
//
// The paper's Figs. 4-6 plot committed transactions per second over the
// experiment; §5/§6 report recovery times (time from the fault clearing to
// throughput being restored), e.g. Redbelly 7 s -> 81 s and Algorand
// 9 s -> 99 s between transient node failures and partitions.
#pragma once

#include <vector>

#include "chain/ledger.hpp"
#include "sim/time.hpp"

namespace stabl::core {

/// Committed transactions per 1-second bin, computed from a replica's
/// ledger. bins() has `ceil(duration)` entries.
class ThroughputSeries {
 public:
  ThroughputSeries(const chain::Ledger& ledger, sim::Duration duration);

  [[nodiscard]] const std::vector<double>& bins() const { return bins_; }

  /// Average TPS over the bins touched by [from, to): bin t covers
  /// [t, t+1), the lower bound floors and the upper bound CEILS, so a
  /// fractional `to_s` includes its final partial bin.
  [[nodiscard]] double average(double from_s, double to_s) const;

  /// Mean of the series over its whole span.
  [[nodiscard]] double overall_average() const;

  /// Largest single-bin value (the post-recovery backlog peak).
  [[nodiscard]] double peak() const;

 private:
  std::vector<double> bins_;
};

/// First commit-carrying second at or after ceil(`after_s`) from which the
/// next `window_s` seconds average at least `threshold_tps`, minus
/// `after_s`. The scan starts at the first whole bin after the fault
/// clears, so a fractional fault-clear time can never yield a recovery
/// earlier than the clearing itself. Returns a negative value when the
/// series never recovers.
double recovery_seconds(const ThroughputSeries& series, double after_s,
                        double threshold_tps, double window_s = 3.0);

/// Same detection over raw per-second bins. The invariant oracles use this
/// overload to recompute a reported `recovery_seconds` from the throughput
/// series a result carries and flag any inconsistency between the two.
double recovery_seconds(const std::vector<double>& bins, double after_s,
                        double threshold_tps, double window_s = 3.0);

}  // namespace stabl::core
