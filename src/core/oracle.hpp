// Invariant oracles: steady-state and safety properties checked against a
// completed experiment, the chaos-engineering counterpart of the paper's
// fixed metrics. Chaoseth (Zhang et al.) shows randomized perturbation
// only finds resilience bugs when paired with oracles that say what
// "healthy" means; these are STABL's.
//
// Safety oracles (replica snapshots required, ExperimentConfig::
// capture_replicas):
//  * agreement            — all replicas agree on the common prefix of
//                           their ledgers (same transaction sequence at
//                           every shared height);
//  * no-duplicate-commit  — no transaction id appears twice in any
//                           replica's ledger;
//  * monotone             — block heights are consecutive from zero and
//                           commit times never decrease within a ledger;
//  * committed-subset     — every committed transaction id was generated
//                           by some client (chains never invent traffic).
//
// Liveness/recovery oracles (work from the result's throughput series):
//  * recovery-resume      — if every plan of the schedule recovers, commit
//                           progress must resume within a grace window of
//                           the last recovery (exemptions below);
//  * recovery-consistency — a reported recovery_seconds must be
//                           recomputable from the throughput series.
//
// A liveness failure that matches a per-chain exemption — a failure mode
// the model *intends* (Solana's EAH panic under delay, Avalanche's
// throttling death spiral) — is reported as kExpectedLoss, a distinct
// verdict, never silently skipped. Safety failures are never exempted.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "sim/time.hpp"

namespace stabl::core {

enum class OracleVerdict {
  kPass,
  kExpectedLoss,  ///< liveness lost, but the chain model predicts exactly
                  ///< this loss under the injected fault (documented
                  ///< failure mode, backed by chain_metrics evidence)
  kViolation,
};

std::string to_string(OracleVerdict verdict);

/// What a finding is about. Safety violations (ledger forks, duplicate
/// commits) can never be exempted — there is no "expected" safety loss;
/// harness findings flag inconsistencies in the measurement itself.
enum class OracleClass {
  kSafety,
  kLiveness,
  kHarness,
};

std::string to_string(OracleClass cls);

struct OracleFinding {
  std::string oracle;  ///< "agreement", "recovery-resume", ...
  OracleClass cls = OracleClass::kLiveness;
  OracleVerdict verdict = OracleVerdict::kPass;
  std::string detail;  ///< human-readable explanation / evidence
};

struct OracleReport {
  /// Worst verdict across findings (kViolation > kExpectedLoss > kPass).
  OracleVerdict verdict = OracleVerdict::kPass;
  std::vector<OracleFinding> findings;

  [[nodiscard]] bool violated() const {
    return verdict == OracleVerdict::kViolation;
  }
  /// First violating finding, or nullptr.
  [[nodiscard]] const OracleFinding* violation() const;
  /// First violating *safety* finding, or nullptr. The distinction drives
  /// the sensitivity-to-attack verdicts: an equivocation schedule that
  /// forks a ledger is a safety violation, one that merely stalls commits
  /// is a (possibly expected) liveness loss.
  [[nodiscard]] const OracleFinding* safety_violation() const;
  /// One line per non-pass finding ("all oracles passed" when clean).
  [[nodiscard]] std::string summary() const;
};

/// A modeled liveness loss: when `chain` runs under a schedule containing
/// a plan of type `fault` and a liveness oracle fails, the verdict is
/// downgraded to kExpectedLoss — provided the evidence metric (a
/// chain_metrics key, e.g. Solana's "panicked") is positive. An empty
/// evidence_metric matches unconditionally.
struct OracleExemption {
  ChainKind chain;
  FaultType fault;
  std::string evidence_metric;
  std::string reason;
};

/// The paper's observed per-chain failure modes (DESIGN.md §10 table):
/// Solana panics when transient outages, partitions or delays stall its
/// epoch accounts hash; Avalanche's inbound throttler starves it to death
/// after restarts, partitions, delays or bandwidth collapse.
std::vector<OracleExemption> default_exemptions();

struct OracleConfig {
  /// recovery-resume: commits must reappear within this window after the
  /// last plan recovered. Generous by design — Algorand needs ~99 s to
  /// rebuild after a partition (paper §6) and that is healthy behaviour.
  sim::Duration liveness_grace = sim::sec(120);
  /// recovery-resume windows shorter than this (run ended too early) are
  /// inconclusive and pass.
  sim::Duration min_conclusive_window = sim::sec(10);
  /// recovery-consistency: |reported - recomputed| tolerance, seconds.
  double recovery_tolerance_s = 1e-6;
  std::vector<OracleExemption> exemptions = default_exemptions();
};

/// Everything the oracles need to know about how the run was set up.
struct OracleContext {
  ChainKind chain = ChainKind::kRedbelly;
  /// Every plan armed on the run (resolved targets/windows) — see
  /// resolved_schedule().
  FaultSchedule schedule{};
  /// Replicas under adversarial control (targets of equivocate/withhold
  /// plans — see adversarial_nodes()). Safety oracles exclude their
  /// ledgers: a Byzantine replica's own ledger proves nothing, while a
  /// fork *between honest replicas* remains a violation.
  std::vector<net::NodeId> adversarial{};
  sim::Duration duration = sim::sec(400);
  /// Primary fault knobs run_experiment derives recovery_seconds from.
  FaultType primary_fault = FaultType::kNone;
  sim::Duration primary_recover_at = sim::sec(266);
  /// Threshold run_experiment used (0.5 x offered load).
  double recovery_threshold_tps = 100.0;
};

/// Context for a run produced by run_experiment(config).
OracleContext make_oracle_context(const ExperimentConfig& config);

/// Run every oracle against a completed experiment. Safety oracles are
/// skipped (with an explanatory pass finding) when the result carries no
/// replica snapshots.
OracleReport check_invariants(const OracleContext& context,
                              const ExperimentResult& result,
                              const OracleConfig& config = {});

}  // namespace stabl::core
