// Batched open-loop client arrival generation.
//
// The paper's harness gave every client machine its own repeating
// submission timer. At 5 clients that is harmless; at millions of clients
// (ROADMAP item 1) one persistent timer per client floods the event queue
// with bookkeeping events that all fire at the same instants anyway. An
// ArrivalScheduler collapses them: clients sharing one arrival profile —
// same entry node, same workload shape/rate, same start/stop window —
// enrol into a single aggregate arrival process (a "cohort") driven by
// ONE repeating timer, which asks each member to emit its transactions in
// enrolment order at every tick.
//
// Determinism: cohorts are created and armed in enrolment order, member
// lists preserve enrolment order, and the tick gap comes from the same
// workload_rate() evaluation the per-client timers used — so the global
// submission sequence (times, relative order, and therefore every network
// RNG draw downstream) is byte-for-byte the one the per-client timers
// produced. Reports stay byte-identical across the swap; only the number
// of scheduler bookkeeping events shrinks.
//
// The 100 us interval floor no longer distorts the rate contract: above
// 10k TPS per cohort the process emits several transactions per member
// per tick (workload_step), honouring the configured average, and surfaces
// the binding floor once through the metrics registry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/workload.hpp"
#include "net/message.hpp"
#include "sim/simulation.hpp"

namespace stabl::core {

class MetricsRegistry;

/// Something that emits one transaction per call. ClientMachine is the
/// production implementation; tests enrol lightweight fakes.
class ArrivalSink {
 public:
  virtual ~ArrivalSink() = default;
  /// Emit one transaction now.
  virtual void generate_arrival() = 0;
  /// Inactive sinks are skipped at each tick (a killed client machine
  /// submits nothing, exactly as its cancelled per-client timer used to
  /// guarantee).
  [[nodiscard]] virtual bool arrivals_active() const = 0;
};

/// Cohort key: two sinks share one aggregate arrival process iff their
/// profiles compare equal.
struct ArrivalProfile {
  /// Primary entry node the sink submits to (cohorts are per (node,
  /// shape), so per-node backpressure studies can retune one node's
  /// arrival process without touching the others).
  net::NodeId node = 0;
  WorkloadConfig workload{};
  sim::Time start_at{0};
  sim::Time stop_at{0};
  /// Population identity of the traffic model (core/traffic.hpp): clients
  /// in different regions sit behind different link latencies, and clients
  /// with different population sizes draw different account mixes, so
  /// neither may share an aggregate process with the others. Both default
  /// to 0 — legacy profiles regroup exactly as before this field existed.
  std::uint32_t region = 0;
  std::uint32_t population = 0;

  friend bool operator==(const ArrivalProfile&,
                         const ArrivalProfile&) = default;
};

class ArrivalScheduler {
 public:
  /// `metrics` (optional, not owned) receives the one-time note when the
  /// interval floor binds.
  explicit ArrivalScheduler(sim::Simulation& simulation,
                            MetricsRegistry* metrics = nullptr)
      : sim_(simulation), metrics_(metrics) {}

  ArrivalScheduler(const ArrivalScheduler&) = delete;
  ArrivalScheduler& operator=(const ArrivalScheduler&) = delete;

  /// Enrol `sink` into the cohort matching `profile`, creating and arming
  /// the cohort's timer on first use. The sink must outlive the scheduler
  /// or its simulation (run_experiment tears both down together).
  void enroll(const ArrivalProfile& profile, ArrivalSink* sink);

  /// Aggregate arrival processes currently driving enrolled sinks.
  [[nodiscard]] std::size_t cohorts() const { return cohorts_.size(); }
  /// Total transactions the scheduler asked its sinks to emit.
  [[nodiscard]] std::uint64_t generated() const { return generated_; }
  /// True once any cohort's tick gap hit the kMinArrivalGap floor (the
  /// average still holds; ticks just batch multiple arrivals).
  [[nodiscard]] bool interval_floor_bound() const { return floor_bound_; }

 private:
  struct Cohort {
    ArrivalProfile profile;
    std::vector<ArrivalSink*> members;
  };

  void tick(std::size_t index);

  sim::Simulation& sim_;
  MetricsRegistry* metrics_;
  std::vector<Cohort> cohorts_;
  std::uint64_t generated_ = 0;
  bool floor_bound_ = false;
};

}  // namespace stabl::core
