// A minimal JSON cursor shared by the harness's round-trip readers.
//
// Deliberately small and strict: it reads exactly the documents the
// harness's own serializers emit (objects, arrays, unescaped strings,
// plain numbers). It is NOT a general JSON parser — repro files and
// metric snapshots never contain escapes, and keeping the reader this
// small keeps byte-for-byte round trips easy to reason about.
#pragma once

#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace stabl::core {

class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Peek at the next non-whitespace character without consuming it;
  /// returns '\0' at end of input.
  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') fail("escapes are not used in harness files");
      out.push_back(text_[pos_++]);
    }
    expect('"');
    return out;
  }

  double parse_number() {
    skip_ws();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) fail("expected a number");
    pos_ += static_cast<std::size_t>(end - start);
    return value;
  }

  void finish() {
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("harness JSON: " + what + " at offset " +
                                std::to_string(pos_));
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace stabl::core
