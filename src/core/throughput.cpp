#include "core/throughput.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace stabl::core {

ThroughputSeries::ThroughputSeries(const chain::Ledger& ledger,
                                   sim::Duration duration) {
  const auto seconds =
      static_cast<std::size_t>(std::ceil(sim::to_seconds(duration)));
  bins_.assign(std::max<std::size_t>(seconds, 1), 0.0);
  for (const chain::Block& block : ledger.blocks()) {
    const auto bin =
        static_cast<std::size_t>(sim::to_seconds(block.committed_at));
    if (bin >= bins_.size()) continue;
    bins_[bin] += static_cast<double>(block.txs.size());
  }
}

double ThroughputSeries::average(double from_s, double to_s) const {
  // Bin convention: bin t covers [t, t+1). The window's lower bound is
  // floored and the upper bound is CEILED, so every bin the window touches
  // contributes — a fractional to_s used to be truncated, silently
  // dropping the final partial bin (a 10.5 s window averaged only the
  // first 10 bins).
  const auto lo = static_cast<std::size_t>(std::max(0.0, from_s));
  const auto hi = std::min(
      bins_.size(),
      static_cast<std::size_t>(std::ceil(std::max(0.0, to_s))));
  if (lo >= hi) return 0.0;
  const double sum = std::accumulate(bins_.begin() + lo, bins_.begin() + hi,
                                     0.0);
  return sum / static_cast<double>(hi - lo);
}

double ThroughputSeries::overall_average() const {
  return average(0.0, static_cast<double>(bins_.size()));
}

double ThroughputSeries::peak() const {
  if (bins_.empty()) return 0.0;
  return *std::max_element(bins_.begin(), bins_.end());
}

double recovery_seconds(const ThroughputSeries& series, double after_s,
                        double threshold_tps, double window_s) {
  return recovery_seconds(series.bins(), after_s, threshold_tps, window_s);
}

double recovery_seconds(const std::vector<double>& bins, double after_s,
                        double threshold_tps, double window_s) {
  // Recovery = the first commit-carrying second from which the next
  // `window_s` seconds average at least the threshold. Averaging (rather
  // than requiring every bin) matters because block times can exceed one
  // second (the paper makes the same point about sliding windows in §3);
  // requiring the first bin to be non-empty anchors the detection to an
  // actual commit rather than to a window that merely contains one.
  const auto window = static_cast<std::size_t>(std::max(1.0, window_s));
  // Scan from the first WHOLE bin at or after the fault clears: flooring a
  // fractional after_s used to admit the bin containing the fault-clear
  // instant, reporting recovery up to ~1 s early (even negative).
  const auto start =
      static_cast<std::size_t>(std::ceil(std::max(0.0, after_s)));
  for (std::size_t t = start; t + window <= bins.size(); ++t) {
    if (bins[t] <= 0.0) continue;
    const double avg =
        std::accumulate(bins.begin() + static_cast<std::ptrdiff_t>(t),
                        bins.begin() + static_cast<std::ptrdiff_t>(t + window),
                        0.0) /
        static_cast<double>(window);
    if (avg >= threshold_tps) return static_cast<double>(t) - after_s;
  }
  return -1.0;
}

}  // namespace stabl::core
