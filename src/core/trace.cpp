#include "core/trace.hpp"

#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/json.hpp"
#include "core/serialize.hpp"
#include "core/report.hpp"

namespace stabl::core {
namespace {

const char* phase_letter(sim::TraceSink::Phase phase) {
  using Phase = sim::TraceSink::Phase;
  switch (phase) {
    case Phase::kBegin: return "B";
    case Phase::kEnd: return "E";
    case Phase::kInstant: return "i";
    case Phase::kCounter: return "C";
    case Phase::kAsyncBegin: return "b";
    case Phase::kAsyncEnd: return "e";
  }
  return "?";
}

/// Counters are usually integral gauges (queue depths, open breakers);
/// print those without a fraction so the document stays compact.
std::string counter_value(double value) {
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  return Table::num(value, 6);
}

}  // namespace

void name_cluster_tracks(sim::TraceSink& sink, std::size_t n_nodes,
                         std::size_t n_clients) {
  for (std::size_t i = 0; i < n_nodes; ++i) {
    sink.set_track_name(static_cast<std::int32_t>(i),
                        "node " + std::to_string(i));
  }
  for (std::size_t i = 0; i < n_clients; ++i) {
    sink.set_track_name(static_cast<std::int32_t>(n_nodes + i),
                        "client " + std::to_string(i));
  }
  sink.set_track_name(kFaultsTrack, "faults");
}

std::string trace_to_json(const sim::TraceSink& sink) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out << ',';
    first = false;
  };

  for (const auto& [track, name] : sink.track_names()) {
    comma();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
        << track << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  }

  using Phase = sim::TraceSink::Phase;
  for (const sim::TraceSink::Event& event : sink.events()) {
    comma();
    out << "{\"name\":\"" << json_escape(event.name) << "\",\"ph\":\""
        << phase_letter(event.phase) << "\",\"ts\":" << event.time.count()
        << ",\"pid\":0,\"tid\":" << event.track;
    // Perfetto requires a category on async events to pair b/e records.
    if (!event.category.empty()) {
      out << ",\"cat\":\"" << json_escape(event.category) << "\"";
    } else if (event.phase == Phase::kAsyncBegin ||
               event.phase == Phase::kAsyncEnd) {
      out << ",\"cat\":\"async\"";
    }
    switch (event.phase) {
      case Phase::kInstant:
        out << ",\"s\":\"t\"";  // thread-scoped instant
        break;
      case Phase::kAsyncBegin:
      case Phase::kAsyncEnd:
        out << ",\"id\":\"" << event.id << "\"";
        break;
      case Phase::kCounter:
        out << ",\"args\":{\"value\":" << counter_value(event.value) << "}";
        break;
      default:
        break;
    }
    if (event.phase != Phase::kCounter && event.phase != Phase::kEnd &&
        !event.args.empty()) {
      out << ",\"args\":{" << event.args << "}";
    }
    out << '}';
  }
  out << "]}";
  return out.str();
}

namespace {

/// Skip any JSON value (the args bodies are free-form objects).
void skip_value(JsonCursor& cursor) {
  const char c = cursor.peek();
  if (c == '"') {
    cursor.parse_string();
  } else if (c == '{') {
    cursor.expect('{');
    if (!cursor.consume('}')) {
      do {
        cursor.parse_string();
        cursor.expect(':');
        skip_value(cursor);
      } while (cursor.consume(','));
      cursor.expect('}');
    }
  } else if (c == '[') {
    cursor.expect('[');
    if (!cursor.consume(']')) {
      do {
        skip_value(cursor);
      } while (cursor.consume(','));
      cursor.expect(']');
    }
  } else if (c == 't') {
    for (const char l : {'t', 'r', 'u', 'e'}) cursor.expect(l);
  } else if (c == 'f') {
    for (const char l : {'f', 'a', 'l', 's', 'e'}) cursor.expect(l);
  } else if (c == 'n') {
    for (const char l : {'n', 'u', 'l', 'l'}) cursor.expect(l);
  } else {
    cursor.parse_number();
  }
}

}  // namespace

TraceStats validate_trace_json(const std::string& json) {
  TraceStats stats;
  std::set<std::int32_t> tids;
  std::map<std::int32_t, int> open_spans;  // B/E nesting depth per track

  JsonCursor cursor(json);
  cursor.expect('{');
  if (cursor.parse_string() != "displayTimeUnit") {
    cursor.fail("expected \"displayTimeUnit\"");
  }
  cursor.expect(':');
  if (cursor.parse_string() != "ms") cursor.fail("displayTimeUnit must be ms");
  cursor.expect(',');
  if (cursor.parse_string() != "traceEvents") {
    cursor.fail("expected \"traceEvents\"");
  }
  cursor.expect(':');
  cursor.expect('[');
  if (!cursor.consume(']')) {
    do {
      cursor.expect('{');
      std::string ph;
      bool has_name = false, has_ts = false, has_pid = false;
      bool has_tid = false, has_id = false, has_args = false;
      double ts = 0.0;
      std::int32_t tid = 0;
      bool event_first = true;
      while (!cursor.consume('}')) {
        if (!event_first) cursor.expect(',');
        event_first = false;
        const std::string key = cursor.parse_string();
        cursor.expect(':');
        if (key == "ph") {
          ph = cursor.parse_string();
        } else if (key == "name") {
          cursor.parse_string();
          has_name = true;
        } else if (key == "ts") {
          ts = cursor.parse_number();
          has_ts = true;
        } else if (key == "pid") {
          cursor.parse_number();
          has_pid = true;
        } else if (key == "tid") {
          tid = static_cast<std::int32_t>(cursor.parse_number());
          has_tid = true;
        } else if (key == "id") {
          cursor.parse_string();
          has_id = true;
        } else if (key == "args") {
          skip_value(cursor);
          has_args = true;
        } else if (key == "cat" || key == "s") {
          cursor.parse_string();
        } else {
          cursor.fail("unknown event key \"" + key + "\"");
        }
      }
      if (!has_name || !has_pid || !has_tid) {
        cursor.fail("event missing name/pid/tid");
      }
      if (ph == "M") {
        if (!has_args) cursor.fail("metadata event missing args");
        ++stats.metadata;
      } else {
        if (!has_ts) cursor.fail("trace event missing ts");
        if (ts < 0.0) cursor.fail("negative timestamp");
        tids.insert(tid);
        ++stats.events;
        if (ph == "B") {
          ++stats.spans;
          ++open_spans[tid];
        } else if (ph == "E") {
          if (--open_spans[tid] < 0) {
            cursor.fail("unbalanced E on a track");
          }
        } else if (ph == "i") {
          ++stats.instants;
        } else if (ph == "C") {
          if (!has_args) cursor.fail("counter missing args.value");
          ++stats.counters;
        } else if (ph == "b" || ph == "e") {
          if (!has_id) cursor.fail("async event missing id");
          ++stats.asyncs;
        } else {
          cursor.fail("unknown phase \"" + ph + "\"");
        }
      }
    } while (cursor.consume(','));
    cursor.expect(']');
  }
  cursor.expect('}');
  cursor.finish();

  for (const auto& [tid, depth] : open_spans) {
    if (depth != 0) {
      throw std::invalid_argument("trace JSON: unbalanced B span on track " +
                                  std::to_string(tid));
    }
  }
  stats.tracks = tids.size();
  return stats;
}

}  // namespace stabl::core
