// Peer-misbehavior scoring: the defense side of the adversarial fault
// family (DESIGN.md §13).
//
// Every node owns a MisbehaviorScorer. Chains report offenses when they
// observe protocol-level evidence of misbehavior — two conflicting payloads
// for the same round/slot from the same originator, a stale replay storm —
// and the base node consults the scorer on delivery: peers above the
// throttle threshold have every other message dropped, peers that ever
// cross the ban threshold are dropped permanently. Scores decay linearly
// with simulated time so a one-off accident is forgiven while a persistent
// equivocator is not (the shape of real gossip-layer peer scoring, e.g.
// libp2p gossipsub v1.1).
//
// Header-only on purpose: the scorer is used from chain/node.* (stabl_chain
// does not link stabl_core — the dependency runs the other way), while the
// CLI-facing name/description helpers live in misbehavior.cpp inside
// stabl_core. Everything is deterministic: no RNG, no wall clock, and a
// disabled scorer never mutates state, so compiling the defense in does not
// perturb benign runs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "net/message.hpp"
#include "sim/time.hpp"

namespace stabl::core {

/// Protocol-level evidence a chain can hold against a peer.
enum class Offense : std::uint8_t {
  kEquivocation,  // two conflicting payloads for the same round/slot
  kStaleReplay,   // the same already-known payload replayed again
};

// Inline: used from stabl_chain, which does not link stabl_core.
inline std::string to_string(Offense offense) {
  switch (offense) {
    case Offense::kEquivocation: return "equivocation";
    case Offense::kStaleReplay: return "stale-replay";
  }
  return "?";
}

struct MisbehaviorConfig;

/// One-line rendering of the defense knobs ("defense on: ban>=30, ...")
/// for reports and the CLI. Lives in stabl_core (misbehavior.cpp).
std::string describe(const MisbehaviorConfig& config);

struct MisbehaviorConfig {
  /// Master switch; disabled scorers report nothing and drop nothing.
  /// Registered per chain as the "misbehavior_defense" parameter so
  /// mitigation-on vs mitigation-off is a scenario diff.
  bool enabled = false;
  /// Score added per offense.
  double equivocation_penalty = 10.0;
  double stale_penalty = 1.0;
  /// Linear score decay in points per simulated second.
  double decay_per_s = 0.1;
  /// At or above this score every other message from the peer is dropped.
  double throttle_threshold = 15.0;
  /// At or above this score the peer is dropped permanently (sticky:
  /// a ban survives later decay). Registered as "misbehavior_ban".
  double ban_threshold = 30.0;
};

class MisbehaviorScorer {
 public:
  MisbehaviorScorer() = default;
  explicit MisbehaviorScorer(MisbehaviorConfig config)
      : config_(config) {}

  [[nodiscard]] bool enabled() const { return config_.enabled; }
  [[nodiscard]] const MisbehaviorConfig& config() const { return config_; }

  /// Record an offense observed against `peer` at simulated time `now`.
  /// No-op while the scorer is disabled.
  void report(net::NodeId peer, Offense offense, sim::Time now) {
    if (!config_.enabled) return;
    ++reports_;
    Entry& entry = entries_[peer];
    decay(entry, now);
    entry.score += offense == Offense::kEquivocation
                       ? config_.equivocation_penalty
                       : config_.stale_penalty;
    if (entry.score >= config_.ban_threshold && !banned_.contains(peer)) {
      banned_.insert(peer);
    }
  }

  /// Current (decayed) score of a peer. Pure.
  [[nodiscard]] double score(net::NodeId peer, sim::Time now) const {
    const auto it = entries_.find(peer);
    if (it == entries_.end()) return 0.0;
    Entry entry = it->second;
    decay(entry, now);
    return entry.score;
  }

  [[nodiscard]] bool banned(net::NodeId peer) const {
    return banned_.contains(peer);
  }

  /// Delivery-time verdict: true when the message from `peer` should be
  /// dropped. Banned peers always drop; throttled peers drop every other
  /// message (a deterministic half-rate limiter). Mutates the throttle
  /// parity counter, so call exactly once per candidate message.
  [[nodiscard]] bool should_drop(net::NodeId peer, sim::Time now) {
    if (!config_.enabled) return false;
    // Armed-but-idle fast path: a scorer that has never seen an offense
    // must cost one branch per message, so enabling the defense on a
    // benign run stays free (gated by micro_adversarial_overhead).
    if (entries_.empty() && banned_.empty()) return false;
    if (banned_.contains(peer)) return true;
    const auto it = entries_.find(peer);
    if (it == entries_.end()) return false;
    decay(it->second, now);
    if (it->second.score < config_.throttle_threshold) return false;
    return (++it->second.throttle_parity % 2) == 0;
  }

  /// Total offenses reported (diagnostic counter for metrics).
  [[nodiscard]] std::uint64_t reports() const { return reports_; }
  [[nodiscard]] std::size_t banned_count() const { return banned_.size(); }

  /// Forget everything (process restart loses volatile reputation state).
  void reset() {
    entries_.clear();
    banned_.clear();
  }

 private:
  struct Entry {
    double score = 0.0;
    sim::Time updated{0};
    std::uint64_t throttle_parity = 0;
  };

  void decay(Entry& entry, sim::Time now) const {
    if (now > entry.updated) {
      entry.score = std::max(
          0.0, entry.score - config_.decay_per_s *
                                 sim::to_seconds(now - entry.updated));
      entry.updated = now;
    }
  }

  MisbehaviorConfig config_;
  std::unordered_map<net::NodeId, Entry> entries_;
  std::unordered_set<net::NodeId> banned_;
  std::uint64_t reports_ = 0;
};

}  // namespace stabl::core
