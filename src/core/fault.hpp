// Fault plans (paper §3, Table 1 and Fig. 2) and fault engine v2.
//
// The primary machine decides when to trigger a failure and signals the
// observers deployed on the blockchain machines; observers kill/restart the
// blockchain process or install/remove netfilter rules. Engine v2 extends
// the single scripted outage to a FaultSchedule — an arbitrary list of
// plans whose windows may overlap and compose (packet loss during a
// partition, churn plus delay, ...), the chaos-engineering shape realistic
// resilience assessment needs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "net/message.hpp"
#include "sim/time.hpp"

namespace stabl::core {

enum class FaultType {
  kNone,       // baseline
  kCrash,      // f = t nodes halted, never restarted (§4 Resilience)
  kTransient,  // f = t+1 nodes halted at 133 s, restarted at 266 s (§5)
  kPartition,  // f = t+1 nodes isolated between 133 s and 266 s (§6)
  kSecureClient,  // no failure: clients submit to t+1 nodes (§7)
  kDelay,      // transient communication delays to f = t+1 nodes — the
               // condition the paper observed crashing all Solana nodes
               // and starving Avalanche ("messages arrive 2 minutes late")
  kChurn,      // crash-recovery churn: f = t nodes repeatedly killed and
               // restarted during the fault window (Table 1's transient
               // failure model, iterated)
  kLoss,       // probabilistic packet loss between the targets and the
               // rest (tc-netem loss): every packet survives the rule
               // independently with probability 1 - loss_probability
  kThrottle,   // per-link bandwidth throttling between the targets and the
               // rest: packets queue behind a serialization delay
  kGray,       // gray failure: the targets stay alive but serve all their
               // traffic with inflated latency (slow disk / saturated NIC)
  // --- adversarial family: the targets are *compromised*, not failed ---
  kEquivocate,  // targets double-propose/double-vote: every consensus
                // broadcast is split-brained, one half of the peers gets
                // the original payload and the other half a conflicting
                // variant for the same round/slot
  kWithhold,    // targets suppress their own proposals/votes and replay
                // the first suppressed payload instead of fresh ones
  kEclipse,     // a victim node's view is intercepted: all of its traffic
                // to and from non-attackers is routed through the attacker
                // targets, which delay (reorder) and filter it
};

inline constexpr FaultType kAllFaultTypes[] = {
    FaultType::kNone,  FaultType::kCrash,        FaultType::kTransient,
    FaultType::kPartition, FaultType::kSecureClient, FaultType::kDelay,
    FaultType::kChurn, FaultType::kLoss,         FaultType::kThrottle,
    FaultType::kGray,  FaultType::kEquivocate,   FaultType::kWithhold,
    FaultType::kEclipse};

/// True for the adversarial (Byzantine) family: the targets misbehave
/// instead of failing. Oracles exclude such nodes from the correct-replica
/// set when auditing safety.
[[nodiscard]] bool is_adversarial(FaultType type);

std::string to_string(FaultType type);

/// One-line human description of a fault type (stabl_cli --list-faults).
std::string fault_description(FaultType type);

/// Inverse of to_string, case-insensitive. Throws std::invalid_argument
/// listing every valid name when `name` matches none of them.
FaultType fault_from_name(std::string_view name);

struct FaultPlan {
  FaultType type = FaultType::kNone;
  std::vector<net::NodeId> targets;  // blockchain nodes affected
  sim::Time inject_at = sim::sec(133);
  sim::Time recover_at = sim::sec(266);
  /// kDelay only: one-way latency added between targets and the rest.
  sim::Duration delay_amount = sim::sec(120);
  /// kChurn only: how long the targets stay down / up per cycle.
  sim::Duration churn_down = sim::sec(10);
  sim::Duration churn_up = sim::sec(15);
  /// kLoss only: per-packet drop probability in (0, 1].
  double loss_probability = 0.2;
  /// kThrottle only: link bandwidth in bytes per second.
  double throttle_bytes_per_s = 64.0 * 1024.0;
  /// kGray only: service latency added to all traffic touching a target.
  sim::Duration gray_latency = sim::sec(2);
  /// kEclipse only: the victim whose traffic the attacker targets
  /// intercept. Must not itself be a target.
  net::NodeId eclipse_victim = 9;
  /// kEclipse only: relay latency the attackers add to every intercepted
  /// packet (the detour through the attacker overlay).
  sim::Duration eclipse_delay = sim::ms(500);
  /// kEclipse only: probability in [0, 1) that the attackers filter
  /// (silently drop) an intercepted packet.
  double eclipse_filter = 0.2;
};

/// Whether the plan's recover_at action means anything (kCrash never
/// recovers; kNone/kSecureClient inject nothing).
[[nodiscard]] bool uses_recovery_window(FaultType type);

/// Validate a plan against a cluster of `n` blockchain nodes. Returns an
/// empty string when the plan is well-formed, else a human-readable error
/// ("loss plan needs at least one target node", "plan targets node 1
/// twice", ...). Observers::arm rejects invalid plans with exactly this
/// message. Duplicate target ids are rejected: a duplicated entry would
/// silently double-arm kill/restart actions for the same node.
[[nodiscard]] std::string validate(const FaultPlan& plan, std::size_t n);

/// Canonical form of a plan: dead fields — fields the plan's type never
/// reads — are reset to neutral values so that two behaviourally identical
/// plans compare and serialize identically. Concretely: recover_at is
/// zeroed on kCrash/kNone/kSecureClient (their recovery window means
/// nothing; see the satellite note in DESIGN.md §10), per-type knobs
/// (delay_amount, churn_*, loss_probability, throttle_bytes_per_s,
/// gray_latency) are reset to defaults on every type that does not use
/// them, kNone/kSecureClient additionally drop targets and inject_at, and
/// targets are sorted. The chaos generator and the schedule JSON
/// serializer only ever produce canonical plans.
[[nodiscard]] FaultPlan canonical(FaultPlan plan);

/// An arbitrary list of fault plans armed together. Windows may overlap:
/// each plan installs and lifts its own rules/process actions
/// independently of the others.
struct FaultSchedule {
  std::vector<FaultPlan> plans;

  FaultSchedule& add(FaultPlan plan) {
    plans.push_back(std::move(plan));
    return *this;
  }
  [[nodiscard]] bool empty() const { return plans.empty(); }
};

/// canonical() applied to every plan of a schedule.
[[nodiscard]] FaultSchedule canonical(FaultSchedule schedule);

/// Nodes under adversarial control anywhere in the schedule: the targets
/// of every equivocate/withhold plan (eclipse attackers stay honest at the
/// protocol layer — they only tamper with the victim's links). Sorted,
/// deduplicated. Safety oracles exclude these replicas from the
/// correct-replica set.
[[nodiscard]] std::vector<net::NodeId> adversarial_nodes(
    const FaultSchedule& schedule);

}  // namespace stabl::core
