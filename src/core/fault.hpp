// Fault plans (paper §3, Table 1 and Fig. 2).
//
// The primary machine decides when to trigger a failure and signals the
// observers deployed on the blockchain machines; observers kill/restart the
// blockchain process or install/remove netfilter rules.
#pragma once

#include <string>
#include <vector>

#include "net/message.hpp"
#include "sim/time.hpp"

namespace stabl::core {

enum class FaultType {
  kNone,       // baseline
  kCrash,      // f = t nodes halted, never restarted (§4 Resilience)
  kTransient,  // f = t+1 nodes halted at 133 s, restarted at 266 s (§5)
  kPartition,  // f = t+1 nodes isolated between 133 s and 266 s (§6)
  kSecureClient,  // no failure: clients submit to t+1 nodes (§7)
  kDelay,      // transient communication delays to f = t+1 nodes — the
               // condition the paper observed crashing all Solana nodes
               // and starving Avalanche ("messages arrive 2 minutes late")
  kChurn,      // crash-recovery churn: f = t nodes repeatedly killed and
               // restarted during the fault window (Table 1's transient
               // failure model, iterated)
};

std::string to_string(FaultType type);

struct FaultPlan {
  FaultType type = FaultType::kNone;
  std::vector<net::NodeId> targets;  // blockchain nodes affected
  sim::Time inject_at = sim::sec(133);
  sim::Time recover_at = sim::sec(266);
  /// kDelay only: one-way latency added between targets and the rest.
  sim::Duration delay_amount = sim::sec(120);
  /// kChurn only: how long the targets stay down / up per cycle.
  sim::Duration churn_down = sim::sec(10);
  sim::Duration churn_up = sim::sec(15);
};

}  // namespace stabl::core
