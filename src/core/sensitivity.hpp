// The sensitivity metric (paper §3).
//
// Given transaction latencies measured in a baseline environment and in an
// altered (fault-injected) environment, the sensitivity score is the
// difference between the areas under the two empirical CDFs — the adapted
// super-cumulative Ŝ(x) = Σ_{i=0}^{x} F̂(i·step) evaluated at the end of
// the support. It captures both the amplitude and the duration of a
// failure's effect, is robust to outliers, needs no interpretation
// parameter, and is comparable across blockchains (paper §3).
//
// Endpoint convention. The paper writes |Ŝ₁(b₁) − Ŝ₂(b₂)| with b_i the max
// of each distribution. Because an eCDF equals 1 beyond its own maximum,
// evaluating both sums at the *common* endpoint B = max(b₁, b₂) matches the
// between-curves area of Fig. 1 and is the only reading under which the
// paper's outlier-resilience property holds; it is our default. The literal
// per-distribution-endpoint variant is provided for comparison (see the
// micro_ablation_score_defs bench).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace stabl::core {

/// Empirical cumulative distribution function over a latency sample.
class Ecdf {
 public:
  /// Takes ownership of the samples; drops non-finite entries (NaN, ±inf)
  /// deterministically, then sorts the rest.
  explicit Ecdf(std::vector<double> samples);

  /// Fraction of samples <= x. Zero for an empty sample.
  double operator()(double x) const;

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  /// Smallest / largest sample; 0 when empty.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  /// Quantile by linear interpolation between ranks (R-7 convention): the
  /// median of an even-sized sample is the midpoint of the two central
  /// elements, not the upper one.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] const std::vector<double>& sorted_samples() const {
    return samples_;
  }

 private:
  std::vector<double> samples_;
};

/// Adapted super-cumulative: Ŝ(x) = Σ_{i=0}^{floor(x/step)} F̂(i·step).
double super_cumulative(const Ecdf& ecdf, double x, double step = 1.0);

/// Exact integral of the eCDF over [0, upper] (piecewise-linear sum).
/// For upper >= max, equals upper - mean — handy for cross-checks.
double ecdf_integral(const Ecdf& ecdf, double upper);

enum class ScoreEndpoint {
  kCommon,           // both Ŝ evaluated at max(b1, b2)  [default]
  kPerDistribution,  // Ŝ1 at b1, Ŝ2 at b2 (paper's literal formula)
};

struct SensitivityOptions {
  /// Grid step, in seconds, of the paper's sum over i. The paper uses the
  /// latency unit directly; we default to a 250 ms grid so that the
  /// sub-second effects of the fastest chains (Aptos, Solana) register in
  /// the score instead of rounding to zero. Scores scale as 1/step.
  double step = 0.25;
  ScoreEndpoint endpoint = ScoreEndpoint::kCommon;
};

struct SensitivityScore {
  /// |Ŝ1 − Ŝ2|; +inf when the altered environment lost liveness.
  double value = 0.0;
  /// Liveness issue in the altered run (paper: "a blockchain that stops
  /// committing transactions after a failure event has an infinite
  /// sensitivity score").
  bool infinite = false;
  /// The BASELINE sample was empty — the baseline run lost liveness or
  /// measured nothing, so no comparison is possible. The score is reported
  /// infinite with this flag set (rendered "invalid") rather than as a
  /// plausible-looking benefits=true number against a zero baseline area.
  bool invalid_baseline = false;
  /// Ŝ2 > Ŝ1: the altered environment *improved* latencies (the paper's
  /// striped bars — Redbelly and Avalanche under the secure client).
  bool benefits = false;
  double baseline_area = 0.0;
  double altered_area = 0.0;
};

/// Score from two latency samples. `altered_live` conveys the liveness
/// verdict of the altered run (an empty altered sample also counts dead).
SensitivityScore sensitivity(const std::vector<double>& baseline,
                             const std::vector<double>& altered,
                             bool altered_live = true,
                             const SensitivityOptions& options = {});

/// Render a score the way the paper's figures do: number, "inf", with a
/// trailing '*' for striped (benefits) bars; "invalid" when the baseline
/// measured nothing.
std::string format_score(const SensitivityScore& score);

}  // namespace stabl::core
