// STABL observers (paper Fig. 2).
//
// One observer runs on every blockchain machine, listening for signals from
// the primary. To inject a crash it kills the blockchain process on its
// node; to create a partition it installs netfilter rules dropping all IP
// packets from and to the other side; it can later remove the rules or
// restart the process. Fault engine v2 arms whole schedules: every plan
// keeps its own rule handle, so overlapping plans (loss during a
// partition, churn plus delay) install and lift their rules independently.
#pragma once

#include <vector>

#include "chain/node.hpp"
#include "core/fault.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace stabl::core {

class Observers {
 public:
  /// `client_ids` lists the client machines: netfilter/tc rules drop or
  /// shape ALL IP packets from and to the targeted side, so rule-based
  /// faults (partition, delay, loss, throttle) also sever client RPC links
  /// to the targets. Clients themselves are never fault targets.
  Observers(sim::Simulation& simulation, net::Network& network,
            std::vector<chain::BlockchainNode*> nodes,
            std::vector<net::NodeId> client_ids = {});

  /// Schedule the plan's kill/restart/rule actions. Call before the
  /// simulation runs. Throws std::invalid_argument with the validate()
  /// message when the plan is malformed (empty targets on a targeted
  /// fault, out-of-range target ids, inject_at >= recover_at, ...).
  void arm(const FaultPlan& plan);

  /// Arm every plan of the schedule; plans may overlap freely.
  void arm(const FaultSchedule& schedule);

 private:
  void churn_kill(const FaultPlan& plan, sim::Time at);
  /// Nodes outside the plan's target set (the "rest" side of a rule).
  [[nodiscard]] std::vector<net::NodeId> others(
      const std::vector<net::NodeId>& targets) const;

  sim::Simulation& sim_;
  net::Network& net_;
  std::vector<chain::BlockchainNode*> nodes_;
  std::vector<net::NodeId> client_ids_;
  /// Plans armed so far; numbers the async spans on the faults track.
  std::uint64_t armed_ = 0;
};

}  // namespace stabl::core
