// STABL observers (paper Fig. 2).
//
// One observer runs on every blockchain machine, listening for signals from
// the primary. To inject a crash it kills the blockchain process on its
// node; to create a partition it installs netfilter rules dropping all IP
// packets from and to the other side; it can later remove the rules or
// restart the process.
#pragma once

#include <vector>

#include "chain/node.hpp"
#include "core/fault.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace stabl::core {

class Observers {
 public:
  Observers(sim::Simulation& simulation, net::Network& network,
            std::vector<chain::BlockchainNode*> nodes);

  /// Schedule the plan's kill/restart/partition actions. Call before the
  /// simulation runs.
  void arm(const FaultPlan& plan);

 private:
  void churn_kill(const FaultPlan& plan, sim::Time at);

  sim::Simulation& sim_;
  net::Network& net_;
  std::vector<chain::BlockchainNode*> nodes_;
  net::RuleId active_rule_ = 0;
};

}  // namespace stabl::core
