#include "core/experiment.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <stdexcept>

#include "chains/algorand/algorand.hpp"
#include "chains/aptos/aptos.hpp"
#include "chains/avalanche/avalanche.hpp"
#include "chains/nversion/nversion.hpp"
#include "chains/redbelly/redbelly.hpp"
#include "chains/solana/solana.hpp"
#include "core/arrivals.hpp"
#include "core/client.hpp"
#include "core/metrics.hpp"
#include "core/observer.hpp"
#include "core/throughput.hpp"
#include "core/trace.hpp"
#include "chain/hash.hpp"
#include "sim/lifecycle.hpp"

namespace stabl::core {
namespace {

/// The legacy ChainTuning knobs, mapped onto registry parameter keys. Each
/// knob only applies when the chain actually declares its key, which
/// preserves the old semantics exactly: a Solana tuning on a Redbelly run
/// is silently ignored, as the per-chain switch used to do.
void apply_legacy_tuning(const ChainTuning& tuning,
                         chain::ChainParams& params) {
  const auto set = [&params](const char* key, double value) {
    const auto it = params.find(key);
    if (it != params.end()) it->second = value;
  };
  if (tuning.avalanche_throttling.has_value()) {
    set("throttling", *tuning.avalanche_throttling ? 1.0 : 0.0);
  }
  if (tuning.avalanche_cpu_target.has_value()) {
    set("cpu_target", *tuning.avalanche_cpu_target);
  }
  if (tuning.solana_warmup_epochs.has_value()) {
    set("warmup_epochs", *tuning.solana_warmup_epochs ? 1.0 : 0.0);
  }
  if (tuning.redbelly_max_idle_s.has_value()) {
    set("max_idle_s", *tuning.redbelly_max_idle_s);
  }
}

/// The merged parameter map the cluster factory and any chain services
/// see: declared defaults, scenario overrides, then legacy tuning.
chain::ChainParams merged_chain_params(const ExperimentConfig& config) {
  const chain::ChainTraits& traits = chain_traits(config.chain);
  chain::ChainParams params =
      chain::merge_params(traits, config.chain_params);
  apply_legacy_tuning(config.tuning, params);
  return params;
}

std::vector<std::unique_ptr<chain::BlockchainNode>> make_chain_nodes(
    const ExperimentConfig& config, sim::Simulation& simulation,
    net::Network& network) {
  chain::NodeConfig node_config;
  node_config.n = config.n;
  node_config.vcpus = config.vcpus;
  node_config.network_seed = chain::mix64(config.seed);
  const chain::ChainTraits& traits = chain_traits(config.chain);
  return traits.make_cluster(simulation, network, node_config,
                             merged_chain_params(config));
}

/// Paper default fault size: t for crash-style faults, t+1 for the
/// transient/network conditions ("one more failure than tolerated").
std::size_t default_fault_count(FaultType fault, std::size_t t) {
  switch (fault) {
    case FaultType::kCrash:
    case FaultType::kChurn:
      return t;
    // Adversarial coalition within tolerance: the interesting question is
    // whether t compromised nodes can break safety, not whether t+1 can.
    case FaultType::kEquivocate:
    case FaultType::kWithhold:
      return t;
    case FaultType::kTransient:
    case FaultType::kPartition:
    case FaultType::kDelay:
    case FaultType::kLoss:
    case FaultType::kThrottle:
    case FaultType::kGray:
      return t + 1;
    // Eclipse: t+1 attackers suffice to dominate the victim's view.
    case FaultType::kEclipse:
      return t + 1;
    case FaultType::kNone:
    case FaultType::kSecureClient:
      return 0;
  }
  return 0;
}

/// Default targets for a plan: f nodes starting right after the entry
/// nodes, "this way, faulty nodes never receive transactions they would
/// otherwise lose" (paper §3).
std::vector<net::NodeId> default_targets(std::size_t f,
                                         std::size_t entry_nodes) {
  std::vector<net::NodeId> targets;
  targets.reserve(f);
  for (std::size_t k = 0; k < f; ++k) {
    targets.push_back(static_cast<net::NodeId>(entry_nodes + k));
  }
  return targets;
}

}  // namespace

const chain::Registry& chain_registry() {
  static const chain::Registry& registry = [] () -> const chain::Registry& {
    algorand::ensure_registered();
    aptos::ensure_registered();
    avalanche::ensure_registered();
    redbelly::ensure_registered();
    solana::ensure_registered();
    nversion::ensure_registered();
    return chain::Registry::global();
  }();
  return registry;
}

const chain::ChainTraits& chain_traits(ChainKind chain) {
  return chain_registry().traits(chain_id(chain));
}

ChainKind parse_chain_name(std::string_view name) {
  return chain_kind(chain_registry().id_of(name));
}

std::string to_string(ChainKind chain) {
  return chain_traits(chain).name;
}

std::size_t fault_tolerance(ChainKind chain, std::size_t n) {
  return chain_traits(chain).fault_tolerance(n);
}

FaultSchedule resolved_schedule(const ExperimentConfig& config) {
  const std::size_t entry_nodes = std::min(config.clients, config.n);
  const std::size_t t = fault_tolerance(config.chain, config.n);

  FaultPlan plan;
  plan.type = config.fault;
  plan.inject_at = config.inject_at;
  plan.recover_at = config.recover_at;
  plan.loss_probability = config.loss_probability;
  plan.throttle_bytes_per_s = config.throttle_bytes_per_s;
  plan.gray_latency = config.gray_latency;
  plan.eclipse_victim = config.eclipse_victim;
  plan.eclipse_delay = config.eclipse_delay;
  plan.eclipse_filter = config.eclipse_filter;
  if (!config.fault_targets.empty()) {
    // Explicit override: the caller is deliberately faulting specific
    // nodes — possibly entry nodes, to study client-side mitigations.
    plan.targets = config.fault_targets;
  } else {
    std::size_t f = default_fault_count(config.fault, t);
    if (config.fault_count >= 0) {
      f = static_cast<std::size_t>(config.fault_count);
    }
    assert(entry_nodes + f <= config.n &&
           "faulty nodes must not take client traffic");
    plan.targets = default_targets(f, entry_nodes);
  }
  FaultSchedule schedule;
  if (plan.type != FaultType::kNone &&
      plan.type != FaultType::kSecureClient && !plan.targets.empty()) {
    schedule.add(plan);
  }
  for (FaultPlan extra : config.extra_faults.plans) {
    if (extra.targets.empty()) {
      extra.targets =
          default_targets(default_fault_count(extra.type, t), entry_nodes);
      if (extra.targets.empty()) continue;  // t = 0: nothing to fault
    }
    schedule.add(std::move(extra));
  }
  return schedule;
}

std::vector<ReplicaSnapshot> snapshot_replicas(
    const std::vector<chain::BlockchainNode*>& nodes) {
  std::vector<ReplicaSnapshot> snapshots;
  snapshots.reserve(nodes.size());
  for (const chain::BlockchainNode* node : nodes) {
    ReplicaSnapshot snapshot;
    snapshot.id = node->node_id();
    snapshot.alive_at_end = node->alive();
    snapshot.restarts = node->restarts();
    const chain::Ledger& ledger = node->ledger();
    snapshot.ledger_hash = ledger.content_hash();
    snapshot.blocks.reserve(ledger.blocks().size());
    for (const chain::Block& block : ledger.blocks()) {
      BlockSummary summary;
      summary.height = block.height;
      summary.round = block.round;
      summary.committed_at_s = sim::to_seconds(block.committed_at);
      summary.txs.reserve(block.txs.size());
      for (const chain::Transaction& tx : block.txs) {
        summary.txs.push_back(tx.id);
      }
      snapshot.blocks.push_back(std::move(summary));
    }
    snapshots.push_back(std::move(snapshot));
  }
  return snapshots;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  sim::Simulation simulation(config.seed);
  if (config.trace != nullptr) {
    name_cluster_tracks(*config.trace, config.n, config.clients);
    simulation.set_trace(config.trace);
  }
  if (config.lifecycle != nullptr) {
    // Pre-size for the expected submission volume so recording never
    // reallocates on the hot path.
    config.lifecycle->reserve(static_cast<std::size_t>(
        static_cast<double>(config.clients) * config.tps_per_client *
        sim::to_seconds(config.duration)));
    simulation.set_lifecycle(config.lifecycle);
  }
  net::Network network(simulation, net::LatencyConfig{});

  // Size the event pool for the steady state up front: every node keeps a
  // handful of timers in flight (pacemakers, rebroadcast, per-message
  // deliveries fan out with the cluster), so one reservation here spares
  // the queue its growth reallocations during the run.
  simulation.reserve_events(16 * config.n + 4 * config.clients + 64);

  auto nodes = make_chain_nodes(config, simulation, network);
  assert(nodes.size() == config.n);
  for (auto& node : nodes) node->start();

  // Clients attach to nodes 0..clients-1, which are never faulted. All
  // clients enrol in one batched arrival scheduler: clients sharing an
  // entry node and workload shape ride a single aggregate arrival process
  // instead of one timer chain each.
  const std::size_t entry_nodes = std::min(config.clients, config.n);
  ArrivalScheduler arrivals(simulation, config.metrics);
  // The traffic model's shared state (the hot wallet's global nonce
  // sequencer) and the multi-region latency map. Region r's clients sit
  // r/(regions-1) of the configured spread away from the whole cluster —
  // permanent delay rules, installed before anything runs, so they stack
  // deterministically under whatever fault rules arrive later.
  TrafficModel traffic_model(config.traffic);
  if (config.traffic.active() && config.traffic.regions > 1 &&
      config.traffic.region_spread.count() > 0) {
    std::vector<net::NodeId> cluster;
    cluster.reserve(config.n);
    for (std::size_t k = 0; k < config.n; ++k) {
      cluster.push_back(static_cast<net::NodeId>(k));
    }
    for (std::size_t r = 1; r < config.traffic.regions; ++r) {
      std::vector<net::NodeId> region_clients;
      for (std::size_t i = r; i < config.clients;
           i += config.traffic.regions) {
        region_clients.push_back(static_cast<net::NodeId>(config.n + i));
      }
      if (region_clients.empty()) continue;
      const sim::Duration extra{
          config.traffic.region_spread.count() *
          static_cast<std::int64_t>(r) /
          static_cast<std::int64_t>(config.traffic.regions - 1)};
      network.add_delay(std::move(region_clients), cluster, extra);
    }
  }
  std::vector<std::unique_ptr<ClientMachine>> clients;
  clients.reserve(config.clients);
  for (std::size_t i = 0; i < config.clients; ++i) {
    ClientConfig client_config;
    client_config.id = static_cast<net::NodeId>(config.n + i);
    client_config.account = static_cast<chain::AccountId>(i);
    client_config.recipient =
        static_cast<chain::AccountId>(1000 + i);  // sink account
    client_config.tps = config.tps_per_client;
    client_config.workload = config.workload;
    client_config.required_matching = config.client_matching;
    client_config.stop_at = config.duration;
    client_config.tx_seed = chain::mix64(config.seed ^ 0xC11E57ull);
    client_config.resilience = config.resilience;
    client_config.arrivals = &arrivals;
    if (config.traffic.active()) {
      client_config.traffic = make_client_plan(
          config.traffic, traffic_model, i, client_config.tx_seed);
    }
    // Resilient clients fail over across every entry node (rotated so
    // client i starts on its paper-default endpoint); naive/secure clients
    // submit to `fanout` endpoints in parallel.
    const std::size_t fanout =
        config.resilience.enabled
            ? entry_nodes
            : static_cast<std::size_t>(std::max(1, config.client_fanout));
    for (std::size_t k = 0; k < fanout; ++k) {
      client_config.endpoints.push_back(
          static_cast<net::NodeId>((i + k) % entry_nodes));
    }
    clients.push_back(std::make_unique<ClientMachine>(simulation, network,
                                                      client_config));
    clients.back()->start();
  }

  // Observers inject the faults on nodes that take no client traffic. The
  // client machine ids are handed over so that netfilter-style rules also
  // cover client RPC links to the targets, as tc/netem would.
  std::vector<chain::BlockchainNode*> node_ptrs;
  node_ptrs.reserve(nodes.size());
  for (auto& node : nodes) node_ptrs.push_back(node.get());
  std::vector<net::NodeId> client_ids;
  client_ids.reserve(clients.size());
  for (std::size_t i = 0; i < config.clients; ++i) {
    client_ids.push_back(static_cast<net::NodeId>(config.n + i));
  }
  Observers observers(simulation, network, node_ptrs,
                      std::move(client_ids));
  observers.arm(resolved_schedule(config));

  // Chain-scoped services (e.g. the nversion failover monitors) run next
  // to the cluster, with ProcessIds continuing after the clients'. Most
  // chains declare none, and this costs nothing.
  std::vector<std::unique_ptr<chain::ChainService>> services;
  {
    const chain::ChainTraits& traits = chain_traits(config.chain);
    if (traits.make_services) {
      services = traits.make_services(
          simulation, node_ptrs,
          static_cast<sim::ProcessId>(config.n + config.clients),
          merged_chain_params(config));
    }
  }
  for (auto& service : services) service->start();

  // Metrics ride the clock-observer hook, never the event queue, so a
  // sampled run executes exactly the same events as an unsampled one.
  std::optional<MetricsTicker> ticker;
  if (config.metrics != nullptr) {
    MetricsRegistry& registry = *config.metrics;
    registry.add_gauge("mempool_depth", [&node_ptrs] {
      double depth = 0.0;
      for (const chain::BlockchainNode* node : node_ptrs) {
        depth += static_cast<double>(node->mempool().size());
      }
      return depth;
    });
    registry.add_gauge("height", [&node_ptrs] {
      return static_cast<double>(node_ptrs.front()->ledger().height());
    });
    registry.add_gauge("pending_events", [&simulation] {
      return static_cast<double>(simulation.pending_events());
    });
    registry.add_counter("net_sent", [&network] {
      return static_cast<double>(network.stats().sent);
    });
    registry.add_counter("net_delivered", [&network] {
      return static_cast<double>(network.stats().delivered);
    });
    registry.add_counter("net_dropped", [&network] {
      const net::NetworkStats& s = network.stats();
      return static_cast<double>(s.dropped_partition + s.dropped_loss +
                                 s.dropped_dead);
    });
    registry.add_gauge("client_in_flight", [&clients] {
      double in_flight = 0.0;
      for (const auto& client : clients) {
        in_flight += static_cast<double>(client->in_flight());
      }
      return in_flight;
    });
    registry.add_counter("client_committed", [&clients] {
      double committed = 0.0;
      for (const auto& client : clients) {
        committed += static_cast<double>(client->committed());
      }
      return committed;
    });
    registry.add_gauge("breakers_open", [&clients] {
      double open = 0.0;
      for (const auto& client : clients) {
        open += static_cast<double>(client->open_breakers());
      }
      return open;
    });
    // Mitigation-layer probes are only registered when the layer is on,
    // so pre-existing --metrics outputs stay byte-identical.
    if (config.resilience.enabled && config.resilience.hedge.enabled) {
      registry.add_counter("hedges_armed", [&clients] {
        double armed = 0.0;
        for (const auto& client : clients) {
          armed += static_cast<double>(client->resilience_stats().hedges_armed);
        }
        return armed;
      });
      registry.add_counter("hedges_won", [&clients] {
        double won = 0.0;
        for (const auto& client : clients) {
          won += static_cast<double>(client->resilience_stats().hedges_won);
        }
        return won;
      });
      registry.add_counter("hedges_cancelled", [&clients] {
        double cancelled = 0.0;
        for (const auto& client : clients) {
          cancelled +=
              static_cast<double>(client->resilience_stats().hedges_cancelled);
        }
        return cancelled;
      });
    }
    if (config.resilience.enabled && config.resilience.score.enabled) {
      // Score trajectory of the first client's endpoints: one gauge per
      // endpoint, sampled on the shared metrics grid.
      for (std::size_t k = 0; k < entry_nodes; ++k) {
        registry.add_gauge("endpoint_score_" + std::to_string(k),
                           [&clients, k] {
                             return clients.front()->endpoint_score(k);
                           });
      }
    }
    ticker.emplace(registry, config.metrics_period, config.trace);
    simulation.set_time_observer(&*ticker);
  }

  simulation.run_until(config.duration);

  // Harvest results.
  ExperimentResult result;
  for (const auto& client : clients) {
    result.submitted += client->submitted();
    result.committed += client->committed();
    result.resilience += client->resilience_stats();
    result.in_flight_at_end += client->in_flight();
    result.latencies.insert(result.latencies.end(),
                            client->latencies().begin(),
                            client->latencies().end());
  }
  const chain::Ledger& ledger = nodes.front()->ledger();
  result.blocks = ledger.height();
  ThroughputSeries series(ledger, config.duration);
  result.throughput = series.bins();

  // Liveness: a transaction-carrying block within the final window
  // (45 s for the paper's 400 s runs; proportionally less for short runs).
  sim::Time last_tx_commit{0};
  for (const chain::Block& block : ledger.blocks()) {
    if (!block.txs.empty()) last_tx_commit = block.committed_at;
  }
  const sim::Duration window = std::min(sim::sec(45), config.duration / 8);
  result.live_at_end =
      result.committed > 0 && last_tx_commit >= config.duration - window;

  if (uses_recovery_window(config.fault)) {
    result.recovery_seconds = recovery_seconds(
        series, sim::to_seconds(config.recover_at),
        0.5 * config.tps_per_client * static_cast<double>(config.clients),
        /*window_s=*/3.0);
  }

  if (!result.latencies.empty()) {
    Ecdf ecdf(result.latencies);
    result.mean_latency_s = ecdf.mean();
    result.p50_latency_s = ecdf.quantile(0.5);
    result.p99_latency_s = ecdf.quantile(0.99);
  }
  result.events = simulation.events_processed();
  result.net_stats = network.stats();
  for (const auto& node : nodes) {
    for (const auto& [key, value] : node->metrics()) {
      result.chain_metrics[key] += value;
    }
    // Base-node adversarial counters (equivocations sent, misbehavior
    // reports/bans, ...). Zero values are elided so benign-run reports
    // stay byte-identical to builds that predate the adversarial family.
    for (const auto& [key, value] : node->adversarial_metrics()) {
      if (value != 0.0) result.chain_metrics[key] += value;
    }
  }
  // Service counters (failovers, heartbeat misses) use the same
  // elide-when-zero discipline as the adversarial metrics.
  for (const auto& service : services) {
    for (const auto& [key, value] : service->metrics()) {
      if (value != 0.0) result.chain_metrics[key] += value;
    }
  }
  if (config.capture_replicas) {
    result.replicas = snapshot_replicas(node_ptrs);
    for (const auto& client : clients) {
      result.submitted_ids.insert(result.submitted_ids.end(),
                                  client->submitted_ids().begin(),
                                  client->submitted_ids().end());
    }
  }
  if (config.metrics != nullptr) {
    Histogram& latency = config.metrics->histogram(
        "commit_latency_s",
        {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
    for (const double l : result.latencies) latency.observe(l);
    // The registry outlives this simulation; its probes must not.
    config.metrics->detach_probes();
  }
  return result;
}

ExperimentConfig baseline_of(const ExperimentConfig& altered_config) {
  ExperimentConfig baseline_config = altered_config;
  baseline_config.fault = FaultType::kNone;
  baseline_config.fault_targets.clear();
  baseline_config.extra_faults.plans.clear();
  baseline_config.client_fanout = 1;
  // With the traffic model active, the pairing question changes from "how
  // does the fault compare to a pristine lab run" to "what does the fault
  // cost under the SAME production traffic" — the baseline keeps the
  // shape and population so the score isolates the fault, not the burst.
  if (!altered_config.traffic.active()) {
    baseline_config.workload.shape = WorkloadShape::kConstant;
  }
  // The timeline of interest is the faulted run; tracing the pristine
  // baseline too would interleave two runs in one sink. The same holds
  // for the lifecycle recorder — the attribution layer, which needs both
  // twins recorded, attaches one recorder per run itself.
  baseline_config.trace = nullptr;
  baseline_config.metrics = nullptr;
  baseline_config.lifecycle = nullptr;
  return baseline_config;
}

SensitivityRun run_sensitivity(const ExperimentConfig& altered_config,
                               const SensitivityOptions& options) {
  const ExperimentConfig baseline_config = baseline_of(altered_config);

  SensitivityRun run;
  run.baseline = run_experiment(baseline_config);
  run.altered = run_experiment(altered_config);
  run.score = sensitivity(run.baseline.latencies, run.altered.latencies,
                          run.altered.live_at_end, options);
  return run;
}

}  // namespace stabl::core
