#include "core/metrics.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include <algorithm>

#include "core/json.hpp"
#include "core/report.hpp"
#include "core/serialize.hpp"

namespace stabl::core {
namespace {

// Fixed precisions keep to_json/to_csv byte-stable: a value parsed back
// with strtod and re-printed at the same precision reproduces its bytes.
constexpr int kTimePrecision = 3;
constexpr int kValuePrecision = 6;

}  // namespace

Histogram::Histogram(std::string metric_name,
                     std::vector<double> bucket_bounds)
    : name(std::move(metric_name)), bounds(std::move(bucket_bounds)) {
  counts.assign(bounds.size() + 1, 0);
}

std::vector<double> Histogram::log_bounds(double lo, double hi,
                                          int per_decade) {
  std::vector<double> bounds;
  const double step = std::pow(10.0, 1.0 / static_cast<double>(per_decade));
  double bound = lo;
  double previous = -1.0;
  while (bound < hi * (1.0 + 1e-9)) {
    // Quantize to the serializers' fixed precision so in-memory bounds are
    // exactly what a round-tripped document reparses.
    const double quantized = std::round(bound * 1e6) / 1e6;
    if (quantized > previous) {
      bounds.push_back(quantized);
      previous = quantized;
    }
    bound *= step;
  }
  return bounds;
}

double Histogram::quantile(double q) const {
  if (total == 0 || counts.empty()) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t next = cumulative + counts[i];
    if (counts[i] > 0 && static_cast<double>(next) >= target) {
      if (i >= bounds.size()) {
        return bounds.empty() ? 0.0 : bounds.back();  // overflow bucket
      }
      const double low = i == 0 ? 0.0 : bounds[i - 1];
      const double high = bounds[i];
      const double into = (target - static_cast<double>(cumulative)) /
                          static_cast<double>(counts[i]);
      return low + (high - low) * std::clamp(into, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

void Histogram::observe(double value) {
  std::size_t slot = bounds.size();
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (value <= bounds[i]) {
      slot = i;
      break;
    }
  }
  ++counts[slot];
  ++total;
  sum += value;
}

void MetricsRegistry::add_gauge(std::string name, Probe probe) {
  series_.push_back(MetricSeries{std::move(name), {}});
  probes_.push_back(std::move(probe));
}

void MetricsRegistry::add_counter(std::string name, Probe probe) {
  add_gauge(std::move(name), std::move(probe));
}

Histogram& MetricsRegistry::histogram(std::string name,
                                      std::vector<double> bounds) {
  for (Histogram& h : histograms_) {
    if (h.name == name) return h;
  }
  histograms_.emplace_back(std::move(name), std::move(bounds));
  return histograms_.back();
}

void MetricsRegistry::sample(double t_s, sim::TraceSink* trace) {
  times_.push_back(t_s);
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const double value = probes_[i] ? probes_[i]() : 0.0;
    series_[i].samples.push_back(value);
    if (trace != nullptr) {
      trace->counter(sim::seconds(t_s), series_[i].name, value);
    }
  }
}

void MetricsRegistry::detach_probes() {
  for (Probe& probe : probes_) probe = nullptr;
}

void MetricsRegistry::note(const std::string& text) {
  if (std::find(notes_.begin(), notes_.end(), text) == notes_.end()) {
    notes_.push_back(text);
  }
}

std::string MetricsRegistry::to_csv() const {
  std::vector<std::string> header{"t_s"};
  for (const MetricSeries& s : series_) header.push_back(s.name);
  std::ostringstream out;
  out << csv_join(header) << '\n';
  for (std::size_t row = 0; row < times_.size(); ++row) {
    std::vector<std::string> cells{Table::num(times_[row], kTimePrecision)};
    for (const MetricSeries& s : series_) {
      cells.push_back(Table::num(s.samples[row], kValuePrecision));
    }
    out << csv_join(cells) << '\n';
  }
  return out.str();
}

std::string MetricsRegistry::histograms_csv() const {
  std::ostringstream out;
  out << "name,total,mean,p50,p90,p99\n";
  for (const Histogram& hist : histograms_) {
    out << csv_join({hist.name, std::to_string(hist.total),
                     Table::num(hist.mean(), kValuePrecision),
                     Table::num(hist.quantile(0.50), kValuePrecision),
                     Table::num(hist.quantile(0.90), kValuePrecision),
                     Table::num(hist.quantile(0.99), kValuePrecision)})
        << '\n';
  }
  return out.str();
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream out;
  out << "{\"times_s\":[";
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (i > 0) out << ',';
    out << Table::num(times_[i], kTimePrecision);
  }
  out << "],\"series\":[";
  for (std::size_t s = 0; s < series_.size(); ++s) {
    if (s > 0) out << ',';
    out << "{\"name\":\"" << series_[s].name << "\",\"samples\":[";
    for (std::size_t i = 0; i < series_[s].samples.size(); ++i) {
      if (i > 0) out << ',';
      out << Table::num(series_[s].samples[i], kValuePrecision);
    }
    out << "]}";
  }
  out << "],\"histograms\":[";
  for (std::size_t h = 0; h < histograms_.size(); ++h) {
    if (h > 0) out << ',';
    const Histogram& hist = histograms_[h];
    out << "{\"name\":\"" << hist.name << "\",\"bounds\":[";
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      if (i > 0) out << ',';
      out << Table::num(hist.bounds[i], kValuePrecision);
    }
    out << "],\"counts\":[";
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      if (i > 0) out << ',';
      out << hist.counts[i];
    }
    out << "],\"sum\":" << Table::num(hist.sum, kValuePrecision) << '}';
  }
  out << ']';
  if (!notes_.empty()) {
    out << ",\"notes\":[";
    for (std::size_t i = 0; i < notes_.size(); ++i) {
      if (i > 0) out << ',';
      out << '"' << json_escape(notes_[i]) << '"';
    }
    out << ']';
  }
  out << '}';
  return out.str();
}

MetricsRegistry metrics_from_json(const std::string& json) {
  MetricsRegistry registry;
  JsonCursor cursor(json);
  cursor.expect('{');

  if (cursor.parse_string() != "times_s") cursor.fail("expected \"times_s\"");
  cursor.expect(':');
  cursor.expect('[');
  std::vector<double> times;
  if (!cursor.consume(']')) {
    do {
      times.push_back(cursor.parse_number());
    } while (cursor.consume(','));
    cursor.expect(']');
  }

  cursor.expect(',');
  if (cursor.parse_string() != "series") cursor.fail("expected \"series\"");
  cursor.expect(':');
  cursor.expect('[');
  std::vector<MetricSeries> series;
  if (!cursor.consume(']')) {
    do {
      MetricSeries s;
      cursor.expect('{');
      if (cursor.parse_string() != "name") cursor.fail("expected \"name\"");
      cursor.expect(':');
      s.name = cursor.parse_string();
      cursor.expect(',');
      if (cursor.parse_string() != "samples") {
        cursor.fail("expected \"samples\"");
      }
      cursor.expect(':');
      cursor.expect('[');
      if (!cursor.consume(']')) {
        do {
          s.samples.push_back(cursor.parse_number());
        } while (cursor.consume(','));
        cursor.expect(']');
      }
      cursor.expect('}');
      series.push_back(std::move(s));
    } while (cursor.consume(','));
    cursor.expect(']');
  }

  cursor.expect(',');
  if (cursor.parse_string() != "histograms") {
    cursor.fail("expected \"histograms\"");
  }
  cursor.expect(':');
  cursor.expect('[');
  std::vector<Histogram> histograms;
  if (!cursor.consume(']')) {
    do {
      Histogram hist;
      cursor.expect('{');
      if (cursor.parse_string() != "name") cursor.fail("expected \"name\"");
      cursor.expect(':');
      hist.name = cursor.parse_string();
      cursor.expect(',');
      if (cursor.parse_string() != "bounds") cursor.fail("expected \"bounds\"");
      cursor.expect(':');
      cursor.expect('[');
      if (!cursor.consume(']')) {
        do {
          hist.bounds.push_back(cursor.parse_number());
        } while (cursor.consume(','));
        cursor.expect(']');
      }
      cursor.expect(',');
      if (cursor.parse_string() != "counts") cursor.fail("expected \"counts\"");
      cursor.expect(':');
      cursor.expect('[');
      hist.counts.clear();
      if (!cursor.consume(']')) {
        do {
          hist.counts.push_back(
              static_cast<std::uint64_t>(cursor.parse_number()));
        } while (cursor.consume(','));
        cursor.expect(']');
      }
      cursor.expect(',');
      if (cursor.parse_string() != "sum") cursor.fail("expected \"sum\"");
      cursor.expect(':');
      hist.sum = cursor.parse_number();
      cursor.expect('}');
      for (const std::uint64_t c : hist.counts) hist.total += c;
      histograms.push_back(std::move(hist));
    } while (cursor.consume(','));
    cursor.expect(']');
  }
  std::vector<std::string> notes;
  if (cursor.consume(',')) {
    if (cursor.parse_string() != "notes") cursor.fail("expected \"notes\"");
    cursor.expect(':');
    cursor.expect('[');
    if (!cursor.consume(']')) {
      do {
        notes.push_back(cursor.parse_string());
      } while (cursor.consume(','));
      cursor.expect(']');
    }
  }
  cursor.expect('}');
  cursor.finish();

  registry.restore(std::move(times), std::move(series),
                   std::move(histograms), std::move(notes));
  return registry;
}

void MetricsRegistry::restore(std::vector<double> times,
                              std::vector<MetricSeries> series,
                              std::vector<Histogram> histograms,
                              std::vector<std::string> notes) {
  times_ = std::move(times);
  series_ = std::move(series);
  histograms_ = std::move(histograms);
  notes_ = std::move(notes);
  probes_.assign(series_.size(), nullptr);
}

void MetricsTicker::on_time_advance(sim::Time now) {
  while (true) {
    const sim::Time next =
        period_ * static_cast<std::int64_t>(ticks_emitted_ + 1);
    if (next > now) break;
    registry_.sample(sim::to_seconds(next), trace_);
    ++ticks_emitted_;
  }
}

}  // namespace stabl::core
