#include "core/sensitivity.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>

namespace stabl::core {

Ecdf::Ecdf(std::vector<double> samples) : samples_(std::move(samples)) {
  // Drop non-finite samples BEFORE sorting: a NaN anywhere in the input
  // breaks std::sort's strict-weak-ordering requirement (UB), and the old
  // front()/back() assert both ran after the sort and vanished in release
  // builds. Dropping is deterministic — the same inputs always keep the
  // same sample subset.
  samples_.erase(std::remove_if(samples_.begin(), samples_.end(),
                                [](double v) { return !std::isfinite(v); }),
                 samples_.end());
  std::sort(samples_.begin(), samples_.end());
}

double Ecdf::operator()(double x) const {
  if (samples_.empty()) return 0.0;
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Ecdf::min() const { return samples_.empty() ? 0.0 : samples_.front(); }
double Ecdf::max() const { return samples_.empty() ? 0.0 : samples_.back(); }

double Ecdf::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Ecdf::quantile(double q) const {
  // Linear interpolation between ranks (the R-7 / NumPy default). The old
  // nearest-rank-with-round-half-up variant biased even-sized medians to
  // the upper element (median of {1,2,3,4} came out as 3, not 2.5).
  if (samples_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (frac == 0.0 || lo + 1 >= samples_.size()) return samples_[lo];
  return samples_[lo] + frac * (samples_[lo + 1] - samples_[lo]);
}

double super_cumulative(const Ecdf& ecdf, double x, double step) {
  assert(step > 0.0);
  if (x < 0.0) return 0.0;
  const auto terms = static_cast<std::int64_t>(std::floor(x / step));
  double sum = 0.0;
  for (std::int64_t i = 0; i <= terms; ++i) {
    sum += ecdf(static_cast<double>(i) * step);
  }
  return sum;
}

double ecdf_integral(const Ecdf& ecdf, double upper) {
  if (upper <= 0.0 || ecdf.empty()) return 0.0;
  // F̂ is a right-continuous step function jumping by 1/m at each sample;
  // integrate piecewise between sorted sample positions.
  const auto& xs = ecdf.sorted_samples();
  const double m = static_cast<double>(xs.size());
  double area = 0.0;
  double prev_x = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double x = std::min(std::max(xs[i], 0.0), upper);
    area += (x - prev_x) * (static_cast<double>(i) / m);
    prev_x = x;
    if (xs[i] >= upper) return area;
  }
  area += (upper - prev_x) * 1.0;
  return area;
}

SensitivityScore sensitivity(const std::vector<double>& baseline,
                             const std::vector<double>& altered,
                             bool altered_live,
                             const SensitivityOptions& options) {
  SensitivityScore score;
  if (!altered_live || altered.empty()) {
    score.infinite = true;
    score.value = std::numeric_limits<double>::infinity();
    return score;
  }
  if (baseline.empty()) {
    // An empty baseline means the baseline run lost liveness or measured
    // nothing: baseline_area would be 0 and ANY altered run would score a
    // plausible-looking number with benefits=true. Report the pair as
    // invalid instead of pretending to have compared something.
    score.infinite = true;
    score.invalid_baseline = true;
    score.value = std::numeric_limits<double>::infinity();
    return score;
  }
  const Ecdf base(baseline);
  const Ecdf alt(altered);
  double b1 = base.max();
  double b2 = alt.max();
  if (options.endpoint == ScoreEndpoint::kCommon) {
    b1 = b2 = std::max(b1, b2);
  }
  score.baseline_area = super_cumulative(base, b1, options.step);
  score.altered_area = super_cumulative(alt, b2, options.step);
  score.benefits = score.altered_area > score.baseline_area;
  score.value = std::abs(score.baseline_area - score.altered_area);
  return score;
}

std::string format_score(const SensitivityScore& score) {
  if (score.invalid_baseline) return "invalid";
  if (score.infinite) return "inf";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.2f%s", score.value,
                score.benefits ? "*" : "");
  return buf;
}

}  // namespace stabl::core
