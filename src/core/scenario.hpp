// Declarative scenarios: one JSON document describing a complete stabl_cli
// invocation — chain + per-chain parameter overrides, fault schedule,
// workload, duration, seeds/jobs and observability outputs.
//
// The spec is data, not code (the usability gap the blockchain-simulator
// mapping study arXiv:2208.11202 calls out): checked-in files under
// examples/scenarios/ reproduce the paper's figure cells, CI replays them,
// and `stabl_cli --dump-scenario` emits the spec any flag combination
// resolves to. Validation is strict — unknown keys, unknown chains/faults
// and out-of-range values are errors, never silently ignored — and
// scenario_to_json/scenario_from_json round-trip byte-stably, so a dumped
// spec replayed through --scenario reproduces the flag run's report bytes
// exactly (tests assert this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/registry.hpp"
#include "core/experiment.hpp"
#include "core/traffic.hpp"
#include "net/message.hpp"

namespace stabl::core {

/// The declarative form of a run. Field defaults mirror stabl_cli's flag
/// defaults exactly, so an empty JSON object {} is the paper's default
/// Redbelly baseline and every checked-in spec only needs to state what
/// it changes.
struct ScenarioSpec {
  /// Free-form label, carried through for humans and file indexes.
  std::string name{};
  std::string chain = "redbelly";
  /// Per-chain parameter overrides (chain::ChainTraits::default_params
  /// keys). Unknown keys are rejected when the scenario resolves.
  chain::ChainParams chain_params{};
  std::string fault = "none";
  /// Explicit target override; empty selects the paper's defaults.
  std::vector<net::NodeId> fault_targets{};
  /// Fault types composed onto the primary window (engine v2).
  std::vector<std::string> extra_faults{};
  double loss_probability = 0.2;
  double throttle_bytes_per_s = 64.0 * 1024.0;
  double gray_delay_s = 2.0;
  /// kEclipse knobs: victim node, per-packet interception delay, and the
  /// probability an intercepted packet is silently dropped.
  std::int64_t eclipse_victim = 9;
  double eclipse_delay_s = 0.5;
  double eclipse_filter = 0.2;
  std::int64_t duration_s = 400;
  std::uint64_t seed = 42;
  std::int64_t num_seeds = 1;
  std::int64_t jobs = 1;
  /// Arrival shape (core/traffic.hpp workload_shape_names()); the traffic
  /// object's "shape", when present, takes precedence.
  std::string workload = "constant";
  /// Production traffic model (the "traffic" JSON object). Omitted from
  /// serialization while has_traffic is false, so specs and dumps that
  /// predate the traffic layer stay byte-identical.
  bool has_traffic = false;
  TrafficSpec traffic{};
  std::int64_t fanout = 1;
  std::int64_t matching = 0;
  double vcpus = 4.0;
  bool resilient = false;
  double commit_timeout_s = 10.0;
  /// Hedged submissions (needs resilient): arm a second endpoint after the
  /// observed hedge_percentile commit latency instead of waiting out the
  /// full commit timeout.
  bool hedge = false;
  double hedge_percentile = 0.95;
  double hedge_min_delay_s = 0.25;
  double hedge_max_delay_s = 8.0;
  /// EWMA endpoint scoring steering failover order (needs resilient).
  bool endpoint_scoring = false;
  std::int64_t chaos_trials = 0;
  bool shrink = false;
  /// Chaos campaigns sample the adversarial plan space too (equivocate,
  /// withhold, eclipse join the generated types).
  bool chaos_adversarial = false;
  /// Observability outputs; empty = disabled.
  std::string trace{};
  std::string metrics{};

  bool operator==(const ScenarioSpec&) const = default;
};

/// Range/consistency validation that needs no registry: duration >= 30 s,
/// seeds/jobs >= 1, probability in (0, 1], known workload shape, ...
/// Returns an empty string when well-formed, else a human-readable error.
/// Name lookups (chain, fault, chain_params keys) happen when the
/// scenario resolves, against whatever chains the binary registered.
[[nodiscard]] std::string validate_scenario(const ScenarioSpec& spec);

/// Pretty two-space-indented JSON with every field present in declaration
/// order; doubles use shortest round-trip formatting. Byte-stable:
/// scenario_to_json(scenario_from_json(j)) == j for any j this emitted.
[[nodiscard]] std::string scenario_to_json(const ScenarioSpec& spec);

/// Strict parse: unknown or duplicate keys, malformed JSON, non-integral
/// integer fields and validate_scenario failures all throw
/// std::invalid_argument. Missing keys keep their defaults, so hand
/// written specs only state what they change.
[[nodiscard]] ScenarioSpec scenario_from_json(const std::string& json);

/// A spec lowered onto the experiment machinery: the ExperimentConfig plus
/// the driver-level knobs (sweep width, parallelism, chaos mode,
/// observability paths) that live outside ExperimentConfig.
struct ResolvedScenario {
  ExperimentConfig config{};
  std::size_t num_seeds = 1;
  unsigned jobs = 1;
  std::size_t chaos_trials = 0;
  bool shrink = false;
  bool chaos_adversarial = false;
  std::string trace_path{};
  std::string metrics_path{};
};

/// Validate + resolve. Performs exactly stabl_cli's historical flag
/// post-processing — inject/recover at the duration's integer thirds,
/// extra plans sharing the primary window and knob values, the
/// secure-client fanout-4/8-vCPU adjustment — so a dumped spec reproduces
/// the flag run byte-for-byte. Throws std::invalid_argument on validation
/// failures, unknown chain/fault names, or chain_params keys the chain
/// does not declare.
[[nodiscard]] ResolvedScenario resolve_scenario(const ScenarioSpec& spec);

}  // namespace stabl::core
