#include "core/misbehavior.hpp"

#include <sstream>

namespace stabl::core {

std::string describe(const MisbehaviorConfig& config) {
  if (!config.enabled) return "defense off";
  std::ostringstream out;
  out << "defense on: equivocation+" << config.equivocation_penalty
      << ", stale+" << config.stale_penalty << ", decay "
      << config.decay_per_s << "/s, throttle>=" << config.throttle_threshold
      << ", ban>=" << config.ban_threshold;
  return out.str();
}

}  // namespace stabl::core
