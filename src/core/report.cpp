#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace stabl::core {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  if (std::isinf(value)) return "inf";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  out << '|';
  for (const std::size_t w : widths) out << std::string(w + 2, '-') << '|';
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string render_timeseries(const std::vector<double>& per_second,
                              double bucket_s, double max_scale) {
  if (per_second.empty()) return "(empty series)\n";
  const auto bucket = static_cast<std::size_t>(std::max(1.0, bucket_s));
  std::vector<double> buckets;
  for (std::size_t start = 0; start < per_second.size(); start += bucket) {
    const std::size_t end = std::min(per_second.size(), start + bucket);
    double sum = 0.0;
    for (std::size_t i = start; i < end; ++i) sum += per_second[i];
    buckets.push_back(sum / static_cast<double>(end - start));
  }
  double scale = max_scale;
  if (scale <= 0.0) {
    scale = *std::max_element(buckets.begin(), buckets.end());
  }
  if (scale <= 0.0) scale = 1.0;
  std::ostringstream out;
  constexpr int kBarWidth = 40;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const auto from = b * bucket;
    const auto to = std::min(per_second.size(), from + bucket);
    const int bar = static_cast<int>(
        std::round(std::min(1.0, buckets[b] / scale) * kBarWidth));
    char head[32];
    std::snprintf(head, sizeof(head), "[%4zu-%4zus] ", from, to);
    out << head << std::string(static_cast<std::size_t>(bar), '#')
        << std::string(static_cast<std::size_t>(kBarWidth - bar), ' ')
        << "  " << Table::num(buckets[b], 1) << " tps\n";
  }
  return out.str();
}

std::string render_ecdf_pair(const Ecdf& baseline, const Ecdf& altered,
                             int width, int height) {
  const double max_x = std::max(baseline.max(), altered.max());
  if (max_x <= 0.0 || width < 2 || height < 2) return "(empty eCDF)\n";
  std::ostringstream out;
  for (int row = height; row >= 0; --row) {
    const double y = static_cast<double>(row) / height;
    char label[16];
    std::snprintf(label, sizeof(label), "%4.2f |", y);
    out << label;
    for (int col = 0; col <= width; ++col) {
      const double x = max_x * static_cast<double>(col) / width;
      const double step = 1.0 / height / 2.0;
      const bool on_base = std::abs(baseline(x) - y) <= step;
      const bool on_alt = std::abs(altered(x) - y) <= step;
      if (on_base && on_alt) {
        out << '@';
      } else if (on_base) {
        out << '#';
      } else if (on_alt) {
        out << '*';
      } else {
        out << ' ';
      }
    }
    out << '\n';
  }
  out << "     +" << std::string(static_cast<std::size_t>(width) + 1, '-')
      << "> latency (max " << Table::num(max_x, 2) << "s)\n"
      << "     # baseline   * altered   @ overlap\n";
  return out.str();
}

std::string csv_join(const std::vector<std::string>& cells) {
  std::ostringstream out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out << ',';
    out << cells[i];
  }
  return out.str();
}

}  // namespace stabl::core
