#include "core/radar.hpp"

#include "core/campaign.hpp"
#include "core/report.hpp"

namespace stabl::core {
namespace {

constexpr FaultType kDims[] = {FaultType::kCrash, FaultType::kTransient,
                               FaultType::kPartition,
                               FaultType::kSecureClient};

constexpr FaultType kAttackDims[] = {FaultType::kEquivocate,
                                     FaultType::kWithhold,
                                     FaultType::kEclipse};

std::string attack_half(const SensitivityScore& score,
                        const std::string& verdict) {
  return format_score(score) + " " + verdict;
}

std::string sweep_cell_text(const RadarSweepCell& cell) {
  if (cell.seeds == cell.liveness_losses) {
    return "inf x" + std::to_string(cell.liveness_losses);
  }
  // ASCII "+-" keeps the fixed-width table aligned (no multi-byte glyphs).
  std::string text = Table::num(cell.mean, 2) + "+-" +
                     Table::num(cell.stddev, 2) + " [" +
                     Table::num(cell.min, 2) + ".." +
                     Table::num(cell.max, 2) + "]";
  if (cell.liveness_losses > 0) {
    text += " inf:" + std::to_string(cell.liveness_losses) + "/" +
            std::to_string(cell.seeds);
  }
  return text;
}

}  // namespace

void RadarSummary::record(ChainKind chain, FaultType dimension,
                          const SensitivityScore& score) {
  scores_[{chain, dimension}] = score;
}

void RadarSummary::record_sweep(ChainKind chain, FaultType dimension,
                                const SeedSweepStats& stats) {
  RadarSweepCell cell;
  cell.seeds = stats.seeds;
  cell.liveness_losses = stats.liveness_losses;
  cell.mean = stats.mean;
  cell.min = stats.min;
  cell.max = stats.max;
  cell.stddev = stats.stddev;
  sweeps_[{chain, dimension}] = cell;
}

void RadarSummary::record_attack(ChainKind chain, FaultType dimension,
                                 RadarAttackCell cell) {
  attacks_[{chain, dimension}] = std::move(cell);
}

void RadarSummary::record_attribution(ChainKind chain, FaultType dimension,
                                      RadarAttributionCell cell) {
  attributions_[{chain, dimension}] = std::move(cell);
}

const SensitivityScore* RadarSummary::get(ChainKind chain,
                                          FaultType dimension) const {
  const auto it = scores_.find({chain, dimension});
  return it == scores_.end() ? nullptr : &it->second;
}

const RadarSweepCell* RadarSummary::get_sweep(ChainKind chain,
                                              FaultType dimension) const {
  const auto it = sweeps_.find({chain, dimension});
  return it == sweeps_.end() ? nullptr : &it->second;
}

const RadarAttackCell* RadarSummary::get_attack(ChainKind chain,
                                                FaultType dimension) const {
  const auto it = attacks_.find({chain, dimension});
  return it == attacks_.end() ? nullptr : &it->second;
}

const RadarAttributionCell* RadarSummary::get_attribution(
    ChainKind chain, FaultType dimension) const {
  const auto it = attributions_.find({chain, dimension});
  return it == attributions_.end() ? nullptr : &it->second;
}

std::string RadarSummary::to_table() const {
  Table table({"chain", "crash", "transient", "partition", "byzantine"});
  for (const ChainKind chain : kAllChains) {
    std::vector<std::string> row{to_string(chain)};
    for (const FaultType dim : kDims) {
      const SensitivityScore* score = get(chain, dim);
      row.push_back(score == nullptr ? "-" : format_score(*score));
    }
    table.add_row(std::move(row));
  }
  return table.to_string();
}

std::string RadarSummary::attack_table() const {
  Table table({"chain", "equivocate (off | on)", "withhold (off | on)",
               "eclipse (off | on)"});
  for (const ChainKind chain : kAllChains) {
    std::vector<std::string> row{to_string(chain)};
    for (const FaultType dim : kAttackDims) {
      const RadarAttackCell* cell = get_attack(chain, dim);
      row.push_back(cell == nullptr
                        ? "-"
                        : attack_half(cell->undefended,
                                      cell->undefended_verdict) +
                              " | " +
                              attack_half(cell->defended,
                                          cell->defended_verdict));
    }
    table.add_row(std::move(row));
  }
  return table.to_string();
}

std::string RadarSummary::attribution_table() const {
  Table table({"chain", "crash", "transient", "partition", "byzantine"});
  for (const ChainKind chain : kAllChains) {
    std::vector<std::string> row{to_string(chain)};
    for (const FaultType dim : kDims) {
      const RadarAttributionCell* cell = get_attribution(chain, dim);
      if (cell == nullptr) {
        row.push_back("-");
        continue;
      }
      const std::string sign = cell->latency_delta_s >= 0 ? "+" : "";
      row.push_back(sign + Table::num(cell->latency_delta_s, 2) + "s " +
                    cell->dominant_stage + " " +
                    Table::num(100.0 * cell->dominant_share, 0) + "%");
    }
    table.add_row(std::move(row));
  }
  return table.to_string();
}

std::string RadarSummary::sweep_table() const {
  Table table({"chain", "crash", "transient", "partition", "byzantine"});
  for (const ChainKind chain : kAllChains) {
    std::vector<std::string> row{to_string(chain)};
    for (const FaultType dim : kDims) {
      const RadarSweepCell* cell = get_sweep(chain, dim);
      row.push_back(cell == nullptr ? "-" : sweep_cell_text(*cell));
    }
    table.add_row(std::move(row));
  }
  return table.to_string();
}

}  // namespace stabl::core
