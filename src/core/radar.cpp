#include "core/radar.hpp"

#include "core/report.hpp"

namespace stabl::core {

void RadarSummary::record(ChainKind chain, FaultType dimension,
                          const SensitivityScore& score) {
  scores_[{chain, dimension}] = score;
}

const SensitivityScore* RadarSummary::get(ChainKind chain,
                                          FaultType dimension) const {
  const auto it = scores_.find({chain, dimension});
  return it == scores_.end() ? nullptr : &it->second;
}

std::string RadarSummary::to_table() const {
  const FaultType dims[] = {FaultType::kCrash, FaultType::kTransient,
                            FaultType::kPartition, FaultType::kSecureClient};
  Table table({"chain", "crash", "transient", "partition", "byzantine"});
  for (const ChainKind chain : kAllChains) {
    std::vector<std::string> row{to_string(chain)};
    for (const FaultType dim : dims) {
      const SensitivityScore* score = get(chain, dim);
      row.push_back(score == nullptr ? "-" : format_score(*score));
    }
    table.add_row(std::move(row));
  }
  return table.to_string();
}

}  // namespace stabl::core
