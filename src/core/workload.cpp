#include "core/workload.hpp"

#include <algorithm>
#include <cmath>

namespace stabl::core {

double workload_rate(const WorkloadConfig& config, sim::Time at,
                     sim::Duration duration) {
  switch (config.shape) {
    case WorkloadShape::kConstant:
      return config.tps;
    case WorkloadShape::kBursty: {
      // Square wave with mean config.tps: high phase at factor*low, equal
      // phase lengths => low = 2*tps/(1+factor).
      const double low =
          2.0 * config.tps / (1.0 + std::max(1.0, config.burst_factor));
      const double high = low * std::max(1.0, config.burst_factor);
      const auto period = config.burst_period.count();
      if (period <= 0) return config.tps;
      const bool high_phase = (at.count() / period) % 2 == 0;
      return high_phase ? high : low;
    }
    case WorkloadShape::kRamp: {
      const double total = sim::to_seconds(duration);
      if (total <= 0.0) return config.tps;
      const double progress =
          std::clamp(sim::to_seconds(at) / total, 0.0, 1.0);
      const double start = std::clamp(config.ramp_start_fraction, 0.0, 1.0);
      const double end = 2.0 - start;  // keeps the average at tps
      return config.tps * (start + (end - start) * progress);
    }
    case WorkloadShape::kDiurnal: {
      // Raised cosine with the trough at t = 0: integrating the cosine
      // over any whole number of periods cancels, so the average is tps.
      const double period = config.diurnal_period.count() > 0
                                ? sim::to_seconds(config.diurnal_period)
                                : sim::to_seconds(duration);
      if (period <= 0.0) return config.tps;
      const double amplitude =
          std::clamp(config.diurnal_amplitude, 0.0, 0.999);
      constexpr double kTau = 6.283185307179586;
      const double phase = kTau * sim::to_seconds(at) / period;
      return config.tps * (1.0 - amplitude * std::cos(phase));
    }
    case WorkloadShape::kFlash: {
      const double total = sim::to_seconds(duration);
      if (total <= 0.0) return config.tps;
      const double factor = std::max(1.0, config.flash_factor);
      const double start =
          std::clamp(sim::to_seconds(config.flash_at), 0.0, total);
      const double width = std::clamp(sim::to_seconds(config.flash_duration),
                                      0.0, total - start);
      // base * (total + (factor - 1) * width) / total == tps: the crowd
      // window borrows rate from the rest of the run, not from thin air.
      const double base =
          config.tps * total / (total + (factor - 1.0) * width);
      const double t = sim::to_seconds(at);
      const bool in_crowd = t >= start && t < start + width;
      return in_crowd ? factor * base : base;
    }
  }
  return config.tps;
}

ArrivalStep workload_step(const WorkloadConfig& config, sim::Time at,
                          sim::Duration duration) {
  const double rate = std::max(0.1, workload_rate(config, at, duration));
  const auto gap = static_cast<std::int64_t>(1e6 / rate);
  ArrivalStep step;
  if (gap >= kMinArrivalGap.count()) {
    step.interval = sim::Duration{gap};
    return step;
  }
  // Floor bound: batch ceil(floor / gap) arrivals per tick. The tick gap
  // is count * raw gap, which keeps count/interval == rate exactly, so
  // the configured average survives arbitrarily high TPS.
  step.clamped = true;
  if (gap <= 0) {
    // rate >= 1e6 TPS: the raw gap truncates below the microsecond clock
    // resolution; tick once per floor window instead.
    step.count = static_cast<int>(
        std::ceil(rate * sim::to_seconds(kMinArrivalGap)));
    step.interval = kMinArrivalGap;
    return step;
  }
  step.count = static_cast<int>((kMinArrivalGap.count() + gap - 1) / gap);
  step.interval = sim::Duration{static_cast<std::int64_t>(step.count) * gap};
  return step;
}

}  // namespace stabl::core
