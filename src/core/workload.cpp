#include "core/workload.hpp"

#include <algorithm>
#include <cmath>

namespace stabl::core {

double workload_rate(const WorkloadConfig& config, sim::Time at,
                     sim::Duration duration) {
  switch (config.shape) {
    case WorkloadShape::kConstant:
      return config.tps;
    case WorkloadShape::kBursty: {
      // Square wave with mean config.tps: high phase at factor*low, equal
      // phase lengths => low = 2*tps/(1+factor).
      const double low =
          2.0 * config.tps / (1.0 + std::max(1.0, config.burst_factor));
      const double high = low * std::max(1.0, config.burst_factor);
      const auto period = config.burst_period.count();
      if (period <= 0) return config.tps;
      const bool high_phase = (at.count() / period) % 2 == 0;
      return high_phase ? high : low;
    }
    case WorkloadShape::kRamp: {
      const double total = sim::to_seconds(duration);
      if (total <= 0.0) return config.tps;
      const double progress =
          std::clamp(sim::to_seconds(at) / total, 0.0, 1.0);
      const double start = std::clamp(config.ramp_start_fraction, 0.0, 1.0);
      const double end = 2.0 - start;  // keeps the average at tps
      return config.tps * (start + (end - start) * progress);
    }
  }
  return config.tps;
}

sim::Duration workload_interval(const WorkloadConfig& config, sim::Time at,
                                sim::Duration duration) {
  const double rate = std::max(0.1, workload_rate(config, at, duration));
  const auto gap = static_cast<std::int64_t>(1e6 / rate);
  return std::max(sim::Duration{gap}, kMinArrivalGap);
}

ArrivalStep workload_step(const WorkloadConfig& config, sim::Time at,
                          sim::Duration duration) {
  const double rate = std::max(0.1, workload_rate(config, at, duration));
  const auto gap = static_cast<std::int64_t>(1e6 / rate);
  ArrivalStep step;
  if (gap >= kMinArrivalGap.count()) {
    step.interval = sim::Duration{gap};
    return step;
  }
  // Floor bound: batch ceil(floor / gap) arrivals per tick. The tick gap
  // is count * raw gap, which keeps count/interval == rate exactly, so
  // the configured average survives arbitrarily high TPS.
  step.clamped = true;
  if (gap <= 0) {
    // rate >= 1e6 TPS: the raw gap truncates below the microsecond clock
    // resolution; tick once per floor window instead.
    step.count = static_cast<int>(
        std::ceil(rate * sim::to_seconds(kMinArrivalGap)));
    step.interval = kMinArrivalGap;
    return step;
  }
  step.count = static_cast<int>((kMinArrivalGap.count() + gap - 1) / gap);
  step.interval = sim::Duration{static_cast<std::int64_t>(step.count) * gap};
  return step;
}

}  // namespace stabl::core
