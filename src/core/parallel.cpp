#include "core/parallel.hpp"

#include <algorithm>

namespace stabl::core {

unsigned default_jobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned jobs) {
  const unsigned lanes = std::max(1u, jobs);
  workers_.reserve(lanes - 1);
  for (unsigned i = 0; i + 1 < lanes; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::drain() {
  for (;;) {
    std::size_t index;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (failed_ || cursor_ >= count_) return;
      index = cursor_++;
    }
    try {
      (*body_)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!failed_) {
        failed_ = true;
        error_ = std::current_exception();
      }
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    drain();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    count_ = count;
    cursor_ = 0;
    failed_ = false;
    error_ = nullptr;
    active_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();

  drain();  // the caller is a lane too

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return active_ == 0; });
  body_ = nullptr;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace stabl::core
