#include "core/parallel.hpp"

#include <algorithm>
#include <cstdio>

namespace stabl::core {

unsigned default_jobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

Heartbeat::Heartbeat(std::string label, std::size_t total, bool enabled)
    : label_(std::move(label)),
      total_(total),
      enabled_(enabled),
      start_(std::chrono::steady_clock::now()),
      last_print_(start_) {}

Heartbeat::~Heartbeat() {
  if (!enabled_ || !printed_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  print(done_, /*final_line=*/true);
}

void Heartbeat::tick() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ++done_;
  const auto now = std::chrono::steady_clock::now();
  const bool last = done_ >= total_;
  if (!last && now - last_print_ < std::chrono::milliseconds(250)) return;
  last_print_ = now;
  print(done_, last);
}

void Heartbeat::print(std::size_t done, bool final_line) {
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const double rate = elapsed_s > 0.0
                          ? static_cast<double>(done) / elapsed_s
                          : 0.0;
  const double pct = total_ == 0
                         ? 100.0
                         : 100.0 * static_cast<double>(done) /
                               static_cast<double>(total_);
  char eta[32];
  if (done >= total_ || rate <= 0.0) {
    std::snprintf(eta, sizeof(eta), "--");
  } else {
    const double remaining_s =
        static_cast<double>(total_ - done) / rate;
    std::snprintf(eta, sizeof(eta), "%.0fs", remaining_s);
  }
  std::fprintf(stderr, "\r%s: %zu/%zu cells (%.0f%%) | %.2f cells/s | ETA %s",
               label_.c_str(), done, total_, pct, rate, eta);
  if (final_line) std::fprintf(stderr, "\n");
  std::fflush(stderr);
  printed_ = true;
}

ThreadPool::ThreadPool(unsigned jobs) {
  const unsigned lanes = std::max(1u, jobs);
  workers_.reserve(lanes - 1);
  for (unsigned i = 0; i + 1 < lanes; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::drain() {
  for (;;) {
    std::size_t index;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (failed_ || cursor_ >= count_) return;
      index = cursor_++;
    }
    try {
      (*body_)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!failed_) {
        failed_ = true;
        error_ = std::current_exception();
      }
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    drain();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    count_ = count;
    cursor_ = 0;
    failed_ = false;
    error_ = nullptr;
    active_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();

  drain();  // the caller is a lane too

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return active_ == 0; });
  body_ = nullptr;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace stabl::core
