// Diablo-style client machines (secondaries) and the secure client.
//
// Each client machine submits native transfers at a fixed rate to one
// blockchain node (the paper's 5 clients x 40 TPS = 200 TPS), records the
// submission time, and measures latency when the node reports the commit.
//
// The secure client (§7) submits the same transaction to t+1 nodes and
// "reports the transaction as being committed only after all nodes have
// responded" — the defence against trusting a single, possibly Byzantine,
// node. Deduplication in the chain keeps execution single; the latency
// effect of the redundancy is exactly what Fig. 3d measures.
//
// The resilient client (ResilienceConfig.enabled) treats `endpoints` as a
// failover candidate list instead: it submits each transaction to one
// endpoint, waits commit_timeout for the notification, and on timeout (or
// an immediate TCP RST from a dead endpoint) resubmits with exponential
// backoff, failing over to the next candidate whose circuit breaker admits
// traffic. Latency is measured from the first submission, so the cost of
// every retry shows up in the sensitivity score.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/types.hpp"
#include "core/arrivals.hpp"
#include "core/resilience.hpp"
#include "core/traffic.hpp"
#include "core/workload.hpp"
#include "net/network.hpp"
#include "sim/process.hpp"

namespace stabl::core {

struct ClientConfig {
  net::NodeId id = 0;               // this client machine's network id
  chain::AccountId account = 0;     // sender account (one per client)
  chain::AccountId recipient = 0;   // transfer sink
  std::vector<net::NodeId> endpoints;  // 1 node, t+1 for secure client, or
                                       // the failover candidate list for a
                                       // resilient client
  double tps = 40.0;
  sim::Time start_at = sim::ms(500);
  sim::Time stop_at = sim::sec(400);
  std::uint64_t tx_seed = 0;  // mixed into transaction ids

  /// Shape of the submission process; `tps` is the average rate.
  WorkloadConfig workload{};

  /// Acceptance rule for multi-endpoint submissions:
  ///  * 0 — the paper's §7 secure client: report a commit only after ALL
  ///    endpoints responded (latency = the slowest replica);
  ///  * k > 0 — credence.js-style verified client: accept once k endpoints
  ///    reported the SAME result hash (use k = t+1 so one Byzantine
  ///    responder can never fabricate an acceptance).
  std::size_t required_matching = 0;

  /// Timeout/failover/backoff/breaker policies; disabled = the paper's
  /// naive client above.
  ResilienceConfig resilience{};

  /// When set (not owned), this machine enrols in the shared batched
  /// arrival scheduler instead of running its own repeating submission
  /// timer — one aggregate arrival process per (entry node, workload
  /// shape) cohort instead of one timer chain per client. Null keeps the
  /// legacy per-client chain (some unit tests exercise it directly).
  ArrivalScheduler* arrivals = nullptr;

  /// Population slice of the traffic model (core/traffic.hpp). Inactive
  /// (default) keeps the paper's one-account-per-client submission path
  /// byte-for-byte; active switches account selection to the client's
  /// Zipf-weighted population plus the shared hot wallet.
  ClientTrafficPlan traffic{};
};

class ClientMachine final : public sim::Process,
                            public net::Endpoint,
                            public ArrivalSink {
 public:
  ClientMachine(sim::Simulation& simulation, net::Network& network,
                ClientConfig config);

  // net::Endpoint
  void deliver(const net::Envelope& envelope) final;
  [[nodiscard]] bool endpoint_alive() const final { return alive(); }

  // ArrivalSink: build and submit one transaction now (the batched
  // scheduler owns the pacing; the legacy path wraps this in its own
  // timer chain).
  void generate_arrival() final;
  [[nodiscard]] bool arrivals_active() const final { return alive(); }

  [[nodiscard]] const std::vector<double>& latencies() const {
    return latencies_;
  }
  [[nodiscard]] std::uint64_t submitted() const { return submitted_; }
  [[nodiscard]] std::uint64_t committed() const { return committed_; }
  /// Every distinct transaction id this client ever generated, in issue
  /// order (resubmissions reuse the id and are not re-recorded). The
  /// committed-subset-of-submitted oracle checks replica ledgers against
  /// the union of these.
  [[nodiscard]] const std::vector<chain::TxId>& submitted_ids() const {
    return submitted_ids_;
  }
  [[nodiscard]] sim::Time last_commit_at() const { return last_commit_at_; }
  /// Accepted transactions whose endpoint responses disagreed on the
  /// result hash at acceptance time — evidence of a lying replica that a
  /// verified client surfaces and a naive client cannot see.
  [[nodiscard]] std::uint64_t conflicting_responses() const {
    return conflicting_responses_;
  }
  /// Result hash the client accepted for each committed transaction.
  [[nodiscard]] const std::unordered_map<chain::TxId, std::uint64_t>&
  accepted_hashes() const {
    return accepted_hashes_;
  }
  /// Resubmission bookkeeping (zeros for a naive client). Transactions
  /// never committed are `submitted() - committed()`: those abandoned after
  /// max_attempts are in `exhausted`, the rest were still pending at the
  /// end of the run.
  [[nodiscard]] ResilienceStats resilience_stats() const;
  /// Transactions still awaiting a commit notification.
  [[nodiscard]] std::size_t in_flight() const { return pending_.size(); }
  /// Failover breakers currently not closed (0 for non-resilient clients).
  [[nodiscard]] std::size_t open_breakers() const {
    return failover_.has_value() ? failover_->open_breakers() : 0;
  }
  /// EWMA score of endpoint `index` (0.0 when scoring is off or the index
  /// is out of range) — the per-endpoint trajectory gauge samples this.
  [[nodiscard]] double endpoint_score(std::size_t index) const {
    if (!failover_.has_value() || failover_->scorer() == nullptr) return 0.0;
    const EndpointScorer& scorer = *failover_->scorer();
    return index < scorer.size() ? scorer.score(index) : 0.0;
  }

 protected:
  void on_start() final;

 private:
  void submit_next();
  /// Resilient mode: (re)send a pending transaction to the current
  /// failover choice and arm its commit timer.
  void submit_attempt(chain::TxId id);
  void on_commit_timeout(chain::TxId id);
  /// Resilient mode: an RST arrived from `endpoint` — its process is dead.
  /// Fail the breaker and resubmit everything in flight there without
  /// waiting for commit timeouts (TCP tells us immediately).
  void on_endpoint_reset(net::NodeId endpoint);
  void handle_resilient(const net::Envelope& envelope);

  ClientConfig config_;
  net::Network& net_;
  std::uint64_t nonce_ = 0;
  /// Population path only: per-account nonce counters (parallel to
  /// config_.traffic.accounts) and the dedicated traffic RNG (its draws
  /// never touch the simulation streams — see core/traffic.hpp).
  std::vector<std::uint64_t> account_nonces_;
  std::optional<sim::Rng> traffic_rng_;
  std::uint64_t submitted_ = 0;
  std::vector<chain::TxId> submitted_ids_;
  std::uint64_t committed_ = 0;
  sim::Time last_commit_at_{0};

  struct Pending {
    sim::Time submitted_at{0};
    std::uint32_t ack_mask = 0;  // bit i = endpoint i confirmed
    // result hash -> endpoints that reported it
    std::map<std::uint64_t, std::uint32_t> hash_masks;
    // Resilient mode only:
    chain::Transaction tx{};     // retained for resubmission
    net::NodeId endpoint = 0;    // target of the current attempt
    int attempts = 0;            // submissions sent so far
    sim::TimerId timer = 0;      // commit timeout or pending resubmit
    // Hedging (HedgePolicy.enabled only):
    sim::TimerId hedge_timer = 0;   // armed hedge, waiting to fire
    net::NodeId hedge_endpoint = 0;  // target of the fired hedge
    bool hedged = false;             // a hedged copy was sent
  };
  void accept(chain::TxId id, Pending& pending, std::uint64_t hash);
  /// Arm (or re-arm) the hedge timer for the current attempt.
  void arm_hedge(Pending& pending, chain::TxId id);
  void on_hedge_timeout(chain::TxId id);
  /// Silently disarm a pending hedge (attempt recycled or abandoned; only
  /// a commit beating the timer counts as "cancelled" in the stats).
  void cancel_hedge(Pending& pending);
  /// Current hedge delay: the configured percentile of the recent commit
  /// latency window, clamped to [min_delay, max_delay].
  [[nodiscard]] sim::Duration hedge_delay() const;
  void record_commit_latency(double seconds);

  std::unordered_map<chain::TxId, Pending> pending_;
  std::vector<double> latencies_;
  std::uint64_t conflicting_responses_ = 0;
  std::unordered_map<chain::TxId, std::uint64_t> accepted_hashes_;

  // Resilient mode only.
  std::optional<EndpointFailover> failover_;
  sim::Rng rng_;
  ResilienceStats stats_;
  // Hedging only: bounded window of recent commit latencies (seconds)
  // backing the percentile hedge delay.
  std::vector<double> hedge_latencies_;
  std::size_t hedge_latency_next_ = 0;
};

}  // namespace stabl::core
