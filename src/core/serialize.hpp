// Machine-readable result output (CSV rows and JSON documents), so STABL
// campaigns can feed plotting pipelines and CI dashboards — the paper
// positions STABL as "pluggable in continuous integration pipelines".
#pragma once

#include <string>

#include "core/experiment.hpp"
#include "core/oracle.hpp"

namespace stabl::core {

/// Header matching summary_csv_row().
std::string summary_csv_header();

/// One campaign line: chain, fault, score, liveness, recovery, latencies.
std::string summary_csv_row(ChainKind chain, FaultType fault,
                            const SensitivityRun& run);

/// Per-second throughput as "t,tps" lines with a header.
std::string throughput_csv(const ExperimentResult& result);

/// Full JSON document for one baseline/altered pair (self-describing; no
/// external schema needed).
std::string to_json(ChainKind chain, FaultType fault,
                    const SensitivityRun& run);

/// Oracle verdict + findings as a JSON object (chaos repro documents).
std::string to_json(const OracleReport& report);

/// Minimal JSON string escaping for the fields we emit.
std::string json_escape(const std::string& text);

}  // namespace stabl::core
