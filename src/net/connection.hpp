// TCP-like connection management between simulated processes.
//
// This layer is what gives STABL the paper's distinction between *active*
// and *passive* recovery (§3, "Dependability attributes"):
//
//  * a killed-and-restarted process immediately re-dials its peers, so
//    recovery from transient node failures is fast and independent of
//    timeouts ("the restarted nodes immediately report their status");
//  * a partition drops packets silently, so the break is only detected
//    after `dead_after` of silence and reconnection only happens when a
//    periodic redial lands after the partition healed ("the nodes cannot
//    detect that the network connectivity was restored without constant
//    polling").
//
// Each blockchain configures its own ConnectionPolicy: the paper traces the
// different partition-recovery times of Algorand (~99 s), Redbelly (~81 s,
// MaxIdleTime) and Aptos (~seconds, 5 s connectivity probing) to exactly
// these knobs.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "sim/process.hpp"

namespace stabl::net {

struct ConnectionPolicy {
  /// Period of the internal maintenance tick.
  sim::Duration tick = sim::ms(500);
  /// Send a keepalive ping when nothing was sent to a peer for this long.
  sim::Duration keepalive_interval = sim::sec(2);
  /// Declare a connection broken after this much inbound silence.
  sim::Duration dead_after = sim::sec(10);
  /// A dial (SYN) with no answer for this long counts as failed.
  sim::Duration dial_timeout = sim::sec(5);
  /// After a failed dial, wait this long before the next attempt.
  sim::Duration retry_period = sim::sec(30);
  /// Deterministic per-attempt jitter, as a fraction of retry_period.
  double retry_jitter_frac = 0.05;
};

class ConnectionManager {
 public:
  struct Callbacks {
    std::function<void(NodeId)> on_peer_up;    // may be empty
    std::function<void(NodeId)> on_peer_down;  // may be empty
  };

  ConnectionManager(sim::Process& host, Network& network, NodeId self,
                    std::vector<NodeId> peers, ConnectionPolicy policy,
                    Callbacks callbacks);

  /// Begin operation: dial every peer and start the maintenance tick.
  /// Call from the owning process's on_start().
  void start();

  /// Drop all connection state. Call from the owning process's on_crash().
  /// (The process's timers, including our tick, are already cancelled.)
  void stop();

  [[nodiscard]] bool connected(NodeId peer) const;
  [[nodiscard]] std::size_t connected_count() const;
  [[nodiscard]] const std::vector<NodeId>& peers() const { return peer_ids_; }
  [[nodiscard]] std::vector<NodeId> connected_peers() const;

  /// Send a payload over the connection to `peer`. Returns false (and sends
  /// nothing) when the connection is down — matching a failed TCP write.
  bool send(NodeId peer, PayloadPtr payload, std::uint32_t bytes = 256);

  /// Feed an incoming envelope through the connection layer. Returns true
  /// when the envelope was a control frame and fully consumed; false when
  /// the caller should process it as application data.
  bool handle(const Envelope& envelope);

 private:
  enum class State : std::uint8_t { kDown, kDialing, kBackoff, kConnected };

  struct Peer {
    State state = State::kDown;
    sim::Time last_heard{0};
    sim::Time last_sent{0};
    sim::Time dial_deadline{0};
    sim::Time next_attempt{0};
  };

  void tick();
  void dial(NodeId peer);
  void mark_up(NodeId peer);
  void schedule_retry(NodeId peer);
  void send_control(NodeId peer, ControlPayload::Kind kind);
  Peer& peer_state(NodeId peer);

  sim::Process& host_;
  Network& net_;
  NodeId self_;
  std::vector<NodeId> peer_ids_;
  ConnectionPolicy policy_;
  Callbacks callbacks_;
  sim::Rng rng_;
  std::unordered_map<NodeId, Peer> peers_;
};

}  // namespace stabl::net
