#include "net/connection.hpp"

#include <cassert>
#include <utility>

namespace stabl::net {
namespace {

PayloadPtr control_frame(ControlPayload::Kind kind) {
  // Control frames are immutable and identical; share one instance per kind.
  static const auto syn =
      std::make_shared<const ControlPayload>(ControlPayload::Kind::kSyn);
  static const auto synack =
      std::make_shared<const ControlPayload>(ControlPayload::Kind::kSynAck);
  static const auto ping =
      std::make_shared<const ControlPayload>(ControlPayload::Kind::kPing);
  static const auto pong =
      std::make_shared<const ControlPayload>(ControlPayload::Kind::kPong);
  static const auto rst =
      std::make_shared<const ControlPayload>(ControlPayload::Kind::kRst);
  switch (kind) {
    case ControlPayload::Kind::kSyn: return syn;
    case ControlPayload::Kind::kSynAck: return synack;
    case ControlPayload::Kind::kPing: return ping;
    case ControlPayload::Kind::kPong: return pong;
    case ControlPayload::Kind::kRst: return rst;
  }
  return rst;  // unreachable
}

}  // namespace

ConnectionManager::ConnectionManager(sim::Process& host, Network& network,
                                     NodeId self, std::vector<NodeId> peers,
                                     ConnectionPolicy policy,
                                     Callbacks callbacks)
    : host_(host),
      net_(network),
      self_(self),
      peer_ids_(std::move(peers)),
      policy_(policy),
      callbacks_(std::move(callbacks)),
      rng_(network.simulation().rng().fork()) {
  for (const NodeId peer : peer_ids_) peers_.emplace(peer, Peer{});
}

void ConnectionManager::start() {
  for (const NodeId peer : peer_ids_) {
    peers_[peer] = Peer{};
    dial(peer);
  }
  host_.set_timer(policy_.tick, [this] { tick(); });
}

void ConnectionManager::stop() {
  for (auto& [id, peer] : peers_) peer = Peer{};
}

bool ConnectionManager::connected(NodeId peer) const {
  const auto it = peers_.find(peer);
  return it != peers_.end() && it->second.state == State::kConnected;
}

std::size_t ConnectionManager::connected_count() const {
  std::size_t count = 0;
  for (const auto& [id, peer] : peers_) {
    if (peer.state == State::kConnected) ++count;
  }
  return count;
}

std::vector<NodeId> ConnectionManager::connected_peers() const {
  std::vector<NodeId> out;
  out.reserve(peer_ids_.size());
  for (const NodeId peer : peer_ids_) {
    if (connected(peer)) out.push_back(peer);
  }
  return out;
}

bool ConnectionManager::send(NodeId peer, PayloadPtr payload,
                             std::uint32_t bytes) {
  Peer& state = peer_state(peer);
  if (state.state != State::kConnected) return false;
  state.last_sent = host_.now();
  net_.send(self_, peer, std::move(payload), bytes);
  return true;
}

bool ConnectionManager::handle(const Envelope& envelope) {
  const auto it = peers_.find(envelope.from);
  if (it == peers_.end()) {
    // Inbound traffic from a machine outside our peer set (e.g. a client
    // dialing a node). Accept the connection protocol without tracking it.
    const auto* control =
        dynamic_cast<const ControlPayload*>(envelope.payload.get());
    if (control == nullptr) return false;
    switch (control->kind) {
      case ControlPayload::Kind::kSyn:
        net_.send(self_, envelope.from,
                  control_frame(ControlPayload::Kind::kSynAck), 64);
        return true;
      case ControlPayload::Kind::kPing:
        net_.send(self_, envelope.from,
                  control_frame(ControlPayload::Kind::kPong), 64);
        return true;
      default:
        return true;
    }
  }
  Peer& state = it->second;
  const auto* control =
      dynamic_cast<const ControlPayload*>(envelope.payload.get());
  if (control == nullptr) {
    // Application data only flows over established connections on the
    // sender side, so treat it as proof of liveness and accept implicitly.
    state.last_heard = host_.now();
    if (state.state != State::kConnected) mark_up(envelope.from);
    return false;
  }
  switch (control->kind) {
    case ControlPayload::Kind::kRst:
      // The peer's process is dead. Back off; redials are periodic.
      if (state.state == State::kConnected) {
        if (auto* trace = net_.simulation().trace()) {
          trace->instant(static_cast<std::int32_t>(self_), host_.now(),
                         "conn_down", "net",
                         "\"peer\":" + std::to_string(envelope.from) +
                             ",\"cause\":\"rst\"");
        }
        if (callbacks_.on_peer_down) callbacks_.on_peer_down(envelope.from);
      }
      state.state = State::kBackoff;
      schedule_retry(envelope.from);
      return true;
    case ControlPayload::Kind::kSyn:
      state.last_heard = host_.now();
      send_control(envelope.from, ControlPayload::Kind::kSynAck);
      mark_up(envelope.from);
      return true;
    case ControlPayload::Kind::kSynAck:
    case ControlPayload::Kind::kPong:
      state.last_heard = host_.now();
      mark_up(envelope.from);
      return true;
    case ControlPayload::Kind::kPing:
      state.last_heard = host_.now();
      mark_up(envelope.from);
      send_control(envelope.from, ControlPayload::Kind::kPong);
      return true;
  }
  return true;
}

void ConnectionManager::tick() {
  if (!host_.alive()) return;
  const sim::Time now = host_.now();
  for (const NodeId id : peer_ids_) {
    Peer& peer = peers_[id];
    switch (peer.state) {
      case State::kConnected:
        if (now - peer.last_heard > policy_.dead_after) {
          // Silence: the link is broken (partition). Try once right away,
          // then fall back to periodic redialing.
          if (auto* trace = net_.simulation().trace()) {
            trace->instant(static_cast<std::int32_t>(self_), now,
                           "conn_down", "net",
                           "\"peer\":" + std::to_string(id) +
                               ",\"cause\":\"silence\"");
          }
          if (callbacks_.on_peer_down) callbacks_.on_peer_down(id);
          dial(id);
        } else if (now - peer.last_sent >= policy_.keepalive_interval) {
          peer.last_sent = now;
          net_.send(self_, id, control_frame(ControlPayload::Kind::kPing),
                    64);
        }
        break;
      case State::kDialing:
        if (now >= peer.dial_deadline) {
          peer.state = State::kBackoff;
          schedule_retry(id);
        }
        break;
      case State::kBackoff:
        if (now >= peer.next_attempt) dial(id);
        break;
      case State::kDown:
        dial(id);
        break;
    }
  }
  host_.set_timer(policy_.tick, [this] { tick(); });
}

void ConnectionManager::dial(NodeId peer) {
  Peer& state = peer_state(peer);
  state.state = State::kDialing;
  state.dial_deadline = host_.now() + policy_.dial_timeout;
  if (auto* trace = net_.simulation().trace()) {
    trace->instant(static_cast<std::int32_t>(self_), host_.now(), "dial",
                   "net", "\"peer\":" + std::to_string(peer));
  }
  send_control(peer, ControlPayload::Kind::kSyn);
}

void ConnectionManager::mark_up(NodeId peer) {
  Peer& state = peer_state(peer);
  if (state.state == State::kConnected) return;
  state.state = State::kConnected;
  state.last_heard = host_.now();
  state.last_sent = host_.now();
  if (auto* trace = net_.simulation().trace()) {
    trace->instant(static_cast<std::int32_t>(self_), host_.now(), "conn_up",
                   "net", "\"peer\":" + std::to_string(peer));
  }
  if (callbacks_.on_peer_up) callbacks_.on_peer_up(peer);
}

void ConnectionManager::schedule_retry(NodeId peer) {
  Peer& state = peer_state(peer);
  const double jitter =
      1.0 + policy_.retry_jitter_frac * (rng_.uniform() - 0.5) * 2.0;
  const auto delay = sim::Duration{static_cast<std::int64_t>(
      static_cast<double>(policy_.retry_period.count()) * jitter)};
  state.next_attempt = host_.now() + delay;
}

void ConnectionManager::send_control(NodeId peer, ControlPayload::Kind kind) {
  peer_state(peer).last_sent = host_.now();
  net_.send(self_, peer, control_frame(kind), 64);
}

ConnectionManager::Peer& ConnectionManager::peer_state(NodeId peer) {
  const auto it = peers_.find(peer);
  assert(it != peers_.end() && "envelope from an unknown peer");
  return it->second;
}

}  // namespace stabl::net
