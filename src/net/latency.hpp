// Link latency models.
//
// The paper's testbed is a single Proxmox cluster with 10 GbE NICs, i.e. a
// LAN with sub-millisecond one-way delays. The default model is log-normal
// around a configurable median, which captures the heavy right tail of real
// datacenter RTT distributions without letting latencies go negative.
#pragma once

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace stabl::net {

struct LatencyConfig {
  /// Median one-way delay.
  sim::Duration median = sim::us(500);
  /// Sigma of the underlying normal; 0 makes the link deterministic.
  double sigma = 0.3;
  /// Floor applied after sampling (a packet can never be faster than this).
  sim::Duration floor = sim::us(50);
  /// Per-byte serialization delay, modelling bandwidth (10 GbE ≈ 0.8 ns/B;
  /// we keep a conservative per-message figure).
  double ns_per_byte = 1.0;
};

class LatencyModel {
 public:
  explicit LatencyModel(LatencyConfig config) : config_(config) {}

  /// Sample the one-way delay of a message of `bytes` bytes.
  sim::Duration sample(sim::Rng& rng, std::uint32_t bytes) const;

  [[nodiscard]] const LatencyConfig& config() const { return config_; }

 private:
  LatencyConfig config_;
};

}  // namespace stabl::net
