// Wire-level message representation.
//
// Payloads are immutable, shared between the k receivers of a broadcast.
// Every protocol defines its own payload structs deriving from Payload;
// dispatch is by dynamic type (the per-message cost is dwarfed by the
// simulation bookkeeping around it, and it keeps the protocols honest about
// what is actually on the wire).
#pragma once

#include <cstdint>
#include <memory>

namespace stabl::net {

/// Identity of a machine on the simulated network. NodeIds are dense
/// indices: blockchain nodes first, then client machines.
using NodeId = std::uint32_t;

/// Base class of everything that travels on the wire.
struct Payload {
  virtual ~Payload() = default;
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// A payload in flight between two machines.
struct Envelope {
  NodeId from = 0;
  NodeId to = 0;
  std::uint32_t bytes = 256;  // serialized size, for bandwidth accounting
  PayloadPtr payload;
};

/// Connection-management control frames (the simulated TCP layer).
struct ControlPayload final : Payload {
  enum class Kind : std::uint8_t {
    kSyn,     // dial attempt
    kSynAck,  // dial accepted
    kPing,    // keepalive probe
    kPong,    // keepalive answer
    kRst,     // peer process is dead (emitted by the network on delivery
              // to a dead endpoint, mirroring a TCP RST from the OS)
  };
  explicit ControlPayload(Kind k) : kind(k) {}
  Kind kind;
};

/// Receiving side of the network. A machine's deliver() is only invoked
/// while its process is alive.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void deliver(const Envelope& envelope) = 0;
  [[nodiscard]] virtual bool endpoint_alive() const = 0;
};

}  // namespace stabl::net
