#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace stabl::net {

Network::Network(sim::Simulation& simulation, LatencyConfig latency)
    : sim_(simulation), latency_(latency), rng_(simulation.rng().fork()) {}

void Network::attach(NodeId id, Endpoint* endpoint) {
  assert(endpoint != nullptr);
  endpoints_[id] = endpoint;
}

void Network::send(NodeId from, NodeId to, PayloadPtr payload,
                   std::uint32_t bytes) {
  ++stats_.sent;
  if (!permitted(from, to)) {
    ++stats_.dropped_partition;
    return;
  }
  const sim::Duration delay = latency_.sample(rng_, bytes) +
                              extra_delay(from, to) +
                              throttle_delay(from, to, bytes);
  Envelope envelope{from, to, bytes, std::move(payload)};
  sim_.schedule_after(delay, [this, envelope = std::move(envelope)]() {
    deliver(envelope);
  });
}

void Network::deliver(const Envelope& envelope) {
  // Rules are re-checked at delivery so that a partition installed while a
  // packet is in flight still drops it (netfilter matches on ingress too).
  if (!permitted(envelope.from, envelope.to)) {
    ++stats_.dropped_partition;
    return;
  }
  // Random loss samples once per packet, at the delivery end of the link,
  // so rules installed mid-flight apply and the RNG stream stays one draw
  // per lossy packet (determinism under a fixed seed).
  const double loss = loss_probability(envelope.from, envelope.to);
  if (loss > 0.0 && rng_.chance(loss)) {
    ++stats_.dropped_loss;
    return;
  }
  const auto it = endpoints_.find(envelope.to);
  if (it == endpoints_.end()) {
    // No such host: the packet disappears (no RST without a machine).
    ++stats_.dropped_dead;
    return;
  }
  Endpoint* endpoint = it->second;
  if (!endpoint->endpoint_alive()) {
    ++stats_.dropped_dead;
    // A dead *process* (not machine) means the OS answers with a TCP RST,
    // unless the original frame was itself an RST.
    const auto* control =
        dynamic_cast<const ControlPayload*>(envelope.payload.get());
    if (control == nullptr || control->kind != ControlPayload::Kind::kRst) {
      send_rst(envelope.to, envelope.from);
    }
    return;
  }
  ++stats_.delivered;
  endpoint->deliver(envelope);
}

void Network::send_rst(NodeId dead, NodeId to) {
  ++stats_.rst_sent;
  send(dead, to,
       std::make_shared<const ControlPayload>(ControlPayload::Kind::kRst),
       /*bytes=*/64);
}

RuleId Network::install(Rule rule) {
  const RuleId id = next_rule_++;
  rules_.emplace(id, std::move(rule));
  return id;
}

RuleId Network::add_partition(std::vector<NodeId> group_a,
                              std::vector<NodeId> group_b) {
  Rule rule;
  rule.kind = Rule::Kind::kPartition;
  rule.group_a.insert(group_a.begin(), group_a.end());
  rule.group_b.insert(group_b.begin(), group_b.end());
  return install(std::move(rule));
}

RuleId Network::add_delay(std::vector<NodeId> group_a,
                          std::vector<NodeId> group_b, sim::Duration extra) {
  assert(extra > sim::Duration::zero());
  Rule rule;
  rule.kind = Rule::Kind::kDelay;
  rule.group_a.insert(group_a.begin(), group_a.end());
  rule.group_b.insert(group_b.begin(), group_b.end());
  rule.extra_delay = extra;
  return install(std::move(rule));
}

RuleId Network::add_loss(std::vector<NodeId> group_a,
                         std::vector<NodeId> group_b, double probability) {
  assert(probability > 0.0 && probability <= 1.0);
  Rule rule;
  rule.kind = Rule::Kind::kLoss;
  rule.group_a.insert(group_a.begin(), group_a.end());
  rule.group_b.insert(group_b.begin(), group_b.end());
  rule.loss_probability = probability;
  return install(std::move(rule));
}

RuleId Network::add_bandwidth(std::vector<NodeId> group_a,
                              std::vector<NodeId> group_b,
                              double bytes_per_second) {
  assert(bytes_per_second > 0.0);
  Rule rule;
  rule.kind = Rule::Kind::kBandwidth;
  rule.group_a.insert(group_a.begin(), group_a.end());
  rule.group_b.insert(group_b.begin(), group_b.end());
  rule.bytes_per_second = bytes_per_second;
  return install(std::move(rule));
}

RuleId Network::add_gray(std::vector<NodeId> nodes, sim::Duration extra) {
  assert(extra > sim::Duration::zero());
  Rule rule;
  rule.kind = Rule::Kind::kGray;
  rule.group_a.insert(nodes.begin(), nodes.end());
  rule.extra_delay = extra;
  return install(std::move(rule));
}

RuleId Network::add_eclipse(NodeId victim, std::vector<NodeId> attackers,
                            sim::Duration extra, double filter_probability) {
  assert(extra > sim::Duration::zero());
  assert(filter_probability >= 0.0 && filter_probability < 1.0);
  Rule rule;
  rule.kind = Rule::Kind::kEclipse;
  rule.group_a.insert(victim);
  rule.group_b.insert(attackers.begin(), attackers.end());
  rule.extra_delay = extra;
  rule.loss_probability = filter_probability;
  return install(std::move(rule));
}

sim::Duration Network::extra_delay(NodeId a, NodeId b) const {
  sim::Duration total{0};
  for (const auto& [id, rule] : rules_) {
    if ((rule.kind == Rule::Kind::kDelay || rule.kind == Rule::Kind::kGray ||
         rule.kind == Rule::Kind::kEclipse) &&
        rule.matches(a, b)) {
      total += rule.extra_delay;
    }
  }
  return total;
}

double Network::loss_probability(NodeId a, NodeId b) const {
  double survive = 1.0;
  for (const auto& [id, rule] : rules_) {
    if ((rule.kind == Rule::Kind::kLoss ||
         rule.kind == Rule::Kind::kEclipse) &&
        rule.loss_probability > 0.0 && rule.matches(a, b)) {
      survive *= 1.0 - rule.loss_probability;
    }
  }
  return 1.0 - survive;
}

sim::Duration Network::throttle_delay(NodeId from, NodeId to,
                                      std::uint32_t bytes) {
  sim::Duration total{0};
  for (auto& [id, rule] : rules_) {
    if (rule.kind != Rule::Kind::kBandwidth || !rule.matches(from, to)) {
      continue;
    }
    const auto serialization = sim::seconds(
        static_cast<double>(bytes) / rule.bytes_per_second);
    const sim::Time depart = std::max(sim_.now(), rule.busy_until);
    rule.busy_until = depart + serialization;
    total += (depart - sim_.now()) + serialization;
    ++stats_.throttled;
  }
  return total;
}

void Network::remove_rule(RuleId id) { rules_.erase(id); }

void Network::clear_rules() { rules_.clear(); }

bool Network::permitted(NodeId a, NodeId b) const {
  for (const auto& [id, rule] : rules_) {
    if (rule.kind == Rule::Kind::kPartition && rule.matches(a, b)) {
      return false;
    }
  }
  return true;
}

}  // namespace stabl::net
