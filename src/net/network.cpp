#include "net/network.hpp"

#include <cassert>
#include <utility>

namespace stabl::net {

Network::Network(sim::Simulation& simulation, LatencyConfig latency)
    : sim_(simulation), latency_(latency), rng_(simulation.rng().fork()) {}

void Network::attach(NodeId id, Endpoint* endpoint) {
  assert(endpoint != nullptr);
  endpoints_[id] = endpoint;
}

void Network::send(NodeId from, NodeId to, PayloadPtr payload,
                   std::uint32_t bytes) {
  ++stats_.sent;
  if (!permitted(from, to)) {
    ++stats_.dropped_partition;
    return;
  }
  const sim::Duration delay =
      latency_.sample(rng_, bytes) + extra_delay(from, to);
  Envelope envelope{from, to, bytes, std::move(payload)};
  sim_.schedule_after(delay, [this, envelope = std::move(envelope)]() {
    deliver(envelope);
  });
}

void Network::deliver(const Envelope& envelope) {
  // Rules are re-checked at delivery so that a partition installed while a
  // packet is in flight still drops it (netfilter matches on ingress too).
  if (!permitted(envelope.from, envelope.to)) {
    ++stats_.dropped_partition;
    return;
  }
  const auto it = endpoints_.find(envelope.to);
  if (it == endpoints_.end()) {
    // No such host: the packet disappears (no RST without a machine).
    ++stats_.dropped_dead;
    return;
  }
  Endpoint* endpoint = it->second;
  if (!endpoint->endpoint_alive()) {
    ++stats_.dropped_dead;
    // A dead *process* (not machine) means the OS answers with a TCP RST,
    // unless the original frame was itself an RST.
    const auto* control =
        dynamic_cast<const ControlPayload*>(envelope.payload.get());
    if (control == nullptr || control->kind != ControlPayload::Kind::kRst) {
      send_rst(envelope.to, envelope.from);
    }
    return;
  }
  ++stats_.delivered;
  endpoint->deliver(envelope);
}

void Network::send_rst(NodeId dead, NodeId to) {
  ++stats_.rst_sent;
  send(dead, to,
       std::make_shared<const ControlPayload>(ControlPayload::Kind::kRst),
       /*bytes=*/64);
}

RuleId Network::add_partition(std::vector<NodeId> group_a,
                              std::vector<NodeId> group_b) {
  Rule rule;
  rule.group_a.insert(group_a.begin(), group_a.end());
  rule.group_b.insert(group_b.begin(), group_b.end());
  const RuleId id = next_rule_++;
  rules_.emplace(id, std::move(rule));
  return id;
}

RuleId Network::add_delay(std::vector<NodeId> group_a,
                          std::vector<NodeId> group_b, sim::Duration extra) {
  assert(extra > sim::Duration::zero());
  Rule rule;
  rule.group_a.insert(group_a.begin(), group_a.end());
  rule.group_b.insert(group_b.begin(), group_b.end());
  rule.extra_delay = extra;
  const RuleId id = next_rule_++;
  rules_.emplace(id, std::move(rule));
  return id;
}

sim::Duration Network::extra_delay(NodeId a, NodeId b) const {
  sim::Duration total{0};
  for (const auto& [id, rule] : rules_) {
    if (rule.extra_delay > sim::Duration::zero() && rule.matches(a, b)) {
      total += rule.extra_delay;
    }
  }
  return total;
}

void Network::remove_rule(RuleId id) { rules_.erase(id); }

void Network::clear_rules() { rules_.clear(); }

bool Network::permitted(NodeId a, NodeId b) const {
  for (const auto& [id, rule] : rules_) {
    if (rule.extra_delay == sim::Duration::zero() && rule.matches(a, b)) {
      return false;
    }
  }
  return true;
}

}  // namespace stabl::net
