// The simulated network fabric.
//
// Point-to-point delivery with a latency model, plus a netfilter-equivalent
// rule table: STABL's observers install rules that drop any IP packet
// between two groups of machines, exactly as the paper does with tc/netem
// (100% loss on matched traffic). Fault engine v2 adds the other tc-netem
// perturbations: probabilistic packet loss, per-link bandwidth throttling
// (a serialization queue per rule) and gray-failure latency inflation on
// everything a node serves. Rules stack: overlapping delay rules add up,
// overlapping loss rules compound. Packets to a dead process draw an RST
// control frame in response, mirroring the OS behaviour after a process is
// killed — this is what makes crash recovery *active* and partition
// recovery *passive* in the connection layer.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/latency.hpp"
#include "net/message.hpp"
#include "sim/simulation.hpp"

namespace stabl::net {

/// Handle to an installed rule, for later removal.
using RuleId = std::uint64_t;

struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_partition = 0;
  std::uint64_t dropped_loss = 0;  // packets lost to a loss rule
  std::uint64_t dropped_dead = 0;  // packets that hit a dead endpoint
  std::uint64_t throttled = 0;     // packets delayed by a bandwidth rule
  std::uint64_t rst_sent = 0;
};

class Network {
 public:
  Network(sim::Simulation& simulation, LatencyConfig latency);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register the receiving endpoint for a machine. Must be called once per
  /// NodeId before anything is sent to it.
  void attach(NodeId id, Endpoint* endpoint);

  /// Send a payload from one machine to another. The packet is dropped when
  /// a partition rule matches at send or delivery time, or a loss rule
  /// samples a drop at delivery time. Delivery to a dead endpoint produces
  /// an RST control frame back to the sender.
  void send(NodeId from, NodeId to, PayloadPtr payload,
            std::uint32_t bytes = 256);

  /// Install a rule dropping all traffic between members of `group_a` and
  /// members of `group_b`, both directions.
  RuleId add_partition(std::vector<NodeId> group_a,
                       std::vector<NodeId> group_b);

  /// Install a rule adding `extra` one-way delay to all traffic between
  /// the two groups (tc-netem delay injection): packets still arrive, just
  /// late — the condition under which "Avalanche stops working when some
  /// messages arrive 2 minutes late" (paper §5).
  RuleId add_delay(std::vector<NodeId> group_a, std::vector<NodeId> group_b,
                   sim::Duration extra);

  /// Install a rule dropping each packet between the two groups
  /// independently with `probability` (tc-netem random loss). Sampled once
  /// per packet at delivery time from the network's forked RNG, so a run
  /// is deterministic under a fixed seed. Overlapping loss rules compound:
  /// a packet survives only if it survives every matching rule.
  RuleId add_loss(std::vector<NodeId> group_a, std::vector<NodeId> group_b,
                  double probability);

  /// Install a rule throttling traffic between the two groups to
  /// `bytes_per_second`: each matched packet serializes over the link for
  /// bytes/rate seconds and queues behind earlier matched packets (tc tbf).
  RuleId add_bandwidth(std::vector<NodeId> group_a,
                       std::vector<NodeId> group_b, double bytes_per_second);

  /// Install a gray-failure rule: every packet sent or received by one of
  /// `nodes` is delayed by `extra`. The node stays alive and keeps
  /// answering — it just serves everything slowly.
  RuleId add_gray(std::vector<NodeId> nodes, sim::Duration extra);

  /// Install an eclipse rule: every packet between `victim` and a node
  /// outside `attackers` is relayed through the attacker overlay, which
  /// adds `extra` latency and silently filters each relayed packet with
  /// `filter_probability`. Direct victim<->attacker traffic is untouched
  /// (the attackers talk to their victim for free).
  RuleId add_eclipse(NodeId victim, std::vector<NodeId> attackers,
                     sim::Duration extra, double filter_probability);

  /// Total extra delay that delay and gray rules impose on a->b traffic
  /// right now (excludes bandwidth queueing, which depends on the packet).
  [[nodiscard]] sim::Duration extra_delay(NodeId a, NodeId b) const;

  /// Compound drop probability loss rules impose on a->b traffic.
  [[nodiscard]] double loss_probability(NodeId a, NodeId b) const;

  /// Remove one rule (observers lifting the netfilter configuration).
  void remove_rule(RuleId id);

  /// Remove all rules.
  void clear_rules();

  /// Number of installed rules (fault-engine bookkeeping in tests).
  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }

  /// True when no active rule blocks a->b.
  [[nodiscard]] bool permitted(NodeId a, NodeId b) const;

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] sim::Simulation& simulation() { return sim_; }

 private:
  struct Rule {
    enum class Kind : std::uint8_t {
      kPartition,  // drop every matched packet
      kDelay,      // add extra_delay to every matched packet
      kLoss,       // drop matched packets with loss_probability
      kBandwidth,  // serialize matched packets at bytes_per_second
      kGray,       // extra_delay on everything touching group_a
      kEclipse,    // victim (group_a) traffic relayed via attackers
                   // (group_b): extra_delay + loss_probability filtering
    };

    Kind kind = Kind::kPartition;
    std::unordered_set<NodeId> group_a;
    std::unordered_set<NodeId> group_b;  // unused for kGray
    sim::Duration extra_delay{0};        // kDelay, kGray, kEclipse
    double loss_probability = 0.0;       // kLoss, kEclipse
    double bytes_per_second = 0.0;       // kBandwidth
    sim::Time busy_until{0};             // kBandwidth serialization queue

    [[nodiscard]] bool matches(NodeId a, NodeId b) const {
      if (kind == Kind::kGray) {
        return group_a.contains(a) || group_a.contains(b);
      }
      if (kind == Kind::kEclipse) {
        // Matched: one endpoint is the victim and the other is NOT one of
        // the attackers — that packet has to take the attacker detour.
        return (group_a.contains(a) || group_a.contains(b)) &&
               !group_b.contains(a) && !group_b.contains(b);
      }
      return (group_a.contains(a) && group_b.contains(b)) ||
             (group_b.contains(a) && group_a.contains(b));
    }
  };

  RuleId install(Rule rule);
  void deliver(const Envelope& envelope);
  void send_rst(NodeId dead, NodeId to);
  [[nodiscard]] sim::Duration throttle_delay(NodeId from, NodeId to,
                                             std::uint32_t bytes);

  sim::Simulation& sim_;
  LatencyModel latency_;
  sim::Rng rng_;
  std::unordered_map<NodeId, Endpoint*> endpoints_;
  std::unordered_map<RuleId, Rule> rules_;
  RuleId next_rule_ = 1;
  NetworkStats stats_;
};

}  // namespace stabl::net
