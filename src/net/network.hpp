// The simulated network fabric.
//
// Point-to-point delivery with a latency model, plus a netfilter-equivalent
// rule table for partitions: STABL's observers install rules that drop any
// IP packet between two groups of machines, exactly as the paper does with
// tc/netem (100% loss on matched traffic). Packets to a dead process draw
// an RST control frame in response, mirroring the OS behaviour after a
// process is killed — this is what makes crash recovery *active* and
// partition recovery *passive* in the connection layer.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/latency.hpp"
#include "net/message.hpp"
#include "sim/simulation.hpp"

namespace stabl::net {

/// Handle to an installed partition rule, for later removal.
using RuleId = std::uint64_t;

struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_partition = 0;
  std::uint64_t dropped_dead = 0;  // packets that hit a dead endpoint
  std::uint64_t rst_sent = 0;
};

class Network {
 public:
  Network(sim::Simulation& simulation, LatencyConfig latency);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register the receiving endpoint for a machine. Must be called once per
  /// NodeId before anything is sent to it.
  void attach(NodeId id, Endpoint* endpoint);

  /// Send a payload from one machine to another. The packet is dropped when
  /// a partition rule matches at send or delivery time. Delivery to a dead
  /// endpoint produces an RST control frame back to the sender.
  void send(NodeId from, NodeId to, PayloadPtr payload,
            std::uint32_t bytes = 256);

  /// Install a rule dropping all traffic between members of `group_a` and
  /// members of `group_b`, both directions.
  RuleId add_partition(std::vector<NodeId> group_a,
                       std::vector<NodeId> group_b);

  /// Install a rule adding `extra` one-way delay to all traffic between
  /// the two groups (tc-netem delay injection): packets still arrive, just
  /// late — the condition under which "Avalanche stops working when some
  /// messages arrive 2 minutes late" (paper §5).
  RuleId add_delay(std::vector<NodeId> group_a, std::vector<NodeId> group_b,
                   sim::Duration extra);

  /// Total extra delay rules impose on a->b traffic right now.
  [[nodiscard]] sim::Duration extra_delay(NodeId a, NodeId b) const;

  /// Remove one rule (observers lifting the netfilter configuration).
  void remove_rule(RuleId id);

  /// Remove all rules.
  void clear_rules();

  /// True when no active rule blocks a->b.
  [[nodiscard]] bool permitted(NodeId a, NodeId b) const;

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] sim::Simulation& simulation() { return sim_; }

 private:
  struct Rule {
    std::unordered_set<NodeId> group_a;
    std::unordered_set<NodeId> group_b;
    /// zero => drop (partition); positive => added latency (netem delay).
    sim::Duration extra_delay{0};

    [[nodiscard]] bool matches(NodeId a, NodeId b) const {
      return (group_a.contains(a) && group_b.contains(b)) ||
             (group_b.contains(a) && group_a.contains(b));
    }
  };

  void deliver(const Envelope& envelope);
  void send_rst(NodeId dead, NodeId to);

  sim::Simulation& sim_;
  LatencyModel latency_;
  sim::Rng rng_;
  std::unordered_map<NodeId, Endpoint*> endpoints_;
  std::unordered_map<RuleId, Rule> rules_;
  RuleId next_rule_ = 1;
  NetworkStats stats_;
};

}  // namespace stabl::net
