#include "net/latency.hpp"

#include <algorithm>
#include <cmath>

namespace stabl::net {

sim::Duration LatencyModel::sample(sim::Rng& rng, std::uint32_t bytes) const {
  double delay_us = static_cast<double>(config_.median.count());
  if (config_.sigma > 0.0) {
    delay_us = rng.lognormal_median(delay_us, config_.sigma);
  }
  delay_us += static_cast<double>(bytes) * config_.ns_per_byte / 1000.0;
  const auto sampled = sim::Duration{static_cast<std::int64_t>(delay_us)};
  return std::max(sampled, config_.floor);
}

}  // namespace stabl::net
