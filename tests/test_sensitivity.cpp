// Tests for the sensitivity metric (paper §3), including the properties
// the paper claims for it: it captures amplitude and duration, resists
// outliers, needs no interpretation parameter, and is comparable across
// chains. Property-style sweeps use parameterized tests.
#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"

namespace stabl::core {
namespace {

std::vector<double> constant(std::size_t n, double v) {
  return std::vector<double>(n, v);
}

// ------------------------------------------------------------------- eCDF

TEST(Ecdf, StepsAtSamples) {
  Ecdf ecdf({1.0, 2.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(ecdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(ecdf(3.9), 0.75);
  EXPECT_DOUBLE_EQ(ecdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf(100.0), 1.0);
}

TEST(Ecdf, EmptySampleIsZero) {
  Ecdf ecdf({});
  EXPECT_TRUE(ecdf.empty());
  EXPECT_DOUBLE_EQ(ecdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.mean(), 0.0);
}

TEST(Ecdf, SummaryStatistics) {
  Ecdf ecdf({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(ecdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.max(), 3.0);
  EXPECT_DOUBLE_EQ(ecdf.mean(), 2.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(1.0), 3.0);
}

TEST(Ecdf, DropsNonFiniteSamplesBeforeSorting) {
  // Regression: NaN in the input used to reach std::sort (strict-weak-
  // ordering UB) and the finiteness assert only ran after the sort. The
  // ctor now drops NaN/±inf deterministically before sorting.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  Ecdf ecdf({3.0, nan, 1.0, inf, 2.0, -inf, nan});
  ASSERT_EQ(ecdf.sorted_samples().size(), 3u);
  EXPECT_DOUBLE_EQ(ecdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.max(), 3.0);
  EXPECT_DOUBLE_EQ(ecdf.mean(), 2.0);
  // Same inputs, any order: the same finite subset survives.
  Ecdf again({nan, inf, 2.0, 1.0, 3.0});
  EXPECT_EQ(ecdf.sorted_samples(), again.sorted_samples());
}

TEST(Ecdf, AllNonFiniteBecomesEmpty) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Ecdf ecdf({nan, std::numeric_limits<double>::infinity()});
  EXPECT_TRUE(ecdf.empty());
  EXPECT_DOUBLE_EQ(ecdf(1.0), 0.0);
}

TEST(Ecdf, QuantileInterpolatesEvenSizedMedian) {
  // Regression: the nearest-rank +0.5 rounding biased even-sized medians
  // to the upper element — median of {1,2,3,4} came out as 3.
  Ecdf even({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(even.quantile(0.5), 2.5);
  EXPECT_DOUBLE_EQ(even.quantile(0.25), 1.75);
  EXPECT_DOUBLE_EQ(even.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(even.quantile(1.0), 4.0);
  // Odd sizes keep landing exactly on a sample at the median.
  Ecdf odd({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(odd.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(odd.quantile(0.75), 25.0);
}

TEST(Ecdf, MonotoneNonDecreasing) {
  sim::Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform(0.0, 30.0));
  Ecdf ecdf(xs);
  double prev = -1.0;
  for (double x = 0.0; x < 31.0; x += 0.25) {
    const double y = ecdf(x);
    ASSERT_GE(y, prev);
    prev = y;
  }
}

// ------------------------------------------------- super-cumulative / area

TEST(SuperCumulative, MatchesHandComputedSum) {
  // F(0)=0, F(1)=0.5, F(2)=0.5, F(3)=1 for samples {1, 3}.
  Ecdf ecdf({1.0, 3.0});
  EXPECT_DOUBLE_EQ(super_cumulative(ecdf, 3.0, 1.0), 0.0 + 0.5 + 0.5 + 1.0);
  EXPECT_DOUBLE_EQ(super_cumulative(ecdf, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(super_cumulative(ecdf, -1.0, 1.0), 0.0);
}

TEST(SuperCumulative, FinerStepScalesTermCount) {
  Ecdf ecdf({1.0, 3.0});
  const double coarse = super_cumulative(ecdf, 3.0, 1.0);
  const double fine = super_cumulative(ecdf, 3.0, 0.5);
  // Twice the grid points, roughly twice the sum.
  EXPECT_NEAR(fine, 2.0 * coarse, 1.0);
}

TEST(EcdfIntegral, EqualsUpperMinusMeanBeyondMax) {
  Ecdf ecdf({2.0, 4.0, 6.0});
  const double upper = 10.0;
  EXPECT_NEAR(ecdf_integral(ecdf, upper), upper - ecdf.mean(), 1e-9);
}

TEST(EcdfIntegral, ZeroBelowAllSamples) {
  Ecdf ecdf({5.0, 6.0});
  EXPECT_DOUBLE_EQ(ecdf_integral(ecdf, 4.0), 0.0);
}

// ------------------------------------------------------------ sensitivity

TEST(Sensitivity, IdenticalDistributionsScoreZero) {
  const auto xs = constant(100, 2.5);
  const auto score = sensitivity(xs, xs);
  EXPECT_DOUBLE_EQ(score.value, 0.0);
  EXPECT_FALSE(score.infinite);
  EXPECT_FALSE(score.benefits);
}

TEST(Sensitivity, WorseLatenciesGivePositiveScore) {
  const auto score = sensitivity(constant(100, 1.0), constant(100, 6.0));
  EXPECT_GT(score.value, 4.0);
  EXPECT_FALSE(score.benefits);
}

TEST(Sensitivity, BetterLatenciesFlagBenefits) {
  const auto score = sensitivity(constant(100, 6.0), constant(100, 1.0));
  EXPECT_GT(score.value, 0.0);
  EXPECT_TRUE(score.benefits) << "striped bar: altered improved latency";
}

TEST(Sensitivity, DeadChainIsInfinite) {
  const auto score =
      sensitivity(constant(100, 1.0), constant(100, 1.0), false);
  EXPECT_TRUE(score.infinite);
  EXPECT_TRUE(std::isinf(score.value));
  EXPECT_EQ(format_score(score), "inf");
}

TEST(Sensitivity, EmptyAlteredIsInfinite) {
  const auto score = sensitivity(constant(100, 1.0), {});
  EXPECT_TRUE(score.infinite);
  EXPECT_FALSE(score.invalid_baseline);
}

TEST(Sensitivity, EmptyBaselineIsInvalidNotABenefit) {
  // Regression: an empty baseline made baseline_area 0, so any altered run
  // scored |0 - altered_area| with benefits=true — a bogus "the fault
  // helped" verdict. The pair is now reported as invalid.
  const auto score = sensitivity({}, constant(100, 1.0));
  EXPECT_TRUE(score.infinite);
  EXPECT_TRUE(score.invalid_baseline);
  EXPECT_TRUE(std::isinf(score.value));
  EXPECT_FALSE(score.benefits);
  EXPECT_EQ(format_score(score), "invalid");
}

TEST(Sensitivity, DeadAlteredIsNotMarkedInvalidBaseline) {
  // The two infinity flavours stay distinguishable: liveness loss prints
  // "inf", a broken baseline prints "invalid".
  const auto dead = sensitivity(constant(100, 1.0), constant(100, 1.0), false);
  EXPECT_FALSE(dead.invalid_baseline);
  EXPECT_EQ(format_score(dead), "inf");
  const auto valid = sensitivity(constant(100, 1.0), constant(100, 2.0));
  EXPECT_FALSE(valid.invalid_baseline);
}

TEST(Sensitivity, CapturesDurationOfDegradation) {
  // Same peak amplitude, longer degradation => larger score.
  std::vector<double> base(1000, 1.0);
  std::vector<double> brief = base;
  std::vector<double> lasting = base;
  for (int i = 0; i < 50; ++i) brief[i] = 20.0;
  for (int i = 0; i < 400; ++i) lasting[i] = 20.0;
  const double brief_score = sensitivity(base, brief).value;
  const double lasting_score = sensitivity(base, lasting).value;
  EXPECT_GT(lasting_score, brief_score * 3.0);
}

TEST(Sensitivity, CapturesAmplitudeOfDegradation) {
  std::vector<double> base(1000, 1.0);
  std::vector<double> mild = base;
  std::vector<double> severe = base;
  for (int i = 0; i < 200; ++i) mild[i] = 5.0;
  for (int i = 0; i < 200; ++i) severe[i] = 50.0;
  EXPECT_GT(sensitivity(base, severe).value,
            sensitivity(base, mild).value * 3.0);
}

TEST(Sensitivity, ResilientToOutliersUnderCommonEndpoint) {
  // The paper: "a smaller fraction of particular latency values does not
  // contribute significantly". One huge outlier must barely move the
  // common-endpoint score...
  std::vector<double> base(10000, 1.0);
  std::vector<double> altered = base;
  altered[0] = 500.0;
  const auto score = sensitivity(base, altered);
  EXPECT_LT(score.value, 1.0);
}

TEST(Sensitivity, PerDistributionEndpointIsOutlierSensitive) {
  // ...whereas the literal per-endpoint variant moves by O(outlier) —
  // which is why common-endpoint is the default (see DESIGN.md §2).
  std::vector<double> base(10000, 1.0);
  std::vector<double> altered = base;
  altered[0] = 500.0;
  SensitivityOptions options;
  options.endpoint = ScoreEndpoint::kPerDistribution;
  const auto score = sensitivity(base, altered, true, options);
  EXPECT_GT(score.value, 100.0);
}

TEST(Sensitivity, FormatMarksBenefits) {
  const auto score = sensitivity(constant(10, 6.0), constant(10, 1.0));
  const std::string text = format_score(score);
  EXPECT_EQ(text.back(), '*');
}

// ------------------------------- property sweeps (parameterized, TEST_P)

struct ShiftCase {
  double shift;
};

class SensitivityShift : public ::testing::TestWithParam<ShiftCase> {};

TEST_P(SensitivityShift, ScoreGrowsWithShift) {
  // Shifting the whole distribution right by s seconds yields a score of
  // roughly s / step (the paper's "absolute metric" property: the score is
  // a direct function of transaction latencies).
  sim::Rng rng(17);
  std::vector<double> base;
  for (int i = 0; i < 4000; ++i) base.push_back(rng.uniform(0.5, 2.5));
  std::vector<double> shifted;
  shifted.reserve(base.size());
  for (const double x : base) shifted.push_back(x + GetParam().shift);
  SensitivityOptions unit_grid;
  unit_grid.step = 1.0;
  const auto score = sensitivity(base, shifted, true, unit_grid);
  EXPECT_NEAR(score.value, GetParam().shift, 1.0 + 0.2 * GetParam().shift);
  EXPECT_FALSE(score.benefits);
}

INSTANTIATE_TEST_SUITE_P(Shifts, SensitivityShift,
                         ::testing::Values(ShiftCase{2.0}, ShiftCase{5.0},
                                           ShiftCase{10.0}, ShiftCase{20.0},
                                           ShiftCase{40.0}));

class SensitivitySymmetry : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SensitivitySymmetry, AbsoluteValueMakesOrderIrrelevant) {
  // |S1 - S2| == |S2 - S1| for arbitrary random samples.
  sim::Rng rng(GetParam());
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 1000; ++i) {
    a.push_back(rng.exponential(2.0));
    b.push_back(rng.exponential(3.0));
  }
  const auto ab = sensitivity(a, b);
  const auto ba = sensitivity(b, a);
  EXPECT_NEAR(ab.value, ba.value, 1e-9);
  EXPECT_NE(ab.benefits, ba.benefits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SensitivitySymmetry,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

class SensitivityNonNegative : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SensitivityNonNegative, ScoreIsAlwaysNonNegative) {
  sim::Rng rng(GetParam());
  std::vector<double> a;
  std::vector<double> b;
  const int na = 100 + static_cast<int>(rng.uniform_int(0, 900));
  const int nb = 100 + static_cast<int>(rng.uniform_int(0, 900));
  for (int i = 0; i < na; ++i) a.push_back(rng.lognormal_median(2.0, 0.8));
  for (int i = 0; i < nb; ++i) b.push_back(rng.lognormal_median(3.0, 0.8));
  EXPECT_GE(sensitivity(a, b).value, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SensitivityNonNegative,
                         ::testing::Range<std::uint64_t>(100, 120));

}  // namespace
}  // namespace stabl::core
