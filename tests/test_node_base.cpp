// Tests for the BlockchainNode base: RPC handling, watcher notification,
// commit filtering, crash/restart semantics and state sync.
#include "chain/node.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace stabl::chain {
namespace {

/// Minimal concrete chain: commits whatever it is told to, no consensus.
class StubNode final : public BlockchainNode {
 public:
  using BlockchainNode::BlockchainNode;
  using BlockchainNode::commit_block;
  using BlockchainNode::pool_transaction;
  using BlockchainNode::request_sync;

  int protocol_starts = 0;
  int protocol_stops = 0;
  std::vector<Transaction> seen;

 protected:
  void start_protocol() override { ++protocol_starts; }
  void stop_protocol() override { ++protocol_stops; }
  void on_app_message(const net::Envelope&) override {}
  void on_transaction(const Transaction& tx) override { seen.push_back(tx); }
};

/// A client-side probe that records commit notifications.
class ClientProbe final : public sim::Process, public net::Endpoint {
 public:
  ClientProbe(sim::Simulation& simulation, net::Network& network,
              net::NodeId id)
      : Process(simulation, id) {
    network.attach(id, this);
    start();
  }
  void deliver(const net::Envelope& envelope) override {
    if (const auto* notify = dynamic_cast<const CommitNotifyPayload*>(
            envelope.payload.get())) {
      notifications.push_back(notify->id);
    }
  }
  [[nodiscard]] bool endpoint_alive() const override { return alive(); }
  std::vector<TxId> notifications;
};

Transaction make_tx(TxId id, AccountId from, std::uint64_t nonce) {
  Transaction tx;
  tx.id = id;
  tx.from = from;
  tx.to = 500;
  tx.amount = 1;
  tx.nonce = nonce;
  return tx;
}

class NodeBaseTest : public ::testing::Test {
 protected:
  NodeBaseTest() : simulation(3), network(simulation, net::LatencyConfig{}) {
    NodeConfig config;
    config.n = 2;
    config.network_seed = 9;
    config.restart_boot_delay = sim::sec(1);
    for (net::NodeId id = 0; id < 2; ++id) {
      config.id = id;
      nodes.push_back(
          std::make_unique<StubNode>(simulation, network, config));
      nodes.back()->start();
    }
    client = std::make_unique<ClientProbe>(simulation, network, 2);
    simulation.run_until(sim::ms(100));  // connections up
  }

  void submit(StubNode& node, const Transaction& tx) {
    network.send(client->id(), node.node_id(),
                 std::make_shared<const SubmitTxPayload>(tx));
    simulation.run_until(simulation.now() + sim::ms(20));
  }

  sim::Simulation simulation;
  net::Network network;
  std::vector<std::unique_ptr<StubNode>> nodes;
  std::unique_ptr<ClientProbe> client;
};

TEST_F(NodeBaseTest, SubmitPoolsAndHooksFire) {
  submit(*nodes[0], make_tx(1, 7, 0));
  EXPECT_TRUE(nodes[0]->mempool().contains(1));
  ASSERT_EQ(nodes[0]->seen.size(), 1u);
  EXPECT_EQ(nodes[0]->seen[0].id, 1u);
}

TEST_F(NodeBaseTest, CommitNotifiesWatcher) {
  submit(*nodes[0], make_tx(1, 7, 0));
  nodes[0]->commit_block({make_tx(1, 7, 0)}, 0);
  simulation.run_until(simulation.now() + sim::ms(20));
  ASSERT_EQ(client->notifications.size(), 1u);
  EXPECT_EQ(client->notifications[0], 1u);
}

TEST_F(NodeBaseTest, DuplicateSubmitAfterCommitAnswersImmediately) {
  submit(*nodes[0], make_tx(1, 7, 0));
  nodes[0]->commit_block({make_tx(1, 7, 0)}, 0);
  simulation.run_until(simulation.now() + sim::ms(20));
  submit(*nodes[0], make_tx(1, 7, 0));  // secure-client duplicate
  simulation.run_until(simulation.now() + sim::ms(20));
  EXPECT_EQ(client->notifications.size(), 2u);
}

TEST_F(NodeBaseTest, CommitBlockFiltersDuplicatesAndNonceGaps) {
  const Block* block = nodes[0]->commit_block(
      {make_tx(1, 7, 0), make_tx(2, 7, 2), make_tx(3, 8, 0)}, 0);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->txs.size(), 2u);  // nonce-2 tx filtered (gap)
  // Re-committing tx 1 is a no-op.
  const Block* again = nodes[0]->commit_block({make_tx(1, 7, 0)}, 0);
  EXPECT_EQ(again, nullptr);
}

TEST_F(NodeBaseTest, EmptyCommitOnlyWithAllowEmpty) {
  EXPECT_EQ(nodes[0]->commit_block({}, 0), nullptr);
  EXPECT_NE(nodes[0]->commit_block({}, 0, 5, /*allow_empty=*/true), nullptr);
  EXPECT_EQ(nodes[0]->ledger().blocks().back().round, 5u);
}

TEST_F(NodeBaseTest, CrashClearsVolatileKeepsLedger) {
  submit(*nodes[0], make_tx(1, 7, 0));
  nodes[0]->commit_block({make_tx(1, 7, 0)}, 0);
  submit(*nodes[0], make_tx(2, 7, 1));  // still pooled
  nodes[0]->kill();
  EXPECT_EQ(nodes[0]->protocol_stops, 1);
  EXPECT_EQ(nodes[0]->mempool().size(), 0u);
  EXPECT_EQ(nodes[0]->ledger().tx_count(), 1u);  // persistent
}

TEST_F(NodeBaseTest, RestartRebuildsAccountsFromLedger) {
  nodes[0]->commit_block({make_tx(1, 7, 0), make_tx(2, 7, 1)}, 0);
  nodes[0]->kill();
  nodes[0]->start();
  simulation.run_until(simulation.now() + sim::sec(2));  // boot delay
  EXPECT_EQ(nodes[0]->protocol_starts, 2);
  EXPECT_EQ(nodes[0]->accounts().next_nonce(7), 2u);
}

TEST_F(NodeBaseTest, BootDelayGatesDelivery) {
  nodes[0]->kill();
  nodes[0]->start();
  // Before the boot delay elapses the process drops messages silently.
  submit(*nodes[0], make_tx(1, 7, 0));
  EXPECT_FALSE(nodes[0]->mempool().contains(1));
  simulation.run_until(simulation.now() + sim::sec(2));
  submit(*nodes[0], make_tx(1, 7, 0));
  EXPECT_TRUE(nodes[0]->mempool().contains(1));
}

TEST_F(NodeBaseTest, StateSyncTransfersBlocks) {
  for (std::uint64_t n = 0; n < 3; ++n) {
    nodes[0]->commit_block({make_tx(100 + n, 7, n)}, 0, n);
  }
  EXPECT_EQ(nodes[1]->ledger().height(), 0u);
  nodes[1]->request_sync(0);
  simulation.run_until(simulation.now() + sim::ms(100));
  EXPECT_EQ(nodes[1]->ledger().height(), 3u);
  EXPECT_EQ(nodes[1]->ledger().tx_count(), 3u);
  EXPECT_EQ(nodes[1]->accounts().next_nonce(7), 3u);
}

TEST_F(NodeBaseTest, StateSyncNotifiesWatchers) {
  // A client watches on node 1; the commit arrives via sync from node 0.
  submit(*nodes[1], make_tx(1, 7, 0));
  nodes[0]->commit_block({make_tx(1, 7, 0)}, 0);
  nodes[1]->request_sync(0);
  simulation.run_until(simulation.now() + sim::ms(100));
  ASSERT_EQ(client->notifications.size(), 1u);
  EXPECT_EQ(client->notifications[0], 1u);
}

TEST_F(NodeBaseTest, PoolTransactionRejectsStale) {
  nodes[0]->commit_block({make_tx(1, 7, 0)}, 0);
  EXPECT_FALSE(nodes[0]->pool_transaction(make_tx(1, 7, 0)));  // committed
  EXPECT_FALSE(nodes[0]->pool_transaction(make_tx(9, 7, 0)));  // old nonce
  EXPECT_TRUE(nodes[0]->pool_transaction(make_tx(10, 7, 1)));
}

}  // namespace
}  // namespace stabl::chain
