// Solana model tests: leader schedule, forwarding without a mempool,
// crash sawtooth, rooting, and the EAH panic with its epoch-length fix.
#include "chains/solana/solana.hpp"

#include <gtest/gtest.h>

#include "chain_test_util.hpp"

namespace stabl::solana {
namespace {

using testing::Harness;

void build(Harness& harness, std::size_t n = 10, SolanaConfig config = {}) {
  chain::NodeConfig node_config;
  node_config.n = n;
  node_config.network_seed = 41;
  harness.nodes =
      make_cluster(harness.simulation, harness.network, node_config, config);
}

const SolanaNode& node_at(const Harness& harness, std::size_t index) {
  return static_cast<const SolanaNode&>(*harness.nodes[index]);
}

TEST(Solana, BaselineFastCommits) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(30));
  harness.start_all();
  harness.simulation.run_until(sim::sec(32));
  EXPECT_GT(harness.total_client_committed(), 5700u);
  // Sub-second latency: the fastest baseline of the five chains.
  double worst = 0.0;
  for (const auto& client : harness.clients) {
    for (const double latency : client->latencies()) {
      worst = std::max(worst, latency);
    }
  }
  EXPECT_LT(worst, 3.0);
  testing::expect_prefix_consistent(harness);
}

TEST(Solana, LeaderScheduleIsDeterministicAndGrouped) {
  Harness harness;
  build(harness);
  const auto& node = node_at(harness, 0);
  const auto& other = node_at(harness, 5);
  std::set<net::NodeId> leaders;
  for (std::uint64_t slot = 0; slot < 400; ++slot) {
    ASSERT_EQ(node.leader_of_slot(slot), other.leader_of_slot(slot));
    leaders.insert(node.leader_of_slot(slot));
    // NUM_CONSECUTIVE_LEADER_SLOTS: whole groups share one leader.
    ASSERT_EQ(node.leader_of_slot(slot),
              node.leader_of_slot(slot - slot % 4));
  }
  EXPECT_EQ(leaders.size(), 10u);
}

TEST(Solana, CrashedLeadersBlankTheirSlots) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(60));
  harness.start_all();
  harness.simulation.run_until(sim::sec(20));
  for (net::NodeId id = 5; id < 8; ++id) harness.nodes[id]->kill();  // f=t
  harness.simulation.run_until(sim::sec(60));
  // Still live (7/10 > 2/3) but with sawtooth gaps: some forwarded
  // transactions wait multiple leader groups.
  EXPECT_GT(harness.total_client_committed(), 8000u);
  double worst = 0.0;
  for (const auto& client : harness.clients) {
    for (const double latency : client->latencies()) {
      worst = std::max(worst, latency);
    }
  }
  EXPECT_GT(worst, 1.5) << "dead leader groups delay transactions";
  // No panic: rooting continued.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_FALSE(node_at(harness, i).panicked());
  }
}

TEST(Solana, RootingLagsFinalization) {
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(30));
  harness.start_all();
  harness.simulation.run_until(sim::sec(30));
  const auto& node = node_at(harness, 0);
  const std::uint64_t tip = node.ledger().blocks().back().round;
  EXPECT_LT(node.last_rooted_slot(), tip);
  EXPECT_GE(node.last_rooted_slot() + 55, tip);
}

TEST(Solana, EahPanicKillsEveryNodeAfterQuorumLoss) {
  // The paper's headline Solana result: halting f = t+1 nodes during a
  // short warm-up epoch stops rooting; at the 3/4-epoch EAH integration
  // point every remaining validator panics.
  Harness harness;
  build(harness);
  harness.add_clients(5, 40.0, sim::sec(400));
  harness.start_all();
  harness.simulation.run_until(sim::sec(133));
  for (net::NodeId id = 5; id < 9; ++id) harness.nodes[id]->kill();
  // Epoch 3 (256 slots) ends its EAH window at slot 416 = 166.4 s.
  harness.simulation.run_until(sim::sec(170));
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(node_at(harness, i).panicked()) << "node " << i;
    EXPECT_FALSE(harness.nodes[i]->alive());
  }
  // Restarting the originally-halted nodes cannot save the network.
  for (net::NodeId id = 5; id < 9; ++id) harness.nodes[id]->start();
  const auto committed = harness.nodes[0]->ledger().tx_count();
  harness.simulation.run_until(sim::sec(400));
  EXPECT_EQ(harness.nodes[0]->ledger().tx_count(), committed);
}

TEST(Solana, AblationLongEpochsPreventThePanic) {
  // The agave fix: >= 360 slots per epoch. Without warm-up epochs the EAH
  // window of the 400 s run never closes, so no panic occurs and the
  // network resumes once the nodes return.
  SolanaConfig config;
  config.warmup_epochs = false;
  Harness harness;
  build(harness, 10, config);
  harness.add_clients(5, 40.0, sim::sec(300));
  harness.start_all();
  harness.simulation.run_until(sim::sec(133));
  for (net::NodeId id = 5; id < 9; ++id) harness.nodes[id]->kill();
  harness.simulation.run_until(sim::sec(200));
  for (net::NodeId id = 5; id < 9; ++id) harness.nodes[id]->start();
  harness.simulation.run_until(sim::sec(300));
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_FALSE(node_at(harness, i).panicked());
  }
  EXPECT_GT(harness.nodes[0]->ledger().tx_count(), 40000u)
      << "network recovers and drains the backlog";
}

TEST(Solana, SecureClientChangesLittle) {
  // All entry nodes forward to the same deterministic leaders, which
  // deduplicate — redundancy neither helps nor hurts much (paper §7).
  auto mean_latency = [](int fanout) {
    Harness harness;
    build(harness);
    harness.add_clients(5, 40.0, sim::sec(30), fanout);
    harness.start_all();
    harness.simulation.run_until(sim::sec(32));
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto& client : harness.clients) {
      for (const double latency : client->latencies()) {
        sum += latency;
        ++count;
      }
    }
    return sum / static_cast<double>(count);
  };
  const double base = mean_latency(1);
  const double secure = mean_latency(4);
  EXPECT_NEAR(secure, base, 0.15);
}

}  // namespace
}  // namespace stabl::solana
