// Tests for the metrics registry: histogram bucketing, the sim-time
// ticker (a clock observer, so sampling must consume no TimerIds and not
// count toward events_processed), CSV shape and the byte-stable JSON
// round trip through metrics_from_json.
#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/simulation.hpp"

namespace stabl::core {
namespace {

// ------------------------------------------------------------- histogram

TEST(Histogram, BucketsObservationsByUpperBound) {
  Histogram h("lat", {1.0, 2.0, 4.0});
  ASSERT_EQ(h.counts.size(), 4u);  // 3 bounds + overflow
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (inclusive upper bound)
  h.observe(1.5);   // <= 2
  h.observe(4.0);   // <= 4
  h.observe(100.0); // overflow
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[3], 1u);
  EXPECT_EQ(h.total, 5u);
  EXPECT_DOUBLE_EQ(h.sum, 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), h.sum / 5.0);
}

TEST(Histogram, EmptyMeanIsZero) {
  Histogram h("empty", {1.0});
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(MetricsRegistry, HistogramIsFindOrCreate) {
  MetricsRegistry registry;
  Histogram& a = registry.histogram("lat", {1.0, 2.0});
  a.observe(0.5);
  Histogram& b = registry.histogram("lat", {1.0, 2.0});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.total, 1u);
}

// ---------------------------------------------------------------- ticker

TEST(MetricsTicker, SamplesOnThePeriodGridWithoutConsumingEvents) {
  sim::Simulation simulation(1);
  int fires = 0;
  // Events at 0.5 s, 2.5 s and 4.5 s; 1 s sampling grid.
  for (const double at : {0.5, 2.5, 4.5}) {
    simulation.schedule_at(sim::seconds(at), [&] { ++fires; });
  }
  MetricsRegistry registry;
  registry.add_gauge("fires", [&] { return static_cast<double>(fires); });
  MetricsTicker ticker(registry, sim::sec(1));
  simulation.set_time_observer(&ticker);
  simulation.run_until(sim::seconds(5.0));

  EXPECT_EQ(fires, 3);
  EXPECT_EQ(simulation.events_processed(), 3u);  // sampling consumed none
  // Grid samples at t=1..5; the jump from 0.5 s to 2.5 s must emit both
  // the t=1 and t=2 samples, each observing only events strictly before.
  ASSERT_EQ(registry.sample_times(),
            (std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}));
  ASSERT_EQ(registry.series().size(), 1u);
  EXPECT_EQ(registry.series()[0].name, "fires");
  EXPECT_EQ(registry.series()[0].samples,
            (std::vector<double>{1.0, 1.0, 2.0, 2.0, 3.0}));
}

TEST(MetricsTicker, EmitsPerfettoCountersWhenTraced) {
  sim::Simulation simulation(1);
  simulation.schedule_at(sim::seconds(2.0), [] {});
  MetricsRegistry registry;
  registry.add_gauge("depth", [] { return 7.0; });
  sim::TraceSink sink;
  MetricsTicker ticker(registry, sim::sec(1), &sink);
  simulation.set_time_observer(&ticker);
  simulation.run_until(sim::seconds(2.0));
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.events()[0].phase, sim::TraceSink::Phase::kCounter);
  EXPECT_EQ(sink.events()[0].name, "depth");
  EXPECT_DOUBLE_EQ(sink.events()[0].value, 7.0);
}

TEST(MetricsRegistry, DetachProbesKeepsSamples) {
  MetricsRegistry registry;
  registry.add_gauge("g", [] { return 1.0; });
  registry.sample(1.0);
  registry.detach_probes();
  registry.sample(2.0);  // must not crash on dangling probes
  EXPECT_EQ(registry.series()[0].samples,
            (std::vector<double>{1.0, 0.0}));
}

// ------------------------------------------------------------- serialize

MetricsRegistry sampled_registry() {
  MetricsRegistry registry;
  double depth = 0.0;
  registry.add_gauge("mempool_depth", [&] { return depth; });
  registry.add_counter("votes", [&] { return depth * 3.0 + 0.125; });
  for (int k = 1; k <= 4; ++k) {
    depth = static_cast<double>(k) * 1.5;
    registry.sample(static_cast<double>(k));
  }
  Histogram& h = registry.histogram("commit_latency_s", {0.5, 1.0, 2.0});
  h.observe(0.25);
  h.observe(1.75);
  h.observe(9.0);
  registry.detach_probes();
  return registry;
}

TEST(MetricsSerialize, CsvShape) {
  const std::string csv = sampled_registry().to_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "t_s,mempool_depth,votes");
  // Header + 4 sample rows.
  std::size_t lines = 0;
  for (const char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 5u);
}

TEST(MetricsSerialize, JsonRoundTripIsByteIdentical) {
  const std::string json = sampled_registry().to_json();
  const MetricsRegistry parsed = metrics_from_json(json);
  EXPECT_EQ(parsed.to_json(), json);
  ASSERT_EQ(parsed.series().size(), 2u);
  EXPECT_EQ(parsed.series()[0].name, "mempool_depth");
  EXPECT_EQ(parsed.series()[0].samples.size(), 4u);
  ASSERT_EQ(parsed.histograms().size(), 1u);
  EXPECT_EQ(parsed.histograms()[0].total, 3u);
}

TEST(MetricsSerialize, RejectsMalformedDocuments) {
  EXPECT_THROW(metrics_from_json(""), std::invalid_argument);
  EXPECT_THROW(metrics_from_json("{}"), std::invalid_argument);
  EXPECT_THROW(metrics_from_json("{\"times_s\":[1.0]"),
               std::invalid_argument);
}

}  // namespace
}  // namespace stabl::core
