// Tests for the throughput series, recovery detection, text reports and
// the Fig. 7 radar aggregation.
#include <gtest/gtest.h>

#include "chain/ledger.hpp"
#include "core/radar.hpp"
#include "core/report.hpp"
#include "core/throughput.hpp"

namespace stabl::core {
namespace {

chain::Ledger ledger_with_commits(
    const std::vector<std::pair<double, int>>& commits) {
  chain::Ledger ledger;
  std::uint64_t height = 0;
  chain::TxId next_id = 1;
  for (const auto& [at_s, count] : commits) {
    chain::Block block;
    block.height = height++;
    block.committed_at = sim::seconds(at_s);
    for (int i = 0; i < count; ++i) {
      chain::Transaction tx;
      tx.id = next_id++;
      block.txs.push_back(tx);
    }
    ledger.append(block);
  }
  return ledger;
}

TEST(ThroughputSeries, BinsCommitsPerSecond) {
  const auto ledger =
      ledger_with_commits({{0.5, 10}, {0.9, 5}, {2.1, 7}, {9.9, 3}});
  ThroughputSeries series(ledger, sim::sec(10));
  ASSERT_EQ(series.bins().size(), 10u);
  EXPECT_DOUBLE_EQ(series.bins()[0], 15.0);
  EXPECT_DOUBLE_EQ(series.bins()[1], 0.0);
  EXPECT_DOUBLE_EQ(series.bins()[2], 7.0);
  EXPECT_DOUBLE_EQ(series.bins()[9], 3.0);
}

TEST(ThroughputSeries, IgnoresCommitsPastDuration) {
  const auto ledger = ledger_with_commits({{1.0, 5}, {11.0, 100}});
  ThroughputSeries series(ledger, sim::sec(10));
  double total = 0;
  for (const double bin : series.bins()) total += bin;
  EXPECT_DOUBLE_EQ(total, 5.0);
}

TEST(ThroughputSeries, Averages) {
  const auto ledger = ledger_with_commits({{0.5, 10}, {1.5, 20}, {3.5, 30}});
  ThroughputSeries series(ledger, sim::sec(4));
  EXPECT_DOUBLE_EQ(series.average(0, 2), 15.0);
  EXPECT_DOUBLE_EQ(series.overall_average(), 15.0);
  EXPECT_DOUBLE_EQ(series.peak(), 30.0);
}

TEST(ThroughputSeries, AverageIncludesFinalPartialBin) {
  // Regression: truncating a fractional to_s dropped the final partial
  // bin. Bin t covers [t, t+1), so averaging over [10.0, 10.5) must see
  // the commits that landed in bin 10.
  const auto ledger = ledger_with_commits({{10.2, 40}});
  ThroughputSeries series(ledger, sim::sec(20));
  EXPECT_DOUBLE_EQ(series.average(10.0, 10.5), 40.0);
  EXPECT_DOUBLE_EQ(series.average(9.5, 10.5), 20.0);
  // Integral bounds are unchanged by the ceil.
  EXPECT_DOUBLE_EQ(series.average(10.0, 11.0), 40.0);
  EXPECT_DOUBLE_EQ(series.average(11.0, 12.0), 0.0);
}

TEST(RecoveryDetector, FractionalClearingIsNotReportedEarly) {
  // Regression: flooring after_s let the scan start one bin before the
  // fault actually cleared, reporting recovery up to ~1 s early (even
  // negative). Commits run from t=9 on; the fault clears at 9.5: recovery
  // is at the t=10 bin boundary, 0.5 s after the clearing — not -0.5.
  std::vector<std::pair<double, int>> commits;
  for (int t = 9; t < 30; ++t) commits.push_back({t + 0.5, 50});
  ThroughputSeries series(ledger_with_commits(commits), sim::sec(30));
  EXPECT_DOUBLE_EQ(recovery_seconds(series, 9.5, 25.0), 0.5);
  // An integral after_s anchors exactly on its own bin as before.
  EXPECT_DOUBLE_EQ(recovery_seconds(series, 9.0, 25.0), 0.0);
}

TEST(RecoveryDetector, FindsSustainedRecovery) {
  // Dead from t=10 to t=20, then back to 50 tps.
  std::vector<std::pair<double, int>> commits;
  for (int t = 0; t < 10; ++t) commits.push_back({t + 0.5, 50});
  for (int t = 20; t < 40; ++t) commits.push_back({t + 0.5, 50});
  ThroughputSeries series(ledger_with_commits(commits), sim::sec(40));
  EXPECT_DOUBLE_EQ(recovery_seconds(series, 10.0, 25.0), 10.0);
  EXPECT_DOUBLE_EQ(recovery_seconds(series, 20.0, 25.0), 0.0);
}

TEST(RecoveryDetector, NeverRecoversIsNegative) {
  std::vector<std::pair<double, int>> commits;
  for (int t = 0; t < 10; ++t) commits.push_back({t + 0.5, 50});
  ThroughputSeries series(ledger_with_commits(commits), sim::sec(40));
  EXPECT_LT(recovery_seconds(series, 10.0, 25.0), 0.0);
}

TEST(RecoveryDetector, WindowRejectsSmallBursts) {
  // A burst too small to average out to the threshold over the window does
  // not count as recovery.
  std::vector<std::pair<double, int>> commits;
  commits.push_back({15.5, 120});  // lone burst, then silence
  ThroughputSeries series(ledger_with_commits(commits), sim::sec(40));
  EXPECT_LT(recovery_seconds(series, 10.0, 50.0, 5.0), 0.0);
}

TEST(RecoveryDetector, AnchorsOnCommitCarryingBin) {
  // The window must start at an actual commit, not at empty seconds that
  // happen to precede a backlog peak.
  std::vector<std::pair<double, int>> commits;
  for (int t = 20; t < 40; ++t) commits.push_back({t + 0.5, 200});
  ThroughputSeries series(ledger_with_commits(commits), sim::sec(40));
  EXPECT_DOUBLE_EQ(recovery_seconds(series, 10.0, 50.0, 5.0), 10.0);
}

TEST(Table, RendersAlignedMarkdown) {
  Table table({"a", "longer"});
  table.add_row({"x", "1"});
  table.add_row({"yy", "2"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("| a  | longer |"), std::string::npos);
  EXPECT_NE(text.find("| yy | 2      |"), std::string::npos);
}

TEST(Table, NumFormatsInfinity) {
  EXPECT_EQ(Table::num(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(Table::num(1.2345, 2), "1.23");
}

TEST(RenderTimeseries, ProducesOneRowPerBucket) {
  std::vector<double> series(40, 100.0);
  const std::string text = render_timeseries(series, 10.0);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  EXPECT_NE(text.find("100.0 tps"), std::string::npos);
}

TEST(RenderEcdfPair, MarksBothCurves) {
  Ecdf base({1.0, 2.0, 3.0});
  Ecdf alt({4.0, 8.0, 12.0});
  const std::string text = render_ecdf_pair(base, alt);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('*'), std::string::npos);
  EXPECT_NE(text.find("baseline"), std::string::npos);
}

TEST(Radar, StoresAndRendersScores) {
  RadarSummary radar;
  SensitivityScore score;
  score.value = 12.34;
  radar.record(ChainKind::kSolana, FaultType::kCrash, score);
  SensitivityScore dead;
  dead.infinite = true;
  dead.value = std::numeric_limits<double>::infinity();
  radar.record(ChainKind::kSolana, FaultType::kTransient, dead);
  ASSERT_NE(radar.get(ChainKind::kSolana, FaultType::kCrash), nullptr);
  EXPECT_EQ(radar.get(ChainKind::kSolana, FaultType::kPartition), nullptr);
  const std::string table = radar.to_table();
  EXPECT_NE(table.find("12.34"), std::string::npos);
  EXPECT_NE(table.find("inf"), std::string::npos);
  EXPECT_NE(table.find("solana"), std::string::npos);
}

TEST(CsvJoin, JoinsWithCommas) {
  EXPECT_EQ(csv_join({"a", "b", "c"}), "a,b,c");
  EXPECT_EQ(csv_join({}), "");
}

}  // namespace
}  // namespace stabl::core
