// The resilient client layer: retry backoff, circuit breaker, endpoint
// failover — and the end-to-end mitigation claim: under a crash of a
// client's primary endpoint, the naive client silently loses every
// transaction in flight to (and routed at) the dead node, while the
// resilient client (commit timeout + failover + backoff) recovers almost
// all of them, deterministically.
#include "core/resilience.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace stabl::core {
namespace {

// ------------------------------------------------------------ policies

TEST(RetryPolicy, BackoffGrowsExponentiallyUpToCap) {
  RetryPolicy policy;
  policy.backoff_base = sim::ms(500);
  policy.backoff_multiplier = 2.0;
  policy.backoff_cap = sim::sec(4);
  policy.jitter_frac = 0.0;
  sim::Rng rng(1);
  EXPECT_EQ(policy.backoff(1, rng), sim::ms(500));
  EXPECT_EQ(policy.backoff(2, rng), sim::sec(1));
  EXPECT_EQ(policy.backoff(3, rng), sim::sec(2));
  EXPECT_EQ(policy.backoff(4, rng), sim::sec(4));
  EXPECT_EQ(policy.backoff(10, rng), sim::sec(4));  // capped
}

TEST(RetryPolicy, JitterStaysWithinFraction) {
  RetryPolicy policy;
  policy.backoff_base = sim::sec(1);
  policy.jitter_frac = 0.1;
  sim::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const auto delay = policy.backoff(1, rng);
    EXPECT_GE(delay, sim::ms(900));
    EXPECT_LE(delay, sim::ms(1100));
  }
}

TEST(CircuitBreaker, OpensAfterConsecutiveFailuresAndProbes) {
  CircuitBreakerPolicy policy;
  policy.failure_threshold = 3;
  policy.open_duration = sim::sec(20);
  CircuitBreaker breaker(policy);

  EXPECT_TRUE(breaker.allow(sim::sec(0)));
  EXPECT_FALSE(breaker.on_failure(sim::sec(1)));
  EXPECT_FALSE(breaker.on_failure(sim::sec(2)));
  EXPECT_TRUE(breaker.on_failure(sim::sec(3)));  // third trip opens it
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow(sim::sec(10)));

  // Quarantine over: one probe is admitted (half-open).
  EXPECT_TRUE(breaker.allow(sim::sec(24)));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);

  // Failed probe re-opens immediately, below the threshold.
  EXPECT_TRUE(breaker.on_failure(sim::sec(25)));
  EXPECT_FALSE(breaker.allow(sim::sec(30)));

  // Successful probe closes it again.
  EXPECT_TRUE(breaker.allow(sim::sec(50)));
  breaker.on_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(sim::sec(51)));
}

TEST(CircuitBreaker, SuccessResetsFailureCount) {
  CircuitBreakerPolicy policy;
  policy.failure_threshold = 3;
  CircuitBreaker breaker(policy);
  breaker.on_failure(sim::sec(1));
  breaker.on_failure(sim::sec(2));
  breaker.on_success();
  EXPECT_FALSE(breaker.on_failure(sim::sec(3)));
  EXPECT_FALSE(breaker.on_failure(sim::sec(4)));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(EndpointScorer, EwmaBlendsLatencyAndFailures) {
  EndpointScorePolicy policy;
  policy.enabled = true;
  policy.alpha = 0.5;
  policy.failure_penalty_s = 10.0;
  EndpointScorer scorer(3, policy);
  EXPECT_DOUBLE_EQ(scorer.score(0), 0.0);  // unprobed = optimistic

  scorer.on_latency(0, 2.0);  // 0.5*0 + 0.5*2
  EXPECT_DOUBLE_EQ(scorer.score(0), 1.0);
  scorer.on_latency(0, 2.0);  // 0.5*1 + 0.5*2
  EXPECT_DOUBLE_EQ(scorer.score(0), 1.5);
  scorer.on_failure(1);  // 0.5*0 + 0.5*10
  EXPECT_DOUBLE_EQ(scorer.score(1), 5.0);

  // Lowest score wins; ties resolve to the lowest index.
  EXPECT_EQ(scorer.best({0, 1, 2}), 2u);  // 2 never probed, score 0
  EXPECT_EQ(scorer.best({0, 1}), 0u);
  scorer.on_latency(2, 8.0);
  EXPECT_EQ(scorer.best({0, 1, 2}), 0u);
}

TEST(EndpointFailover, ScoringSteersFailoverToTheBestEndpoint) {
  CircuitBreakerPolicy breaker;
  breaker.failure_threshold = 1;
  breaker.open_duration = sim::sec(100);
  EndpointScorePolicy score;
  score.enabled = true;
  score.alpha = 1.0;  // score = last observation, keeps the test exact
  EndpointFailover failover({5, 6, 7}, breaker, score);

  // Endpoint 7 has been answering fastest.
  failover.note_latency(6, 4.0);
  failover.note_latency(7, 0.5);
  EXPECT_EQ(failover.select(sim::sec(0)), 5u);  // healthy primary stays

  // Primary dies: scored failover jumps straight to 7, skipping the
  // rotation order's next-in-line 6.
  failover.on_failure(5, sim::sec(1));
  EXPECT_EQ(failover.select(sim::sec(2)), 7u);
  EXPECT_EQ(failover.failovers(), 1u);
}

TEST(EndpointFailover, HedgeTargetAvoidsTheExcludedEndpoint) {
  CircuitBreakerPolicy breaker;
  breaker.failure_threshold = 1;
  breaker.open_duration = sim::sec(100);
  EndpointFailover failover({5, 6, 7}, breaker);

  const auto target = failover.hedge_target(5, sim::sec(0));
  ASSERT_TRUE(target.has_value());
  EXPECT_NE(*target, 5u);

  // Quarantine everything but the excluded endpoint: no hedge possible.
  failover.on_failure(6, sim::sec(1));
  failover.on_failure(7, sim::sec(2));
  EXPECT_FALSE(failover.hedge_target(5, sim::sec(3)).has_value());
}

TEST(EndpointFailover, RotatesAwayFromQuarantinedEndpoints) {
  CircuitBreakerPolicy policy;
  policy.failure_threshold = 1;  // open on the first failure
  policy.open_duration = sim::sec(100);
  EndpointFailover failover({5, 6, 7}, policy);

  EXPECT_EQ(failover.select(sim::sec(0)), 5u);
  failover.on_failure(5, sim::sec(1));
  EXPECT_EQ(failover.select(sim::sec(2)), 6u);
  EXPECT_EQ(failover.failovers(), 1u);
  failover.on_failure(6, sim::sec(3));
  EXPECT_EQ(failover.select(sim::sec(4)), 7u);

  // All quarantined: keep trying the current primary rather than go silent.
  failover.on_failure(7, sim::sec(5));
  EXPECT_EQ(failover.select(sim::sec(6)), 7u);

  // First quarantine elapses; the probe goes back to endpoint 5.
  EXPECT_EQ(failover.select(sim::sec(102)), 5u);
}

// --------------------------------------------- end-to-end mitigation

/// Crash the first client's primary endpoint (an entry node — the paper
/// never faults those, which is exactly why its harness cannot study
/// client-side mitigations).
ExperimentConfig primary_endpoint_crash(bool resilient) {
  ExperimentConfig config;
  config.chain = ChainKind::kRedbelly;
  config.fault = FaultType::kCrash;
  config.fault_targets = {0};
  config.duration = sim::sec(180);
  config.inject_at = sim::sec(60);
  config.seed = 7;
  config.resilience.enabled = resilient;
  return config;
}

TEST(ResilientClient, NaiveClientLosesResilientClientRecovers) {
  const ExperimentResult naive =
      run_experiment(primary_endpoint_crash(false));
  const ExperimentResult resilient =
      run_experiment(primary_endpoint_crash(true));

  // The naive client pinned to node 0 loses every transaction submitted
  // after the crash: roughly 120 s x 40 TPS of the run's traffic.
  EXPECT_LT(naive.committed, naive.submitted);
  EXPECT_GT(naive.submitted - naive.committed, 3000u);
  EXPECT_EQ(naive.resilience.resubmissions, 0u);

  // The resilient client fails over and recovers >= 95% of everything it
  // submitted (the acceptance bar for the mitigation layer).
  EXPECT_GE(static_cast<double>(resilient.committed),
            0.95 * static_cast<double>(resilient.submitted));
  EXPECT_GT(resilient.resilience.resubmissions, 0u);
  EXPECT_GT(resilient.resilience.failovers, 0u);
  EXPECT_GT(resilient.resilience.recovered, 0u);
}

TEST(ResilientClient, DeterministicAcrossRunsAtSameSeed) {
  const ExperimentResult first =
      run_experiment(primary_endpoint_crash(true));
  const ExperimentResult second =
      run_experiment(primary_endpoint_crash(true));
  EXPECT_EQ(first.submitted, second.submitted);
  EXPECT_EQ(first.committed, second.committed);
  EXPECT_EQ(first.latencies, second.latencies);
  EXPECT_EQ(first.resilience.resubmissions,
            second.resilience.resubmissions);
  EXPECT_EQ(first.resilience.failovers, second.resilience.failovers);
  EXPECT_EQ(first.resilience.timeouts, second.resilience.timeouts);
  EXPECT_EQ(first.resilience.recovered, second.resilience.recovered);
  EXPECT_EQ(first.events, second.events);
}

TEST(ResilientClient, NoFaultMeansNoRetries) {
  ExperimentConfig config = primary_endpoint_crash(true);
  config.fault = FaultType::kNone;
  config.fault_targets.clear();
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.resilience.failovers, 0u);
  EXPECT_EQ(result.resilience.circuit_opens, 0u);
  EXPECT_EQ(result.resilience.exhausted, 0u);
  EXPECT_GE(static_cast<double>(result.committed),
            0.99 * static_cast<double>(result.submitted));
}

// ------------------------------------------------- hedging end to end

TEST(ResilientClient, HedgedSubmissionsWinUnderEntryCrash) {
  ExperimentConfig config = primary_endpoint_crash(true);
  config.resilience.hedge.enabled = true;
  config.resilience.score.enabled = true;
  const ExperimentResult result = run_experiment(config);

  // The mitigation bar still holds with hedging on, and the hedges did
  // real work: some commits were answered by the hedge endpoint.
  EXPECT_GE(static_cast<double>(result.committed),
            0.95 * static_cast<double>(result.submitted));
  EXPECT_GT(result.resilience.hedges_armed, 0u);
  EXPECT_GT(result.resilience.hedges_won, 0u);
  // Counter sanity: a hedge either wins, is cancelled, or its transaction
  // never commits — never more wins/cancels than armed hedges.
  EXPECT_LE(result.resilience.hedges_won, result.resilience.hedges_armed);
  EXPECT_LE(result.resilience.hedges_cancelled,
            result.resilience.hedges_armed);
}

TEST(ResilientClient, HedgingOffMeansZeroHedgeCounters) {
  const ExperimentResult result =
      run_experiment(primary_endpoint_crash(true));
  EXPECT_EQ(result.resilience.hedges_armed, 0u);
  EXPECT_EQ(result.resilience.hedges_won, 0u);
  EXPECT_EQ(result.resilience.hedges_cancelled, 0u);
}

TEST(ResilientClient, HedgedRunsAreDeterministic) {
  ExperimentConfig config = primary_endpoint_crash(true);
  config.resilience.hedge.enabled = true;
  config.resilience.score.enabled = true;
  const ExperimentResult first = run_experiment(config);
  const ExperimentResult second = run_experiment(config);
  EXPECT_EQ(first.committed, second.committed);
  EXPECT_EQ(first.latencies, second.latencies);
  EXPECT_EQ(first.resilience.hedges_armed, second.resilience.hedges_armed);
  EXPECT_EQ(first.resilience.hedges_won, second.resilience.hedges_won);
  EXPECT_EQ(first.events, second.events);
}

TEST(ResilientClient, RecoversUnderPacketLossToo) {
  // Loss on the entry side: the naive client drops whatever the network
  // eats; the resilient client's commit timeout resubmits it.
  ExperimentConfig config;
  config.chain = ChainKind::kRedbelly;
  config.fault = FaultType::kLoss;
  config.fault_targets = {0, 1};
  config.loss_probability = 0.4;
  config.duration = sim::sec(180);
  config.inject_at = sim::sec(60);
  config.recover_at = sim::sec(120);
  config.seed = 11;

  config.resilience.enabled = false;
  const ExperimentResult naive = run_experiment(config);
  config.resilience.enabled = true;
  const ExperimentResult resilient = run_experiment(config);

  EXPECT_GE(resilient.committed, naive.committed);
  EXPECT_GE(static_cast<double>(resilient.committed),
            0.95 * static_cast<double>(resilient.submitted));
}

}  // namespace
}  // namespace stabl::core
